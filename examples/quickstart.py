"""Quickstart: reproduce a classic lost-update race with CLAP.

The program below has the textbook atomicity violation: two workers each
perform two unlocked read-modify-write increments of a shared counter, and
main asserts the total.  CLAP:

1. records a failing run, logging ONLY each thread's control-flow path
   (a few dozen bytes — no memory addresses, values, or orderings);
2. offline, symbolically re-executes the recorded paths, encodes
   F = Fpath ∧ Fbug ∧ Fso ∧ Frw ∧ Fmo, and solves for a SAP schedule;
3. replays that schedule deterministically and checks the same assertion
   fails again.

Run:  python examples/quickstart.py
"""

from repro import reproduce_bug

SOURCE = """
int counter = 0;

void worker(int n) {
    for (int i = 0; i < n; i++) {
        int r = counter;     // read  (SAP)
        counter = r + 1;     // write (SAP) -- not atomic with the read!
    }
}

int main() {
    int t1 = 0;
    int t2 = 0;
    t1 = spawn worker(2);
    t2 = spawn worker(2);
    join(t1);
    join(t2);
    assert(counter == 4);    // fails when an increment is lost
    return 0;
}
"""


def main():
    print("=== CLAP quickstart: lost-update race ===\n")
    for solver in ("smt", "genval"):
        report = reproduce_bug(SOURCE, "sc", solver=solver, stickiness=0.3)
        print("solver=%-6s reproduced=%s" % (solver, report.reproduced))
        print("  failure        : %s" % (report.bug,))
        print("  recorded log   : %d bytes (thread-local paths only)" % report.log_bytes)
        print(
            "  constraints    : %d over %d variables (%d SAPs)"
            % (report.n_constraints, report.n_variables, report.n_saps)
        )
        print("  context switches in computed schedule: %d" % report.context_switches)
        print("  schedule (thread#sap):")
        line = "    " + " -> ".join("%s#%d" % uid for uid in report.schedule)
        print(line)
        print()
    print("Both solvers computed a schedule that replays the exact failure.")


if __name__ == "__main__":
    main()
