"""Reproducing a condition-variable producer/consumer bug.

The bounded-buffer program below (the ``bbuf`` benchmark) has a seeded
atomicity violation: producers bump the ``produced`` counter *outside* the
critical section.  The interesting part for CLAP is the synchronization
structure — mutexes plus two condition variables — which exercises the
full Fso encoding: lock-region exclusion, and wait/signal mapping with
the release-before-signal side condition.

The example also runs the companion Eraser-style lockset analysis on the
failing execution to show which location the constraints must resolve
races for.

Run:  python examples/producer_consumer.py
"""

from repro.analysis.lockset import analyze_locksets
from repro.bench.programs import bbuf
from repro.core.clap import ClapConfig, ClapPipeline


def main():
    bench = bbuf()
    config = ClapConfig(solver="smt", **bench.config_kwargs())
    pipeline = ClapPipeline(bench.compile(), config)

    print("=== recording a failing run ===")
    recorded = pipeline.record()
    print("failure:", recorded.bug)
    print("threads:", sorted(recorded.result.saps_by_thread))
    print("CLAP log: %d bytes" % recorded.log_size_bytes())

    print("\n=== lockset analysis of the failing run ===")
    report = analyze_locksets(recorded.result.events)
    for addr in report.violations():
        state = report.locations[addr]
        print(
            "  inconsistently protected: %r (first by thread %s at line %d)"
            % (addr, *state.first_violation)
        )

    print("\n=== offline constraint solving ===")
    system = pipeline.analyze(recorded)
    n_waits = sum(
        1 for sap in system.saps.values() if sap.kind == "wait"
    )
    print("SAPs: %d (%d of them waits)" % (len(system.saps), n_waits))
    solved = pipeline.solve(system)
    assert solved.ok, "solver failed"
    print("computed schedule with %d context switches" % solved.context_switches)

    print("\n=== deterministic replay ===")
    outcome = pipeline.replay(solved.schedule, recorded.bug)
    print("reproduced:", outcome.reproduced)
    print("replayed failure:", outcome.bug)


if __name__ == "__main__":
    main()
