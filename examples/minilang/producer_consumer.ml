// Lock-protected producer/consumer with condition variables.  The slot
// and flag are consistently protected by `m` (the analyzer shows them as
// "always under m").  `produced` is updated outside the critical section
// but by a single producer only, and main reads it after join — the
// MHP pass proves every pair on it sequential, so no race is reported.

int slot = 0;
int full = 0;
int produced = 0;
mutex m;
cond notFull;
cond notEmpty;

void producer(int n) {
    for (int i = 0; i < n; i++) {
        lock(m);
        while (full == 1) { wait(notFull, m); }
        slot = 10 + i;
        full = 1;
        signal(notEmpty);
        unlock(m);
        int p = produced;
        yield;
        produced = p + 1;
    }
}

void consumer(int n) {
    for (int i = 0; i < n; i++) {
        lock(m);
        while (full == 0) { wait(notEmpty, m); }
        int v = slot;
        full = 0;
        signal(notFull);
        unlock(m);
    }
}

int main() {
    int p = 0;
    int c = 0;
    p = spawn producer(2);
    c = spawn consumer(2);
    join(p);
    join(c);
    assert(produced == 2);
    return 0;
}
