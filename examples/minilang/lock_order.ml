// ABBA deadlock pattern: the two workers take `a` and `b` in opposite
// orders.  Data accesses are fully protected (no race diagnostics), but
// the lock-order graph has the cycle a -> b -> a and `repro analyze`
// reports an SR101 warning with both acquisition sites.

int shared0 = 0;
int shared1 = 0;
mutex a;
mutex b;

void worker_ab() {
    lock(a);
    lock(b);
    shared0 = shared0 + 1;
    shared1 = shared1 + 1;
    unlock(b);
    unlock(a);
}

void worker_ba() {
    lock(b);
    lock(a);
    shared1 = shared1 + 1;
    shared0 = shared0 + 1;
    unlock(a);
    unlock(b);
}

int main() {
    int t0 = 0;
    int t1 = 0;
    t0 = spawn worker_ab();
    t1 = spawn worker_ba();
    join(t0);
    join(t1);
    assert(shared0 == 2);
    return 0;
}
