// Peterson's mutual-exclusion algorithm (one round per thread).
// Correct under sequential consistency; under TSO the store to
// flag[id] may be delayed past the load of flag[other] in the spin
// condition (SR401), so both threads can enter and an increment is
// lost.
// analyze-models: sc tso pso
int flag[2];
int turn = 0;
int count = 0;

void actor(int id) {
    int other = 1 - id;
    flag[id] = 1;
    turn = other;
    while (flag[other] == 1 && turn == other) { yield; }
    int c = count;
    count = c + 1;
    flag[id] = 0;
}

int main() {
    int t0 = 0;
    int t1 = 0;
    t0 = spawn actor(0);
    t1 = spawn actor(1);
    join(t0);
    join(t1);
    assert(count == 2);
    return 0;
}
