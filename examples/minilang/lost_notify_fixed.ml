// Fixed variant of lost_notify: the only signal fires while holding the
// waiter's mutex, after the predicate and payload are published — the
// waiter can never wake to a half-published state.
int value = 0;
int done = 0;
mutex m;
cond cv;

void waiter() {
    lock(m);
    if (done == 0) {
        wait(cv, m);
    }
    int v = value;
    unlock(m);
    assert(v == 7);
}

int main() {
    int h = 0;
    h = spawn waiter();
    lock(m);
    value = 7;
    done = 1;
    signal(cv);
    unlock(m);
    join(h);
    return 0;
}
