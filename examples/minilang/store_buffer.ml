// The store-buffering litmus test (SB): each thread stores to one
// variable and then loads the other.  Sequential consistency forbids
// both loads returning 0, but a store buffer may delay either store
// past the other thread's load (SR401), so under TSO/PSO both threads
// can read the initial values and the assert fails.
// analyze-models: sc tso pso
int x = 0;
int y = 0;
int r1 = 0;
int r2 = 0;

void t1() {
    x = 1;
    int a = y;
    r1 = a;
}

void t2() {
    y = 1;
    int b = x;
    r2 = b;
}

int main() {
    int h1 = 0;
    int h2 = 0;
    h1 = spawn t1();
    h2 = spawn t2();
    join(h1);
    join(h2);
    assert(r1 + r2 >= 1);
    return 0;
}
