// The message-passing litmus test (MP): the writer publishes data and
// then raises a ready flag.  TSO's single FIFO store buffer preserves
// the store order, so the program is TSO-robust; PSO buffers stores
// per address and may commit ready before data (SR402), letting the
// reader observe the flag but stale data.
// analyze-models: sc tso pso
int data = 0;
int ready = 0;
int seen = 0;
int value = 0;

void writer() {
    data = 42;
    ready = 1;
}

void reader() {
    int f = ready;
    int d = data;
    seen = f;
    value = d;
}

int main() {
    int h1 = 0;
    int h2 = 0;
    h1 = spawn writer();
    h2 = spawn reader();
    join(h1);
    join(h2);
    assert(seen == 0 || value == 42);
    return 0;
}
