// Dekker's algorithm with a full fence after every shared store: no
// store can be delayed past a later access, so every critical cycle of
// the unfenced version (see dekker.ml) is cut and the program is
// robust under TSO and PSO.
// analyze-models: sc tso pso
int flag[2];
int turn = 0;
int count = 0;

void actor(int id) {
    int other = 1 - id;
    flag[id] = 1;
    fence;
    while (flag[other] == 1) {
        if (turn != id) {
            flag[id] = 0;
            fence;
            while (turn != id) { yield; }
            flag[id] = 1;
            fence;
        }
    }
    int c = count;
    count = c + 1;
    fence;
    turn = other;
    fence;
    flag[id] = 0;
    fence;
}

int main() {
    int t0 = 0;
    int t1 = 0;
    t0 = spawn actor(0);
    t1 = spawn actor(1);
    join(t0);
    join(t1);
    assert(count == 2);
    return 0;
}
