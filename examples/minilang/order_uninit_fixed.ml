// Fixed variant of order_uninit: `data` is initialized before the
// reader thread exists, so the spawn edge orders init before use.
int data = 0;
int out = 0;

void reader() {
    int v = data;
    out = v + 1;
}

int main() {
    int h = 0;
    data = 42;
    h = spawn reader();
    join(h);
    assert(out == 43);
    return 0;
}
