// SR303 seeded bug: main fires a naked signal(cv) without holding the
// waiter's mutex.  If that signal wakes the wait, the waiter observes
// `value` before main publishes it under the lock (v == 0, assert
// fails); if the waiter has not registered yet the wakeup is lost.
int value = 0;
int done = 0;
mutex m;
cond cv;

void waiter() {
    lock(m);
    if (done == 0) {
        wait(cv, m);
    }
    int v = value;
    unlock(m);
    assert(v == 7);
}

int main() {
    int h = 0;
    h = spawn waiter();
    signal(cv);
    lock(m);
    value = 7;
    done = 1;
    signal(cv);
    unlock(m);
    join(h);
    return 0;
}
