// SR302 seeded bug: main publishes `data` only *after* spawning the
// reader, so the reader may consume the uninitialized value (v == 0,
// out == 1, assert fails).
int data = 0;
int out = 0;

void reader() {
    int v = data;
    out = v + 1;
}

int main() {
    int h = 0;
    h = spawn reader();
    data = 42;
    join(h);
    assert(out == 43);
    return 0;
}
