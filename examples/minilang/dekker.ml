// Dekker's mutual-exclusion algorithm (one round per thread).  Correct
// under sequential consistency, but the entry protocol's store to
// flag[id] may be delayed past the load of flag[other] by a store
// buffer (SR401), letting both threads enter the critical section and
// lose an increment.
// analyze-models: sc tso pso
int flag[2];
int turn = 0;
int count = 0;

void actor(int id) {
    int other = 1 - id;
    flag[id] = 1;
    while (flag[other] == 1) {
        if (turn != id) {
            flag[id] = 0;
            while (turn != id) { yield; }
            flag[id] = 1;
        }
    }
    int c = count;
    count = c + 1;
    turn = other;
    flag[id] = 0;
}

int main() {
    int t0 = 0;
    int t1 = 0;
    t0 = spawn actor(0);
    t1 = spawn actor(1);
    join(t0);
    join(t1);
    assert(count == 2);
    return 0;
}
