// SR301 seeded bug: each half of the increment is locked, but the
// read-modify-write *span* is not — two workers can interleave between
// the two critical sections and lose an update (c == 1, assert fails).
int c = 0;
mutex m;

void worker() {
    lock(m);
    int t = c;
    unlock(m);
    lock(m);
    c = t + 1;
    unlock(m);
}

int main() {
    int h1 = 0;
    int h2 = 0;
    h1 = spawn worker();
    h2 = spawn worker();
    join(h1);
    join(h2);
    assert(c == 2);
    return 0;
}
