// Fixed variant of atomicity_ctr: the whole read-modify-write span sits
// inside one critical section, so no interleaving can lose an update.
int c = 0;
mutex m;

void worker() {
    lock(m);
    int t = c;
    c = t + 1;
    unlock(m);
}

int main() {
    int h1 = 0;
    int h2 = 0;
    h1 = spawn worker();
    h2 = spawn worker();
    join(h1);
    join(h2);
    assert(c == 2);
    return 0;
}
