// The store-buffering litmus test with a full fence between each
// thread's store and its load: the store commits before the load
// issues, so at least one thread observes the other's store and the
// program is robust under TSO and PSO.
// analyze-models: sc tso pso
int x = 0;
int y = 0;
int r1 = 0;
int r2 = 0;

void t1() {
    x = 1;
    fence;
    int a = y;
    r1 = a;
}

void t2() {
    y = 1;
    fence;
    int b = x;
    r2 = b;
}

int main() {
    int h1 = 0;
    int h2 = 0;
    h1 = spawn t1();
    h2 = spawn t2();
    join(h1);
    join(h2);
    assert(r1 + r2 >= 1);
    return 0;
}
