// Peterson's algorithm with the classic fix: a single full fence after
// the store to turn (the last store of the entry protocol) plus fences
// covering the remaining shared stores, making the algorithm robust
// under TSO and PSO.
// analyze-models: sc tso pso
int flag[2];
int turn = 0;
int count = 0;

void actor(int id) {
    int other = 1 - id;
    flag[id] = 1;
    fence;
    turn = other;
    fence;
    while (flag[other] == 1 && turn == other) { yield; }
    int c = count;
    count = c + 1;
    fence;
    flag[id] = 0;
    fence;
}

int main() {
    int t0 = 0;
    int t1 = 0;
    t0 = spawn actor(0);
    t1 = spawn actor(1);
    join(t0);
    join(t1);
    assert(count == 2);
    return 0;
}
