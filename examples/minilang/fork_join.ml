// Fork/join pipeline with no races at all: main initialises, workers run
// on disjoint array halves, main reads results only after joining.  The
// analyzer proves every pair non-MHP — a clean report, and with
// `--static-prune` the encoder drops every cross-stage rf candidate.

int data[4];
int sum0 = 0;
int sum1 = 0;

void lo() {
    sum0 = data[0] + data[1];
}

void hi() {
    sum1 = data[2] + data[3];
}

int main() {
    for (int i = 0; i < 4; i++) {
        data[i] = i + 1;
    }
    int t0 = 0;
    int t1 = 0;
    t0 = spawn lo();
    t1 = spawn hi();
    join(t0);
    join(t1);
    assert(sum0 + sum1 == 10);
    return 0;
}
