// A classic lost-update race: two workers increment an unprotected
// counter.  `repro analyze` flags `count` with SR002/SR001 diagnostics;
// `done0`/`done1` are race-free because fork/join orders them.

int count = 0;
int done0 = 0;
int done1 = 0;

void worker0() {
    int t = count;
    yield;
    count = t + 1;
    done0 = 1;
}

void worker1() {
    int t = count;
    yield;
    count = t + 1;
    done1 = 1;
}

int main() {
    int a = 0;
    int b = 0;
    a = spawn worker0();
    b = spawn worker1();
    join(a);
    join(b);
    assert(done0 + done1 == 2);
    assert(count == 2);
    return 0;
}
