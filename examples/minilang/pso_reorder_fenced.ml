// The message-passing litmus test with a fence between the data store
// and the ready store (exactly the placement the SR403 pass infers for
// pso_reorder.ml): the data store commits before the flag is raised,
// so the reader can never observe the flag with stale data and the
// program is robust under both TSO and PSO.
// analyze-models: sc tso pso
int data = 0;
int ready = 0;
int seen = 0;
int value = 0;

void writer() {
    data = 42;
    fence;
    ready = 1;
}

void reader() {
    int f = ready;
    int d = data;
    seen = f;
    value = d;
}

int main() {
    int h1 = 0;
    int h2 = 0;
    h1 = spawn writer();
    h2 = spawn reader();
    join(h1);
    join(h2);
    assert(seen == 0 || value == 42);
    return 0;
}
