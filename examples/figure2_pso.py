"""The paper's running example (Figures 2-4): an SC bug and a PSO-only bug.

``figure2`` has two assertions:

* ``assert1`` (in main): a racy counter makes ``c == 2`` fail under plain
  sequential consistency when the increments interleave badly;
* ``assert2`` (in t2): message-passing through ``x`` (data) and ``y``
  (flag).  t2 sees ``y == 1`` but ``x == 0`` — possible only when t1's two
  stores drain from its store buffer out of order, i.e. only under PSO.
  (TSO preserves store-store order; the paper's Figure 2 makes exactly
  this distinction.)

This example reproduces both failures and prints two different
bug-reproducing schedules for the PSO case — the original-style one and
the minimal-context-switch one — mirroring the paper's Figure 4.

Run:  python examples/figure2_pso.py
"""

from repro.bench.programs import figure2
from repro.core.clap import ClapConfig, ClapPipeline
from repro.core.minimal_cs import minimize_context_switches
from repro.constraints.context_switch import count_context_switches
from repro.solver.smt import solve_constraints


def show_schedule(title, system, schedule):
    switches = count_context_switches(schedule, system.summaries)
    print("  %s (%d context switches):" % (title, switches))
    print("    " + " -> ".join("%s#%d" % uid for uid in schedule))


def reproduce(memory_model, want_line_marker):
    bench = figure2(memory_model=memory_model)
    config = ClapConfig(**bench.config_kwargs())
    pipeline = ClapPipeline(bench.compile(), config)
    # Keep recording until the interesting assertion is the one that fired.
    marker_line = next(
        i + 1
        for i, line in enumerate(bench.source.splitlines())
        if want_line_marker in line
    )
    recorded = None
    for seed in range(2000):
        candidate = pipeline.record_once(seed)
        if candidate.bug is not None and candidate.bug.line == marker_line:
            recorded = candidate
            break
    if recorded is None:
        raise SystemExit("the %s assertion never fired" % want_line_marker)
    print("model=%s, failure: %s" % (memory_model, recorded.bug))
    system = pipeline.analyze(recorded)
    solved = solve_constraints(system)
    assert solved.ok, solved.reason
    outcome = pipeline.replay(solved.schedule, recorded.bug)
    print("  replay reproduced:", outcome.reproduced)
    show_schedule("solver schedule", system, solved.schedule)
    tightened = minimize_context_switches(system, solved.schedule, max_seconds=20)
    if tightened.improved:
        show_schedule("minimal-switch schedule", system, tightened.schedule)
        outcome = pipeline.replay(tightened.schedule, recorded.bug)
        print("  minimal schedule also reproduces:", outcome.reproduced)
    print()


def main():
    print("=== Figure 2, assert1: fails under SC ===")
    reproduce("sc", "assert(c == 2)")
    print("=== Figure 2, assert2: fails only under PSO ===")
    reproduce("pso", "assert(d == 1)")


if __name__ == "__main__":
    main()
