"""Dekker's algorithm under relaxed memory: record, solve, replay.

Dekker's mutual-exclusion algorithm is correct under sequential
consistency but breaks on TSO/PSO hardware: the entry protocol's store
(``flag[me] = 1``) can still sit in the store buffer when the other
thread's load (``flag[other]``) executes, so both threads see the flag
down and both enter the critical section.

This example demonstrates CLAP's relaxed-memory story end to end:

1. the bug *cannot* be triggered under SC (we try);
2. under TSO it manifests, CLAP records only thread-local paths, and the
   TSO-parameterized Fmo lets the solver find a reproducing SAP schedule;
3. the deterministic replayer physically realizes the schedule by
   controlling store-buffer flushes;
4. attaching a LEAP-style synchronized recorder makes the bug vanish —
   the Heisenberg effect the paper's synchronization-free logging avoids.

Run:  python examples/relaxed_memory_dekker.py
"""

from repro.analysis.escape import shared_variables
from repro.bench.programs import dekker
from repro.core.clap import ClapConfig, ClapPipeline
from repro.runtime.interpreter import Interpreter
from repro.runtime.scheduler import RandomScheduler, find_buggy_seed
from repro.tracing.leap import LeapRecorder


def main():
    bench = dekker(memory_model="tso")
    program = bench.compile()
    shared = shared_variables(program)
    print("shared variables:", sorted(shared))

    print("\n1) Searching for the bug under SC (should fail)...")
    hit = find_buggy_seed(
        program, "sc", seeds=range(200), stickiness=0.4, shared=shared
    )
    print("   SC violation found:", hit is not None)

    print("\n2) Reproducing under TSO with CLAP...")
    config = ClapConfig(solver="smt", **bench.config_kwargs())
    pipeline = ClapPipeline(program, config)
    report = pipeline.reproduce()
    print("   failure      :", report.bug)
    print("   reproduced   :", report.reproduced)
    print("   log size     : %d bytes" % report.log_bytes)
    print(
        "   constraints  : %d (%d SAPs, TSO memory order)"
        % (report.n_constraints, report.n_saps)
    )
    print("   context switches:", report.context_switches)

    print("\n3) The Heisenberg effect: recording with LEAP's locks...")
    found = None
    for seed in range(400):
        interp = Interpreter(
            program,
            memory_model="tso",
            scheduler=RandomScheduler(
                seed, stickiness=bench.stickiness, flush_prob=bench.flush_prob
            ),
            shared=shared,
            hooks=[LeapRecorder(program)],
        )
        if interp.run().bug is not None:
            found = seed
            break
    print(
        "   bug manifested while LEAP was recording:",
        "yes (seed %d)" % found if found is not None else "no — masked by fences",
    )
    print(
        "\nCLAP's path recorder adds no synchronization, so the same search"
        "\nfound the bug during recording (that's the run reproduced above)."
    )


if __name__ == "__main__":
    main()
