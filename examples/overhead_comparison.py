"""Recording-overhead comparison: CLAP's path logs vs LEAP's access vectors.

Reproduces the shape of the paper's Table 2 on a few benchmarks: LEAP's
per-access synchronized logging is expensive exactly where shared accesses
dominate, while Ball-Larus path profiling costs only a counter increment
per branch — and the log is a handful of path ids per thread instead of
one entry per shared access.

Run:  python examples/overhead_comparison.py
"""

from repro.bench.metrics import measure_overhead
from repro.bench.programs import get_benchmark


def main():
    names = ("sim_race", "pbzip2", "aget", "pfscan", "racey")
    print(
        "%-10s %10s %10s %10s %12s %12s"
        % ("program", "LEAP ov%", "CLAP ov%", "t-red%", "LEAP log", "CLAP log")
    )
    for name in names:
        row = measure_overhead(get_benchmark(name))
        print(
            "%-10s %9.1f%% %9.1f%% %9.1f%% %11dB %11dB"
            % (
                name,
                row.leap_overhead_pct,
                row.clap_overhead_pct,
                row.time_reduction_pct,
                row.leap_log_bytes,
                row.clap_log_bytes,
            )
        )
    print(
        "\n(Overheads are simulated cost-model units over dynamic counts —"
        "\n see repro/bench/metrics.py; log sizes are real encoded bytes.)"
    )


if __name__ == "__main__":
    main()
