"""Checkpointing: reproduce a bug at the end of a long execution.

The paper's Section 6.4: "For very long runs ... we need to break up the
execution so that each execution segment has tractable size of
constraints.  Checkpointing is a common technique used in such contexts.
We plan to integrate CLAP with checkpointing in future."

This example implements that plan.  The program below does a long racy
warm-up (whose interleavings are irrelevant) and only races on the
interesting counter at the very end.  Without checkpointing, the
constraint system covers the entire execution; with periodic checkpoints,
only the suffix after the last snapshot needs symbolic execution,
encoding, and solving — the replayer then starts from the restored
snapshot instead of program entry.

Run:  python examples/long_running_checkpoint.py
"""

from repro.core.checkpoint import CheckpointClapPipeline
from repro.core.clap import ClapConfig, ClapPipeline
from repro.minilang import compile_source

SOURCE = """
int warmup = 0;
int c = 0;

void worker(int n) {
    for (int i = 0; i < n; i++) {
        int w = warmup;
        warmup = w + 1;       // long, racy, boring warm-up phase
    }
    int r = c;                // the bug: a lost update right at the end
    yield;
    c = r + 1;
}

int main() {
    int t1 = 0;
    int t2 = 0;
    t1 = spawn worker(40);
    t2 = spawn worker(40);
    join(t1);
    join(t2);
    assert(c == 2);
    return 0;
}
"""


def main():
    program = compile_source(SOURCE, name="long-run")
    config = ClapConfig(stickiness=0.35)

    print("=== without checkpointing: the whole trace is the problem ===")
    full = ClapPipeline(program, config)
    full_recorded = full.record()
    full_system = full.analyze(full_recorded)
    print("  SAPs to solve over : %d" % len(full_system.saps))

    print("\n=== with checkpoints every 200 steps ===")
    pipeline = CheckpointClapPipeline(program, config, interval_steps=200)
    recorded = pipeline.record()
    print("  checkpoints taken  : %d" % recorded.n_checkpoints)
    system = pipeline.analyze(recorded)
    print("  SAPs in the suffix : %d" % len(system.saps))
    print(
        "  constraint reduction: %.0f%%"
        % (100.0 * (1 - len(system.saps) / len(full_system.saps)))
    )

    solved = pipeline.solve(system)
    assert solved.ok, solved.reason
    outcome = pipeline.replay(
        solved.schedule, recorded.bug, checkpoint=recorded.checkpoint
    )
    print("\n  suffix schedule reproduces the failure:", outcome.reproduced)
    print("  (replay started from the restored snapshot, not program entry)")


if __name__ == "__main__":
    main()
