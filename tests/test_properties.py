"""Cross-cutting property-based tests (hypothesis).

These target the invariants the whole system leans on:

* varint and token-stream encodings round-trip;
* Ball-Larus ids are dense and decode uniquely on random CFG shapes;
* C division/modulo satisfy the Euclidean identity;
* randomly scheduled executions of a data-race-free program always produce
  the same final state (determinism of the DRF substrate);
* ground-truth schedules of arbitrary seeded executions always replay.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.minilang import compile_source
from repro.runtime.interpreter import run_program
from repro.runtime.replay import replay_schedule
from repro.runtime.values import c_div, c_mod
from repro.tracing.ball_larus import BallLarus
from repro.tracing.logfmt import decode_tokens, encode_tokens


@given(st.integers(-(10**9), 10**9), st.integers(-(10**6), 10**6))
def test_cdiv_cmod_euclidean_identity(a, b):
    if b == 0:
        return
    q, r = c_div(a, b), c_mod(a, b)
    assert q * b + r == a
    assert abs(r) < abs(b)
    # Truncation toward zero.
    assert q == int(a / b)


_token = st.one_of(
    st.tuples(st.just("enter"), st.integers(0, 2**20)),
    st.tuples(st.just("path"), st.integers(0, 2**40)),
    st.tuples(st.just("exit")),
    st.tuples(
        st.just("partial"),
        st.integers(0, 2**30),
        st.integers(0, 500),
        st.integers(0, 500),
        st.integers(0, 2),
    ),
)


@given(st.lists(_token, max_size=60))
def test_token_streams_roundtrip(tokens):
    assert decode_tokens(encode_tokens(tokens)) == tokens


@st.composite
def branchy_bodies(draw):
    """Random nest of if/else and while over a few locals."""
    depth = draw(st.integers(1, 4))

    def stmt(d):
        kind = draw(st.integers(0, 3 if d > 0 else 1))
        if kind == 0:
            return "a = a + 1;"
        if kind == 1:
            return "b = b + a;"
        if kind == 2:
            inner = " ".join(stmt(d - 1) for _ in range(draw(st.integers(1, 2))))
            return "if (a %% 2 == 0) { %s } else { b = b - 1; }" % inner
        inner = " ".join(stmt(d - 1) for _ in range(draw(st.integers(1, 2))))
        return "while (a < %d) { a = a + 2; %s }" % (draw(st.integers(1, 5)), inner)

    return " ".join(stmt(depth) for _ in range(draw(st.integers(1, 3))))


@settings(max_examples=40, deadline=None)
@given(branchy_bodies())
def test_ball_larus_ids_dense_and_unique(body):
    src = "int main() { int a = 0; int b = 0; %s return 0; }" % body
    prog = compile_source(src)
    bl = BallLarus(prog.main)
    # Enumerate ALL DAG paths (real + pseudo edges): ids must be exactly
    # the dense range [0, num_paths).
    ids = []

    def walk(node, total):
        if node == -1:
            ids.append(total)
            return
        for edge in bl._succ.get(node, []):
            walk(edge.dst, total + bl.edge_val[edge])

    walk(0, 0)
    assert sorted(ids) == list(range(bl.num_paths))


DRF_TEMPLATE = """
int total = 0;
mutex m;
void worker(int k) {
    for (int i = 0; i < %d; i++) {
        lock(m);
        total = total + k;
        unlock(m);
    }
}
int main() {
    int t1 = 0; int t2 = 0; int t3 = 0;
    t1 = spawn worker(1);
    t2 = spawn worker(2);
    t3 = spawn worker(3);
    join(t1); join(t2); join(t3);
    assert(total == %d);
    return 0;
}
"""


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 500), st.integers(1, 4))
def test_drf_program_is_schedule_deterministic(seed, iters):
    src = DRF_TEMPLATE % (iters, 6 * iters)
    prog = compile_source(src)
    res = run_program(prog, seed=seed, stickiness=0.3)
    assert res.ok, (seed, res.bug)
    assert res.final_globals[("total",)] == 6 * iters


RACY_TEMPLATE = """
int c = 0;
void w(int n) { for (int i = 0; i < n; i++) { int r = c; c = r + 1; } }
int main() {
    int t1 = 0; int t2 = 0;
    t1 = spawn w(2); t2 = spawn w(2);
    join(t1); join(t2);
    assert(c == 4);
    return 0;
}
"""


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 1000), st.sampled_from(["sc", "tso", "pso"]))
def test_every_ground_truth_schedule_replays(seed, model):
    """Property: the memory-order event sequence of ANY execution is a
    schedule the replayer can enforce, reproducing the same outcome."""
    prog = compile_source(RACY_TEMPLATE)
    original = run_program(
        prog, model, seed=seed, stickiness=0.4, flush_prob=0.2
    )
    outcome = replay_schedule(
        prog, original.schedule(), model, expected_bug=original.bug
    )
    if original.bug is not None:
        assert outcome.reproduced
    else:
        assert outcome.result.bug is None
        assert outcome.result.final_globals == original.final_globals


# -- static pruning preserves the encoding's models ----------------------

_PRUNE_BENCHMARKS = ["sim_race", "swarm", "pfscan", "bbuf", "aget", "figure2"]


@pytest.mark.parametrize("name", _PRUNE_BENCHMARKS)
def test_static_prune_preserves_satisfiability_and_reproduction(name):
    """Property: for a seeded benchmark bug, the analyzer-pruned encoding
    is satisfiable iff the unpruned one is, and its schedule still
    reproduces the failure.  This is the gate behind ClapConfig's
    ``static_prune`` flag staying sound."""
    from repro.analysis.static_race import compute_prune_info
    from repro.analysis.symexec import execute_recorded_paths
    from repro.bench.programs import get_benchmark
    from repro.constraints.encoder import encode
    from repro.constraints.stats import compute_stats
    from repro.core.clap import ClapConfig, ClapPipeline
    from repro.solver.smt import solve_constraints
    from repro.tracing.decoder import decode_log

    bench = get_benchmark(name)
    program = bench.compile()
    config = ClapConfig(**bench.config_kwargs())
    pipeline = ClapPipeline(program, config)
    recorded = pipeline.record()
    summaries = execute_recorded_paths(
        program, decode_log(recorded.recorder), pipeline.shared, bug=recorded.bug
    )

    base = encode(
        summaries, config.memory_model, program.symbols, pipeline.shared
    )
    pruned = encode(
        summaries,
        config.memory_model,
        program.symbols,
        pipeline.shared,
        prune=compute_prune_info(program),
    )

    r_base = solve_constraints(base)
    r_pruned = solve_constraints(pruned)
    assert r_base.ok == r_pruned.ok
    assert r_base.ok, name  # recorded bugs are always reproducible

    stats = compute_stats(pruned)
    assert stats.n_pruned_choice_vars > 0, name

    outcome = pipeline.replay(r_pruned.schedule, recorded.bug)
    assert outcome.reproduced, name
