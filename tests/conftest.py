"""Shared fixtures: small MiniLang programs used across the test suite."""

import pytest

from repro.minilang import compile_source

RACE_SRC = """
int c = 0;
void worker(int n) {
    for (int i = 0; i < n; i++) {
        int r = c;
        c = r + 1;
    }
}
int main() {
    int t1 = 0;
    int t2 = 0;
    t1 = spawn worker(2);
    t2 = spawn worker(2);
    join(t1);
    join(t2);
    assert(c == 4);
    return 0;
}
"""

LOCKED_SRC = """
int c = 0;
mutex m;
void worker(int n) {
    for (int i = 0; i < n; i++) {
        lock(m);
        int r = c;
        c = r + 1;
        unlock(m);
    }
}
int main() {
    int t1 = 0;
    int t2 = 0;
    t1 = spawn worker(2);
    t2 = spawn worker(2);
    join(t1);
    join(t2);
    assert(c == 4);
    return 0;
}
"""

CONDVAR_SRC = """
int x = 0;
int y = 0;
int done = 0;
mutex m;
cond cv;
void producer() {
    lock(m);
    x = x + 5;
    done = 1;
    signal(cv);
    unlock(m);
}
void consumer() {
    lock(m);
    while (done == 0) { wait(cv, m); }
    int v = x;
    unlock(m);
    y = v * 2;
}
int main() {
    int t1 = 0;
    int t2 = 0;
    t1 = spawn consumer();
    t2 = spawn producer();
    join(t1);
    join(t2);
    assert(y == 10);
    return 0;
}
"""

MP_SRC = """
int data = 0;
int flag = 0;
void writer() {
    data = 42;
    flag = 1;
}
void reader() {
    int f = flag;
    int d = data;
    if (f == 1) {
        assert(d == 42);
    }
}
int main() {
    int t1 = 0;
    int t2 = 0;
    t1 = spawn writer();
    t2 = spawn reader();
    join(t1);
    join(t2);
    return 0;
}
"""

SB_SRC = """
int x = 0;
int y = 0;
int r1 = 0;
int r2 = 0;
void t1() {
    x = 1;
    r1 = y;
}
void t2() {
    y = 1;
    r2 = x;
}
int main() {
    int h1 = 0;
    int h2 = 0;
    h1 = spawn t1();
    h2 = spawn t2();
    join(h1);
    join(h2);
    int a = r1;
    int b = r2;
    assert(a + b > 0);
    return 0;
}
"""


@pytest.fixture
def race_program():
    return compile_source(RACE_SRC, name="race")


@pytest.fixture
def locked_program():
    return compile_source(LOCKED_SRC, name="locked")


@pytest.fixture
def condvar_program():
    return compile_source(CONDVAR_SRC, name="condvar")


@pytest.fixture
def mp_program():
    """Message passing: assert fails only when stores reorder (PSO)."""
    return compile_source(MP_SRC, name="mp")


@pytest.fixture
def sb_program():
    """Store buffering: assert fails only under TSO/PSO."""
    return compile_source(SB_SRC, name="sb")
