"""Command-line interface tests (python -m repro ...)."""

import json

import pytest

from repro.cli import main

from tests.conftest import LOCKED_SRC, RACE_SRC


@pytest.fixture
def race_file(tmp_path):
    path = tmp_path / "race.ml"
    path.write_text(RACE_SRC)
    return str(path)


@pytest.fixture
def locked_file(tmp_path):
    path = tmp_path / "locked.ml"
    path.write_text(LOCKED_SRC)
    return str(path)


def test_run_clean_program(locked_file, capsys):
    code = main(["run", locked_file, "--seed", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "ok; final globals:" in out
    assert "c = 4" in out


def test_run_reports_failure_exit_code(race_file, capsys):
    # Find a failing seed via the CLI loop.
    for seed in range(100):
        code = main(
            ["run", race_file, "--seed", str(seed), "--stickiness", "0.3"]
        )
        capsys.readouterr()
        if code == 1:
            return
    pytest.fail("no failing seed via CLI")


def test_record_writes_logs(race_file, tmp_path, capsys):
    out_path = tmp_path / "logs.json"
    code = main(
        ["record", race_file, "--stickiness", "0.3", "--out", str(out_path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "failure:" in out
    payload = json.loads(out_path.read_text())
    assert "logs" in payload and payload["logs"]
    for data in payload["logs"].values():
        bytes.fromhex(data)  # valid hex


def test_reproduce_end_to_end(race_file, capsys):
    code = main(["reproduce", race_file, "--stickiness", "0.3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "reproduced   : True" in out
    assert "schedule" in out


def test_reproduce_genval(race_file, capsys):
    code = main(
        ["reproduce", race_file, "--solver", "genval", "--stickiness", "0.3"]
    )
    assert code == 0
    assert "reproduced   : True" in capsys.readouterr().out


def test_disasm(race_file, capsys):
    code = main(["disasm", race_file])
    out = capsys.readouterr().out
    assert code == 0
    assert "func main" in out
    assert "SPAWN" in out


def test_trace_decodes_paths(race_file, capsys):
    code = main(["trace", race_file, "--buggy", "--stickiness", "0.3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "thread 1" in out
    assert "worker: blocks" in out


def test_analyze_text_output(race_file, capsys):
    code = main(["analyze", race_file])
    out = capsys.readouterr().out
    assert code == 0
    assert "shared variables:" in out
    assert "data race on 'c'" in out
    assert "summary:" in out


def test_analyze_clean_program(locked_file, capsys):
    code = main(["analyze", locked_file])
    out = capsys.readouterr().out
    assert code == 0
    assert "no races or lock-order cycles found" in out


def test_analyze_json_output(race_file, capsys):
    code = main(["analyze", race_file, "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["racy_variables"] == ["c"]
    assert any(d["code"].startswith("SR0") for d in payload["diagnostics"])


def test_analyze_fail_on_race_exit_code(race_file, locked_file, capsys):
    assert main(["analyze", race_file, "--fail-on-race"]) == 1
    capsys.readouterr()
    assert main(["analyze", locked_file, "--fail-on-race"]) == 0


def test_reproduce_with_static_prune(race_file, capsys):
    code = main(
        ["reproduce", race_file, "--stickiness", "0.3", "--static-prune"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "reproduced   : True" in out
    assert "pruned       :" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_trace_json_output(race_file, capsys):
    code = main(["trace", race_file, "--json", "--seed", "3"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["seed"] == 3
    assert payload["threads"]
    for info in payload["threads"].values():
        assert info["n_tokens"] == len(info["tokens"])
        assert info["encoded_bytes"] > 0
        assert info["compressed_bytes"] > 0
        assert info["compression_ratio"] > 0
        kinds = {token[0] for token in info["tokens"]}
        assert kinds <= {"enter", "path", "exit", "partial", "resume"}


@pytest.fixture
def corpus_dir(race_file, tmp_path, capsys):
    root = str(tmp_path / "corpus")
    code = main(
        ["corpus", "add", root, race_file, "--stickiness", "0.3",
         "--name", "race", "--max-seeds", "50"]
    )
    capsys.readouterr()
    assert code == 0
    return root


def test_corpus_add_ls_verify(corpus_dir, capsys):
    assert main(["corpus", "ls", corpus_dir]) == 0
    out = capsys.readouterr().out
    assert "race" in out
    assert "seed=" in out
    assert main(["corpus", "verify", corpus_dir]) == 0
    assert "ok" in capsys.readouterr().out


def test_corpus_verify_flags_corruption(corpus_dir, capsys):
    from repro.store import Corpus
    from repro.service.faults import corrupt_chunk

    entry = Corpus.open(corpus_dir).entries()[0]
    corrupt_chunk(entry.trace_path, 0)
    assert main(["corpus", "verify", corpus_dir]) == 1
    assert "CORRUPT" in capsys.readouterr().out


def test_corpus_compact(corpus_dir, capsys):
    assert main(["corpus", "compact", corpus_dir]) == 0
    assert "bytes" in capsys.readouterr().out
    assert main(["corpus", "verify", corpus_dir]) == 0


def test_batch_cli(corpus_dir, tmp_path, capsys):
    sink = str(tmp_path / "results.jsonl")
    code = main(["batch", corpus_dir, "--jobs", "2", "--out", sink, "--quiet"])
    out = capsys.readouterr().out
    assert code == 0
    assert "reproduced" in out
    assert "1 jobs: 1 reproduced" in out
    lines = [json.loads(l) for l in open(sink) if l.strip()]
    assert len(lines) == 1
    assert lines[0]["status"] == "reproduced"


def test_reproduce_profile_output(race_file, capsys):
    code = main(["reproduce", race_file, "--max-seeds", "60", "--profile"])
    out = capsys.readouterr().out
    assert code == 0
    assert "profile:" in out
    for phase in ("record", "symexec", "encode", "solve", "replay"):
        assert phase in out
    assert "cache" in out
    assert "off" in out  # no cache attached on plain reproduce
    assert "pruned" in out and "hb closure" in out


def test_reproduce_json_output(race_file, capsys):
    code = main(["reproduce", race_file, "--max-seeds", "60", "--json"])
    out = capsys.readouterr().out
    assert code == 0
    payload = json.loads(out)
    assert payload["reproduced"] is True
    assert payload["program"].endswith("race.ml")
    profile = payload["profile"]
    assert profile["cache"] == "off"
    for phase in ("record", "symexec", "encode", "solve", "replay"):
        assert profile[phase] >= 0.0
    assert payload["n_pruned_choice_vars"] > 0
    assert payload["n_pruned_clauses"] > 0
    assert payload["schedule"]  # "thread#index" strings
    assert all("#" in step for step in payload["schedule"])


def test_batch_cli_cache_and_verify(corpus_dir, tmp_path, capsys):
    import os
    import pickle

    sink1 = str(tmp_path / "r1.jsonl")
    assert main(["batch", corpus_dir, "--out", sink1, "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "cache: hits=0 misses=1" in out

    sink2 = str(tmp_path / "r2.jsonl")
    assert main(["batch", corpus_dir, "--out", sink2, "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "cache: hits=1 misses=0" in out

    # --no-cache bypasses it entirely.
    assert main(["batch", corpus_dir, "--no-cache", "--quiet"]) == 0
    assert "cache:" not in capsys.readouterr().out

    # corpus verify checks cache entries and removes stale ones.
    cache_root = os.path.join(corpus_dir, "cache")
    entries = []
    for dirpath, _dirs, files in os.walk(cache_root):
        entries += [os.path.join(dirpath, f) for f in files if f.endswith(".pkl")]
    assert entries
    with open(entries[0], "rb") as fh:
        payload = pickle.loads(fh.read())
    payload["schema"] = -1
    with open(entries[0], "wb") as fh:
        fh.write(pickle.dumps(payload))
    assert main(["corpus", "verify", corpus_dir]) == 0  # self-healing
    out = capsys.readouterr().out
    assert "STALE (removed)" in out
    assert "1 stale removed" in out
    assert not os.path.exists(entries[0])
