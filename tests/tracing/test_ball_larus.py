"""Ball-Larus numbering: uniqueness, density, decode, prefix decode."""

import pytest

from repro.minilang import compile_source
from repro.tracing.ball_larus import EXIT_NODE, BallLarus, ProgramPaths


def bl_for(body, name="f"):
    src = "int g; void f() { %s } int main() { f(); }" % body
    prog = compile_source(src, name="blt")
    return BallLarus(prog.function(name))


def enumerate_complete_paths(bl):
    """All ENTRY->EXIT DAG paths with their summed values (real edges)."""
    paths = []

    def walk(node, blocks, total):
        if node == EXIT_NODE:
            paths.append((tuple(blocks), total))
            return
        for edge in bl._succ.get(node, []):
            if edge.kind in ("pseudo-entry", "pseudo-exit"):
                continue
            walk(edge.dst, blocks + [edge.dst], total + bl.edge_val[edge])

    walk(0, [0], 0)
    return [(tuple(b for b in blocks if b != EXIT_NODE), v) for blocks, v in paths]


def test_straight_line_has_one_path():
    bl = bl_for("g = 1;")
    assert bl.num_paths == 1
    blocks, back = bl.decode(0)
    assert not back


def test_diamond_has_two_unique_ids():
    bl = bl_for("if (g > 0) { g = 1; } else { g = 2; }")
    assert bl.num_paths == 2
    paths = enumerate_complete_paths(bl)
    ids = sorted(v for _, v in paths)
    assert ids == [0, 1]


def test_sequential_branches_multiply():
    bl = bl_for(
        "if (g > 0) { g = 1; } else { g = 2; }"
        "if (g > 1) { g = 3; } else { g = 4; }"
    )
    assert bl.num_paths == 4
    ids = sorted(v for _, v in enumerate_complete_paths(bl))
    assert ids == [0, 1, 2, 3], "ids must be dense in [0, num_paths)"


def test_ids_decode_back_to_their_paths():
    bl = bl_for(
        "if (g > 0) { g = 1; } else { g = 2; }"
        "if (g > 1) { g = 3; } else { g = 4; }"
    )
    for blocks, value in enumerate_complete_paths(bl):
        decoded, back = bl.decode(value)
        assert not back
        assert tuple(decoded) == blocks


def test_loop_produces_back_edge_and_pseudo_edges():
    bl = bl_for("while (g < 3) { g = g + 1; }")
    assert len(bl.back_edges) == 1
    (u, v), = bl.back_edges
    assert (u, v) in bl.backedge_reset


def test_loop_segment_decode():
    bl = bl_for("while (g < 3) { g = g + 1; }")
    (u, v), = bl.back_edges
    emit_add, new_counter = bl.backedge_reset[(u, v)]
    # First segment: entry..back-edge source.
    blocks, ended = bl.decode(0 + emit_add)
    assert ended, "segment ending at a back edge must say so"
    assert blocks[-1] == u
    # Continuation segment starting at the loop header.
    blocks2, ended2 = bl.decode(new_counter + emit_add)
    assert blocks2[0] == v


def test_prefix_decode_stops_at_block():
    bl = bl_for(
        "if (g > 0) { g = 1; } else { g = 2; }"
        "if (g > 1) { g = 3; } else { g = 4; }"
    )
    for blocks, value in enumerate_complete_paths(bl):
        # Take every proper prefix and check it decodes uniquely.
        partial = 0
        for i in range(1, len(blocks)):
            prefix = blocks[:i]
            # Compute the prefix sum by walking real edges.
            total = 0
            for a, b in zip(prefix, prefix[1:]):
                total += bl.real_edge_val.get((a, b), 0)
            decoded, _ = bl.decode(total, stop_block=prefix[-1])
            assert tuple(decoded) == prefix


def test_program_paths_builds_all_functions():
    prog = compile_source(
        "int g; void a() {} void b() { if (g > 0) { g = 1; } } int main() {}"
    )
    paths = ProgramPaths.build(prog)
    assert set(paths.by_func) == {"a", "b", "main"}
    counts = paths.static_path_counts()
    assert counts["a"] == 1
    assert counts["b"] == 2


def test_instrumented_edges_reported():
    bl = bl_for("if (g > 0) { g = 1; } else { g = 2; }")
    # At least one real edge needs a non-zero increment for 2 paths.
    assert bl.instrumented_edges >= 1


def test_nested_loops():
    bl = bl_for(
        "for (int i = 0; i < 3; i++) { for (int j = 0; j < 2; j++) { g++; } }"
    )
    assert len(bl.back_edges) == 2
    # Each back edge has a reset entry.
    assert len(bl.backedge_reset) == 2
