"""The flight recorder: ring sink invariants, fast-path recorder
equivalence, and the streaming sink's exactly-once final flush.

Three layers:

* :class:`StreamingTraceSink` final-flush regression — every started
  thread gets exactly one ``final=True`` chunk at finalize, even when it
  never accumulated ``flush_every`` tokens (or none at all).
* :class:`FastPathRecorder` differential — token streams and
  instrumentation-op counts identical to :class:`PathRecorder` across
  programs and schedules.
* :class:`RingTraceSink` properties (hypothesis) — the surviving suffix
  decodes standalone, is byte-identical to the tail of the unbounded
  encoding, and never exceeds the byte budget by more than one segment.
"""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minilang import compile_source
from repro.runtime.interpreter import Interpreter
from repro.runtime.scheduler import RandomScheduler
from repro.tracing.decoder import decode_log, decode_thread_tokens
from repro.tracing.logfmt import decode_tokens, encode_tokens
from repro.tracing.recorder import (
    FastPathRecorder,
    PathRecorder,
    RingTraceSink,
    StreamingTraceSink,
)

LOOPY = """
int x = 0;
int y = 0;

void bump(int id) {
    int a = x;
    x = a + id;
}

void worker(int id) {
    for (int i = 0; i < 40; i++) {
        bump(id);
    }
    int b = y;
    y = b + id;
}

int main() {
    int t0 = 0;
    int t1 = 0;
    t0 = spawn worker(1);
    t1 = spawn worker(2);
    join(t0);
    join(t1);
    assert(y == 3);
    return 0;
}
"""

TINY = """
int g = 0;

int main() {
    g = 1;
    g = g + 1;
    return 0;
}
"""


def run_recorded(src, recorder_cls=PathRecorder, seed=0, sink=None,
                 stickiness=0.3, retain_logs=True, name="rt"):
    prog = compile_source(src, name=name)
    recorder = recorder_cls(
        prog, sink=sink, retain_logs=retain_logs
    )
    interp = Interpreter(
        prog,
        scheduler=RandomScheduler(seed, stickiness=stickiness),
        hooks=[recorder],
    )
    result = interp.run()
    recorder.finalize(interp)
    return prog, recorder, result


# -- streaming sink: exactly-once final flush ------------------------------


class ChunkLog:
    """Fake durable writer capturing every chunk."""

    def __init__(self):
        self.chunks = []
        self.closed = False

    def write_chunk(self, thread, tokens, final=False, flags=0):
        self.chunks.append((thread, list(tokens), final))

    def close(self, meta=None):
        self.closed = True

    def finals(self, thread):
        return [c for c in self.chunks if c[0] == thread and c[2]]

    def tokens(self, thread):
        out = []
        for name, tokens, _ in self.chunks:
            if name == thread:
                out.extend(tokens)
        return out


@pytest.mark.parametrize("flush_every", [1, 2, 16, 10_000])
def test_final_flush_exactly_once_per_thread(flush_every):
    """Regression: threads that never reached ``flush_every`` buffered
    tokens used to get no final chunk at all, making a cleanly finished
    trace look crashed.  Every started thread must get exactly one
    ``final=True`` flush, and the chunks must concatenate to the full
    log."""
    log = ChunkLog()
    sink = StreamingTraceSink(log, flush_every=flush_every)
    _, recorder, _ = run_recorded(LOOPY, sink=sink)
    assert recorder.logs  # sanity: something was recorded
    for thread, tokens in recorder.logs.items():
        assert len(log.finals(thread)) == 1, (
            "thread %s: expected exactly one final flush" % thread
        )
        assert log.tokens(thread) == tokens
        # The final chunk is the last one for the thread.
        last = [c for c in log.chunks if c[0] == thread][-1]
        assert last[2] is True


def test_final_flush_with_zero_pending_tokens():
    """A thread fully drained before finalize still gets its (empty)
    final chunk — the marker is what proves the log complete."""
    log = ChunkLog()
    sink = StreamingTraceSink(log, flush_every=1)  # drain every token
    _, recorder, _ = run_recorded(TINY, sink=sink)
    (thread,) = recorder.logs
    finals = log.finals(thread)
    assert len(finals) == 1
    assert finals[0][1] == []  # nothing pending, marker only
    assert log.tokens(thread) == recorder.logs[thread]


def test_single_token_thread_gets_final_flush():
    """Boundary: a log shorter than any flush threshold still lands on
    disk via the final flush (the original bug dropped it entirely)."""
    log = ChunkLog()
    sink = StreamingTraceSink(log, flush_every=1_000_000)
    _, recorder, _ = run_recorded(TINY, sink=sink)
    (thread,) = recorder.logs
    assert log.tokens(thread) == recorder.logs[thread]
    assert len(log.finals(thread)) == 1


# -- fast-path recorder: differential against the reference ----------------


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("src", [LOOPY, TINY], ids=["loopy", "tiny"])
def test_fast_recorder_matches_reference(src, seed):
    _, classic, r1 = run_recorded(src, PathRecorder, seed=seed)
    _, fast, r2 = run_recorded(src, FastPathRecorder, seed=seed)
    assert classic.logs == fast.logs
    assert classic.instrumentation_ops == fast.instrumentation_ops
    assert classic.encoded_logs() == fast.encoded_logs()
    assert (r1.bug is None) == (r2.bug is None)


@pytest.mark.parametrize("seed", range(3))
def test_fast_recorder_matches_reference_through_sink(seed):
    log_c, log_f = ChunkLog(), ChunkLog()
    run_recorded(LOOPY, PathRecorder, seed=seed,
                 sink=StreamingTraceSink(log_c, flush_every=3))
    run_recorded(LOOPY, FastPathRecorder, seed=seed,
                 sink=StreamingTraceSink(log_f, flush_every=3))
    assert log_c.chunks == log_f.chunks


def test_fast_recorder_decodes_like_reference():
    _, classic, _ = run_recorded(LOOPY, PathRecorder, seed=2)
    _, fast, _ = run_recorded(LOOPY, FastPathRecorder, seed=2)

    def shape(recorder):
        out = {}
        for thread, dp in decode_log(recorder).items():
            rows = []

            def walk(node, depth):
                rows.append((depth, node.func, tuple(node.blocks)))
                for child in node.calls:
                    walk(child, depth + 1)

            walk(dp.root, 0)
            out[thread] = rows
        return out

    assert shape(classic) == shape(fast)


# -- ring sink: real-program suffix identity -------------------------------


def ring_run(src, ring_bytes, segment_bytes, seed=0):
    sink = RingTraceSink(ring_bytes, segment_bytes=segment_bytes)
    prog, recorder, result = run_recorded(
        src, FastPathRecorder, seed=seed, sink=sink, retain_logs=False
    )
    _, full, _ = run_recorded(src, PathRecorder, seed=seed)
    return prog, sink, full, result


def test_ring_full_budget_keeps_everything():
    _, sink, full, _ = ring_run(LOOPY, 1 << 20, 64)
    for thread, tokens in full.logs.items():
        assert sink.suffix_tokens(thread) == tokens
        assert not sink.lossy(thread)
        assert sink.suffix_anchor(thread).tokens_before == 0


def test_ring_small_budget_suffix_is_byte_identical_tail():
    _, sink, full, _ = ring_run(LOOPY, 128, 32)
    assert sink.lossy()
    for thread, tokens in full.logs.items():
        unbounded = encode_tokens(tokens)
        suffix = sink.suffix_bytes(thread)
        anchor = sink.suffix_anchor(thread)
        assert unbounded.endswith(suffix)
        assert unbounded[anchor.bytes_before :] == suffix
        assert decode_tokens(suffix) == sink.suffix_tokens(thread)
        info = sink.thread_info(thread)
        assert info["retained_bytes"] <= 128 + 32


def test_ring_anchored_decode_matches_truth_tail():
    prog, sink, full, _ = ring_run(LOOPY, 160, 32, seed=1)
    assert sink.lossy()
    truth = decode_log(full)
    func_names = full.func_names
    for thread in sink.threads():
        anchor = sink.suffix_anchor(thread)
        if not anchor.frames:
            continue
        decoded = decode_thread_tokens(
            thread,
            sink.suffix_tokens(thread),
            full.paths,
            func_names,
            anchor=anchor,
        )
        # The anchored root names the same function as ground truth and
        # its decoded blocks are a tail of the true block sequence.
        true_root = truth[thread].root
        assert decoded.root.func == true_root.func
        n = len(decoded.root.blocks)
        assert n > 0
        assert tuple(true_root.blocks[-n:]) == tuple(decoded.root.blocks)


# -- ring sink: synthetic-stream properties (hypothesis) -------------------


def token_streams():
    token = st.one_of(
        st.tuples(st.just("enter"), st.integers(0, 40)),
        st.tuples(st.just("path"), st.integers(0, 1 << 12)),
        st.tuples(st.just("exit")),
        st.tuples(
            st.just("partial"),
            st.integers(0, 1 << 12),
            st.integers(0, 63),
            st.integers(0, 63),
            st.integers(0, 2),
        ),
        st.tuples(
            st.just("resume"),
            st.integers(0, 40),
            st.integers(0, 63),
            st.integers(0, 63),
        ),
    )
    burst = st.tuples(st.integers(0, 1 << 10), st.integers(2, 30)).map(
        lambda t: [("path", t[0])] * t[1]
    )
    return st.lists(
        st.one_of(token.map(lambda t: [t]), burst), min_size=1, max_size=60
    ).map(lambda chunks: [t for chunk in chunks for t in chunk])


@settings(max_examples=120, deadline=None)
@given(
    tokens=token_streams(),
    ring_bytes=st.integers(16, 256),
    segment_bytes=st.integers(8, 64),
    splits=st.lists(st.integers(1, 12), max_size=20),
)
def test_ring_eviction_invariants(tokens, ring_bytes, segment_bytes, splits):
    """For ANY token stream and ANY flush batching:

    1. the suffix re-encodes byte-identically to the tail of the
       unbounded encoding (eviction only ever drops whole leading
       segments);
    2. the suffix decodes standalone and equals the tail of the original
       token list;
    3. retained bytes never exceed budget + one segment's worth of
       slack (the open segment cannot be evicted);
    4. the anchor's cumulative counters match what was dropped.
    """
    sink = RingTraceSink(ring_bytes, segment_bytes=segment_bytes)
    pos = 0
    split_iter = iter(splits)
    while pos < len(tokens):
        step = next(split_iter, None) or len(tokens)
        sink.flush("t", tokens[pos : pos + step])
        pos += step
    sink.flush("t", [], final=True)

    unbounded = encode_tokens(tokens)
    suffix = sink.suffix_bytes("t")
    anchor = sink.suffix_anchor("t")

    assert unbounded.endswith(suffix)
    assert unbounded[anchor.bytes_before :] == suffix

    suffix_tokens = sink.suffix_tokens("t")
    assert suffix_tokens == tokens[anchor.tokens_before :]
    assert anchor.tokens_before + len(suffix_tokens) == len(tokens)

    info = sink.thread_info("t")
    # Budget: sealed segments fit the budget; the open segment may add
    # at most segment_bytes + one oversized record of slack.
    max_record = max(
        (len(encode_tokens([t])) for t in tokens), default=0
    )
    assert info["retained_bytes"] <= ring_bytes + max(
        segment_bytes, max_record
    )
    assert info["evicted_tokens"] == anchor.tokens_before
    assert info["evicted_bytes"] == anchor.bytes_before
    assert info["retained_bytes"] == len(suffix)
    assert info["total_bytes"] == len(unbounded)
    assert info["total_tokens"] == len(tokens)
