"""LEAP baseline recorder: access vectors, costs, and the Heisenberg effect."""

from repro.minilang import compile_source
from repro.runtime.interpreter import Interpreter, run_program
from repro.runtime.scheduler import RandomScheduler, find_buggy_seed
from repro.tracing.leap import LeapRecorder
from repro.tracing.recorder import PathRecorder

from tests.conftest import MP_SRC, RACE_SRC


def run_with_leap(src, seed=0, memory_model="sc", **sched):
    prog = compile_source(src)
    recorder = LeapRecorder(prog)
    interp = Interpreter(
        prog,
        memory_model=memory_model,
        scheduler=RandomScheduler(seed, **sched),
        hooks=[recorder],
    )
    result = interp.run()
    return prog, recorder, result


def test_access_vectors_record_thread_order():
    prog, recorder, result = run_with_leap(RACE_SRC, seed=1, stickiness=0.3)
    assert "c" in recorder.vectors
    accesses = recorder.vectors["c"]
    # 2 workers x 2 iterations x (read + write) + main's assert read.
    assert len(accesses) == 9
    assert set(accesses) <= {1, 2, 3}


def test_leap_cost_scales_with_shared_accesses():
    _, recorder, _ = run_with_leap(RACE_SRC, seed=1, stickiness=0.3)
    assert recorder.instrumentation_ops == 3 * recorder.total_accesses()


def test_leap_log_is_larger_than_clap_log_for_shared_heavy_code():
    src = """
    int x = 0;
    int y = 0;
    void w() {
        for (int i = 0; i < 50; i++) {
            x = x + 1;
            y = y + x;
            x = x + y;
        }
    }
    int main() {
        int t1 = 0; int t2 = 0;
        t1 = spawn w(); t2 = spawn w();
        join(t1); join(t2);
        return 0;
    }
    """
    prog = compile_source(src)
    leap = LeapRecorder(prog)
    clap = PathRecorder(prog)
    interp = Interpreter(
        prog, scheduler=RandomScheduler(0, stickiness=0.5), hooks=[leap, clap]
    )
    interp.run()
    clap.finalize(interp)
    assert leap.log_size_bytes() > clap.log_size_bytes()


def test_heisenberg_effect_leap_masks_pso_bug():
    """With LEAP attached (fencing), the PSO message-passing bug cannot
    manifest; without it, it can.  This is the paper's core motivation for
    synchronization-free logging."""
    prog = compile_source(MP_SRC)

    def search(hooks_factory):
        for seed in range(400):
            hooks = hooks_factory()
            interp = Interpreter(
                prog,
                memory_model="pso",
                scheduler=RandomScheduler(seed, stickiness=0.5, flush_prob=0.05),
                hooks=hooks,
            )
            result = interp.run()
            if result.bug is not None:
                return seed
        return None

    assert search(lambda: []) is not None, "PSO bug should manifest natively"
    assert search(lambda: [LeapRecorder(prog)]) is None, (
        "LEAP's locks are fences; the PSO bug must vanish while recording"
    )
    # CLAP's recorder adds no synchronization: the bug still manifests.
    assert search(lambda: [PathRecorder(prog)]) is not None
