"""Record -> decode round trips against ground-truth block traces."""

import pytest

from repro.minilang import compile_source
from repro.runtime.interpreter import Interpreter
from repro.runtime.scheduler import RandomScheduler
from repro.tracing.decoder import decode_log
from repro.tracing.recorder import PathRecorder


class BlockTracker:
    """Ground-truth per-frame block sequences, via the same hooks."""

    def __init__(self):
        self.frames = {}
        self.traces = {}

    def on_thread_start(self, thread):
        self.frames[thread.name] = []
        self.traces[thread.name] = []

    def on_enter(self, thread, func):
        rec = (func, [0])
        self.frames[thread.name].append(rec)
        self.traces[thread.name].append(rec)

    def on_edge(self, thread, func, src, dst):
        self.frames[thread.name][-1][1].append(dst)

    def on_exit(self, thread, func, block):
        self.frames[thread.name].pop()


def record_and_decode(src, seed=0, stickiness=0.4, memory_model="sc"):
    prog = compile_source(src, name="rt")
    recorder = PathRecorder(prog)
    tracker = BlockTracker()
    interp = Interpreter(
        prog,
        memory_model=memory_model,
        scheduler=RandomScheduler(seed, stickiness=stickiness),
        hooks=[recorder, tracker],
    )
    result = interp.run()
    recorder.finalize(interp)
    return prog, recorder, tracker, result


def flatten(frame_trace, out):
    out.append((frame_trace.func, tuple(frame_trace.blocks)))
    for child in frame_trace.calls:
        flatten(child, out)


def assert_decode_matches(recorder, tracker):
    decoded = decode_log(recorder)
    for thread, dp in decoded.items():
        got = []
        flatten(dp.root, got)
        want = [(func, tuple(blocks)) for func, blocks in tracker.traces[thread]]
        assert got == want, thread


COMPLEX_SRC = """
int c = 0;
int helper(int v) {
    int s = 0;
    for (int i = 0; i < v; i++) { s = s + i; }
    return s;
}
void worker(int n) {
    int k = 0;
    while (k < n) {
        int r = c;
        if (r % 2 == 0) { c = r + 1; } else { c = r + 2; }
        k++;
    }
    int h = helper(3);
}
int main() {
    int t1 = 0; int t2 = 0;
    t1 = spawn worker(3);
    t2 = spawn worker(2);
    join(t1); join(t2);
    assert(c < 100);
    return 0;
}
"""


@pytest.mark.parametrize("seed", [0, 3, 7, 11, 19])
def test_complete_run_decodes_exactly(seed):
    _, recorder, tracker, result = record_and_decode(COMPLEX_SRC, seed=seed)
    assert result.bug is None
    assert_decode_matches(recorder, tracker)


@pytest.mark.parametrize("seed", [0, 5, 9])
def test_crashed_run_decodes_partial_frames(seed):
    src = COMPLEX_SRC.replace("assert(c < 100)", "assert(c > 100)")
    _, recorder, tracker, result = record_and_decode(src, seed=seed)
    assert result.bug is not None
    assert_decode_matches(recorder, tracker)


def test_decoded_paths_mark_completeness():
    _, recorder, tracker, result = record_and_decode(COMPLEX_SRC, seed=1)
    decoded = decode_log(recorder)
    for dp in decoded.values():
        assert dp.root.complete


def test_crash_leaves_root_incomplete_for_stopped_threads():
    src = COMPLEX_SRC.replace("assert(c < 100)", "assert(c > 100)")
    _, recorder, tracker, result = record_and_decode(src, seed=1)
    decoded = decode_log(recorder)
    # The failing (main) thread stopped mid-main.
    assert not decoded["1"].root.complete
    assert decoded["1"].root.stop_ip is not None


def test_log_sizes_are_small():
    _, recorder, _, _ = record_and_decode(COMPLEX_SRC, seed=2)
    total = recorder.log_size_bytes()
    assert 0 < total < 500, "path logs should be tens of bytes, got %d" % total


def test_recorder_counts_instrumentation_ops():
    _, recorder, _, _ = record_and_decode(COMPLEX_SRC, seed=2)
    assert recorder.instrumentation_ops > 0


def test_tso_recording_is_identical_to_sc_for_same_interleaving():
    # The recorder only sees control flow; the memory model must not
    # change what is logged for a fixed scheduler decision sequence.
    src = """
    int x = 0;
    int main() { x = 1; x = 2; assert(x == 2); return 0; }
    """
    _, rec_sc, _, _ = record_and_decode(src, seed=0, memory_model="sc")
    _, rec_tso, _, _ = record_and_decode(src, seed=0, memory_model="tso")
    assert rec_sc.logs == rec_tso.logs
