import pytest

from repro.tracing.logfmt import (
    decode_tokens,
    encode_tokens,
    read_varint,
    write_varint,
)


def roundtrip_varint(value):
    out = bytearray()
    write_varint(out, value)
    decoded, pos = read_varint(bytes(out), 0)
    assert pos == len(out)
    return decoded


def test_varint_small_values_one_byte():
    out = bytearray()
    write_varint(out, 127)
    assert len(out) == 1


def test_varint_roundtrip_boundaries():
    for value in (0, 1, 127, 128, 255, 16383, 16384, 2**31, 2**64):
        assert roundtrip_varint(value) == value


def test_varint_rejects_negative():
    with pytest.raises(ValueError):
        write_varint(bytearray(), -1)


def test_token_roundtrip():
    tokens = [
        ("enter", 3),
        ("path", 0),
        ("path", 12345),
        ("exit",),
        ("enter", 0),
        ("partial", 7, 4, 2, 1),
    ]
    assert decode_tokens(encode_tokens(tokens)) == tokens


def test_empty_stream():
    assert decode_tokens(encode_tokens([])) == []


def test_encoding_is_compact():
    tokens = [("enter", 1), ("path", 5), ("exit",)]
    data = encode_tokens(tokens)
    assert len(data) == 2 + 2 + 1
