"""Property tests for the logfmt encoding: random round-trips and the
guarantee that a damaged stream raises :class:`TraceDecodeError` rather
than silently decoding garbage (the trace store's recovery scan depends
on it)."""

import random

import pytest

from repro.tracing.logfmt import (
    SEGMENT_MAGIC,
    SegmentAnchor,
    TAG_RESUME,
    TraceDecodeError,
    decode_segment,
    decode_segments,
    decode_tokens,
    encode_segment,
    encode_tokens,
    read_varint,
)


def random_token(rng):
    kind = rng.choice(("enter", "path", "exit", "partial", "resume"))
    if kind == "enter":
        return ("enter", rng.randrange(0, 1 << rng.choice((4, 14, 30))))
    if kind == "path":
        return ("path", rng.randrange(0, 1 << rng.choice((1, 7, 20))))
    if kind == "exit":
        return ("exit",)
    if kind == "partial":
        return (
            "partial",
            rng.randrange(0, 1 << 16),
            rng.randrange(0, 64),
            rng.randrange(0, 64),
            rng.randrange(0, 3),
        )
    return ("resume", rng.randrange(0, 32), rng.randrange(0, 64), rng.randrange(0, 64))


def random_stream(rng, length):
    tokens = []
    while len(tokens) < length:
        if rng.random() < 0.3:
            # Loop bursts: repeated path ids exercise the RLE encoder.
            pid = rng.randrange(0, 1 << 10)
            tokens.extend([("path", pid)] * rng.randrange(2, 20))
        else:
            tokens.append(random_token(rng))
    return tokens


@pytest.mark.parametrize("seed", range(25))
def test_fuzz_roundtrip(seed):
    rng = random.Random(seed)
    tokens = random_stream(rng, rng.randrange(1, 120))
    assert decode_tokens(encode_tokens(tokens)) == tokens


def test_rle_kicks_in_for_repeated_paths():
    tokens = [("enter", 1)] + [("path", 7)] * 100 + [("exit",)]
    data = encode_tokens(tokens)
    assert len(data) < 12
    assert decode_tokens(data) == tokens


@pytest.mark.parametrize("seed", range(10))
def test_every_truncation_is_error_or_clean_prefix(seed):
    """Cutting a valid encoding anywhere must either raise a structured
    TraceDecodeError (cut inside a record) or decode to an exact prefix
    of the original token list (cut at a record boundary) — never to
    bogus tokens."""
    rng = random.Random(1000 + seed)
    tokens = random_stream(rng, 40)
    data = encode_tokens(tokens)
    for cut in range(len(data)):
        try:
            decoded = decode_tokens(data[:cut])
        except TraceDecodeError as exc:
            assert exc.offset is not None
            assert 0 <= exc.offset <= cut
        else:
            assert decoded == tokens[: len(decoded)]


def test_truncation_mid_token_raises():
    data = encode_tokens([("partial", 300, 5, 2, 0)])
    for cut in range(1, len(data)):
        with pytest.raises(TraceDecodeError):
            decode_tokens(data[:cut])


def test_unknown_tag_raises_with_offset():
    data = encode_tokens([("enter", 0), ("path", 3)])
    for bad_tag in range(TAG_RESUME + 1, 256):
        with pytest.raises(TraceDecodeError) as err:
            decode_tokens(data + bytes([bad_tag]))
        assert err.value.offset == len(data)


def test_read_varint_truncated_raises_with_offset():
    with pytest.raises(TraceDecodeError) as err:
        read_varint(b"", 0)
    assert err.value.offset == 0
    with pytest.raises(TraceDecodeError) as err:
        read_varint(bytes([0x80, 0x80]), 0)
    assert err.value.offset == 2


def test_repeat_truncated_mid_varint_raises_with_offset():
    """A TAG_REPEAT cut inside either of its two varints (path id, count)
    must raise — with the offset inside the damaged record, never past
    the cut — instead of decoding a short run."""
    prefix = encode_tokens([("enter", 3)])
    repeat = encode_tokens([("path", 300)] * 500)  # multi-byte id and count
    assert len(repeat) > 3
    data = prefix + repeat
    for cut in range(len(prefix) + 1, len(data)):
        with pytest.raises(TraceDecodeError) as err:
            decode_tokens(data[:cut])
        assert len(prefix) <= err.value.offset <= cut


def test_resume_truncated_mid_varint_raises_with_offset():
    prefix = encode_tokens([("exit",)])
    resume = encode_tokens([("resume", 200, 70, 1 << 20)])
    data = prefix + resume
    for cut in range(len(prefix) + 1, len(data)):
        with pytest.raises(TraceDecodeError) as err:
            decode_tokens(data[:cut])
        assert len(prefix) <= err.value.offset <= cut


def _sample_segment():
    anchor = SegmentAnchor(
        frames=((2, 9), (5, 0)),
        tokens_before=36,
        bytes_before=63,
        segments_before=1,
    )
    body = encode_tokens([("path", 300)] * 40 + [("exit",), ("resume", 7, 2, 3)])
    return anchor, body


def test_segment_roundtrip_and_json():
    anchor, body = _sample_segment()
    data = encode_segment(anchor, body)
    got_anchor, got_body, pos = decode_segment(data)
    assert (got_anchor, got_body, pos) == (anchor, body, len(data))
    assert SegmentAnchor.from_json(anchor.to_json()) == anchor


def test_segment_truncated_anywhere_raises_with_offset():
    """A framed segment cut at any byte must raise, pointing at the
    segment start (header damage) or the stream end (short body)."""
    anchor, body = _sample_segment()
    data = encode_segment(anchor, body)
    for cut in range(len(data)):
        with pytest.raises(TraceDecodeError) as err:
            decode_segment(data[:cut])
        assert err.value.offset in (0, cut)


def test_segment_boundary_truncation_in_stream():
    """Cutting a multi-segment stream mid-way decodes the whole leading
    segments and raises on the damaged one, never yielding a partial
    segment silently."""
    anchor, body = _sample_segment()
    seg = encode_segment(anchor, body)
    stream = seg + encode_segment(
        SegmentAnchor(frames=((2, 10),), tokens_before=78), body
    )
    # Clean boundary: the prefix decodes to exactly one segment.
    assert len(decode_segments(stream[: len(seg)])) == 1
    for cut in range(len(seg) + 1, len(stream)):
        with pytest.raises(TraceDecodeError) as err:
            decode_segments(stream[:cut])
        assert err.value.offset in (len(seg), cut)


def test_segment_bad_magic_raises_at_offset():
    anchor, body = _sample_segment()
    data = bytearray(encode_segment(anchor, body))
    assert data[0] == SEGMENT_MAGIC
    data[0] ^= 0xFF
    with pytest.raises(TraceDecodeError) as err:
        decode_segment(bytes(data))
    assert err.value.offset == 0
