import pytest

from repro.minilang import ast_nodes as ast
from repro.minilang.errors import ParseError
from repro.minilang.parser import parse_program


def parse_main(body):
    src = "int main() { %s }" % body
    return parse_program(src).function("main").body.stmts


def first_stmt(body):
    return parse_main(body)[0]


def test_program_structure():
    prog = parse_program(
        """
        int g = 3;
        mutex m;
        cond cv;
        void f(int a) { }
        int main() { return 0; }
        """
    )
    assert [g.name for g in prog.globals] == ["g", "m", "cv"]
    assert [f.name for f in prog.functions] == ["f", "main"]
    assert prog.global_decl("g").init.value == 3
    assert prog.function("f").params[0].name == "a"


def test_shared_and_local_annotations():
    prog = parse_program("shared int x; local int y; int main() {}")
    assert prog.global_decl("x").sharing == "shared"
    assert prog.global_decl("y").sharing == "local"


def test_array_declaration():
    prog = parse_program("int a[10]; int main() {}")
    decl = prog.global_decl("a")
    assert decl.is_array and decl.size == 10


def test_precedence_climbs_correctly():
    stmt = first_stmt("int x = 1 + 2 * 3;")
    expr = stmt.init
    assert isinstance(expr, ast.Binary) and expr.op == "+"
    assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"


def test_comparison_binds_tighter_than_and():
    stmt = first_stmt("bool b = 1 < 2 && 3 == 3;")
    expr = stmt.init
    assert expr.op == "&&"
    assert expr.left.op == "<"
    assert expr.right.op == "=="


def test_unary_operators_nest():
    stmt = first_stmt("int x = - - 5;")
    assert isinstance(stmt.init, ast.Unary)
    assert isinstance(stmt.init.operand, ast.Unary)


def test_compound_assignment_desugars():
    stmt = first_stmt("x += 2;")
    assert isinstance(stmt, ast.Assign)
    assert isinstance(stmt.value, ast.Binary) and stmt.value.op == "+"


def test_increment_desugars():
    stmt = first_stmt("x++;")
    assert isinstance(stmt, ast.Assign)
    assert stmt.value.op == "+"
    assert stmt.value.right.value == 1


def test_for_desugars_to_while():
    block = first_stmt("for (int i = 0; i < 3; i++) { x = i; }")
    assert isinstance(block, ast.Block)
    decl, loop = block.stmts
    assert isinstance(decl, ast.LocalDecl)
    assert isinstance(loop, ast.While)
    # Update lands at the end of the loop body.
    assert isinstance(loop.body.stmts[-1], ast.Assign)


def test_if_else_and_single_statement_bodies():
    stmt = first_stmt("if (x > 0) y = 1; else y = 2;")
    assert isinstance(stmt, ast.If)
    assert isinstance(stmt.then, ast.Block)
    assert isinstance(stmt.els, ast.Block)


def test_spawn_and_join():
    stmts = parse_main("t = spawn f(1, 2); join(t);")
    spawn, join = stmts
    assert isinstance(spawn, ast.Spawn)
    assert spawn.target == "t" and spawn.func == "f" and len(spawn.args) == 2
    assert isinstance(join, ast.Join)


def test_sync_statements():
    stmts = parse_main("lock(m); unlock(m); wait(cv, m); signal(cv); broadcast(cv);")
    assert [type(s).__name__ for s in stmts] == [
        "LockStmt",
        "UnlockStmt",
        "WaitStmt",
        "SignalStmt",
        "BroadcastStmt",
    ]
    assert stmts[2].cond == "cv" and stmts[2].mutex == "m"


def test_assert_records_location_message():
    stmt = first_stmt("assert(x == 1);")
    assert isinstance(stmt, ast.AssertStmt)
    assert "assert at" in stmt.message


def test_array_index_expression():
    stmt = first_stmt("x = a[i + 1];")
    assert isinstance(stmt.value, ast.Index)
    assert stmt.value.name == "a"


def test_call_expression():
    stmt = first_stmt("x = f(1) + g();")
    assert isinstance(stmt.value.left, ast.Call)
    assert isinstance(stmt.value.right, ast.Call)


def test_assignment_to_non_lvalue_rejected():
    with pytest.raises(ParseError):
        parse_main("1 + 2 = 3;")


def test_missing_semicolon_reports_position():
    with pytest.raises(ParseError):
        parse_main("x = 1")


def test_unterminated_block_rejected():
    with pytest.raises(ParseError):
        parse_program("int main() { x = 1;")


def test_spawn_cannot_initialize_declaration():
    with pytest.raises(ParseError):
        parse_main("int t = spawn f();")
