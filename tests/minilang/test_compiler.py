import pytest

from repro.minilang import bytecode as bc
from repro.minilang import compile_source
from repro.minilang.errors import CompileError


def compile_main(body, globals_=""):
    return compile_source("%s\nint main() { %s }" % (globals_, body)).main


def all_instrs(func):
    return [i for b in func.blocks for i in b.instrs]


def test_every_block_has_a_terminator():
    prog = compile_source(
        """
        int x;
        void f() { if (x > 0) { return; } else { return; } }
        int main() { while (x < 3) { x = x + 1; } return 0; }
        """
    )
    for func in prog.functions.values():
        for block in func.blocks:
            assert block.instrs, "%s has empty block %d" % (func.name, block.id)
            assert block.terminator.op in bc.TERMINATORS


def test_globals_vs_locals_resolve_to_distinct_opcodes():
    func = compile_main("int a = 1; g = a;", globals_="int g;")
    ops = [i.op for i in all_instrs(func)]
    assert bc.STORE_LOCAL in ops
    assert bc.STORE_GLOBAL in ops


def test_array_compiles_to_elem_ops():
    func = compile_main("a[2] = a[1] + 1;", globals_="int a[4];")
    ops = [i.op for i in all_instrs(func)]
    assert bc.LOAD_ELEM in ops and bc.STORE_ELEM in ops


def test_while_produces_back_edge():
    func = compile_main("int i = 0; while (i < 3) { i++; }")
    edges = func.edges()
    assert any(src > dst for src, dst in edges), "no back edge in %r" % edges


def test_void_function_gets_implicit_return():
    prog = compile_source("void f() { } int main() { f(); }")
    instrs = all_instrs(prog.function("f"))
    assert instrs[-1].op == bc.RET
    assert instrs[-2].op == bc.CONST


def test_call_arity_checked():
    with pytest.raises(CompileError):
        compile_source("void f(int a) {} int main() { f(); }")


def test_spawn_arity_checked():
    with pytest.raises(CompileError):
        compile_source("void f(int a) {} int main() { int t = 0; t = spawn f(); }")


def test_undefined_variable_rejected():
    with pytest.raises(CompileError):
        compile_main("x = 1;")


def test_local_shadowing_global_rejected():
    with pytest.raises(CompileError):
        compile_main("int g = 1;", globals_="int g;")


def test_local_redeclaration_reinitializes():
    # Two for-loops may both declare 'int i'.
    func = compile_main(
        "for (int i = 0; i < 2; i++) { } for (int i = 0; i < 2; i++) { }"
    )
    assert func.locals.count("i") == 1


def test_scalar_used_as_array_rejected():
    with pytest.raises(CompileError):
        compile_main("g[0] = 1;", globals_="int g;")


def test_array_used_as_scalar_rejected():
    with pytest.raises(CompileError):
        compile_main("a = 1;", globals_="int a[3];")


def test_lock_on_non_mutex_rejected():
    with pytest.raises(CompileError):
        compile_main("lock(g);", globals_="int g;")


def test_wait_checks_both_objects():
    with pytest.raises(CompileError):
        compile_main("wait(cv, cv);", globals_="cond cv;")


def test_missing_main_rejected():
    with pytest.raises(CompileError):
        compile_source("void f() {}")


def test_duplicate_global_rejected():
    with pytest.raises(CompileError):
        compile_source("int x; int x; int main() {}")


def test_constant_global_initializers_fold():
    prog = compile_source("int x = 2 * 3 + 1; int main() {}")
    assert prog.symbols.globals["x"].init == 7


def test_non_constant_global_initializer_rejected():
    with pytest.raises(CompileError):
        compile_source("int x; int y = x + 1; int main() {}")


def test_branch_targets_are_valid_blocks():
    func = compile_main(
        "int i = 0; if (i < 1) { i = 2; } else { i = 3; } while (i > 0) { i--; }"
    )
    n = len(func.blocks)
    for src, dst in func.edges():
        assert 0 <= dst < n


def test_instruction_count_is_positive():
    prog = compile_source("int main() { return 0; }")
    assert prog.instruction_count() >= 2
