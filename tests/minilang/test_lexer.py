import pytest

from repro.minilang.errors import LexError
from repro.minilang.lexer import tokenize
from repro.minilang.tokens import EOF, IDENT, INT


def kinds(source):
    return [t.kind for t in tokenize(source)]


def test_empty_source_yields_eof():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].kind == EOF


def test_integers_and_identifiers():
    toks = tokenize("abc 123 x1 _y")
    assert [(t.kind, t.value) for t in toks[:-1]] == [
        (IDENT, "abc"),
        (INT, 123),
        (IDENT, "x1"),
        (IDENT, "_y"),
    ]


def test_keywords_are_distinct_kinds():
    toks = tokenize("int while spawn assert")
    assert [t.kind for t in toks[:-1]] == ["int", "while", "spawn", "assert"]


def test_maximal_munch_operators():
    toks = tokenize("a<=b==c&&d||e!=f")
    ops = [t.kind for t in toks[:-1] if t.kind not in (IDENT,)]
    assert ops == ["<=", "==", "&&", "||", "!="]


def test_increment_and_compound_assign():
    assert kinds("x++; y += 2;")[:6] == [IDENT, "++", ";", IDENT, "+=", INT]


def test_line_comments_skipped():
    toks = tokenize("a // comment with * everything\nb")
    assert [t.value for t in toks[:-1]] == ["a", "b"]


def test_block_comments_skipped_and_positions_kept():
    toks = tokenize("a /* multi\nline */ b")
    assert [t.value for t in toks[:-1]] == ["a", "b"]
    assert toks[1].line == 2


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("a /* never ends")


def test_unexpected_character_raises_with_position():
    with pytest.raises(LexError) as exc:
        tokenize("x = $;")
    assert "line" not in str(exc.value)  # formatted as name:line:col
    assert ":1:5" in str(exc.value)


def test_positions_track_lines_and_columns():
    toks = tokenize("a\n  bb\n    c")
    positions = [(t.line, t.column) for t in toks[:-1]]
    assert positions == [(1, 1), (2, 3), (3, 5)]


def test_negative_numbers_are_minus_then_literal():
    toks = tokenize("-5")
    assert toks[0].kind == "-"
    assert toks[1].kind == INT and toks[1].value == 5
