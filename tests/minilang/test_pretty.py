"""Pretty-printer round trips: parse(pretty(parse(src))) == parse(src)."""

import pytest

from repro.minilang import ast_nodes as ast
from repro.minilang.parser import parse_program
from repro.minilang.pretty import pretty_expr, pretty_program

from tests.conftest import CONDVAR_SRC, LOCKED_SRC, MP_SRC, RACE_SRC, SB_SRC


def strip_positions(node):
    """Structural fingerprint of an AST node, ignoring line/column."""
    if isinstance(node, ast.Node):
        fields = {}
        for name, value in vars(node).items():
            # 'message' embeds the assert's source line: position-derived.
            if name in ("line", "column", "message"):
                continue
            fields[name] = strip_positions(value)
        return (type(node).__name__, tuple(sorted(fields.items())))
    if isinstance(node, list):
        return tuple(strip_positions(x) for x in node)
    return node


def roundtrip(src):
    first = parse_program(src)
    printed = pretty_program(first)
    second = parse_program(printed)
    assert strip_positions(first) == strip_positions(second), printed
    return printed


@pytest.mark.parametrize(
    "src", [RACE_SRC, LOCKED_SRC, CONDVAR_SRC, MP_SRC, SB_SRC]
)
def test_fixture_programs_roundtrip(src):
    roundtrip(src)


def test_benchmarks_roundtrip():
    from repro.bench.programs import all_benchmarks

    for name, bench in all_benchmarks().items():
        roundtrip(bench.source)


def test_precedence_parenthesization():
    src = """
    int main() {
        int a = (1 + 2) * 3;
        int b = 1 + 2 * 3;
        int c = -(1 + 2);
        bool d = (1 < 2) == (3 < 4);
        bool e = !(1 == 2) && true;
        int f = 1 - (2 - 3);
        return 0;
    }
    """
    printed = roundtrip(src)
    assert "(1 + 2) * 3" in printed
    assert "1 + 2 * 3" in printed
    assert "1 - (2 - 3)" in printed


def test_expr_printer_is_minimal():
    prog = parse_program("int main() { int x = 1 + 2 + 3; return x; }")
    decl = prog.function("main").body.stmts[0]
    assert pretty_expr(decl.init) == "1 + 2 + 3"


def test_annotations_preserved():
    printed = roundtrip("shared int x; local int y[4]; mutex m; cond c; int main() {}")
    assert "shared int x;" in printed
    assert "local int y[4];" in printed


def test_desugared_forms_print():
    # for / += / ++ come out of the parser desugared; they must still
    # round-trip through their lowered forms.
    src = "int main() { for (int i = 0; i < 4; i++) { i += 2; } return 0; }"
    roundtrip(src)
