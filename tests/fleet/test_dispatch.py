"""FleetDispatcher: per-shard caps, failure handling, loud fan-out."""

from repro.fleet import FleetDispatcher
from repro.fleet.cluster import STATUS_SOLVED
from repro.service.batch import format_batch_table

from tests.conftest import RACE_SRC
from tests.fleet.conftest import race_variant, record_config


def populate(fleet, programs=3):
    outcomes = [
        fleet.add(RACE_SRC, name="race", config=record_config())
    ]
    for n in range(5, 4 + programs):
        outcomes.append(
            fleet.add(
                race_variant(n), name="race%d" % n, config=record_config()
            )
        )
    return outcomes


def test_per_shard_limit_caps_each_round(fleet):
    populate(fleet, programs=3)
    dispatcher = FleetDispatcher(fleet, jobs=8, per_shard_limit=1)
    claimed_shards = []
    original_claim = dispatcher.queue.claim

    def spying_claim(limit, accept=None):
        claimed = original_claim(limit, accept=accept)
        claimed_shards.append([job["payload"]["shard"] for job in claimed])
        return claimed

    dispatcher.queue.claim = spying_claim
    results, aggregate = dispatcher.drain()
    assert aggregate["reproduced"] == len(results)
    for round_shards in claimed_shards:
        # No round ever claims two jobs of one shard.
        assert len(round_shards) == len(set(round_shards))


def test_drain_marks_solved_and_completes_queue(fleet):
    outcomes = populate(fleet, programs=2)
    dispatcher = FleetDispatcher(fleet, jobs=2)
    results, aggregate = dispatcher.drain()
    assert aggregate["jobs"] == len(outcomes)
    counts = fleet.queue().counts()
    assert counts["pending"] == counts["active"] == 0
    assert counts["done"] == len(outcomes)
    for outcome in outcomes:
        assert fleet.registry().get(outcome["cluster"])["status"] == (
            STATUS_SOLVED
        )
    # Aggregate carries the fleet-level rollups the bench gates on.
    assert "clusters" in aggregate and "shared_cache" in aggregate
    assert aggregate["shared_cache"]["entries"] >= 1


def test_fanout_failure_is_loud_not_silent(fleet):
    """A schedule that does not replay a member must surface as failed."""
    first = fleet.add(RACE_SRC, name="race", config=record_config())
    fleet.add(RACE_SRC, name="race", config=record_config())
    registry = fleet.registry()
    # Sabotage: mark the cluster solved with a nonsense schedule.
    registry.mark_solved(first["cluster"], [("no-such-thread", 0)], 0)
    dispatcher = FleetDispatcher(fleet, jobs=1)
    results = dispatcher.fanout()
    assert len(results) == 1
    assert not results[0].ok
    assert results[0].deduped
    record = registry.get(first["cluster"])
    member = next(
        m for m in record["members"]
        if m["entry_id"] == results[0].entry_id
    )
    assert member["validated"] is False


def test_batch_table_shows_shard_and_dedup_rollups(fleet):
    populate(fleet, programs=2)
    fleet.add(RACE_SRC, name="race", config=record_config())  # a duplicate
    dispatcher = FleetDispatcher(fleet, jobs=2)
    results, aggregate = dispatcher.drain()
    table = format_batch_table(results, aggregate)
    assert "dedup: 1 of 3 jobs" in table
    shard_lines = [l for l in table.splitlines() if l.startswith("shard ")]
    assert shard_lines, table
    assert any("deduped" in line and "cache hits=" in line
               for line in shard_lines)
    assert "evictions=" in table
