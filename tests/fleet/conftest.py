"""Shared fixtures for the fleet tests: a small populated fleet."""

import pytest

from repro.core.clap import ClapConfig
from repro.fleet import ShardedCorpus

from tests.conftest import RACE_SRC

# Always fails (a ends at 1, never 5), but main's control flow forks on
# a racy read of `a` first — so the same program, same failure site
# yields two distinct whole-path profiles depending on the interleaving.
# The near-miss pair for the "similar but never merged" tests.
NEARMISS_SRC = """
int a = 0;
int route = 0;
void bump() {
    a = a + 1;
}
int main() {
    int t = 0;
    t = spawn bump();
    int r = a;
    if (r == 0) {
        route = 1;
    } else {
        route = 2;
    }
    join(t);
    assert(a == 5);
    return 0;
}
"""


def race_variant(expected):
    """A distinct-program variant of RACE_SRC (different content hash)."""
    return RACE_SRC.replace("c == 4", "c == %d" % expected)


def record_config(**overrides):
    kwargs = dict(seeds=range(200))
    kwargs.update(overrides)
    return ClapConfig(**kwargs)


@pytest.fixture
def fleet(tmp_path):
    return ShardedCorpus.create(str(tmp_path / "fleet"), shards=4)
