"""Ingestion gateway: validation, TCP e2e, backpressure, graceful drain."""

import asyncio
import json
import threading

import pytest

from repro.core.clap import ClapConfig, ClapPipeline
from repro.fleet import (
    FleetDispatcher,
    IngestGateway,
    report_from_recorded,
    request,
    validate_report,
)
from repro.fleet.gateway import GatewayError
from repro.minilang import compile_source

from tests.conftest import RACE_SRC
from tests.fleet.conftest import race_variant, record_config


def make_report(source, name, config=None):
    config = config or record_config()
    program = compile_source(source, name=name)
    recorded = ClapPipeline(program, config).record()
    return report_from_recorded(source, name, config, recorded)


@pytest.fixture(scope="module")
def race_report():
    return make_report(RACE_SRC, "race")


# -- validation ------------------------------------------------------------


def test_validate_report_roundtrip(race_report):
    source, name, config, logs, bug, stats, seed = validate_report(
        race_report
    )
    assert source == RACE_SRC
    assert name == "race"
    assert config.memory_model == "sc"
    assert bug.kind == "assertion"
    assert seed == race_report["record"]["seed"]
    assert set(logs) == set(race_report["logs"])
    assert all(isinstance(t, tuple) for ts in logs.values() for t in ts)


@pytest.mark.parametrize(
    "mutate,message",
    [
        (lambda r: r.pop("program"), "no program source"),
        (lambda r: r.update(format=99), "unsupported report format"),
        (lambda r: r["program"].update(sha256="0" * 64), "claimed hash"),
        (lambda r: r.pop("bug"), "no failure"),
        (lambda r: r.update(logs={}), "no recorded token streams"),
        (lambda r: r["logs"].update(main="zz"), "undecodable"),
        (
            lambda r: r["logs"].update(
                main=bytes([255, 255, 255]).hex()
            ),
            "undecodable",
        ),
    ],
)
def test_validate_report_rejects_malformed(race_report, mutate, message):
    report = json.loads(json.dumps(race_report))  # deep copy
    mutate(report)
    with pytest.raises(GatewayError, match=message):
        validate_report(report)


def test_ingest_counts_invalid_without_storing(fleet, race_report):
    gateway = IngestGateway(fleet)
    report = json.loads(json.dumps(race_report))
    report.pop("bug")
    outcome = gateway.ingest(report)
    assert outcome["status"] == "invalid"
    assert gateway.counters["invalid"] == 1
    assert fleet.stats()["entries"] == 0


# -- offline ingest: dedup and backpressure --------------------------------


def test_ingest_dedups_and_reports_nearest(fleet, race_report):
    gateway = IngestGateway(fleet)
    first = gateway.ingest(race_report)
    assert first["status"] == "enqueued"
    second = gateway.ingest(race_report)
    assert second["status"] == "deduped"
    assert second["cluster"] == first["cluster"]
    # A different program ingests as a new cluster; the near-miss
    # diagnostic points at the existing similar cluster, yet no merge.
    cousin = gateway.ingest(make_report(race_variant(5), "race5"))
    assert cousin["status"] == "enqueued"
    assert cousin["cluster"] != first["cluster"]
    assert gateway.counters == {
        "ingested": 3, "enqueued": 2, "deduped": 1, "rejected": 0,
        "invalid": 0,
    }


def test_backpressure_rejects_novel_accepts_dedup(fleet, race_report):
    gateway = IngestGateway(fleet, max_queue_depth=1)
    assert gateway.ingest(race_report)["status"] == "enqueued"
    # Queue is at depth 1: novel work bounces...
    novel = gateway.ingest(make_report(race_variant(5), "race5"))
    assert novel["status"] == "rejected"
    assert "queue full" in novel["reason"]
    # ...but an equivalent report is free (no new solve) and lands.
    assert gateway.ingest(race_report)["status"] == "deduped"
    assert fleet.stats()["entries"] == 2  # the rejected one was not stored
    assert fleet.queue().depth() == 1


def test_accepted_reports_survive_restart(fleet, race_report):
    """Durability: an accepted report's solve job outlives the gateway."""
    IngestGateway(fleet).ingest(race_report)
    # A fresh gateway/queue over the same root still sees the job.
    from repro.fleet import ShardedCorpus

    reopened = ShardedCorpus.open(fleet.root)
    assert reopened.queue().depth() == 1
    results, aggregate = FleetDispatcher(reopened, jobs=1).drain()
    assert aggregate["reproduced"] == len(results) == 1


# -- the TCP server --------------------------------------------------------


class GatewayThread:
    """Runs gateway.serve() on its own event loop in a thread."""

    def __init__(self, gateway):
        self.gateway = gateway
        self.drained = None
        ready = threading.Event()
        self.thread = threading.Thread(
            target=self._run, args=(ready,), daemon=True
        )
        self.thread.start()
        assert ready.wait(10), "gateway did not start"
        self.address = gateway.address

    def _run(self, ready):
        self.drained = asyncio.run(self.gateway.serve(ready=ready))

    def shutdown(self):
        request(self.address, {"op": "shutdown"})
        self.thread.join(timeout=60)
        assert not self.thread.is_alive()
        return self.drained


def test_tcp_end_to_end_with_graceful_drain(fleet, race_report):
    dispatcher = FleetDispatcher(fleet, jobs=2)
    gateway = IngestGateway(fleet, dispatcher=dispatcher)
    server = GatewayThread(gateway)

    assert request(server.address, {"op": "ping"})["ok"]
    assert not request(server.address, {"op": "bogus"})["ok"]
    bad = request(server.address, {"op": "ingest", "report": {"x": 1}})
    assert bad["status"] == "invalid"

    outcomes = [
        request(server.address, {"op": "ingest", "report": race_report})
        for _ in range(3)
    ]
    assert [o["status"] for o in outcomes] == [
        "enqueued", "deduped", "deduped",
    ]
    stats = request(server.address, {"op": "stats"})["stats"]
    assert stats["entries"] == 3
    assert stats["clusters"]["solves_avoided"] == 2
    assert stats["gateway"]["ingested"] == 3

    # Shutdown closes the listener and drains the queue before returning:
    # one solve, two fan-outs, everything reproduced.
    results, aggregate = server.shutdown()
    assert len(results) == 3
    assert aggregate["reproduced"] == 3
    assert aggregate["deduped"] == 2
    assert aggregate["clusters"]["solved"] == 1
    assert all(
        m["validated"]
        for m in fleet.registry().get(outcomes[0]["cluster"])["members"]
    )
    # The listener is really gone.
    with pytest.raises(OSError):
        request(server.address, {"op": "ping"}, timeout=2.0)


def test_tcp_drain_op(fleet, race_report):
    dispatcher = FleetDispatcher(fleet, jobs=1)
    gateway = IngestGateway(fleet, dispatcher=dispatcher)
    server = GatewayThread(gateway)
    try:
        request(server.address, {"op": "ingest", "report": race_report})
        response = request(
            server.address, {"op": "drain"}, timeout=300.0
        )
        assert response["ok"]
        assert response["aggregate"]["reproduced"] == 1
        assert response["results"][0]["status"] == "reproduced"
    finally:
        server.shutdown()
