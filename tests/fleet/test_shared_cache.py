"""SharedAnalysisCache: LRU eviction under a byte budget, self-healing."""

import os

import pytest

from repro.store.cache import SharedAnalysisCache


def material(n):
    return {
        "program": "%064x" % n,
        "trace": "%064x" % (n * 31),
        "memory_model": "sc",
        "prune": {"hb": True, "static": True},
    }


def fill(cache, n, size=2000):
    """Store entry ``n`` with a payload of roughly ``size`` bytes."""
    return cache.store(material(n), ["summary"], "x" * size)


def test_budget_must_be_positive(tmp_path):
    with pytest.raises(ValueError):
        SharedAnalysisCache(str(tmp_path), max_bytes=0)


def test_unbounded_without_budget(tmp_path):
    cache = SharedAnalysisCache(str(tmp_path / "c"))
    for n in range(10):
        fill(cache, n)
    assert cache.usage()["entries"] == 10
    assert cache.stats.evictions == 0


def test_lru_eviction_respects_budget(tmp_path):
    cache = SharedAnalysisCache(str(tmp_path / "c"), max_bytes=7000)
    keys = [fill(cache, n) for n in range(3)]  # ~6KB, fits
    assert cache.usage()["entries"] == 3
    # Touch entry 0 so entry 1 becomes the LRU victim.
    assert cache.load(material(0)) is not None
    fill(cache, 3)  # ~8KB total: must evict down to budget
    assert cache.stats.evictions >= 1
    assert cache.usage()["bytes"] <= 7000
    # The recently-touched entry survived; the LRU one did not.
    assert cache.load(material(0)) is not None
    assert cache.load(material(1)) is None
    assert keys[0] != keys[1]


def test_newest_store_is_never_its_own_victim(tmp_path):
    cache = SharedAnalysisCache(str(tmp_path / "c"), max_bytes=1000)
    fill(cache, 1, size=5000)  # far over budget on its own
    assert cache.load(material(1)) is not None  # protected, not thrashed
    fill(cache, 2, size=5000)
    # The older over-budget entry goes; the one just stored stays.
    assert cache.load(material(1)) is None
    assert cache.load(material(2)) is not None


def test_index_is_advisory_and_self_healing(tmp_path):
    cache = SharedAnalysisCache(str(tmp_path / "c"), max_bytes=50_000)
    fill(cache, 1)
    fill(cache, 2)
    # Clobber the index: the entries on disk are still found and usable.
    with open(cache._index_path(), "w") as fh:
        fh.write("not json at all")
    assert cache.usage()["entries"] == 2
    assert cache.load(material(1)) is not None
    # And a row for a deleted file disappears on reconcile.
    os.remove(cache._path(cache.key_of(material(2))))
    assert cache.usage()["entries"] == 1


def test_eviction_counter_flows_into_as_dict(tmp_path):
    cache = SharedAnalysisCache(str(tmp_path / "c"), max_bytes=2500)
    fill(cache, 1)
    fill(cache, 2)
    assert cache.stats.evictions >= 1
    assert cache.stats.as_dict()["evictions"] == cache.stats.evictions


def test_shared_root_serves_multiple_handles(tmp_path):
    # Two handles on one directory (two worker processes in spirit).
    a = SharedAnalysisCache(str(tmp_path / "c"), max_bytes=50_000)
    b = SharedAnalysisCache(str(tmp_path / "c"), max_bytes=50_000)
    fill(a, 1)
    assert b.load(material(1)) is not None
    assert b.stats.hits == 1
    assert b.usage()["entries"] == 1
