"""ShardedCorpus: content-hash routing, manifests, dedup, rebalance."""

import json
import os

import pytest

from repro.fleet import FleetError, ShardedCorpus, report_from_entry
from repro.fleet.cluster import STATUS_PENDING
from repro.store.corpus import Corpus

from tests.conftest import RACE_SRC
from tests.fleet.conftest import race_variant, record_config


def test_create_open_roundtrip(tmp_path):
    root = str(tmp_path / "f")
    created = ShardedCorpus.create(root, shards=3, cache_max_bytes=12345)
    opened = ShardedCorpus.open(root)
    assert opened.n_shards == 3
    assert opened.config["cache_max_bytes"] == 12345
    with pytest.raises(FleetError):
        ShardedCorpus.create(root)  # already a fleet
    with pytest.raises(FleetError):
        ShardedCorpus.open(str(tmp_path / "nope"))
    assert created.shard(0).root == opened.shard(0).root


def test_routing_is_deterministic_and_in_range(fleet):
    fp = "ab" * 32
    assert fleet.shard_of(fp) == fleet.shard_of(fp)
    for n in range(64):
        assert 0 <= fleet.shard_of("%064x" % (n * 2654435761)) < 4


def test_add_routes_dedups_and_enqueues(fleet):
    config = record_config()
    first = fleet.add(RACE_SRC, name="race", config=config)
    assert first["status"] == "enqueued"
    assert first["job_id"] is not None
    second = fleet.add(RACE_SRC, name="race", config=config)
    assert second["status"] == "deduped"
    assert second["job_id"] is None
    # Identical trace -> identical fingerprint -> same shard and cluster.
    assert second["shard"] == first["shard"]
    assert second["cluster"] == first["cluster"]
    assert second["entry_id"] != first["entry_id"]
    # Exactly one solve job for the two reports.
    assert fleet.queue().depth() == 1
    record = fleet.registry().get(first["cluster"])
    assert record["status"] == STATUS_PENDING
    assert len(record["members"]) == 2
    # The shard is a perfectly normal corpus underneath.
    shard = Corpus.open(fleet.shard_root(first["shard"]))
    stored = shard.entry(first["entry_id"]).load_execution()
    assert stored.bug is not None
    # The entry manifest carries the fleet stamp.
    manifest = shard.entry(first["entry_id"]).manifest
    assert manifest["fleet"]["shard"] == first["shard"]
    assert manifest["fleet"]["cluster"] == first["cluster"]
    assert manifest["fleet"]["fingerprint"] == first["fingerprint"]


def test_add_report_matches_local_add_cluster(fleet):
    outcome = fleet.add(RACE_SRC, name="race", config=record_config())
    shard = fleet.shard(outcome["shard"])
    report = report_from_entry(shard.entry(outcome["entry_id"]))
    from repro.fleet.gateway import validate_report

    source, name, config, logs, bug, stats, seed = validate_report(report)
    again = fleet.add_report(
        source, name, config, logs, bug, stats=stats, seed=seed
    )
    # Re-ingesting a stored entry's report lands in the same cluster and
    # shard: the wire format round-trips the content hash faithfully.
    assert again["status"] == "deduped"
    assert again["shard"] == outcome["shard"]
    assert again["cluster"] == outcome["cluster"]
    assert again["fingerprint"] == outcome["fingerprint"]


def test_distinct_programs_distinct_clusters(fleet):
    a = fleet.add(RACE_SRC, name="race", config=record_config())
    b = fleet.add(race_variant(5), name="race5", config=record_config())
    assert a["cluster"] != b["cluster"]
    assert fleet.queue().depth() == 2
    stats = fleet.registry().stats()
    assert stats["clusters"] == 2
    assert stats["solves_avoided"] == 0


def test_shard_manifest_self_heals(fleet):
    outcome = fleet.add(RACE_SRC, name="race", config=record_config())
    index = outcome["shard"]
    manifest_path = fleet._shard_manifest_path(index)
    os.remove(manifest_path)
    manifest = fleet.shard_manifest(index)
    row = manifest["entries"][outcome["entry_id"]]
    assert row["fingerprint"] == outcome["fingerprint"]
    assert row["cluster"] == outcome["cluster"]
    assert row["program"] == "race"
    # Garbage in the manifest file also heals.
    with open(manifest_path, "w") as fh:
        fh.write("{broken")
    assert fleet.shard_manifest(index)["entries"] == manifest["entries"]


def test_stats_shape(fleet):
    fleet.add(RACE_SRC, name="race", config=record_config())
    fleet.add(RACE_SRC, name="race", config=record_config())
    stats = fleet.stats()
    assert stats["entries"] == 2
    assert sum(s["entries"] for s in stats["shards"]) == 2
    assert stats["trace_bytes"] > 0
    assert stats["clusters"]["members"] == 2
    assert stats["clusters"]["solves_avoided"] == 1
    assert stats["queue"]["pending"] == 1
    assert stats["cache"]["entries"] == 0


def test_rebalance_moves_entries_and_updates_registry(fleet):
    outcomes = [
        fleet.add(RACE_SRC, name="race", config=record_config()),
        fleet.add(race_variant(5), name="race5", config=record_config()),
        fleet.add(race_variant(6), name="race6", config=record_config()),
    ]
    before_ids = sorted(e.entry_id for _s, e in fleet.entries())
    summary = fleet.rebalance(shards=7)
    assert summary["shards"] == 7
    assert summary["entries"] == 3
    reopened = ShardedCorpus.open(fleet.root)
    assert reopened.n_shards == 7
    assert sorted(e.entry_id for _s, e in reopened.entries()) == before_ids
    registry = reopened.registry()
    for outcome in outcomes:
        record = registry.get(outcome["cluster"])
        for ref in [record["representative"], *record["members"]]:
            # Every registry reference resolves in its claimed new shard.
            entry = reopened.shard(ref["shard"]).entry(ref["entry_id"])
            info = entry.manifest["fleet"]
            assert info["shard"] == ref["shard"]
            assert reopened.shard_of(info["fingerprint"]) == ref["shard"]
    # Rebalancing back to the original count restores the placement.
    reopened.rebalance(shards=4)
    for outcome in outcomes:
        assert any(
            e.entry_id == outcome["entry_id"] and s == outcome["shard"]
            for s, e in reopened.entries()
        )


def test_rebalance_rejects_bad_count(fleet):
    with pytest.raises(FleetError):
        fleet.rebalance(shards=0)
