"""Dedup clustering: the invariant that one solve serves a cluster.

The load-bearing property: cluster membership requires *exact* per-thread
whole-path-profile equality, so the representative's solved schedule
reproduces every member's failure — and near-miss traces (same program,
same failure site, different path profiles) are never merged, because a
different profile can mean a different constraint system.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.clap import ClapConfig, ClapPipeline
from repro.fleet import FleetDispatcher
from repro.fleet.cluster import (
    ClusterError,
    ClusterRegistry,
    cluster_material,
    cluster_signature,
    path_multiset,
    profile_digests,
    profile_similarity,
)
from repro.runtime.events import BugReport

from tests.conftest import RACE_SRC
from tests.fleet.conftest import NEARMISS_SRC, record_config

BUG = BugReport(kind="assertion", message="assert at x:9", thread="main", line=9)


# -- signature unit properties ---------------------------------------------


_logs = st.dictionaries(
    st.sampled_from(["main", "t1", "t2"]),
    st.lists(
        st.one_of(
            st.tuples(st.just("enter"), st.integers(0, 7)),
            st.tuples(st.just("path"), st.integers(0, 100)),
            st.tuples(st.just("exit")),
        ),
        max_size=12,
    ),
    min_size=1,
    max_size=3,
)


@settings(max_examples=60, deadline=None)
@given(_logs)
def test_equal_logs_equal_signature(logs):
    m1 = cluster_material("p" * 64, "sc", BUG, logs)
    m2 = cluster_material("p" * 64, "sc", BUG, dict(logs))
    assert cluster_signature(m1) == cluster_signature(m2)
    assert profile_similarity(logs, logs) == 1.0


@settings(max_examples=60, deadline=None)
@given(_logs, st.integers(0, 10**6))
def test_any_path_perturbation_changes_signature(logs, salt):
    """Perturbing any one path token splits the cluster (never merged)."""
    thread = sorted(logs)[0]
    tokens = list(logs[thread])
    path_positions = [i for i, t in enumerate(tokens) if t[0] == "path"]
    if not path_positions:
        tokens.append(("path", salt % 100))
        path_positions = [len(tokens) - 1]
        logs = dict(logs, **{thread: tokens})
    base = cluster_signature(cluster_material("p" * 64, "sc", BUG, logs))
    i = path_positions[salt % len(path_positions)]
    perturbed = list(tokens)
    perturbed[i] = ("path", tokens[i][1] + 1 + (salt % 5))
    other = dict(logs, **{thread: perturbed})
    assert profile_digests(logs) != profile_digests(other)
    assert (
        cluster_signature(cluster_material("p" * 64, "sc", BUG, other)) != base
    )


def test_signature_covers_program_model_and_bug():
    logs = {"main": [("enter", 0), ("path", 3), ("exit",)]}
    base = cluster_signature(cluster_material("p" * 64, "sc", BUG, logs))
    for material in (
        cluster_material("q" * 64, "sc", BUG, logs),
        cluster_material("p" * 64, "tso", BUG, logs),
        cluster_material(
            "p" * 64, "sc",
            BugReport(kind="assertion", message="assert at x:9",
                      thread="main", line=10),
            logs,
        ),
    ):
        assert cluster_signature(material) != base


def test_similarity_is_diagnostic_graded():
    a = {"main": [("path", 1), ("path", 1), ("path", 2)]}
    b = {"main": [("path", 1), ("path", 2)]}  # subset: similar, not equal
    c = {"main": [("path", 9)]}
    assert 0.0 < profile_similarity(a, b) < 1.0
    assert profile_similarity(a, c) == 0.0
    assert profile_similarity({}, {}) == 1.0


# -- the registry ----------------------------------------------------------


def test_registry_lifecycle(tmp_path):
    registry = ClusterRegistry(str(tmp_path / "clusters"))
    logs = {"main": [("path", 1)]}
    material = cluster_material("p" * 64, "sc", BUG, logs)
    sig = cluster_signature(material)
    counts = ClusterRegistry.encode_path_counts(path_multiset(logs))
    record = registry.create(
        sig, material, {"shard": 0, "entry_id": "e1"}, path_counts=counts
    )
    assert record["members"][0]["validated"] is True
    with pytest.raises(ClusterError):
        registry.create(sig, material, {"shard": 0, "entry_id": "e1"})
    registry.add_member(sig, {"shard": 2, "entry_id": "e2"})
    registry.mark_solved(sig, [("main", 0), ("t1", 1)], 1, solve={"s": 1})
    record = registry.get(sig)
    assert record["status"] == "solved"
    assert record["schedule"] == [["main", 0], ["t1", 1]]
    registry.mark_member_validated(sig, "e2", True)
    stats = registry.stats()
    assert stats == {
        "clusters": 1,
        "members": 2,
        "solved": 1,
        "failed": 0,
        "pending": 0,
        "solves_avoided": 1,
        "members_validated": 2,
    }
    # Path-count round-trip feeds nearest().
    decoded = ClusterRegistry.decode_path_counts(record["path_counts"])
    assert decoded == path_multiset(logs)
    near_sig, sim = registry.nearest("p" * 64, path_multiset(logs))
    assert (near_sig, sim) == (sig, 1.0)
    assert registry.nearest("q" * 64, path_multiset(logs)) == (None, 0.0)


# -- the end-to-end dedup-correctness property ------------------------------


def _distinct_profile_recordings(source, name, want=2, max_seeds=400):
    """Failing recordings of ``source`` with pairwise-distinct profiles.

    Compiled under ``name`` — the name a report is stored as is part of
    the failure's identity (it appears in the assert message the replay
    check compares against).
    """
    from repro.minilang import compile_source

    pipeline = ClapPipeline(compile_source(source, name=name), ClapConfig())
    found = {}
    for seed in range(max_seeds):
        recorded = pipeline.record_once(seed)
        if recorded.bug is None:
            continue
        digests = tuple(sorted(profile_digests(recorded.recorder.logs).items()))
        if digests not in found:
            found[digests] = recorded
            if len(found) >= want:
                break
    return list(found.values())


def test_same_cluster_shares_schedule_near_miss_never_merges(fleet):
    """The satellite property, on real traces end to end.

    NEARMISS_SRC fails at the same assert down two control-flow routes,
    so seeds yield two profile classes of the *same* program and failure
    site.  Duplicates within a class must cluster (and reproduce from
    the one shared schedule); the two classes must never merge.
    """
    recordings = _distinct_profile_recordings(NEARMISS_SRC, "nearmiss", want=2)
    assert len(recordings) == 2, "expected both racy routes to be reachable"
    a, b = recordings
    assert a.bug.same_failure(b.bug)  # same failure site...
    assert profile_digests(a.recorder.logs) != profile_digests(
        b.recorder.logs
    )  # ...different whole-path profiles

    config = ClapConfig()
    outcomes = [
        fleet.add_report(
            NEARMISS_SRC, "nearmiss", config, rec.recorder.logs, rec.bug,
            seed=rec.seed,
        )
        for rec in (a, b, a, b, a)  # duplicates of both classes
    ]
    sig_a, sig_b = outcomes[0]["cluster"], outcomes[1]["cluster"]
    # Near-misses never merged, duplicates always deduped.
    assert sig_a != sig_b
    assert [o["status"] for o in outcomes] == [
        "enqueued", "enqueued", "deduped", "deduped", "deduped",
    ]
    assert [o["cluster"] for o in outcomes] == [
        sig_a, sig_b, sig_a, sig_b, sig_a,
    ]
    # But they are *similar* — the diagnostic sees the near-miss.
    assert profile_similarity(a.recorder.logs, b.recorder.logs) > 0.0

    # Two solves serve five reports; every member must replay its own
    # failure from its cluster's shared schedule.
    dispatcher = FleetDispatcher(fleet, jobs=2)
    results, aggregate = dispatcher.drain()
    assert len(results) == 5
    assert all(r.ok for r in results)
    assert aggregate["deduped"] == 3
    registry = fleet.registry()
    for sig in (sig_a, sig_b):
        record = registry.get(sig)
        assert record["status"] == "solved"
        assert all(m["validated"] for m in record["members"])
    stats = registry.stats()
    assert stats["solves_avoided"] == 3
    assert stats["members_validated"] == 5


def test_cluster_members_hit_shared_cache(fleet):
    """Dedup also pays off in the cache: one analysis per cluster."""
    config = record_config()
    fleet.add(RACE_SRC, name="race", config=config)
    fleet.add(RACE_SRC, name="race", config=config)
    dispatcher = FleetDispatcher(fleet, jobs=1)
    results, aggregate = dispatcher.drain()
    assert all(r.ok for r in results)
    # One real solve (cache miss), the duplicate fanned out for free.
    assert aggregate["cache"].get("misses", 0) == 1
    assert aggregate["deduped"] == 1
    assert fleet.shared_cache().usage()["entries"] == 1
