"""DurableJobQueue: FIFO order, claim filtering, crash recovery."""

import os

import pytest

from repro.fleet.queue import (
    STATE_ACTIVE,
    STATE_DONE,
    STATE_FAILED,
    STATE_PENDING,
    DurableJobQueue,
    QueueError,
)


@pytest.fixture
def queue(tmp_path):
    return DurableJobQueue(str(tmp_path / "queue"))


def test_put_claim_complete_roundtrip(queue):
    ids = [queue.put({"n": n}) for n in range(3)]
    assert queue.depth() == 3
    claimed = queue.claim(2)
    assert [job["id"] for job in claimed] == ids[:2]  # FIFO
    assert [job["payload"]["n"] for job in claimed] == [0, 1]
    assert queue.counts() == {
        STATE_PENDING: 1, STATE_ACTIVE: 2, STATE_DONE: 0, STATE_FAILED: 0,
    }
    queue.complete(ids[0], {"ok": True})
    queue.fail(ids[1], "boom")
    assert queue.counts()[STATE_DONE] == 1
    assert queue.counts()[STATE_FAILED] == 1
    assert queue.depth() == 1  # pending job still outstanding
    done = queue.jobs(STATE_DONE)[0]
    assert done["result"] == {"ok": True}
    assert queue.jobs(STATE_FAILED)[0]["reason"] == "boom"


def test_claim_accept_skips_without_losing_position(queue):
    queue.put({"shard": 0})
    queue.put({"shard": 1})
    queue.put({"shard": 0})
    claimed = queue.claim(10, accept=lambda p: p["shard"] == 1)
    assert [job["payload"]["shard"] for job in claimed] == [1]
    # Skipped jobs are still pending, still FIFO.
    rest = queue.claim(10)
    assert [job["payload"]["shard"] for job in rest] == [0, 0]


def test_sequence_survives_reopen(queue):
    first = queue.put({})
    reopened = DurableJobQueue(queue.root)
    second = reopened.put({})
    assert second > first  # ids keep increasing across restarts


def test_recover_requeues_orphaned_active(queue):
    job_id = queue.put({"n": 1})
    queue.claim(1)
    # Simulate a dispatcher crash: the job is stuck in active/.
    reopened = DurableJobQueue(queue.root)
    assert reopened.recover() == 1
    assert reopened.counts()[STATE_PENDING] == 1
    assert reopened.claim(1)[0]["id"] == job_id


def test_recover_resolves_dual_state_to_terminal(queue):
    job_id = queue.put({"n": 1})
    queue.claim(1)
    queue.complete(job_id, {"ok": True})
    # Simulate a crash between the terminal write and the active unlink.
    done_path = queue._job_path(STATE_DONE, job_id)
    active_path = queue._job_path(STATE_ACTIVE, job_id)
    with open(done_path, "rb") as src, open(active_path, "wb") as dst:
        dst.write(src.read())
    reopened = DurableJobQueue(queue.root)
    assert reopened.recover() == 0
    assert not os.path.exists(active_path)
    assert reopened.counts()[STATE_DONE] == 1


def test_complete_requires_active(queue):
    job_id = queue.put({})
    with pytest.raises(QueueError):
        queue.complete(job_id)


def test_no_torn_job_files_visible(queue):
    # A leftover tmp file (crash mid-write) is never listed as a job.
    queue.put({})
    tmp = os.path.join(queue.root, STATE_PENDING, "job-0000000099.json.tmp.1")
    with open(tmp, "w") as fh:
        fh.write('{"id": "job-0000000099"')  # torn
    assert len(queue.claim(10)) == 1
