"""Golden-file lint for ``repro analyze --json``.

Every example program has a checked-in expected-diagnostics file under
``examples/minilang/expected/<name>.json`` holding the full versioned
JSON payload.  The CI ``analyze-lint`` job runs this module; any drift
in the analyzer (new pass, changed message, reordered output) shows up
as a readable JSON diff here instead of silently changing behavior.

Regenerate after an intentional analyzer change with::

    REGEN_ANALYZE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_analyze_golden.py
"""

import glob
import json
import os

import pytest

from repro.analysis.static_race import analyze_program
from repro.minilang import compile_source

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(ROOT, "examples", "minilang")
EXPECTED_DIR = os.path.join(EXAMPLES_DIR, "expected")

EXAMPLES = sorted(glob.glob(os.path.join(EXAMPLES_DIR, "*.ml")))

REGEN = bool(os.environ.get("REGEN_ANALYZE_GOLDENS"))


def _stem(path):
    return os.path.splitext(os.path.basename(path))[0]


def _payload(path):
    # The program name in the payload is the repo-relative path, so the
    # goldens are stable regardless of the checkout location.
    rel = os.path.relpath(path, ROOT)
    with open(path) as fh:
        program = compile_source(fh.read(), name=rel)
    return json.loads(analyze_program(program, name=rel).to_json())


def test_examples_exist():
    assert EXAMPLES, "no example programs found"


def test_every_example_has_a_golden():
    missing = [
        _stem(p)
        for p in EXAMPLES
        if not os.path.exists(os.path.join(EXPECTED_DIR, _stem(p) + ".json"))
    ]
    if REGEN:
        pytest.skip("regenerating")
    assert not missing, (
        "examples without expected-diagnostics goldens: %s "
        "(REGEN_ANALYZE_GOLDENS=1 to create)" % ", ".join(missing)
    )


def test_no_orphan_goldens():
    stems = {_stem(p) for p in EXAMPLES}
    orphans = [
        _stem(p)
        for p in glob.glob(os.path.join(EXPECTED_DIR, "*.json"))
        if _stem(p) not in stems
    ]
    assert not orphans, "goldens without example programs: %s" % ", ".join(orphans)


@pytest.mark.parametrize("path", EXAMPLES, ids=_stem)
def test_analyze_matches_golden(path):
    golden_path = os.path.join(EXPECTED_DIR, _stem(path) + ".json")
    payload = _payload(path)
    if REGEN:
        os.makedirs(EXPECTED_DIR, exist_ok=True)
        with open(golden_path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=False)
            fh.write("\n")
        return
    assert os.path.exists(golden_path), (
        "missing golden %s (REGEN_ANALYZE_GOLDENS=1 to create)" % golden_path
    )
    with open(golden_path) as fh:
        golden = json.load(fh)
    assert payload == golden, (
        "analyzer output drifted from %s — if intentional, regenerate with "
        "REGEN_ANALYZE_GOLDENS=1" % golden_path
    )


def test_payload_is_deterministic():
    path = EXAMPLES[0]
    assert _payload(path) == _payload(path)
