"""Golden-file lint for ``repro analyze --json``.

Every example program has a checked-in expected-diagnostics file under
``examples/minilang/expected/<name>.json`` holding the full versioned
JSON payload.  The CI ``analyze-lint`` job runs this module; any drift
in the analyzer (new pass, changed message, reordered output) shows up
as a readable JSON diff here instead of silently changing behavior.

A program may opt into additional memory models with a marker comment::

    // analyze-models: sc tso pso

Each non-``sc`` model gets its own golden at ``expected/<name>.<model>.json``
covering the SR4xx robustness diagnostics for that model; the plain
``<name>.json`` golden is always the ``sc`` payload.

Regenerate after an intentional analyzer change with::

    REGEN_ANALYZE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_analyze_golden.py
"""

import glob
import json
import os
import re

import pytest

from repro.analysis.static_race import analyze_program
from repro.minilang import compile_source

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(ROOT, "examples", "minilang")
EXPECTED_DIR = os.path.join(EXAMPLES_DIR, "expected")

EXAMPLES = sorted(glob.glob(os.path.join(EXAMPLES_DIR, "*.ml")))

REGEN = bool(os.environ.get("REGEN_ANALYZE_GOLDENS"))

_MODELS_MARKER = re.compile(r"^//\s*analyze-models:\s*(.+)$", re.MULTILINE)


def _stem(path):
    return os.path.splitext(os.path.basename(path))[0]


def _models_of(path):
    """Memory models declared by the example's marker comment (default:
    just ``sc``, the pre-robustness behavior)."""
    with open(path) as fh:
        match = _MODELS_MARKER.search(fh.read())
    if not match:
        return ("sc",)
    return tuple(match.group(1).split())


def _golden_name(stem, model):
    return stem + ".json" if model == "sc" else "%s.%s.json" % (stem, model)


def _cases():
    return [(path, model) for path in EXAMPLES for model in _models_of(path)]


def _payload(path, model):
    # The program name in the payload is the repo-relative path, so the
    # goldens are stable regardless of the checkout location.
    rel = os.path.relpath(path, ROOT)
    with open(path) as fh:
        program = compile_source(fh.read(), name=rel)
    return json.loads(
        analyze_program(program, name=rel, memory_model=model).to_json()
    )


def test_examples_exist():
    assert EXAMPLES, "no example programs found"


def test_every_example_has_a_golden():
    missing = [
        _golden_name(_stem(path), model)
        for path, model in _cases()
        if not os.path.exists(
            os.path.join(EXPECTED_DIR, _golden_name(_stem(path), model))
        )
    ]
    if REGEN:
        pytest.skip("regenerating")
    assert not missing, (
        "examples without expected-diagnostics goldens: %s "
        "(REGEN_ANALYZE_GOLDENS=1 to create)" % ", ".join(missing)
    )


def test_no_orphan_goldens():
    valid = {
        _golden_name(_stem(path), model) for path, model in _cases()
    }
    orphans = [
        os.path.basename(p)
        for p in glob.glob(os.path.join(EXPECTED_DIR, "*.json"))
        if os.path.basename(p) not in valid
    ]
    assert not orphans, "goldens without example programs: %s" % ", ".join(orphans)


@pytest.mark.parametrize(
    "path,model", _cases(), ids=lambda v: v if v in ("sc", "tso", "pso") else _stem(v)
)
def test_analyze_matches_golden(path, model):
    golden_path = os.path.join(
        EXPECTED_DIR, _golden_name(_stem(path), model)
    )
    payload = _payload(path, model)
    if REGEN:
        os.makedirs(EXPECTED_DIR, exist_ok=True)
        with open(golden_path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=False)
            fh.write("\n")
        return
    assert os.path.exists(golden_path), (
        "missing golden %s (REGEN_ANALYZE_GOLDENS=1 to create)" % golden_path
    )
    with open(golden_path) as fh:
        golden = json.load(fh)
    assert payload == golden, (
        "analyzer output drifted from %s — if intentional, regenerate with "
        "REGEN_ANALYZE_GOLDENS=1" % golden_path
    )


def test_payload_is_deterministic():
    path, model = _cases()[0]
    assert _payload(path, model) == _payload(path, model)
