"""The .clap container: round-trip, corruption detection, truncation."""

import pytest

from repro.store.container import (
    CHUNK_FINAL,
    ClapReader,
    ClapWriter,
    ContainerError,
    compact_container,
    flip_byte,
    read_meta,
)

TOKENS_A = [("enter", 0), ("path", 3), ("path", 3), ("path", 3), ("exit",)]
TOKENS_B = [("enter", 1), ("path", 0), ("partial", 2, 1, 0, 0)]


def write_sample(path, meta=None):
    writer = ClapWriter(str(path))
    writer.write_chunk("1", TOKENS_A[:2])
    writer.write_chunk("1:1", TOKENS_B[:2])
    writer.write_chunk("1", TOKENS_A[2:], final=True)
    writer.write_chunk("1:1", TOKENS_B[2:], final=True)
    writer.close(meta=meta)
    return str(path)


def test_roundtrip(tmp_path):
    path = write_sample(tmp_path / "t.clap", meta={"program": "demo"})
    reader = ClapReader.open(path)
    assert reader.complete
    assert reader.problems == []
    assert reader.threads() == ["1", "1:1"]
    assert reader.thread_tokens() == {"1": TOKENS_A, "1:1": TOKENS_B}
    assert reader.meta["program"] == "demo"
    assert reader.meta["format"] == 1
    assert read_meta(path)["program"] == "demo"
    finals = [c for c in reader.chunks if c.flags & CHUNK_FINAL]
    assert sorted(c.thread for c in finals) == ["1", "1:1"]


def test_empty_chunks_are_skipped(tmp_path):
    writer = ClapWriter(str(tmp_path / "t.clap"))
    writer.write_chunk("1", [])
    writer.write_chunk("1", TOKENS_A)
    writer.close()
    reader = ClapReader.open(str(tmp_path / "t.clap"))
    assert len(reader.chunks) == 1


def test_write_after_close_rejected(tmp_path):
    writer = ClapWriter(str(tmp_path / "t.clap"))
    writer.close()
    with pytest.raises(ContainerError):
        writer.write_chunk("1", TOKENS_A)


def test_every_byte_flip_is_detected(tmp_path):
    """Flip each byte of the file in turn: verify must never stay clean."""
    path = write_sample(tmp_path / "t.clap")
    with open(path, "rb") as fh:
        size = len(fh.read())
    for offset in range(size):
        flip_byte(path, offset)
        reader = ClapReader.open(path)
        assert not reader.complete, "flip at offset %d went undetected" % offset
        flip_byte(path, offset)  # restore
    assert ClapReader.open(path).complete


def test_truncation_leaves_valid_prefix(tmp_path):
    path = write_sample(tmp_path / "t.clap")
    full = ClapReader.open(path)
    with open(path, "rb") as fh:
        data = fh.read()
    for cut in range(len(data)):
        with open(str(tmp_path / "cut.clap"), "wb") as fh:
            fh.write(data[:cut])
        reader = ClapReader.open(str(tmp_path / "cut.clap"))
        assert not reader.complete
        # Every chunk that survives is one of the original chunks, intact.
        for chunk, original in zip(reader.chunks, full.chunks):
            assert chunk.thread == original.thread
            assert chunk.tokens() == original.tokens()
    # Cutting just before the footer keeps all four chunks.
    footer_start = full.chunks[-1].offset + full.chunks[-1].size
    with open(str(tmp_path / "cut.clap"), "wb") as fh:
        fh.write(data[:footer_start])
    reader = ClapReader.open(str(tmp_path / "cut.clap"))
    assert len(reader.chunks) == 4
    assert reader.thread_tokens() == full.thread_tokens()


def test_compact_merges_chunks(tmp_path):
    path = write_sample(tmp_path / "t.clap", meta={"program": "demo"})
    dst = str(tmp_path / "c.clap")
    old, new = compact_container(path, dst)
    assert old > 0 and new > 0
    reader = ClapReader.open(dst)
    assert reader.complete
    assert len(reader.chunks) == 2  # one per thread
    assert reader.thread_tokens() == {"1": TOKENS_A, "1:1": TOKENS_B}
    assert reader.meta["program"] == "demo"
    # Final markers survive the merge.
    assert all(c.flags & CHUNK_FINAL for c in reader.chunks)


def test_compact_refuses_damaged_container(tmp_path):
    path = write_sample(tmp_path / "t.clap")
    flip_byte(path, 20)
    with pytest.raises(ContainerError):
        compact_container(path, str(tmp_path / "c.clap"))


def test_context_manager_closes_on_success(tmp_path):
    path = str(tmp_path / "t.clap")
    with ClapWriter(path) as writer:
        writer.write_chunk("1", TOKENS_A)
    assert ClapReader.open(path).complete


def test_context_manager_leaves_prefix_on_error(tmp_path):
    path = str(tmp_path / "t.clap")
    with pytest.raises(RuntimeError):
        with ClapWriter(path) as writer:
            writer.write_chunk("1", TOKENS_A)
            raise RuntimeError("recorder died")
    reader = ClapReader.open(path)
    assert not reader.complete  # no footer
    assert reader.thread_tokens() == {"1": TOKENS_A}
