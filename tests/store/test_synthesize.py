"""Flight-recorder end-to-end: reproduction from suffix logs.

The ``flight`` benchmark's call-heavy loop defeats run-length folding, so
a small ring genuinely evicts the loop prefix.  These tests drive the
full lossy pipeline — bounded recording, anchored suffix decode, prefix
synthesis, relaxed constraint encoding, solve, replay — plus the corpus
round-trip for lossy traces and the refusal paths that keep a suffix log
from ever being silently treated as a complete trace.
"""

import json

import pytest

from repro.bench.programs import get_benchmark
from repro.core.clap import ClapConfig, ClapError, ClapPipeline
from repro.store import ClapReader, Corpus, CorpusError
from repro.store.container import CHUNK_RING

# Small enough to solve in well under a second, lossy enough to evict
# ~27 tokens per worker (the whole loop prefix minus the retained tail).
FLIGHT = get_benchmark("flight", iters=10)
RING_KW = dict(ring_bytes=40, ring_segment_bytes=16)


def flight_config(**overrides):
    kw = FLIGHT.config_kwargs()
    kw.update(seeds=range(80), **RING_KW)
    kw.update(overrides)
    return ClapConfig(**kw)


@pytest.fixture(scope="module")
def lossy_run():
    program = FLIGHT.compile()
    pipeline = ClapPipeline(program, flight_config())
    recorded = pipeline.record()
    assert recorded is not None, "flight bug did not trigger"
    return program, pipeline, recorded


def test_ring_run_is_genuinely_lossy(lossy_run):
    _, _, recorded = lossy_run
    assert recorded.lossy
    workers = [
        info
        for t, info in recorded.ring["threads"].items()
        if info["evicted_tokens"] > 0
    ]
    assert len(workers) == 2, "both workers should lose their loop prefix"
    for info in workers:
        assert info["segments_evicted"] > 0
        assert info["retained_bytes"] < info["total_bytes"]
        assert info["anchor"].frames, "eviction horizon must sit in a frame"


def test_reproduce_from_evicted_log(lossy_run):
    """The tentpole acceptance: a bug whose loop prefix was evicted still
    reproduces, via synthesized prefixes."""
    _, pipeline, recorded = lossy_run
    report = pipeline.reproduce_offline(recorded)
    assert report.reproduced
    assert report.lossy
    # Satellite 6: recorder metrics ride on the report.
    metrics = report.recorder_metrics
    assert metrics["lossy"]
    assert metrics["ring_bytes"] == RING_KW["ring_bytes"]
    assert metrics["segments_evicted"] > 0
    assert 0 < metrics["bytes_retained"] < metrics["bytes_total"]
    assert json.dumps(metrics)  # JSON-ready for `repro trace --json`
    # Synthesis report (one entry per lossy thread): every evicted token
    # accounted for.
    assert report.synthesis
    assert any(t["synth_blocks"] > 0 for t in report.synthesis.values())
    for t in report.synthesis.values():
        assert t["residual_tokens"] == 0
    assert json.dumps(report.synthesis)


def test_lossy_trace_refused_without_synthesis(lossy_run):
    """``prefix_synthesis=False`` must refuse a lossy trace outright —
    never analyze the suffix as if it were the whole execution."""
    program, _, recorded = lossy_run
    strict = ClapPipeline(program, flight_config(prefix_synthesis=False))
    with pytest.raises(ClapError) as err:
        strict.reproduce_offline(recorded)
    assert "evicted" in str(err.value)


def test_full_budget_ring_is_lossless(lossy_run):
    """A generous budget keeps everything: same reproduction, no
    synthesis, anchors at stream start."""
    program, _, _ = lossy_run
    pipeline = ClapPipeline(
        program, flight_config(ring_bytes=1 << 20, ring_segment_bytes=256)
    )
    recorded = pipeline.record()
    assert recorded is not None
    assert not recorded.lossy
    report = pipeline.reproduce_offline(recorded)
    assert report.reproduced
    assert not report.lossy
    assert report.recorder_metrics["segments_evicted"] == 0


def test_synthesize_prefixes_rejects_impossible_deficit(lossy_run):
    """A claimed eviction count smaller than the anchored frames' minimum
    entry cost cannot be accounted for and must raise."""
    program, pipeline, recorded = lossy_run
    ring = dict(recorded.ring, threads=dict(recorded.ring["threads"]))
    for t, info in ring["threads"].items():
        if info["evicted_tokens"] > 0:
            ring["threads"][t] = dict(info, evicted_tokens=1)
    recorded_bad = type(recorded)(
        seed=recorded.seed,
        result=recorded.result,
        recorder=recorded.recorder,
        shared=recorded.shared,
        ring=ring,
        ring_sink=recorded.ring_sink,
    )
    with pytest.raises(ClapError) as err:
        pipeline.reproduce_offline(recorded_bad)
    assert "synthes" in str(err.value) or "account" in str(err.value)


# -- corpus round-trip -----------------------------------------------------


@pytest.fixture(scope="module")
def ring_corpus(tmp_path_factory):
    corpus = Corpus.create(str(tmp_path_factory.mktemp("ring_corpus")))
    entry = corpus.add(FLIGHT.source, name="flight", config=flight_config())
    return corpus, entry


def test_corpus_persists_ring_metadata(ring_corpus):
    _, entry = ring_corpus
    ring = entry.manifest["ring"]
    assert ring["lossy"] is True
    assert ring["ring_bytes"] == RING_KW["ring_bytes"]
    lossy_threads = [
        t for t, info in ring["threads"].items() if info["evicted_tokens"]
    ]
    assert len(lossy_threads) == 2
    for t in lossy_threads:
        anchor = ring["threads"][t]["anchor"]
        assert anchor["frames"], "anchor must serialize its frame chain"
        assert anchor["tokens_before"] == ring["threads"][t]["evicted_tokens"]
    # The container's chunks are ring-flagged suffix segments.
    reader = ClapReader.open(entry.trace_path)
    assert reader.complete
    assert all(c.flags & CHUNK_RING for c in reader.chunks)
    ok, problems = entry.verify()
    assert ok, problems


def test_corpus_lossy_roundtrip_reproduces(ring_corpus):
    corpus, _ = ring_corpus
    entry = corpus.entry(corpus.entry_ids()[0])  # cold caches
    stored = entry.load_execution()
    assert stored.lossy
    assert stored.ring["threads"]
    pipeline = ClapPipeline(
        stored.program, ClapConfig(**entry.config_kwargs())
    )
    report = pipeline.reproduce_offline(stored)
    assert report.reproduced
    assert report.lossy
    assert report.synthesis


def test_ring_chunks_without_manifest_meta_refused(ring_corpus, tmp_path):
    """Stripping the manifest's ring metadata must make the load refuse:
    the suffix log would otherwise masquerade as a complete trace."""
    corpus, entry = ring_corpus
    manifest = json.loads(open(entry.manifest_path).read())
    del manifest["ring"]
    clone_dir = tmp_path / "entries" / entry.entry_id
    clone_dir.mkdir(parents=True)
    (clone_dir / "manifest.json").write_text(json.dumps(manifest))
    (clone_dir / "trace.clap").write_bytes(
        open(entry.trace_path, "rb").read()
    )
    (tmp_path / "corpus.json").write_text('{"format": 1}')
    stripped = Corpus.open(str(tmp_path)).entry(entry.entry_id)
    with pytest.raises(CorpusError) as err:
        stripped.load_execution()
    assert "ring" in str(err.value)


def test_stored_lossy_refused_without_synthesis(ring_corpus):
    corpus, entry = ring_corpus
    stored = corpus.entry(entry.entry_id).load_execution()
    pipeline = ClapPipeline(
        stored.program,
        ClapConfig(**entry.config_kwargs(prefix_synthesis=False)),
    )
    with pytest.raises(ClapError):
        pipeline.reproduce_offline(stored)
