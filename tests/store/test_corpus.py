"""Corpus round-trip: add -> verify -> load -> reproduce offline."""

import json

import pytest

from repro.core.clap import ClapConfig, ClapPipeline
from repro.store import ClapReader, Corpus, CorpusError
from repro.store.container import flip_byte

from tests.conftest import RACE_SRC


@pytest.fixture(scope="module")
def corpus_with_entry(tmp_path_factory):
    corpus = Corpus.create(str(tmp_path_factory.mktemp("corpus")))
    config = ClapConfig(seeds=range(50))
    entry = corpus.add(RACE_SRC, name="race", config=config)
    return corpus, entry


def test_add_creates_selfcontained_entry(corpus_with_entry):
    corpus, entry = corpus_with_entry
    assert corpus.entry_ids() == [entry.entry_id]
    manifest = entry.manifest
    assert manifest["program"]["name"] == "race"
    assert manifest["program"]["source"] == RACE_SRC
    assert manifest["record"]["seed"] >= 0
    assert manifest["bug"]["kind"] == "assertion"
    assert manifest["stats"]["n_saps"] > 0
    assert manifest["stats"]["log_bytes"] > 0
    assert sorted(manifest["stats"]["thread_names"]) == ["1", "1:1", "1:2"]
    ok, problems = entry.verify()
    assert ok, problems


def test_container_is_streamed(corpus_with_entry):
    _, entry = corpus_with_entry
    reader = ClapReader.open(entry.trace_path)
    assert reader.complete
    assert reader.meta["program"] == "race"
    assert reader.meta["seed"] == entry.manifest["record"]["seed"]


def test_load_and_reproduce_offline(corpus_with_entry):
    """The acceptance path: reproduce from disk alone."""
    corpus, _ = corpus_with_entry
    entry = corpus.entry(corpus.entry_ids()[0])  # fresh object, cold caches
    stored = entry.load_execution()
    assert stored.recovery is None
    assert stored.bug is not None
    pipeline = ClapPipeline(
        stored.program, ClapConfig(**entry.config_kwargs())
    )
    report = pipeline.reproduce_offline(stored)
    assert report.reproduced
    assert report.seed == entry.manifest["record"]["seed"]
    assert report.log_bytes == entry.manifest["stats"]["log_bytes"]


def test_verify_flags_source_tamper(corpus_with_entry, tmp_path):
    _, entry = corpus_with_entry
    manifest = json.loads(open(entry.manifest_path).read())
    manifest["program"]["source"] += "\n// tampered"
    tampered_dir = tmp_path / "entries" / entry.entry_id
    tampered_dir.mkdir(parents=True)
    (tampered_dir / "manifest.json").write_text(json.dumps(manifest))
    (tampered_dir / "trace.clap").write_bytes(
        open(entry.trace_path, "rb").read()
    )
    (tmp_path / "corpus.json").write_text('{"format": 1}')
    bad = Corpus.open(str(tmp_path)).entry(entry.entry_id)
    ok, problems = bad.verify()
    assert not ok
    assert any("hash mismatch" in p for p in problems)
    with pytest.raises(CorpusError):
        bad.compile_program()


def test_open_rejects_non_corpus(tmp_path):
    with pytest.raises(CorpusError):
        Corpus.open(str(tmp_path))


def test_duplicate_entry_rejected(corpus_with_entry):
    corpus, entry = corpus_with_entry
    with pytest.raises(CorpusError):
        corpus.add(
            RACE_SRC,
            name="race",
            config=ClapConfig(seeds=range(50)),
            entry_id=entry.entry_id,
        )


def test_compact_then_reproduce(tmp_path):
    corpus = Corpus.create(str(tmp_path / "corpus"))
    entry = corpus.add(
        RACE_SRC, name="race", config=ClapConfig(seeds=range(50)), flush_every=4
    )
    before = len(ClapReader.open(entry.trace_path).chunks)
    entry.compact()
    after = len(ClapReader.open(entry.trace_path).chunks)
    assert after <= before
    ok, problems = entry.verify()
    assert ok, problems
    stored = entry.load_execution()
    report = ClapPipeline(
        stored.program, ClapConfig(**entry.config_kwargs())
    ).reproduce_offline(stored)
    assert report.reproduced


def test_corrupt_chunk_fails_verify_and_load(tmp_path):
    corpus = Corpus.create(str(tmp_path / "corpus"))
    entry = corpus.add(RACE_SRC, name="race", config=ClapConfig(seeds=range(50)))
    chunk = ClapReader.open(entry.trace_path).chunks[0]
    flip_byte(entry.trace_path, chunk.offset + chunk.size - 5)
    ok, problems = entry.verify()
    assert not ok
    assert any("CRC mismatch" in p for p in problems)
