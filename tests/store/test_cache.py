"""Analysis cache: content addressing, hits, stale rejection, verify."""

import os
import pickle

import pytest

from repro.core.clap import ClapConfig, ClapPipeline
from repro.store.cache import ANALYSIS_SCHEMA_VERSION, AnalysisCache

from tests.conftest import RACE_SRC

# Tracks the ClapConfig.static_prune default (on since the explore PR).
PRUNE = {"hb": True, "static": True}


@pytest.fixture(scope="module")
def recorded_race():
    pipeline = ClapPipeline(RACE_SRC, ClapConfig(seeds=range(100)))
    return pipeline, pipeline.record()


def material_of(pipeline, recorded, memory_model="sc", prune=None):
    return AnalysisCache.key_material(
        pipeline.program, recorded.recorder, memory_model, prune or PRUNE
    )


def analyze_with(pipeline, recorded, cache):
    timings = {}
    system = pipeline.analyze(recorded, cache=cache, timings=timings)
    return system, timings


def test_key_material_is_content_addressed(recorded_race):
    pipeline, recorded = recorded_race
    m1 = material_of(pipeline, recorded)
    m2 = material_of(pipeline, recorded)
    assert m1 == m2
    assert AnalysisCache.key_of(m1) == AnalysisCache.key_of(m2)
    # Any component flip changes the key.
    for variant in (
        material_of(pipeline, recorded, memory_model="tso"),
        material_of(pipeline, recorded, prune={"hb": True, "static": False}),
        dict(m1, program="0" * 64),
        dict(m1, trace="0" * 64),
    ):
        assert AnalysisCache.key_of(variant) != AnalysisCache.key_of(m1)


def test_miss_store_hit_roundtrip(tmp_path, recorded_race):
    pipeline, recorded = recorded_race
    cache = AnalysisCache(str(tmp_path / "cache"))

    system, timings = analyze_with(pipeline, recorded, cache)
    assert timings["cache"] == "miss"
    assert cache.stats.misses == 1
    assert cache.stats.hits == 0
    assert cache.stats.bytes_written > 0

    system2, timings2 = analyze_with(pipeline, recorded, cache)
    assert timings2["cache"] == "hit"
    assert timings2["symexec"] == 0.0
    assert cache.stats.hits == 1
    assert cache.stats.bytes_read == cache.stats.bytes_written
    # The deserialized system is semantically the stored one.
    assert system2.rf_candidates == system.rf_candidates
    assert len(system2.clauses) == len(system.clauses)
    assert system2.summaries.keys() == system.summaries.keys()
    for thread in system.summaries:
        assert system2.summaries[thread] == system.summaries[thread]


def test_schema_version_mismatch_is_stale(tmp_path, recorded_race):
    pipeline, recorded = recorded_race
    cache = AnalysisCache(str(tmp_path / "cache"))
    analyze_with(pipeline, recorded, cache)
    [path] = cache.entry_paths()
    with open(path, "rb") as fh:
        payload = pickle.loads(fh.read())
    payload["schema"] = ANALYSIS_SCHEMA_VERSION + 1
    with open(path, "wb") as fh:
        fh.write(pickle.dumps(payload))

    material = material_of(pipeline, recorded)
    assert cache.load(material) is None
    assert cache.stats.stale == 1
    assert not os.path.exists(path)  # self-healing: stale entry deleted
    # The next analyze re-populates from scratch.
    _, timings = analyze_with(pipeline, recorded, cache)
    assert timings["cache"] == "miss"
    assert cache.entry_paths()


def test_prune_config_mismatch_is_stale(tmp_path, recorded_race):
    pipeline, recorded = recorded_race
    cache = AnalysisCache(str(tmp_path / "cache"))
    analyze_with(pipeline, recorded, cache)
    [path] = cache.entry_paths()
    # Same key on disk, but the stored prune config no longer matches
    # what the pipeline requests (e.g. the entry predates a prune-rule
    # change that forgot to bump the schema).
    with open(path, "rb") as fh:
        payload = pickle.loads(fh.read())
    payload["material"]["prune"] = {"hb": False, "static": True}
    with open(path, "wb") as fh:
        fh.write(pickle.dumps(payload))
    assert cache.load(material_of(pipeline, recorded)) is None
    assert cache.stats.stale == 1
    assert not os.path.exists(path)


def test_unreadable_entry_is_stale(tmp_path, recorded_race):
    pipeline, recorded = recorded_race
    cache = AnalysisCache(str(tmp_path / "cache"))
    analyze_with(pipeline, recorded, cache)
    [path] = cache.entry_paths()
    with open(path, "wb") as fh:
        fh.write(b"\x80\x04 not a pickle")
    assert cache.load(material_of(pipeline, recorded)) is None
    assert cache.stats.stale == 1
    assert not os.path.exists(path)


def test_verify_flags_and_removes_bad_entries(tmp_path, recorded_race):
    pipeline, recorded = recorded_race
    cache = AnalysisCache(str(tmp_path / "cache"))
    analyze_with(pipeline, recorded, cache)
    [good] = cache.entry_paths()

    # A corrupt sibling and an entry filed under the wrong key.
    bad_dir = os.path.join(cache.root, "zz")
    os.makedirs(bad_dir, exist_ok=True)
    corrupt = os.path.join(bad_dir, "z" * 64 + ".pkl")
    with open(corrupt, "wb") as fh:
        fh.write(b"garbage")
    with open(good, "rb") as fh:
        payload = pickle.loads(fh.read())
    misfiled = os.path.join(bad_dir, "f" * 64 + ".pkl")
    with open(misfiled, "wb") as fh:
        fh.write(pickle.dumps(payload))

    problems = cache.verify(remove=True)
    assert sorted(path for path, _ in problems) == sorted([corrupt, misfiled])
    assert cache.stats.stale == 2
    assert cache.entry_paths() == [good]
    # The surviving entry still hits.
    assert cache.load(material_of(pipeline, recorded)) is not None


def test_cached_report_matches_uncached(tmp_path, recorded_race):
    pipeline, recorded = recorded_race
    cache = AnalysisCache(str(tmp_path / "cache"))
    uncached = pipeline.reproduce_offline(recorded)
    missed = pipeline.reproduce_offline(recorded, cache=cache)
    hit = pipeline.reproduce_offline(recorded, cache=cache)
    assert uncached.cache_state == "off"
    assert missed.cache_state == "miss"
    assert hit.cache_state == "hit"
    for report in (missed, hit):
        assert report.reproduced == uncached.reproduced
        assert report.n_constraints == uncached.n_constraints
        assert report.n_variables == uncached.n_variables
        assert report.schedule == uncached.schedule
    assert hit.cache_stats["hits"] == 1
