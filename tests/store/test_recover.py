"""Crash recovery: truncated containers, synthesized partials, honesty."""

import pytest

from repro.core.clap import ClapConfig, ClapPipeline
from repro.store import ClapReader, Corpus
from repro.store.container import CHUNK_FINAL, CHUNK_RECOVERED
from repro.store.recover import recover_tokens

# Main asserts mid-run while the worker is still looping: the worker's
# stream on disk ends in an open frame when its finalize-time flush is
# lost, which is exactly the synthesized-partial recovery case.
CRASHY_SRC = """
int x = 0;

void worker() {
    x = 1;
    int j = 0;
    while (j < 200) {
        j = j + 1;
    }
}

int main() {
    int t = 0;
    t = spawn worker();
    int i = 0;
    while (i < 30) {
        i = i + 1;
    }
    assert(x == 0);
    join(t);
    return 0;
}
"""

CONFIG = dict(seeds=range(100), stickiness=0.3, flush_prob=0.3)


@pytest.fixture
def crashy_entry(tmp_path):
    corpus = Corpus.create(str(tmp_path / "corpus"))
    entry = corpus.add(
        CRASHY_SRC,
        name="crashy",
        config=ClapConfig(**CONFIG),
        flush_every=8,
    )
    return entry


def truncate_before(path, offset):
    with open(path, "rb") as fh:
        data = fh.read()
    assert 0 < offset < len(data)
    with open(path, "wb") as fh:
        fh.write(data[:offset])


def worker_final_chunk(path):
    reader = ClapReader.open(path)
    finals = [
        c for c in reader.chunks if c.flags & CHUNK_FINAL and c.thread != "1"
    ]
    assert finals, "expected a final chunk for the worker thread"
    return finals[0]


def test_recovered_truncated_trace_still_reproduces(crashy_entry):
    """The tentpole acceptance scenario: lose the worker's finalize-time
    flush, recover by synthesizing its partial token, reproduce."""
    entry = crashy_entry
    truncate_before(entry.trace_path, worker_final_chunk(entry.trace_path).offset)
    ok, problems = entry.verify()
    assert not ok and any("footer" in p for p in problems)

    report = entry.recover()
    assert report.validated
    assert sum(report.synthesized_partials.values()) >= 1
    assert report.dropped_threads == []

    ok, problems = entry.verify()
    assert ok, problems
    reader = ClapReader.open(entry.trace_path)
    assert all(c.flags & CHUNK_RECOVERED for c in reader.chunks)
    assert entry.manifest["recovered"] is True

    stored = entry.load_execution()
    pipeline = ClapPipeline(
        stored.program, ClapConfig(**entry.config_kwargs())
    )
    assert pipeline.reproduce_offline(stored).reproduced


def test_load_execution_recovers_transparently(crashy_entry):
    """load_execution on a truncated container recovers in memory
    without rewriting the file."""
    entry = crashy_entry
    truncate_before(entry.trace_path, worker_final_chunk(entry.trace_path).offset)
    stored = entry.load_execution()
    assert stored.recovery is not None
    assert stored.recovery.validated
    assert not ClapReader.open(entry.trace_path).complete  # untouched
    report = ClapPipeline(
        stored.program, ClapConfig(**entry.config_kwargs())
    ).reproduce_offline(stored)
    assert report.reproduced


def test_losing_the_bug_thread_tail_is_reported_honestly(crashy_entry):
    """Truncating main's own finalize flush loses the failure position;
    recovery must say validation failed, not fabricate a reproduction."""
    entry = crashy_entry
    reader = ClapReader.open(entry.trace_path)
    main_final = [
        c for c in reader.chunks if c.flags & CHUNK_FINAL and c.thread == "1"
    ][0]
    truncate_before(entry.trace_path, main_final.offset)
    report = entry.recover()
    assert not report.validated
    assert any("assert" in note or "validation" in note for note in report.notes)


def test_recover_refuses_complete_container(crashy_entry):
    from repro.store import CorpusError

    with pytest.raises(CorpusError):
        crashy_entry.recover()


def test_recover_tokens_drops_orphan_threads(crashy_entry):
    """A thread whose spawn record fell in the lost tail cannot be
    accounted for and is dropped from the recovered trace."""
    entry = crashy_entry
    program = entry.compile_program()
    reader = ClapReader.open(entry.trace_path)
    logs = reader.thread_tokens()
    # Keep the child's tokens but delete the parent's entirely: the
    # child's spawn record is gone.
    orphan_logs = {"1:1": logs["1:1"]}
    recovered, report = recover_tokens(orphan_logs, program, bug=entry.bug())
    assert "1:1" not in recovered or not report.validated
