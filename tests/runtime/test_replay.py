import pytest

from repro.minilang import compile_source
from repro.runtime.interpreter import run_program
from repro.runtime.replay import ReplayError, replay_schedule
from repro.runtime.scheduler import find_buggy_seed


def ground_truth_replay(program, memory_model, **search_kwargs):
    hit = find_buggy_seed(program, memory_model, **search_kwargs)
    assert hit is not None, "bug never manifested"
    seed, buggy = hit
    outcome = replay_schedule(
        program, buggy.schedule(), memory_model, expected_bug=buggy.bug
    )
    return buggy, outcome


def test_sc_ground_truth_schedule_reproduces(race_program):
    buggy, outcome = ground_truth_replay(
        race_program, "sc", seeds=range(100), stickiness=0.3
    )
    assert outcome.reproduced
    assert outcome.bug.same_failure(buggy.bug)


def test_tso_ground_truth_schedule_reproduces(sb_program):
    buggy, outcome = ground_truth_replay(
        sb_program, "tso", seeds=range(300), stickiness=0.5, flush_prob=0.05
    )
    assert outcome.reproduced


def test_pso_ground_truth_schedule_reproduces(mp_program):
    buggy, outcome = ground_truth_replay(
        mp_program, "pso", seeds=range(400), stickiness=0.5, flush_prob=0.05
    )
    assert outcome.reproduced


def test_sb_assert_never_fails_under_sc(sb_program):
    assert (
        find_buggy_seed(sb_program, "sc", seeds=range(150), stickiness=0.3) is None
    )


def test_mp_assert_never_fails_under_tso(mp_program):
    # TSO preserves store-store order, so the message-passing assert holds.
    assert (
        find_buggy_seed(
            mp_program, "tso", seeds=range(150), stickiness=0.4, flush_prob=0.05
        )
        is None
    )


def test_replay_same_clean_schedule_is_faithful(condvar_program):
    clean = run_program(condvar_program, seed=5, stickiness=0.4)
    assert clean.ok
    outcome = replay_schedule(condvar_program, clean.schedule(), "sc")
    assert not outcome.reproduced  # no bug expected
    assert outcome.result.bug is None
    assert outcome.result.final_globals[("y",)] == 10


def test_replay_rejects_schedule_for_unforked_thread(race_program):
    with pytest.raises(ReplayError):
        replay_schedule(race_program, [("1:1", 0)], "sc")


def test_replay_rejects_out_of_order_thread_schedule(race_program):
    run = run_program(race_program, seed=1, stickiness=0.3)
    schedule = run.schedule()
    # Swap two same-thread SAPs: program order violated.
    idx = [i for i, uid in enumerate(schedule) if uid[0] == "1"][:2]
    schedule[idx[0]], schedule[idx[1]] = schedule[idx[1]], schedule[idx[0]]
    with pytest.raises(ReplayError):
        replay_schedule(race_program, schedule, "sc")


def test_replay_determinism(race_program):
    hit = find_buggy_seed(race_program, "sc", seeds=range(100), stickiness=0.3)
    _, buggy = hit
    a = replay_schedule(race_program, buggy.schedule(), "sc", expected_bug=buggy.bug)
    b = replay_schedule(race_program, buggy.schedule(), "sc", expected_bug=buggy.bug)
    assert a.result.schedule() == b.result.schedule()
    assert a.reproduced and b.reproduced
