from repro.minilang import compile_source
from repro.runtime.interpreter import Interpreter, run_program
from repro.runtime.scheduler import (
    FixedScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    find_buggy_seed,
)

TWO_WRITERS = """
int x = 0;
void a() { x = 1; }
void b() { x = 2; }
int main() {
    int t1 = 0; int t2 = 0;
    t1 = spawn a(); t2 = spawn b();
    join(t1); join(t2);
    return 0;
}
"""


def test_fixed_scheduler_controls_interleaving():
    prog = compile_source(TWO_WRITERS)
    # Drive main until both children spawned, then run thread 3 (b) fully
    # before thread 2 (a): final x must be 1.
    decisions = [("step", 1)] * 40 + [("step", 3)] * 40 + [("step", 2)] * 40 + [
        ("step", 1)
    ] * 40
    res = run_program(prog, scheduler=FixedScheduler(decisions))
    assert res.final_globals[("x",)] == 1
    # And the other way round: final x must be 2.
    decisions = [("step", 1)] * 40 + [("step", 2)] * 40 + [("step", 3)] * 40 + [
        ("step", 1)
    ] * 40
    res = run_program(prog, scheduler=FixedScheduler(decisions))
    assert res.final_globals[("x",)] == 2


def test_random_scheduler_reset_restores_determinism():
    sched = RandomScheduler(42, stickiness=0.3)
    prog = compile_source(TWO_WRITERS)
    r1 = Interpreter(prog, scheduler=sched).run()
    sched2 = RandomScheduler(42, stickiness=0.3)
    r2 = Interpreter(prog, scheduler=sched2).run()
    assert r1.schedule() == r2.schedule()


def test_different_seeds_explore_different_interleavings():
    prog = compile_source(TWO_WRITERS)
    finals = set()
    for seed in range(40):
        res = run_program(prog, seed=seed, stickiness=0.3)
        finals.add(res.final_globals[("x",)])
    assert finals == {1, 2}, "seeded runs never exercised both write orders"


def test_round_robin_quantum_bounds_bursts():
    prog = compile_source(TWO_WRITERS)
    res = run_program(prog, scheduler=RoundRobinScheduler(quantum=2))
    assert res.bug is None


def test_find_buggy_seed_returns_none_for_correct_program(locked_program):
    assert (
        find_buggy_seed(locked_program, "sc", seeds=range(30), stickiness=0.3)
        is None
    )


def test_find_buggy_seed_finds_race(race_program):
    hit = find_buggy_seed(race_program, "sc", seeds=range(100), stickiness=0.3)
    assert hit is not None
    seed, result = hit
    assert result.bug is not None


def test_yielding_thread_loses_turn():
    # A spin loop with yield must let the other thread make progress even
    # under maximal stickiness.
    src = """
    int flag = 0;
    void setter() { flag = 1; }
    int main() {
        int t = 0;
        t = spawn setter();
        while (flag == 0) { yield; }
        join(t);
        return 0;
    }
    """
    prog = compile_source(src)
    res = run_program(prog, seed=0, stickiness=1.0, max_steps=100_000)
    assert res.ok
