import pytest

from repro.runtime.errors import MiniRuntimeError
from repro.runtime.values import c_div, c_mod, eval_binop, eval_unop, truthy


def test_c_division_truncates_toward_zero():
    assert c_div(7, 2) == 3
    assert c_div(-7, 2) == -3
    assert c_div(7, -2) == -3
    assert c_div(-7, -2) == 3


def test_c_mod_sign_follows_dividend():
    assert c_mod(7, 3) == 1
    assert c_mod(-7, 3) == -1
    assert c_mod(7, -3) == 1
    assert c_mod(-7, -3) == -1


def test_div_mod_identity():
    for a in range(-20, 21):
        for b in (-7, -3, -1, 1, 2, 5):
            assert c_div(a, b) * b + c_mod(a, b) == a


def test_division_by_zero_raises():
    with pytest.raises(MiniRuntimeError):
        c_div(1, 0)
    with pytest.raises(MiniRuntimeError):
        c_mod(1, 0)


def test_comparisons_return_ints():
    assert eval_binop("<", 1, 2) == 1
    assert eval_binop(">=", 1, 2) == 0
    assert eval_binop("==", 3, 3) == 1
    assert eval_binop("!=", 3, 3) == 0


def test_logical_ops_are_strict_on_ints():
    assert eval_binop("&&", 5, -1) == 1
    assert eval_binop("&&", 5, 0) == 0
    assert eval_binop("||", 0, 0) == 0
    assert eval_binop("||", 0, 7) == 1


def test_unary_ops():
    assert eval_unop("-", 5) == -5
    assert eval_unop("!", 0) == 1
    assert eval_unop("!", 3) == 0


def test_unknown_operator_raises():
    with pytest.raises(MiniRuntimeError):
        eval_binop("**", 2, 3)
    with pytest.raises(MiniRuntimeError):
        eval_unop("~", 2)


def test_truthy():
    assert truthy(1) and truthy(-5)
    assert not truthy(0)
