"""Memory-model litmus tests: the substrate matches the architecture."""

import pytest

from repro.runtime.litmus import (
    FORBIDDEN,
    LITMUS_TESTS,
    REQUIRED_WITNESS,
    run_litmus,
)

MODELS = ("sc", "tso", "pso")


@pytest.mark.parametrize("name", sorted(LITMUS_TESTS))
@pytest.mark.parametrize("model", MODELS)
def test_forbidden_outcomes_never_observed(name, model):
    result = run_litmus(name, model, seeds=range(400))
    forbidden = FORBIDDEN[(name, model)]
    assert not (result.outcomes & forbidden), (
        "%s under %s exhibited forbidden outcome(s) %s"
        % (name, model, result.outcomes & forbidden)
    )


@pytest.mark.parametrize(
    "name,model", sorted((n, m) for (n, m) in REQUIRED_WITNESS)
)
def test_relaxed_witnesses_reachable(name, model):
    witness = REQUIRED_WITNESS[(name, model)]
    result = run_litmus(name, model, seeds=range(800), flush_prob=0.03)
    assert witness in result.outcomes, (
        "%s under %s never exhibited its witness %s (outcomes: %s)"
        % (name, model, witness, sorted(result.outcomes))
    )


def test_sc_outcomes_subset_of_tso_subset_of_pso():
    """Monotonicity: every SC outcome is TSO-reachable; every TSO outcome
    is PSO-reachable (weaker models only add behaviours)."""
    for name in LITMUS_TESTS:
        sc = run_litmus(name, "sc", seeds=range(300)).outcomes
        tso = run_litmus(name, "tso", seeds=range(600), flush_prob=0.05).outcomes
        pso = run_litmus(name, "pso", seeds=range(600), flush_prob=0.05).outcomes
        assert sc <= tso, (name, sc - tso)
        assert tso <= pso, (name, tso - pso)
