import pytest

from repro.minilang import compile_source
from repro.runtime.memory import PSOMemory, SCMemory, TSOMemory, make_memory


@pytest.fixture
def symbols():
    prog = compile_source(
        "int x = 5; int y; int a[3]; mutex m; int main() {}"
    )
    return prog.symbols


def test_initial_values(symbols):
    mem = SCMemory(symbols)
    assert mem.read(1, ("x",)) == 5
    assert mem.read(1, ("y",)) == 0
    assert mem.read(1, ("a", 2)) == 0


def test_unknown_address_rejected(symbols):
    mem = SCMemory(symbols)
    with pytest.raises(KeyError):
        mem.read(1, ("zzz",))
    with pytest.raises(IndexError):
        mem.read(1, ("a", 99))


def test_sc_writes_are_immediately_visible(symbols):
    mem = SCMemory(symbols)
    mem.write(1, ("x",), 9)
    assert mem.read(2, ("x",)) == 9
    assert mem.flush_choices() == []


def test_tso_write_buffers_until_flush(symbols):
    mem = TSOMemory(symbols)
    mem.write(1, ("x",), 9)
    assert mem.read(2, ("x",)) == 5, "other thread sees old value"
    assert mem.read(1, ("x",)) == 9, "own thread forwards from buffer"
    (pending,) = mem.flush_choices()
    mem.flush(pending)
    assert mem.read(2, ("x",)) == 9


def test_tso_buffer_is_fifo(symbols):
    mem = TSOMemory(symbols)
    mem.write(1, ("x",), 1)
    mem.write(1, ("y",), 2)
    choices = mem.flush_choices()
    assert len(choices) == 1, "only the FIFO head is flushable"
    assert choices[0].addr == ("x",)
    # Flushing a non-head store is rejected.
    head = choices[0]
    mem.flush(head)
    (second,) = mem.flush_choices()
    assert second.addr == ("y",)


def test_tso_flush_non_head_rejected(symbols):
    mem = TSOMemory(symbols)
    mem.write(1, ("x",), 1)
    mem.write(1, ("y",), 2)
    stores = mem.pending_stores(1)
    with pytest.raises(ValueError):
        mem.flush(stores[1])


def test_pso_different_addresses_flush_in_either_order(symbols):
    mem = PSOMemory(symbols)
    mem.write(1, ("x",), 1)
    mem.write(1, ("y",), 2)
    choices = mem.flush_choices()
    assert {c.addr for c in choices} == {("x",), ("y",)}
    # Drain y first: the PSO reordering.
    y = next(c for c in choices if c.addr == ("y",))
    mem.flush(y)
    assert mem.global_value(("y",)) == 2
    assert mem.global_value(("x",)) == 5


def test_pso_same_address_stays_fifo(symbols):
    mem = PSOMemory(symbols)
    mem.write(1, ("x",), 1)
    mem.write(1, ("x",), 2)
    (head,) = mem.flush_choices()
    mem.flush(head)
    assert mem.global_value(("x",)) == 1
    (second,) = mem.flush_choices()
    mem.flush(second)
    assert mem.global_value(("x",)) == 2


def test_pso_read_forwards_newest_own_store(symbols):
    mem = PSOMemory(symbols)
    mem.write(1, ("x",), 1)
    mem.write(1, ("x",), 2)
    assert mem.read(1, ("x",)) == 2
    assert mem.read(2, ("x",)) == 5


def test_fence_drains_only_that_thread(symbols):
    for cls in (TSOMemory, PSOMemory):
        mem = cls(symbols)
        mem.write(1, ("x",), 1)
        mem.write(2, ("y",), 2)
        mem.fence(1)
        assert mem.global_value(("x",)) == 1
        assert mem.global_value(("y",)) == 0
        assert mem.pending_count(2) == 1


def test_drain_all(symbols):
    mem = PSOMemory(symbols)
    mem.write(1, ("x",), 1)
    mem.write(2, ("y",), 2)
    mem.drain_all()
    assert mem.pending_count() == 0
    assert mem.global_value(("x",)) == 1
    assert mem.global_value(("y",)) == 2


def test_non_shared_addresses_bypass_buffers(symbols):
    mem = TSOMemory(symbols, shared_addrs=lambda addr: addr[0] == "x")
    mem.write(1, ("y",), 7)
    assert mem.global_value(("y",)) == 7
    assert mem.pending_count() == 0


def test_make_memory_dispatch(symbols):
    assert make_memory("sc", symbols).model == "sc"
    assert make_memory("tso", symbols).model == "tso"
    assert make_memory("pso", symbols).model == "pso"
    with pytest.raises(ValueError):
        make_memory("rmo", symbols)
