import pytest

from repro.minilang import compile_source
from repro.runtime import events as ev
from repro.runtime.errors import MiniRuntimeError
from repro.runtime.interpreter import Interpreter, run_program
from repro.runtime.scheduler import FixedScheduler, RandomScheduler, RoundRobinScheduler


def run_src(src, **kwargs):
    return run_program(compile_source(src), **kwargs)


def test_sequential_arithmetic():
    res = run_src(
        """
        int out = 0;
        int main() {
            int a = 7;
            int b = a * 3 - 1;
            out = b / 2;
            return 0;
        }
        """
    )
    assert res.ok
    assert res.final_globals[("out",)] == 10


def test_loops_and_arrays():
    res = run_src(
        """
        int a[5];
        int sum = 0;
        int main() {
            for (int i = 0; i < 5; i++) { a[i] = i * i; }
            for (int i = 0; i < 5; i++) { sum = sum + a[i]; }
            return 0;
        }
        """
    )
    assert res.final_globals[("sum",)] == 0 + 1 + 4 + 9 + 16


def test_function_calls_and_returns():
    res = run_src(
        """
        int out = 0;
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() { out = fib(10); return 0; }
        """
    )
    assert res.final_globals[("out",)] == 55


def test_division_by_zero_is_runtime_error():
    prog = compile_source("int x = 0; int main() { x = 1 / x; }")
    with pytest.raises(MiniRuntimeError):
        run_program(prog)


def test_assert_failure_reported():
    res = run_src("int main() { assert(1 == 2); return 0; }")
    assert res.bug is not None
    assert res.bug.kind == "assertion"


def test_assume_failure_aborts_silently():
    res = run_src("int main() { assume(1 == 2); return 0; }")
    assert res.bug is None
    assert res.aborted == "assume-failed"


def test_print_collects_output():
    res = run_src("int main() { print(1, 2); print(3); return 0; }")
    assert res.output == [("1", (1, 2)), ("1", (3,))]


def test_thread_naming_is_hierarchical():
    res = run_src(
        """
        void child() { }
        void parent() {
            int t = 0;
            t = spawn child();
            join(t);
        }
        int main() {
            int t = 0;
            t = spawn parent();
            join(t);
            return 0;
        }
        """
    )
    assert set(res.thread_names.values()) == {"1", "1:1", "1:1:1"}


def test_join_waits_for_child():
    res = run_src(
        """
        int x = 0;
        void child() { x = 42; }
        int main() {
            int t = 0;
            t = spawn child();
            join(t);
            assert(x == 42);
            return 0;
        }
        """,
        seed=3,
    )
    assert res.ok, res.bug


def test_mutex_enforces_exclusion():
    # With the lock, the counter cannot lose updates under any schedule.
    src = """
    int c = 0;
    mutex m;
    void w() {
        for (int i = 0; i < 3; i++) {
            lock(m);
            int r = c;
            c = r + 1;
            unlock(m);
        }
    }
    int main() {
        int a = 0; int b = 0;
        a = spawn w(); b = spawn w();
        join(a); join(b);
        assert(c == 6);
        return 0;
    }
    """
    prog = compile_source(src)
    for seed in range(30):
        res = run_program(prog, seed=seed, stickiness=0.2)
        assert res.ok, (seed, res.bug)


def test_unlock_by_non_owner_is_error():
    prog = compile_source(
        """
        mutex m;
        void w() { unlock(m); }
        int main() {
            lock(m);
            int t = 0;
            t = spawn w();
            join(t);
            return 0;
        }
        """
    )
    with pytest.raises(MiniRuntimeError):
        run_program(prog)


def test_deadlock_detected():
    prog = compile_source(
        """
        mutex a;
        mutex b;
        void t1() { lock(a); lock(b); unlock(b); unlock(a); }
        void t2() { lock(b); lock(a); unlock(a); unlock(b); }
        int main() {
            int x = 0; int y = 0;
            x = spawn t1(); y = spawn t2();
            join(x); join(y);
            return 0;
        }
        """
    )
    found = False
    for seed in range(100):
        res = run_program(prog, seed=seed, stickiness=0.2)
        if res.bug is not None and res.bug.kind == "deadlock":
            found = True
            break
    assert found, "AB/BA deadlock never manifested in 100 seeds"


def test_step_limit_aborts():
    prog = compile_source("int x = 0; int main() { while (x == 0) { yield; } }")
    res = run_program(prog, max_steps=500)
    assert res.aborted == "step-limit"


def test_sap_events_have_consistent_uids(race_program):
    res = run_program(race_program, seed=1, stickiness=0.3)
    for thread, saps in res.saps_by_thread.items():
        assert [s.index for s in saps] == list(range(len(saps)))
        if saps:
            assert saps[0].kind == ev.START


def test_memory_order_events_match_sc_program_order(race_program):
    res = run_program(race_program, seed=1, stickiness=0.3)
    # Under SC, each thread's events appear in its program order.
    seen = {}
    for sap in res.events:
        last = seen.get(sap.thread, -1)
        assert sap.index > last
        seen[sap.thread] = sap.index


def test_shared_set_limits_saps():
    src = """
    int shared_x = 0;
    int private_y = 0;
    void w() { shared_x = 1; private_y = 2; }
    int main() {
        int t = 0;
        t = spawn w();
        join(t);
        return 0;
    }
    """
    prog = compile_source(src)
    res = run_program(prog, shared={"shared_x"})
    kinds = [(s.kind, s.addr) for s in res.saps_by_thread["1:1"]]
    assert (ev.WRITE, ("shared_x",)) in kinds
    assert all(addr != ("private_y",) for _, addr in kinds)


def test_round_robin_scheduler_is_deterministic(race_program):
    r1 = run_program(race_program, scheduler=RoundRobinScheduler(3))
    r2 = run_program(race_program, scheduler=RoundRobinScheduler(3))
    assert r1.schedule() == r2.schedule()


def test_random_scheduler_same_seed_same_run(race_program):
    r1 = run_program(race_program, seed=11, stickiness=0.4)
    r2 = run_program(race_program, seed=11, stickiness=0.4)
    assert r1.schedule() == r2.schedule()
    assert (r1.bug is None) == (r2.bug is None)


def test_condvar_producer_consumer(condvar_program):
    for seed in range(25):
        res = run_program(condvar_program, seed=seed, stickiness=0.3)
        assert res.ok, (seed, res.bug)
        assert res.final_globals[("y",)] == 10


def test_broadcast_wakes_all_waiters():
    src = """
    int go = 0;
    int woke = 0;
    mutex m;
    cond cv;
    void waiter() {
        lock(m);
        while (go == 0) { wait(cv, m); }
        woke = woke + 1;
        unlock(m);
    }
    int main() {
        int a = 0; int b = 0; int c = 0;
        a = spawn waiter(); b = spawn waiter(); c = spawn waiter();
        lock(m);
        go = 1;
        broadcast(cv);
        unlock(m);
        join(a); join(b); join(c);
        assert(woke == 3);
        return 0;
    }
    """
    prog = compile_source(src)
    for seed in range(20):
        res = run_program(prog, seed=seed, stickiness=0.4)
        assert res.ok, (seed, res.bug)
