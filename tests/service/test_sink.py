"""JsonlSink crash safety: fsync + atomic rename, never a torn file."""

import json
import os

from repro.service.batch import JsonlSink


def test_close_renames_partial_onto_final(tmp_path):
    path = str(tmp_path / "results.jsonl")
    sink = JsonlSink(path)
    sink.write({"n": 1})
    sink.write({"n": 2})
    # Before close only the partial exists — the final file appears
    # atomically, complete, on close.
    assert not os.path.exists(path)
    assert os.path.exists(path + ".partial")
    sink.close()
    assert os.path.exists(path)
    assert not os.path.exists(path + ".partial")
    assert [r["n"] for r in JsonlSink.read(path)] == [1, 2]
    sink.close()  # idempotent


def test_killed_run_leaves_readable_prefix(tmp_path):
    path = str(tmp_path / "results.jsonl")
    sink = JsonlSink(path)
    sink.write({"n": 1})
    sink.write({"n": 2})
    # Simulate a kill: the process dies without close(); a torn half-line
    # is sitting at the end of the partial file.
    sink._fh.write('{"n": 3, "torn": tr')
    sink._fh.flush()
    del sink
    # read() falls back to the partial and drops only the torn tail.
    assert [r["n"] for r in JsonlSink.read(path)] == [1, 2]


def test_append_semantics_preserved_across_runs(tmp_path):
    path = str(tmp_path / "results.jsonl")
    first = JsonlSink(path)
    first.write({"run": 1})
    first.close()
    second = JsonlSink(path)
    second.write({"run": 2})
    second.close()
    assert [r["run"] for r in JsonlSink.read(path)] == [1, 2]


def test_torn_middle_line_still_raises(tmp_path):
    # Only the *final* line of a partial may be torn; corruption in the
    # middle is a real problem and must not be silently skipped.
    path = str(tmp_path / "results.jsonl")
    with open(path, "w") as fh:
        fh.write('{"n": 1}\n{"torn": \n{"n": 3}\n')
    try:
        JsonlSink.read(path)
    except ValueError:
        pass
    else:
        raise AssertionError("mid-file corruption was silently dropped")
