"""Batch + analysis cache: second run hits, results unchanged."""

import json
import os

import pytest

from repro.core.clap import ClapConfig
from repro.service import JsonlSink, format_batch_table, run_batch
from repro.store import Corpus
from repro.store.cache import AnalysisCache

from tests.conftest import RACE_SRC

ORDER_SRC = """
int ready = 0;
int data = 0;

void producer() {
    data = 41;
    ready = 1;
}

int main() {
    int t = 0;
    t = spawn producer();
    if (ready == 1) {
        assert(data == 42);
    }
    join(t);
    return 0;
}
"""

# Fields that legitimately differ between byte-identical reproductions:
# wall clocks, worker identity, and the cache counters themselves.
VOLATILE_FIELDS = (
    "wall_time",
    "time_symbolic",
    "time_solve",
    "worker_pid",
    "cache",
)


def normalized(records):
    out = []
    for record in records:
        out.append({k: v for k, v in record.items() if k not in VOLATILE_FIELDS})
    return out


@pytest.fixture(scope="module")
def corpus_root(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("corpus"))
    corpus = Corpus.create(root)
    corpus.add(RACE_SRC, name="race", config=ClapConfig(seeds=range(50)))
    corpus.add(ORDER_SRC, name="order", config=ClapConfig(seeds=range(200)))
    return root


def test_second_batch_run_hits_cache(corpus_root, tmp_path):
    sink1 = str(tmp_path / "run1.jsonl")
    sink2 = str(tmp_path / "run2.jsonl")

    results1, agg1 = run_batch(corpus_root, jobs=2, sink_path=sink1)
    assert agg1["reproduced"] == 2
    assert agg1["cache"]["misses"] == 2
    assert agg1["cache"]["hits"] == 0
    assert agg1["cache"]["bytes_written"] > 0
    assert os.path.isdir(os.path.join(corpus_root, "cache"))

    results2, agg2 = run_batch(corpus_root, jobs=2, sink_path=sink2)
    assert agg2["reproduced"] == 2
    assert agg2["cache"]["hits"] == 2
    assert agg2["cache"]["misses"] == 0
    assert agg2["cache"]["stale"] == 0
    assert agg2["cache"]["bytes_read"] == agg1["cache"]["bytes_written"]
    for result in results2:
        assert result.cache["state"] == "hit"

    # Modulo volatile fields (wall clocks, pids, the cache counters),
    # the cached run's JSONL is byte-for-byte the uncached run's.
    rec1 = sorted(JsonlSink.read(sink1), key=lambda r: r["entry_id"])
    rec2 = sorted(JsonlSink.read(sink2), key=lambda r: r["entry_id"])
    n1, n2 = normalized(rec1), normalized(rec2)
    assert [json.dumps(r, sort_keys=True) for r in n1] == [
        json.dumps(r, sort_keys=True) for r in n2
    ]

    table = format_batch_table(results2, agg2)
    assert "cache: hits=2 misses=0 stale=0" in table


def test_no_cache_flag_bypasses_cache(corpus_root, tmp_path):
    results, aggregate = run_batch(
        corpus_root,
        jobs=2,
        sink_path=str(tmp_path / "nocache.jsonl"),
        use_cache=False,
    )
    assert aggregate["reproduced"] == 2
    assert aggregate["cache"] == {}
    assert all(r.cache == {} for r in results)
    table = format_batch_table(results, aggregate)
    assert "cache:" not in table


def test_batch_recovers_from_stale_cache_entries(corpus_root, tmp_path):
    cache = AnalysisCache(os.path.join(corpus_root, "cache"))
    paths = cache.entry_paths()
    assert paths  # populated by the earlier run
    for path in paths:
        with open(path, "wb") as fh:
            fh.write(b"not a pickle")
    results, aggregate = run_batch(
        corpus_root, jobs=2, sink_path=str(tmp_path / "stale.jsonl")
    )
    assert aggregate["reproduced"] == 2
    assert aggregate["cache"]["stale"] == 2
    assert aggregate["cache"]["misses"] == 2  # re-analyzed and re-stored
    assert all(r.status == "reproduced" for r in results)
