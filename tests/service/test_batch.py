"""Batch engine end to end: corpus in, JSONL + aggregate table out."""

import pytest

from repro.core.clap import ClapConfig
from repro.service import (
    STATUS_REPRODUCED,
    STATUS_TIMEOUT,
    JsonlSink,
    format_batch_table,
    run_batch,
    run_repro_job,
)
from repro.service.faults import corrupt_chunk
from repro.service.jobs import JobSpec
from repro.store import Corpus

from tests.conftest import RACE_SRC

ORDER_SRC = """
int ready = 0;
int data = 0;

void producer() {
    data = 41;
    ready = 1;
}

int main() {
    int t = 0;
    t = spawn producer();
    if (ready == 1) {
        assert(data == 42);
    }
    join(t);
    return 0;
}
"""


@pytest.fixture(scope="module")
def corpus_root(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("corpus"))
    corpus = Corpus.create(root)
    corpus.add(RACE_SRC, name="race", config=ClapConfig(seeds=range(50)))
    corpus.add(ORDER_SRC, name="order", config=ClapConfig(seeds=range(200)))
    return root


def test_batch_reproduces_all(corpus_root, tmp_path):
    sink_path = str(tmp_path / "results.jsonl")
    results, aggregate = run_batch(corpus_root, jobs=2, sink_path=sink_path)
    assert aggregate["jobs"] == 2
    assert aggregate["reproduced"] == 2
    assert all(r.status == STATUS_REPRODUCED for r in results)
    # Sink got one flushed line per job, matching the returned results.
    records = JsonlSink.read(sink_path)
    assert len(records) == 2
    assert {r["entry_id"] for r in records} == {r.entry_id for r in results}
    table = format_batch_table(results, aggregate)
    assert "reproduced" in table
    assert "2 jobs" in table


def test_injected_crash_is_retried_and_succeeds(corpus_root):
    corpus = Corpus.open(corpus_root)
    victim = corpus.entry_ids()[0]
    results, aggregate = run_batch(
        corpus_root,
        jobs=2,
        faults_by_entry={victim: {"kill_worker": {"attempts": [1]}}},
    )
    assert aggregate["reproduced"] == 2
    by_id = {r.entry_id: r for r in results}
    assert by_id[victim].attempts == 2
    assert all(
        r.attempts == 1 for r in results if r.entry_id != victim
    )


def test_injected_slow_solve_times_out_without_stalling(corpus_root, tmp_path):
    corpus = Corpus.open(corpus_root)
    slow = corpus.entry_ids()[0]
    sink_path = str(tmp_path / "results.jsonl")
    results, aggregate = run_batch(
        corpus_root,
        jobs=2,
        timeout=2.0,
        faults_by_entry={slow: {"slow_solve": {"seconds": 60}}},
        sink_path=sink_path,
    )
    by_id = {r.entry_id: r for r in results}
    assert by_id[slow].status == STATUS_TIMEOUT
    others = [r for r in results if r.entry_id != slow]
    assert all(r.status == STATUS_REPRODUCED for r in others)
    # The timeout is in the durable sink too, not just the return value.
    records = {r["entry_id"]: r for r in JsonlSink.read(sink_path)}
    assert records[slow]["status"] == STATUS_TIMEOUT


def test_job_on_corrupt_entry_fails_cleanly(corpus_root, tmp_path):
    # Copy the corpus so the corruption does not leak into other tests.
    import shutil

    root = str(tmp_path / "corpus")
    shutil.copytree(corpus_root, root)
    corpus = Corpus.open(root)
    entry = corpus.entries()[0]
    corrupt_chunk(entry.trace_path, 0)
    ok, problems = entry.verify()
    assert not ok
    outcome = run_repro_job(
        JobSpec(corpus_root=root, entry_id=entry.entry_id).to_dict()
    )
    assert outcome["status"] in ("failed", "reproduced")
    # A corrupt chunk loses trace data; the job must not crash the
    # worker.  (Recovery may still salvage enough to reproduce.)
    assert outcome["entry_id"] == entry.entry_id


def test_unknown_entry_fails_not_crashes(corpus_root):
    outcome = run_repro_job(
        JobSpec(corpus_root=corpus_root, entry_id="nope").to_dict()
    )
    assert outcome["status"] == "failed"
    assert "nope" in outcome["reason"]
