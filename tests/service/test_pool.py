"""Worker-pool failure paths: crashes retried, timeouts killed, no stalls."""

import os
import time

from repro.service.pool import WorkerPool


def _job_ok(spec, attempt):
    return {
        "entry_id": spec["entry_id"],
        "status": "reproduced",
        "attempt_seen": attempt,
        "worker_pid": os.getpid(),
    }


def _job_crash_then_ok(spec, attempt):
    # Die like a SIGKILL'd worker until the configured attempt.
    if attempt < spec.get("ok_on_attempt", 2):
        os._exit(9)
    return _job_ok(spec, attempt)


def _job_maybe_hang(spec, attempt):
    if spec.get("hang"):
        time.sleep(120)
    return _job_ok(spec, attempt)


def _job_raise(spec, attempt):
    raise ValueError("executor bug for %s" % spec["entry_id"])


def spec(entry_id, **extra):
    base = {
        "entry_id": entry_id,
        "timeout": 5.0,
        "max_attempts": 3,
        "backoff": 0.05,
    }
    base.update(extra)
    return base


def test_happy_path_order_preserved():
    pool = WorkerPool(_job_ok, jobs=2)
    outcomes = pool.run([spec("a"), spec("b"), spec("c")])
    assert [o["entry_id"] for o in outcomes] == ["a", "b", "c"]
    assert all(o["status"] == "reproduced" for o in outcomes)
    assert all(o["attempts"] == 1 for o in outcomes)


def test_crashed_worker_is_retried_and_succeeds():
    pool = WorkerPool(_job_crash_then_ok, jobs=2)
    outcomes = pool.run([spec("flaky", ok_on_attempt=2), spec("solid", ok_on_attempt=1)])
    flaky, solid = outcomes
    assert flaky["status"] == "reproduced"
    assert flaky["attempts"] == 2
    assert flaky["attempt_seen"] == 2
    assert solid["attempts"] == 1


def test_crash_every_attempt_is_terminal():
    pool = WorkerPool(_job_crash_then_ok, jobs=1)
    outcomes = pool.run([spec("doomed", ok_on_attempt=99, max_attempts=2)])
    assert outcomes[0]["status"] == "crashed"
    assert outcomes[0]["attempts"] == 2
    assert "died" in outcomes[0]["reason"]


def test_timeout_job_is_killed_and_does_not_stall_pool():
    pool = WorkerPool(_job_maybe_hang, jobs=2)
    t0 = time.monotonic()
    outcomes = pool.run(
        [
            spec("hangs", hang=True, timeout=1.0),
            spec("quick-1"),
            spec("quick-2"),
            spec("quick-3"),
        ]
    )
    elapsed = time.monotonic() - t0
    hung, *quick = outcomes
    assert hung["status"] == "timeout"
    assert "budget" in hung["reason"]
    assert all(o["status"] == "reproduced" for o in quick)
    # The hang burned one worker for ~1s; everything else flowed through
    # the other worker.  Nothing waited for the 120s sleep.
    assert elapsed < 30


def test_timeout_is_terminal_no_retry():
    pool = WorkerPool(_job_maybe_hang, jobs=1)
    outcomes = pool.run([spec("hangs", hang=True, timeout=0.5, max_attempts=3)])
    assert outcomes[0]["status"] == "timeout"
    assert outcomes[0]["attempts"] == 1


def test_executor_exception_retried_then_crashed():
    pool = WorkerPool(_job_raise, jobs=1)
    outcomes = pool.run([spec("bug", max_attempts=2)])
    assert outcomes[0]["status"] == "crashed"
    assert outcomes[0]["attempts"] == 2
    assert "executor raised" in outcomes[0]["reason"]
    assert "ValueError" in outcomes[0]["reason"]


def test_more_jobs_than_workers():
    pool = WorkerPool(_job_ok, jobs=2)
    outcomes = pool.run([spec(str(i)) for i in range(9)])
    assert len(outcomes) == 9
    assert all(o["status"] == "reproduced" for o in outcomes)
    pids = {o["worker_pid"] for o in outcomes}
    assert 1 <= len(pids) <= 2


# -- channel mode ---------------------------------------------------------


def _job_channel_echo(spec, attempt, channel):
    """Publish a payload, then wait briefly for relays from peers."""
    channel.publish({"from": spec["entry_id"]})
    deadline = time.monotonic() + float(spec.get("listen", 1.5))
    received = []
    while time.monotonic() < deadline:
        received.extend(channel.poll())
        if len(received) >= spec.get("expect", 0):
            break
        time.sleep(0.02)
    return {
        "entry_id": spec["entry_id"],
        "status": "reproduced",
        "received": sorted(p["from"] for p in received),
        "worker_pid": os.getpid(),
    }


def _job_send_event(spec, attempt, channel):
    channel.send({"event": "progress", "entry_id": spec["entry_id"]})
    if spec.get("linger"):
        time.sleep(float(spec["linger"]))
    return {"entry_id": spec["entry_id"], "status": "reproduced"}


def test_channel_broadcast_relayed_to_other_workers():
    pool = WorkerPool(_job_channel_echo, jobs=2, channel=True)
    outcomes = pool.run([spec("a", expect=1), spec("b", expect=1)])
    a, b = outcomes
    # Each worker's publish landed in the *other* worker's inbox, never
    # its own.
    assert a["received"] == ["b"]
    assert b["received"] == ["a"]
    assert pool.counters["relayed"] == 2


def test_channel_send_reaches_on_message():
    events = []
    pool = WorkerPool(_job_send_event, jobs=2, channel=True)
    outcomes = pool.run(
        [spec("x"), spec("y")], on_message=events.append
    )
    assert all(o["status"] == "reproduced" for o in outcomes)
    assert sorted(e["entry_id"] for e in events) == ["x", "y"]
    assert all(e["event"] == "progress" for e in events)


def test_stop_remaining_cancels_pending_and_running():
    stopped = []

    def on_message(payload):
        # First progress event wins; everything else must be cancelled.
        if not stopped:
            stopped.append(payload["entry_id"])
            pool.stop_remaining()

    pool = WorkerPool(_job_send_event, jobs=2, channel=True)
    t0 = time.monotonic()
    outcomes = pool.run(
        [
            spec("slow-1", linger=30.0, timeout=60.0),
            spec("slow-2", linger=30.0, timeout=60.0),
            spec("never-started-1", linger=30.0, timeout=60.0),
            spec("never-started-2", linger=30.0, timeout=60.0),
        ],
        on_message=on_message,
    )
    elapsed = time.monotonic() - t0
    # Nothing waited for a 30s linger: cancellation killed the running
    # workers within the poll interval and dropped the queue.
    assert elapsed < 10
    statuses = [o["status"] for o in outcomes]
    assert statuses.count("cancelled") == 4
    assert pool.counters["cancelled"] == 4
    assert all(
        "stopped" in o["reason"] for o in outcomes if o["status"] == "cancelled"
    )


def test_counters_track_respawns():
    pool = WorkerPool(_job_crash_then_ok, jobs=1)
    outcomes = pool.run([spec("flaky", ok_on_attempt=2)])
    assert outcomes[0]["status"] == "reproduced"
    assert pool.counters["respawns"] == 1
