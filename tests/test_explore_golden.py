"""Golden-file lint for ``repro explore --json``.

The explore payload is schema-versioned (``EXPLORE_SCHEMA_VERSION``) and
deterministically ordered (targets sort by code/func/var/description),
so it can be golden-tested the same way as ``repro analyze --json``.
Wall-clock fields are the only nondeterminism; they are zeroed before
comparison.

Goldens live in ``examples/minilang/expected_explore/`` and cover the
store-buffering litmus pair: the unfenced program yields two
replay-validated SR401 witnesses under TSO, the fenced one yields no
targets at all.  Regenerate after an intentional change with::

    REGEN_EXPLORE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_explore_golden.py
"""

import json
import os

import pytest

from repro.core.explore import ExploreConfig, explore_program

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(ROOT, "examples", "minilang")
EXPECTED_DIR = os.path.join(EXAMPLES_DIR, "expected_explore")

REGEN = bool(os.environ.get("REGEN_EXPLORE_GOLDENS"))

# (example stem, memory model, predicate-code filter)
CASES = [
    ("store_buffer", "tso", ("SR401",)),
    ("store_buffer_fenced", "tso", ("SR401", "SR402")),
]


def _normalize(payload):
    """Zero the wall-clock fields; everything else is deterministic."""
    payload = dict(payload)
    payload["time_total"] = 0.0
    payload["targets"] = [
        dict(t, time_search=0.0) for t in payload["targets"]
    ]
    return payload


def _payload(stem, model, codes):
    path = os.path.join(EXAMPLES_DIR, stem + ".ml")
    with open(path) as fh:
        source = fh.read()
    config = ExploreConfig(memory_model=model, max_seeds=16, codes=codes)
    report = explore_program(
        source, config=config, name=os.path.relpath(path, ROOT)
    )
    return _normalize(report.to_json())


@pytest.mark.parametrize("stem,model,codes", CASES, ids=lambda v: str(v))
def test_explore_matches_golden(stem, model, codes):
    golden_path = os.path.join(EXPECTED_DIR, "%s.%s.json" % (stem, model))
    payload = _payload(stem, model, codes)
    if REGEN:
        os.makedirs(EXPECTED_DIR, exist_ok=True)
        with open(golden_path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=False)
            fh.write("\n")
        return
    assert os.path.exists(golden_path), (
        "missing golden %s (REGEN_EXPLORE_GOLDENS=1 to create)" % golden_path
    )
    with open(golden_path) as fh:
        golden = json.load(fh)
    assert payload == golden, (
        "explore output drifted from %s — if intentional, regenerate with "
        "REGEN_EXPLORE_GOLDENS=1" % golden_path
    )


def test_schema_is_versioned():
    payload = _payload("store_buffer_fenced", "tso", ("SR401",))
    assert payload["schema_version"] >= 1
    assert payload["memory_model"] == "tso"
    assert "n_targets" in payload and "n_witnesses" in payload


def test_payload_is_deterministic():
    a = _payload("store_buffer", "tso", ("SR401",))
    b = _payload("store_buffer", "tso", ("SR401",))
    assert a == b
