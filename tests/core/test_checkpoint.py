"""Checkpointed suffix reproduction (the paper's §6.4 extension)."""

import pytest

from repro.core.checkpoint import (
    CheckpointClapPipeline,
    reproduce_with_checkpoints,
)
from repro.core.clap import ClapConfig
from repro.minilang import compile_source
from repro.runtime.checkpoint import (
    is_quiescent,
    restore_interpreter,
    take_checkpoint,
)
from repro.runtime.interpreter import Interpreter, run_program
from repro.runtime.scheduler import RandomScheduler

# A long-running program: a big racy warm-up phase, then the actual bug
# near the end — exactly the shape checkpointing is for.
LONG_RACE_SRC = """
int warmup = 0;
int c = 0;
void worker(int n) {
    for (int i = 0; i < n; i++) {
        int w = warmup;
        warmup = w + 1;
    }
    int r = c;
    yield;
    c = r + 1;
}
int main() {
    int t1 = 0;
    int t2 = 0;
    t1 = spawn worker(25);
    t2 = spawn worker(25);
    join(t1);
    join(t2);
    assert(c == 2);
    return 0;
}
"""


def test_snapshot_restore_roundtrip():
    prog = compile_source(LONG_RACE_SRC)
    interp = Interpreter(prog, scheduler=RandomScheduler(1, stickiness=0.4))
    interp.scheduler.reset()
    # Step manually to some mid-execution point.
    for _ in range(200):
        actions = interp.enabled_actions()
        if not actions:
            break
        action = interp.scheduler.choose(actions, interp)
        interp.steps += 1
        if action[0] == "flush":
            interp._commit_flush(action[1])
        else:
            interp.step_thread(interp.threads[action[1]])
    if not is_quiescent(interp):
        pytest.skip("not quiescent at this point")
    checkpoint = take_checkpoint(interp)
    restored = restore_interpreter(
        prog, checkpoint, scheduler=RandomScheduler(99, stickiness=0.4)
    )
    # Restored memory matches.
    for addr, value in checkpoint.memory.items():
        assert restored.memory.cells[addr] == value
    # Restored threads mirror names and frame positions.
    names = {t.name for t in restored.threads.values()}
    assert names == {t.name for t in interp.threads.values()}
    result = restored.run()
    assert result.aborted is None  # suffix runs to completion


def test_checkpointed_recording_takes_checkpoints():
    pipe = CheckpointClapPipeline(
        compile_source(LONG_RACE_SRC),
        ClapConfig(stickiness=0.35),
        interval_steps=150,
    )
    recorded = pipe.record()
    assert recorded.bug is not None
    assert recorded.n_checkpoints >= 1, "warm-up must cross the interval"
    assert recorded.checkpoint is not None
    # The suffix logs contain resume tokens.
    resumed = [
        t
        for tokens in recorded.recorder.logs.values()
        for t in tokens
        if t[0] == "resume"
    ]
    assert resumed


def test_suffix_is_smaller_than_full_trace():
    config = ClapConfig(stickiness=0.35)
    prog = compile_source(LONG_RACE_SRC)
    full = CheckpointClapPipeline(prog, config, interval_steps=10**9)
    cp = CheckpointClapPipeline(prog, config, interval_steps=150)
    full_rec = full.record()
    cp_rec = cp.record()
    assert cp_rec.n_checkpoints >= 1
    full_system = full.analyze(full_rec)
    suffix_system = cp.analyze(cp_rec)
    assert len(suffix_system.saps) < len(full_system.saps) / 2, (
        "the suffix constraint system must be much smaller"
    )


@pytest.mark.parametrize("solver", ["smt", "genval"])
def test_checkpointed_reproduction_end_to_end(solver):
    outcome, recorded = reproduce_with_checkpoints(
        LONG_RACE_SRC,
        "sc",
        interval_steps=150,
        stickiness=0.35,
        solver=solver,
    )
    assert recorded.n_checkpoints >= 1
    assert outcome is not None, "solver failed on the suffix"
    assert outcome.reproduced


def test_checkpointed_reproduction_under_tso():
    src = LONG_RACE_SRC
    outcome, recorded = reproduce_with_checkpoints(
        src, "tso", interval_steps=150, stickiness=0.4, flush_prob=0.2,
    )
    assert outcome is not None and outcome.reproduced
