"""End-to-end CLAP pipeline tests (record -> solve -> replay)."""

import pytest

from repro import ClapConfig, ClapPipeline, reproduce_bug
from repro.core.clap import ClapError

from tests.conftest import LOCKED_SRC, MP_SRC, RACE_SRC, SB_SRC


def test_reproduce_race_with_smt():
    report = reproduce_bug(RACE_SRC, "sc", solver="smt", stickiness=0.3)
    assert report.reproduced
    assert report.bug.kind == "assertion"
    assert report.n_threads == 3
    assert report.n_saps > 0
    assert report.n_constraints > 0
    assert report.schedule
    assert report.log_bytes > 0


def test_reproduce_race_with_genval_minimal_cs():
    report = reproduce_bug(RACE_SRC, "sc", solver="genval", stickiness=0.3)
    assert report.reproduced
    assert report.context_switches == 1
    assert report.solver_detail["rounds"] == 1


def test_reproduce_sb_bug_under_tso():
    report = reproduce_bug(
        SB_SRC, "tso", solver="smt", stickiness=0.5, flush_prob=0.05,
        seeds=range(400),
    )
    assert report.reproduced


def test_reproduce_mp_bug_under_pso():
    report = reproduce_bug(
        MP_SRC, "pso", solver="smt", stickiness=0.5, flush_prob=0.05,
        seeds=range(400),
    )
    assert report.reproduced


def test_correct_program_raises_no_failure():
    with pytest.raises(ClapError):
        ClapPipeline(
            LOCKED_SRC, ClapConfig(seeds=range(20), stickiness=0.3)
        ).reproduce()


def test_record_keeps_smallest_trace():
    pipe = ClapPipeline(
        RACE_SRC, ClapConfig(stickiness=0.3, record_candidates=4)
    )
    recorded = pipe.record()
    # Any other candidate from the same seed range is at least as large.
    count = 0
    for seed in pipe.config.seeds:
        other = pipe.record_once(seed)
        if other.bug is not None and other.bug.kind == "assertion":
            count += 1
            assert recorded.result.total_saps() <= other.result.total_saps()
            if count >= 4:
                break


def test_report_timings_populated():
    report = reproduce_bug(RACE_SRC, "sc", stickiness=0.3)
    assert report.time_record >= 0
    assert report.time_symbolic >= 0
    assert report.time_solve >= 0


def test_pipeline_accepts_compiled_program():
    from repro.minilang import compile_source

    prog = compile_source(RACE_SRC)
    report = reproduce_bug(prog, "sc", stickiness=0.3)
    assert report.reproduced


def test_unknown_solver_rejected():
    pipe = ClapPipeline(RACE_SRC, ClapConfig(solver="magic", stickiness=0.3))
    with pytest.raises(ClapError):
        pipe.reproduce()
