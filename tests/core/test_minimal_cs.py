from repro.core.clap import ClapConfig, ClapPipeline
from repro.core.minimal_cs import minimize_context_switches
from repro.constraints.context_switch import count_context_switches
from repro.solver.smt import solve_constraints
from repro.solver.validate import validate_schedule

from tests.conftest import RACE_SRC


def test_minimize_tightens_smt_schedule():
    pipe = ClapPipeline(RACE_SRC, ClapConfig(stickiness=0.3))
    recorded = pipe.record()
    system = pipe.analyze(recorded)
    smt = solve_constraints(system)
    assert smt.ok
    baseline_cs = count_context_switches(smt.schedule, system.summaries)
    result = minimize_context_switches(system, smt.schedule, max_seconds=20)
    assert result.context_switches <= baseline_cs
    assert result.context_switches == 1, "the race's true minimum is 1"
    assert validate_schedule(system, result.schedule).ok
    if baseline_cs > 1:
        assert result.improved


def test_minimize_keeps_already_minimal_schedule():
    pipe = ClapPipeline(RACE_SRC, ClapConfig(stickiness=0.3, solver="genval"))
    recorded = pipe.record()
    system = pipe.analyze(recorded)
    solved = pipe.solve(system)
    assert solved.ok and solved.context_switches == 1
    result = minimize_context_switches(system, solved.schedule, max_seconds=10)
    assert not result.improved
    assert result.context_switches == 1
