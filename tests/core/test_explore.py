"""End-to-end witness search: SR3xx predicate -> schedule -> replay.

The three seeded-bug examples must each yield a replay-validated
witness with *no failing recording as input* — only passing runs — and
their fixed variants must yield nothing.  Witnesses stored in a corpus
must round-trip through the normal offline reproduction pipeline.
"""

import os

import pytest

from repro.core.clap import ClapConfig, ClapPipeline
from repro.core.explore import ExploreConfig, ExploreDriver, explore_program
from repro.store.corpus import Corpus

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

SEEDED = {
    "atomicity_ctr.ml": "SR301",
    "order_uninit.ml": "SR302",
    "lost_notify.ml": "SR303",
}
FIXED = [
    "atomicity_ctr_fixed.ml",
    "order_uninit_fixed.ml",
    "lost_notify_fixed.ml",
]


def source_of(name):
    with open(os.path.join(ROOT, "examples", "minilang", name)) as fh:
        return fh.read()


def config():
    return ExploreConfig(max_seeds=32)


@pytest.mark.parametrize("name", sorted(SEEDED))
def test_seeded_bug_yields_replay_validated_witness(name):
    report = explore_program(source_of(name), config(), name=name)
    assert len(report.targets) == 1
    target = report.targets[0]
    assert target.code == SEEDED[name]
    assert target.status == "witness"
    assert target.replay_validated
    assert target.schedule, "a witness must carry its schedule"
    assert target.assert_line > 0
    assert target.seed >= 0  # backed by a recorded passing run
    assert report.n_witnesses == 1


@pytest.mark.parametrize("name", FIXED)
def test_fixed_variant_yields_no_witness(name):
    report = explore_program(source_of(name), config(), name=name)
    assert report.targets == []
    assert report.n_witnesses == 0


def test_witness_search_stats_populated():
    report = explore_program(source_of("atomicity_ctr.ml"), config())
    target = report.targets[0]
    assert target.attempts >= 1
    assert target.schedules_enumerated >= 1
    assert target.bound >= 0  # context-switch bound of the winning round
    assert target.rung in (0, 1)
    payload = report.to_json()
    assert payload["n_witnesses"] == 1
    assert payload["targets"][0]["status"] == "witness"


def test_witness_corpus_roundtrip(tmp_path):
    """A stored witness is a normal self-contained corpus entry: reload
    it from disk and push it through offline reproduction."""
    corpus = Corpus.open_or_create(str(tmp_path / "corpus"))
    for name in sorted(SEEDED):
        report = explore_program(
            source_of(name), config(), corpus=corpus, name=name
        )
        assert report.targets[0].entry_id

    reopened = Corpus.open_or_create(str(tmp_path / "corpus"))
    entries = list(reopened.entries())
    assert len(entries) == 3
    for entry in entries:
        prov = entry.manifest["provenance"]
        assert prov["mode"] == "explore"
        assert prov["code"] in ("SR301", "SR302", "SR303")
        recorded = entry.load_execution()
        pipeline = ClapPipeline(
            recorded.program, ClapConfig(solver="smt-inc")
        )
        result = pipeline.reproduce_offline(recorded)
        assert result.reproduced, entry.entry_id


def test_explore_does_not_need_a_failing_recording():
    """The passing-run scan only ever consumes bug-free runs; explore
    must succeed even on programs whose random runs never fail."""
    driver = ExploreDriver(source_of("order_uninit.ml"), config())
    report = driver.run()
    assert report.targets[0].status == "witness"
    for run in driver._runs:
        assert run.recorded.result.bug is None


def test_explore_rejects_compiled_program_with_corpus(tmp_path):
    """Corpus storage needs the source text; a driver built from a
    compiled program still searches, it just cannot store."""
    from repro.minilang import compile_source

    program = compile_source(source_of("atomicity_ctr.ml"))
    corpus = Corpus.open_or_create(str(tmp_path / "corpus"))
    report = explore_program(program, config(), corpus=corpus)
    target = report.targets[0]
    assert target.status == "witness"
    assert target.entry_id == ""  # searched, not stored
    assert list(corpus.entries()) == []
