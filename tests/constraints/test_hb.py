"""HBClosure: exactness against the set-based reference closure."""

import random

from repro.constraints.hb import HBClosure, HBPruner
from repro.constraints.model import OLt
from repro.constraints.prune import _must_order_closure


def closure_of(nodes, edges):
    return HBClosure(nodes, [OLt(a, b) for a, b in edges])


def test_chain_and_cross_chain_queries():
    #   a0 -> a1 -> a2      b0 -> b1
    #          \-> b1 (cross edge)
    hb = closure_of(
        ["a0", "a1", "a2", "b0", "b1"],
        [("a0", "a1"), ("a1", "a2"), ("b0", "b1"), ("a1", "b1")],
    )
    assert not hb.cyclic
    assert hb.must_before("a0", "a2")
    assert hb.must_before("a0", "b1")  # via a1
    assert hb.must_before("a1", "b1")
    assert not hb.must_before("a2", "b1")
    assert not hb.must_before("b0", "a2")
    assert not hb.must_before("a0", "a0")  # strict
    assert hb.reaches("a0", "a2")  # solver-facing alias


def test_unknown_nodes_are_unordered():
    hb = closure_of(["a", "b"], [("a", "b")])
    assert not hb.must_before("a", "nope")
    assert not hb.must_before("nope", "b")


def test_cycle_fails_safe():
    hb = closure_of(["a", "b"], [("a", "b"), ("b", "a")])
    assert hb.cyclic
    assert not hb.must_before("a", "b")
    assert not hb.must_before("b", "a")


def test_partial_per_thread_order_stays_partial():
    # TSO-like: one thread whose reads and writes form two chains with no
    # edge between w1 and r1 — a (thread, index) interval would wrongly
    # order them.
    hb = closure_of(
        ["w0", "w1", "r0", "r1"],
        [("w0", "w1"), ("r0", "r1"), ("w0", "r0")],
    )
    assert hb.must_before("w0", "r1")
    assert not hb.must_before("w1", "r0")
    assert not hb.must_before("w1", "r1")
    assert not hb.must_before("r0", "w1")


def test_matches_reference_closure_on_random_dags():
    rng = random.Random(7)
    for trial in range(30):
        n = rng.randint(2, 40)
        nodes = ["n%d" % i for i in range(n)]
        edges = set()
        for _ in range(rng.randint(1, 3 * n)):
            i, j = rng.sample(range(n), 2)
            if i > j:
                i, j = j, i
            edges.add((nodes[i], nodes[j]))  # i < j keeps it acyclic
        olts = [OLt(a, b) for a, b in edges]
        hb = HBClosure(nodes, olts)
        ref = _must_order_closure(olts)
        assert not hb.cyclic
        for a in nodes:
            after = ref.get(a, set())
            for b in nodes:
                assert hb.must_before(a, b) == (b in after), (
                    trial,
                    a,
                    b,
                    sorted(edges),
                )


def test_hbpruner_counts_against_raw_encoding():
    # read r after writes w1 -> w2 (hard chain), with must(w2 -> r):
    # w1 is shadowed by w2 and INIT is impossible.
    class FakeSAP:
        def __init__(self, uid):
            self.uid = uid

    hb = closure_of(["w1", "w2", "r"], [("w1", "w2"), ("w2", "r")])
    pruner = HBPruner(hb)
    kept, include_init, forced = pruner.filter_candidates(
        FakeSAP("r"), [FakeSAP("w1"), FakeSAP("w2")]
    )
    assert [w.uid for w in kept] == ["w2"]
    assert not include_init
    assert forced is None
    assert pruner.stats.candidates_pruned == 1
    assert pruner.stats.init_pruned == 1
    assert pruner.stats.region_candidates_pruned == 0
