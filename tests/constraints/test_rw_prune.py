"""Static-prune correctness: the pruned Frw is equisatisfiable and smaller."""

import pytest

from repro.analysis.escape import shared_variables
from repro.analysis.static_race import compute_prune_info
from repro.analysis.symexec import execute_recorded_paths
from repro.constraints.encoder import encode
from repro.constraints.model import INIT
from repro.constraints.prune import RWPruner, _must_order_closure
from repro.constraints.stats import compute_stats
from repro.minilang import compile_source
from repro.runtime.interpreter import Interpreter
from repro.runtime.scheduler import RandomScheduler
from repro.solver.smt import solve_constraints
from repro.tracing.decoder import decode_log
from repro.tracing.recorder import PathRecorder

from tests.conftest import LOCKED_SRC, RACE_SRC

JOIN_READ_SRC = """
int x = 0;
int y = 0;
void w1() { x = 7; int r = y; yield; y = r + 1; }
void w2() { int r = y; yield; y = r + 1; }
int main() {
    int t1 = 0;
    int t2 = 0;
    x = 1;
    t1 = spawn w1();
    t2 = spawn w2();
    join(t1);
    join(t2);
    int v = x;
    assert(y == 2);
    return 0;
}
"""


def record(src, memory_model="sc", require_bug=True, seeds=range(300)):
    prog = compile_source(src)
    shared = shared_variables(prog)
    for seed in seeds:
        recorder = PathRecorder(prog)
        interp = Interpreter(
            prog,
            memory_model=memory_model,
            scheduler=RandomScheduler(seed, stickiness=0.3),
            shared=shared,
            hooks=[recorder],
        )
        result = interp.run()
        recorder.finalize(interp)
        if not require_bug or result.bug is not None:
            summaries = execute_recorded_paths(
                prog, decode_log(recorder), shared, bug=result.bug
            )
            return prog, shared, summaries
    raise AssertionError("bug never manifested")


def encode_three(src, memory_model="sc", **kwargs):
    """(raw, hb, static): unpruned, HB-closed, HB-closed + static rules."""
    prog, shared, summaries = record(src, memory_model=memory_model, **kwargs)
    info = compute_prune_info(prog)
    raw = encode(summaries, memory_model, prog.symbols, shared, hb=False)
    base = encode(summaries, memory_model, prog.symbols, shared)
    pruned = encode(summaries, memory_model, prog.symbols, shared, prune=info)
    return raw, base, pruned


def encode_both(src, memory_model="sc", **kwargs):
    _, base, pruned = encode_three(src, memory_model=memory_model, **kwargs)
    return base, pruned


def test_must_order_closure_transitive():
    from repro.constraints.model import OLt

    edges = [OLt("a", "b"), OLt("b", "c"), OLt("a", "b")]  # dup on purpose
    desc = _must_order_closure(edges)
    assert desc["a"] == {"b", "c"}
    assert desc["b"] == {"c"}
    assert "c" not in desc


def test_must_order_closure_refuses_cycles():
    from repro.constraints.model import OLt

    assert _must_order_closure([OLt("a", "b"), OLt("b", "a")]) == {}


def test_pruned_candidates_are_subset():
    raw, base, pruned = encode_three(RACE_SRC)
    for read_uid, sources in base.rf_candidates.items():
        assert set(sources) <= set(raw.rf_candidates[read_uid])
    for read_uid, sources in pruned.rf_candidates.items():
        assert set(sources) <= set(base.rf_candidates[read_uid])
    assert pruned.prune_stats is not None
    assert base.prune_stats is not None  # HB pruning is always on
    assert raw.prune_stats is None  # hb=False is the one raw escape hatch


def test_stats_account_for_every_removed_candidate():
    raw, base, pruned = encode_three(RACE_SRC)
    sraw, sb, sp = compute_stats(raw), compute_stats(base), compute_stats(pruned)
    # Prune counters are always relative to the raw encoding.
    assert sraw.n_choice_vars - sb.n_choice_vars == sb.n_pruned_choice_vars
    assert sraw.n_choice_vars - sp.n_choice_vars == sp.n_pruned_choice_vars
    assert sb.n_pruned_choice_vars > 0  # fork/join always proves something
    assert sraw.n_clauses >= sb.n_clauses >= sp.n_clauses


def test_join_read_prunes_init_and_is_forced_to_write():
    raw, base, _pruned = encode_three(JOIN_READ_SRC)
    # main's post-join read of x: the HB closure drops INIT and the
    # shadowed pre-spawn write, leaving exactly the worker write.
    post_join_reads = [
        uid
        for uid, sources in raw.rf_candidates.items()
        if len(sources) >= 3
        and any(s == INIT for s in sources)
        and raw.sap(uid).addr == ("x",)
    ]
    assert post_join_reads
    for uid in post_join_reads:
        assert len(base.rf_candidates[uid]) < len(raw.rf_candidates[uid])
        assert INIT not in base.rf_candidates[uid]


@pytest.mark.parametrize("src", [RACE_SRC, LOCKED_SRC, JOIN_READ_SRC])
@pytest.mark.parametrize("memory_model", ["sc", "tso", "pso"])
def test_pruned_encoding_equisatisfiable(src, memory_model):
    try:
        base, pruned = encode_both(src, memory_model=memory_model)
    except AssertionError:
        pytest.skip("bug did not manifest under %s" % memory_model)
    r_base = solve_constraints(base)
    r_pruned = solve_constraints(pruned)
    assert r_base.ok == r_pruned.ok


def test_pruned_solution_satisfies_unpruned_system():
    base, pruned = encode_both(RACE_SRC)
    solved = solve_constraints(pruned)
    assert solved.ok
    # The schedule from the pruned system must be a schedule of the full
    # system too: same SAP set, all hard edges respected.
    position = {uid: i for i, uid in enumerate(solved.schedule)}
    assert set(position) == set(base.saps)
    for edge in base.hard_edges:
        assert position[edge.a] < position[edge.b]


def test_pruner_never_leaves_a_read_sourceless():
    prog, shared, summaries = record(RACE_SRC)
    info = compute_prune_info(prog)
    system = encode(summaries, "sc", prog.symbols, shared, prune=info)
    for sources in system.rf_candidates.values():
        assert sources
