"""End-to-end encoding: a recorded buggy run becomes a ConstraintSystem."""

import pytest

from repro.analysis.escape import shared_variables
from repro.analysis.symexec import execute_recorded_paths
from repro.constraints.encoder import EncodingError, encode
from repro.constraints.stats import compute_stats
from repro.minilang import compile_source
from repro.runtime.interpreter import Interpreter
from repro.runtime.scheduler import RandomScheduler, find_buggy_seed
from repro.tracing.decoder import decode_log
from repro.tracing.recorder import PathRecorder

from tests.conftest import RACE_SRC


def build_system(src, memory_model="sc", require_bug=True, seeds=range(200), **sched):
    prog = compile_source(src)
    shared = shared_variables(prog)
    for seed in seeds:
        recorder = PathRecorder(prog)
        interp = Interpreter(
            prog,
            memory_model=memory_model,
            scheduler=RandomScheduler(seed, **sched),
            shared=shared,
            hooks=[recorder],
        )
        result = interp.run()
        recorder.finalize(interp)
        if not require_bug or result.bug is not None:
            summaries = execute_recorded_paths(
                prog, decode_log(recorder), shared, bug=result.bug
            )
            return encode(summaries, memory_model, prog.symbols, shared), result
    raise AssertionError("bug never manifested")


def test_encoding_covers_all_saps():
    system, result = build_system(RACE_SRC, stickiness=0.3)
    assert len(system.saps) == result.total_saps()
    assert set(system.thread_order) == set(system.summaries)


def test_bug_predicate_required():
    system, result = build_system(RACE_SRC, stickiness=0.3)
    assert system.bug_exprs
    # A clean run has no bug predicate and must be rejected.
    prog = compile_source(RACE_SRC)
    shared = shared_variables(prog)
    recorder = PathRecorder(prog)
    interp = Interpreter(
        prog,
        scheduler=RandomScheduler(999, stickiness=0.95),
        shared=shared,
        hooks=[recorder],
    )
    result = interp.run()
    if result.bug is not None:
        pytest.skip("seed unexpectedly buggy")
    recorder.finalize(interp)
    summaries = execute_recorded_paths(prog, decode_log(recorder), shared, bug=None)
    with pytest.raises(EncodingError):
        encode(summaries, "sc", prog.symbols, shared)


def test_initial_values_recorded():
    src = """
    shared int x = 7;
    shared int a[2];
    void w() { x = 1; }
    int main() {
        int t = 0;
        t = spawn w();
        join(t);
        assert(x == 7);
        return 0;
    }
    """
    system, _ = build_system(src, seeds=range(300), stickiness=0.3)
    assert system.initial_values[("x",)] == 7
    assert system.initial_values[("a", 0)] == 0


def test_stats_counts():
    system, _ = build_system(RACE_SRC, stickiness=0.3)
    stats = compute_stats(system)
    assert stats.n_saps == len(system.saps)
    assert stats.n_value_vars == len([s for s in system.saps.values() if s.is_read])
    assert stats.n_constraints > 0
    assert stats.n_variables >= stats.n_order_vars


def test_sc_has_full_chains():
    system, _ = build_system(RACE_SRC, stickiness=0.3)
    # For each thread with n SAPs, SC contributes n-1 chain edges.
    per_thread = {t: 0 for t in system.summaries}
    hard = {(e.a, e.b) for e in system.hard_edges}
    for thread, summary in system.summaries.items():
        for a, b in zip(summary.saps, summary.saps[1:]):
            assert (a.uid, b.uid) in hard


def test_rw_candidates_populated_for_all_reads():
    system, _ = build_system(RACE_SRC, stickiness=0.3)
    reads = [s.uid for s in system.saps.values() if s.is_read]
    assert set(system.rf_candidates) == set(reads)
