"""Segment splitting and the interleaved-segment context-switch count."""

from repro.analysis.symexec import SymSAP, ThreadSummary
from repro.constraints.context_switch import count_context_switches, thread_segments
from repro.runtime import events as ev


def saps(thread, kinds):
    return [
        SymSAP(thread=thread, index=i, kind=kind, addr=None)
        for i, kind in enumerate(kinds)
    ]


def summaries(*threads):
    result = {}
    for thread, kinds in threads:
        s = ThreadSummary(thread=thread)
        s.saps = saps(thread, kinds)
        result[thread] = s
    return result


def test_must_interleave_ops_close_segments():
    segs = thread_segments(
        saps("t", [ev.START, ev.READ, ev.WRITE, ev.WAIT, ev.READ, ev.EXIT])
    )
    assert [len(s) for s in segs] == [1, 3, 2]
    assert segs[1][-1] == ("t", 3)  # wait ends its segment


def test_trailing_partial_segment_kept():
    segs = thread_segments(saps("t", [ev.START, ev.READ, ev.WRITE]))
    assert [len(s) for s in segs] == [1, 2]


def test_contiguous_schedule_has_zero_switches():
    ss = summaries(
        ("1", [ev.START, ev.READ, ev.WRITE, ev.EXIT]),
        ("2", [ev.START, ev.READ, ev.EXIT]),
    )
    schedule = [("1", 0), ("1", 1), ("1", 2), ("1", 3), ("2", 0), ("2", 1), ("2", 2)]
    assert count_context_switches(schedule, ss) == 0


def test_interleaving_one_segment_counts_once():
    ss = summaries(
        ("1", [ev.START, ev.READ, ev.READ, ev.READ, ev.EXIT]),
        ("2", [ev.START, ev.WRITE, ev.EXIT]),
    )
    # Thread 2 runs contiguously in the middle of thread 1's long segment:
    # exactly one segment (thread 1's) is interleaved.
    schedule = [
        ("1", 0),
        ("1", 1),
        ("2", 0),
        ("2", 1),
        ("2", 2),
        ("1", 2),
        ("1", 3),
        ("1", 4),
    ]
    assert count_context_switches(schedule, ss) == 1


def test_mutual_interleaving_counts_each_segment():
    ss = summaries(
        ("1", [ev.START, ev.READ, ev.READ, ev.EXIT]),
        ("2", [ev.START, ev.READ, ev.READ, ev.EXIT]),
    )
    # Alternate the two middle segments: both get interleaved.
    schedule = [
        ("1", 0),
        ("2", 0),
        ("1", 1),
        ("2", 1),
        ("1", 2),
        ("2", 2),
        ("1", 3),
        ("2", 3),
    ]
    assert count_context_switches(schedule, ss) == 2


def test_switch_at_yield_boundary_is_free():
    ss = summaries(
        ("1", [ev.START, ev.READ, ev.YIELD, ev.READ, ev.EXIT]),
        ("2", [ev.START, ev.WRITE, ev.EXIT]),
    )
    # Thread 2 runs exactly between thread 1's yield-delimited segments.
    schedule = [
        ("1", 0),
        ("1", 1),
        ("1", 2),
        ("2", 0),
        ("2", 1),
        ("2", 2),
        ("1", 3),
        ("1", 4),
    ]
    assert count_context_switches(schedule, ss) == 0


def test_single_sap_segment_never_interleaved():
    ss = summaries(
        ("1", [ev.START, ev.JOIN, ev.EXIT]),
        ("2", [ev.START, ev.EXIT]),
    )
    schedule = [("1", 0), ("2", 0), ("1", 1), ("2", 1), ("1", 2)]
    assert count_context_switches(schedule, ss) == 0
