"""Differential equisatisfiability: HB-closed encoding vs the raw one.

The HB closure drops rf candidates and skips rf-before/rf-nomid/rf-init
clauses *unconditionally* — no race-free certificate involved — so the
pruned system must agree with the raw (``hb=False``) encoding on every
program: same SAT verdict, and when satisfiable the solved schedule must
replay to the same failure.  Checked on litmus-shaped assert programs
under all three memory models and on the full Table-1 suite.
"""

import pytest

from repro.analysis.escape import shared_variables
from repro.analysis.symexec import execute_recorded_paths
from repro.bench.programs import TABLE1_NAMES, get_benchmark
from repro.constraints.encoder import encode
from repro.constraints.stats import compute_stats
from repro.core.clap import ClapConfig, ClapPipeline
from repro.minilang import compile_source
from repro.runtime.interpreter import Interpreter
from repro.runtime.replay import replay_schedule
from repro.runtime.scheduler import RandomScheduler
from repro.solver.smt import solve_constraints
from repro.tracing.decoder import decode_log
from repro.tracing.recorder import PathRecorder

# Litmus shapes instrumented with a failing assert.  Which models can
# manifest each bug differs (SB/MP need store-buffer reordering), so the
# record loop skips model/program pairs whose bug never shows up.
RACY_INCR_SRC = """
int x = 0;
void w() { int r = x; yield; x = r + 1; }
int main() {
    int t1 = 0;
    int t2 = 0;
    t1 = spawn w();
    t2 = spawn w();
    join(t1);
    join(t2);
    assert(x == 2);
    return 0;
}
"""

SB_ASSERT_SRC = """
int x = 0;
int y = 0;
int r1 = 0;
int r2 = 0;
void t1() { x = 1; r1 = y; }
void t2() { y = 1; r2 = x; }
int main() {
    int h1 = 0;
    int h2 = 0;
    h1 = spawn t1();
    h2 = spawn t2();
    join(h1);
    join(h2);
    assert(r1 + r2 > 0);
    return 0;
}
"""

MP_ASSERT_SRC = """
int data = 0;
int flag = 0;
int seen = 0;
int got = 0;
void prod() { data = 42; flag = 1; }
void cons() { seen = flag; got = data; }
int main() {
    int h1 = 0;
    int h2 = 0;
    h1 = spawn prod();
    h2 = spawn cons();
    join(h1);
    join(h2);
    assert(seen == 0 || got == 42);
    return 0;
}
"""

LITMUS_SOURCES = {
    "racy_incr": RACY_INCR_SRC,
    "sb": SB_ASSERT_SRC,
    "mp": MP_ASSERT_SRC,
}


def record_failure(src, memory_model, seeds=range(400)):
    """(program, shared, summaries, bug) of a failing run, or None."""
    prog = compile_source(src)
    shared = shared_variables(prog)
    for seed in seeds:
        recorder = PathRecorder(prog)
        interp = Interpreter(
            prog,
            memory_model=memory_model,
            scheduler=RandomScheduler(seed, stickiness=0.4, flush_prob=0.25),
            shared=shared,
            hooks=[recorder],
        )
        result = interp.run()
        recorder.finalize(interp)
        if result.bug is not None and result.bug.kind == "assertion":
            summaries = execute_recorded_paths(
                prog, decode_log(recorder), shared, bug=result.bug
            )
            return prog, shared, summaries, result.bug
    return None


def assert_differential(prog, shared, summaries, bug, memory_model):
    raw = encode(summaries, memory_model, prog.symbols, shared, hb=False)
    hb = encode(summaries, memory_model, prog.symbols, shared)
    # The HB-closed system is a syntactic shrink of the raw one.
    for read_uid, sources in hb.rf_candidates.items():
        assert set(sources) <= set(raw.rf_candidates[read_uid])
    assert compute_stats(raw).n_clauses >= compute_stats(hb).n_clauses
    r_raw = solve_constraints(raw, max_seconds=60)
    r_hb = solve_constraints(hb, max_seconds=60)
    assert r_raw.ok == r_hb.ok
    if not r_hb.ok:
        return
    # Both schedules must replay to the same observed failure.
    for solved in (r_raw, r_hb):
        outcome = replay_schedule(
            prog,
            solved.schedule,
            memory_model,
            shared=shared,
            expected_bug=bug,
        )
        assert outcome.reproduced, outcome


@pytest.mark.parametrize("memory_model", ["sc", "tso", "pso"])
@pytest.mark.parametrize("name", sorted(LITMUS_SOURCES))
def test_litmus_hb_encoding_equisatisfiable(name, memory_model):
    recorded = record_failure(LITMUS_SOURCES[name], memory_model)
    if recorded is None:
        pytest.skip("%s bug does not manifest under %s" % (name, memory_model))
    prog, shared, summaries, bug = recorded
    assert_differential(prog, shared, summaries, bug, memory_model)


_TABLE1 = {}


def table1_artifacts(name):
    """One recorded failure per Table-1 benchmark, cached for the module."""
    if name not in _TABLE1:
        bench = get_benchmark(name)
        prog = bench.compile()
        pipeline = ClapPipeline(prog, ClapConfig(**bench.config_kwargs()))
        recorded = pipeline.record()
        summaries = execute_recorded_paths(
            prog,
            decode_log(recorded.recorder),
            pipeline.shared,
            bug=recorded.bug,
        )
        _TABLE1[name] = (
            prog,
            pipeline.shared,
            summaries,
            recorded.bug,
            bench.memory_model,
        )
    return _TABLE1[name]


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_table1_hb_encoding_equisatisfiable(name):
    prog, shared, summaries, bug, memory_model = table1_artifacts(name)
    assert_differential(prog, shared, summaries, bug, memory_model)


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_table1_hb_closure_prunes_something(name):
    prog, shared, summaries, _bug, memory_model = table1_artifacts(name)
    hb = encode(summaries, memory_model, prog.symbols, shared)
    stats = hb.prune_stats
    assert stats is not None
    # Every benchmark forks and joins, so the closure always proves at
    # least some rf-before/rf-nomid clauses tautological.
    assert stats.clauses_pruned > 0
