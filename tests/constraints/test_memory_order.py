"""Fmo must encode exactly the orderings each memory model preserves."""

from repro.analysis.symexec import SymSAP
from repro.constraints.memory_order import thread_memory_order
from repro.runtime import events as ev


def make_saps(spec):
    """spec: list of (kind, addr) -> SymSAP list for thread 't'."""
    saps = []
    for i, (kind, addr) in enumerate(spec):
        saps.append(SymSAP(thread="t", index=i, kind=kind, addr=addr))
    return saps


def edges_of(spec, model):
    saps = make_saps(spec)
    return {(e.a[1], e.b[1]) for e in thread_memory_order(saps, model)}


def reachable(edges, n):
    """Transitive closure over indices 0..n-1."""
    adj = {i: set() for i in range(n)}
    for a, b in edges:
        adj[a].add(b)
    closure = set()
    for start in range(n):
        stack = [start]
        seen = set()
        while stack:
            node = stack.pop()
            for nxt in adj[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        closure |= {(start, x) for x in seen}
    return closure


WRITE_READ = [
    (ev.WRITE, ("x",)),  # 0
    (ev.READ, ("y",)),  # 1
]

TWO_WRITES = [
    (ev.WRITE, ("x",)),  # 0
    (ev.WRITE, ("y",)),  # 1
]


def test_sc_is_full_program_order():
    spec = [
        (ev.START, None),
        (ev.WRITE, ("x",)),
        (ev.READ, ("y",)),
        (ev.EXIT, None),
    ]
    edges = edges_of(spec, "sc")
    assert edges == {(0, 1), (1, 2), (2, 3)}


def test_tso_relaxes_store_load():
    closure = reachable(edges_of(WRITE_READ, "tso"), 2)
    assert (0, 1) not in closure, "TSO lets the read pass the earlier write"


def test_tso_keeps_store_store():
    closure = reachable(edges_of(TWO_WRITES, "tso"), 2)
    assert (0, 1) in closure


def test_pso_relaxes_store_store_different_addresses():
    closure = reachable(edges_of(TWO_WRITES, "pso"), 2)
    assert (0, 1) not in closure


def test_pso_keeps_store_store_same_address():
    spec = [(ev.WRITE, ("x",)), (ev.WRITE, ("x",))]
    closure = reachable(edges_of(spec, "pso"), 2)
    assert (0, 1) in closure


def test_load_load_preserved_everywhere():
    spec = [(ev.READ, ("x",)), (ev.READ, ("y",))]
    for model in ("sc", "tso", "pso"):
        closure = reachable(edges_of(spec, model), 2)
        assert (0, 1) in closure, model


def test_load_store_preserved_everywhere():
    spec = [(ev.READ, ("x",)), (ev.WRITE, ("y",))]
    for model in ("sc", "tso", "pso"):
        closure = reachable(edges_of(spec, model), 2)
        assert (0, 1) in closure, model


def test_same_address_write_read_pinned():
    spec = [(ev.WRITE, ("x",)), (ev.READ, ("x",))]
    for model in ("tso", "pso"):
        closure = reachable(edges_of(spec, model), 2)
        assert (0, 1) in closure, model


def test_sync_op_is_full_fence():
    spec = [
        (ev.WRITE, ("x",)),
        (ev.LOCK, "m"),
        (ev.READ, ("y",)),
        (ev.WRITE, ("z",)),
    ]
    for model in ("tso", "pso"):
        closure = reachable(edges_of(spec, model), 4)
        assert (0, 1) in closure, "write ordered before the lock (%s)" % model
        assert (1, 2) in closure
        assert (1, 3) in closure
        assert (0, 3) in closure, "fence transitively orders writes (%s)" % model


def test_yield_is_not_a_fence():
    spec = [
        (ev.WRITE, ("x",)),
        (ev.YIELD, None),
        (ev.READ, ("y",)),
    ]
    for model in ("tso", "pso"):
        closure = reachable(edges_of(spec, model), 3)
        assert (0, 1) not in closure, (
            "a buffered store may drain past a yield (%s)" % model
        )
        assert (1, 2) in closure, "yield stays ordered among reads/syncs"
