"""Frw: reads-from candidates and no-intervening-write clauses."""

from repro.analysis.symexec import SymSAP, ThreadSummary
from repro.constraints.model import INIT, RFChoice
from repro.constraints.rw import encode_read_write
from repro.runtime import events as ev


def summary(thread, kinds_addrs):
    s = ThreadSummary(thread=thread)
    for i, (kind, addr) in enumerate(kinds_addrs):
        s.saps.append(SymSAP(thread=thread, index=i, kind=kind, addr=addr))
    return s


def test_read_candidates_include_init_and_writes():
    t1 = summary("1", [(ev.READ, ("x",))])
    t2 = summary("2", [(ev.WRITE, ("x",)), (ev.WRITE, ("x",))])
    clauses, eo, rf = encode_read_write({"1": t1, "2": t2})
    assert rf[("1", 0)] == [("2", 0), ("2", 1), INIT]
    assert len(eo) == 1
    assert len(eo[0].lits) == 3


def test_same_thread_later_write_pruned():
    # A read cannot return a program-order-later write of its own thread.
    t1 = summary("1", [(ev.READ, ("x",)), (ev.WRITE, ("x",))])
    clauses, eo, rf = encode_read_write({"1": t1})
    assert rf[("1", 0)] == [INIT]


def test_same_thread_earlier_write_is_candidate():
    t1 = summary("1", [(ev.WRITE, ("x",)), (ev.READ, ("x",))])
    _, _, rf = encode_read_write({"1": t1})
    assert rf[("1", 1)] == [("1", 0), INIT]


def test_different_addresses_do_not_mix():
    t1 = summary("1", [(ev.READ, ("x",))])
    t2 = summary("2", [(ev.WRITE, ("y",))])
    _, _, rf = encode_read_write({"1": t1, "2": t2})
    assert rf[("1", 0)] == [INIT]


def test_array_elements_are_distinct_addresses():
    t1 = summary("1", [(ev.READ, ("a", 0)), (ev.READ, ("a", 1))])
    t2 = summary("2", [(ev.WRITE, ("a", 0))])
    _, _, rf = encode_read_write({"1": t1, "2": t2})
    assert rf[("1", 0)] == [("2", 0), INIT]
    assert rf[("1", 1)] == [INIT]


def test_no_intervening_write_clause_shape():
    t1 = summary("1", [(ev.READ, ("x",))])
    t2 = summary("2", [(ev.WRITE, ("x",)), (ev.WRITE, ("x",))])
    clauses, _, _ = encode_read_write({"1": t1, "2": t2})
    nomid = [c for c in clauses if c.origin == "rf-nomid"]
    # For each of the 2 chosen writes, 1 other write -> 2 clauses.
    assert len(nomid) == 2
    for clause in nomid:
        assert len(clause.lits) == 3  # !choice | other<w | r<other


def test_init_choice_orders_read_before_all_writes():
    t1 = summary("1", [(ev.READ, ("x",))])
    t2 = summary("2", [(ev.WRITE, ("x",)), (ev.WRITE, ("x",))])
    clauses, _, _ = encode_read_write({"1": t1, "2": t2})
    init_clauses = [c for c in clauses if c.origin == "rf-init"]
    assert len(init_clauses) == 2


def test_clause_count_matches_quadratic_bound():
    # 1 read, n writes: 1 rf-before per write + (n-1) rf-nomid per write
    # + n rf-init = n + n(n-1) + n clauses.
    n = 5
    t1 = summary("1", [(ev.READ, ("x",))])
    t2 = summary("2", [(ev.WRITE, ("x",))] * n)
    clauses, _, _ = encode_read_write({"1": t1, "2": t2})
    assert len(clauses) == n + n * (n - 1) + n
