"""Fso: locking regions, fork/join, wait/signal (paper Figure 5)."""

import pytest

from repro.analysis.symexec import SymSAP, ThreadSummary
from repro.constraints.model import OLt, SWChoice
from repro.constraints.sync_order import SyncEncodingError, encode_sync_order
from repro.runtime import events as ev


def summary(thread, kinds_addrs):
    s = ThreadSummary(thread=thread)
    for i, (kind, addr) in enumerate(kinds_addrs):
        s.saps.append(SymSAP(thread=thread, index=i, kind=kind, addr=addr))
    return s


def test_fork_before_start_and_exit_before_join():
    parent = summary(
        "1",
        [
            (ev.START, None),
            (ev.FORK, "1:1"),
            (ev.JOIN, "1:1"),
            (ev.EXIT, None),
        ],
    )
    child = summary("1:1", [(ev.START, None), (ev.EXIT, None)])
    hard, clauses, amo, sw = encode_sync_order({"1": parent, "1:1": child})
    assert OLt(("1", 1), ("1:1", 0)) in hard
    assert OLt(("1:1", 1), ("1", 2)) in hard


def test_join_without_exit_is_an_error():
    parent = summary("1", [(ev.START, None), (ev.JOIN, "1:1"), (ev.EXIT, None)])
    with pytest.raises(SyncEncodingError):
        encode_sync_order({"1": parent})


def test_lock_regions_mutually_exclude():
    t1 = summary(
        "1", [(ev.LOCK, "m"), (ev.UNLOCK, "m")]
    )
    t2 = summary(
        "2", [(ev.LOCK, "m"), (ev.UNLOCK, "m")]
    )
    hard, clauses, _, _ = encode_sync_order({"1": t1, "2": t2})
    excl = [c for c in clauses if c.origin == "lock-excl"]
    assert len(excl) == 1
    lits = excl[0].lits
    assert len(lits) == 2
    # u1 < l2  or  u2 < l1
    atoms = {(l.atom.a, l.atom.b) for l in lits}
    assert atoms == {((("1", 1)), (("2", 0))), ((("2", 1)), (("1", 0)))}


def test_open_lock_region_forces_other_regions_before():
    # Thread 1 still holds m at the end of its trace (the failure stopped
    # it inside the critical section).
    t1 = summary("1", [(ev.LOCK, "m")])
    t2 = summary("2", [(ev.LOCK, "m"), (ev.UNLOCK, "m")])
    hard, clauses, _, _ = encode_sync_order({"1": t1, "2": t2})
    assert OLt(("2", 1), ("1", 0)) in hard


def test_two_open_regions_is_an_error():
    t1 = summary("1", [(ev.LOCK, "m")])
    t2 = summary("2", [(ev.LOCK, "m")])
    with pytest.raises(SyncEncodingError):
        encode_sync_order({"1": t1, "2": t2})


def test_same_thread_regions_skip_exclusion_clause():
    t1 = summary(
        "1",
        [(ev.LOCK, "m"), (ev.UNLOCK, "m"), (ev.LOCK, "m"), (ev.UNLOCK, "m")],
    )
    hard, clauses, _, _ = encode_sync_order({"1": t1})
    assert not [c for c in clauses if c.origin == "lock-excl"]


def test_relock_while_held_is_an_error():
    t1 = summary("1", [(ev.LOCK, "m"), (ev.LOCK, "m")])
    with pytest.raises(SyncEncodingError):
        encode_sync_order({"1": t1})


def wait_thread(thread="2"):
    return summary(
        thread,
        [
            (ev.LOCK, "m"),
            (ev.UNLOCK, "m"),  # the wait-release
            (ev.WAIT, "cv"),
            (ev.LOCK, "m"),
            (ev.UNLOCK, "m"),
        ],
    )


def test_wait_maps_to_candidate_signals():
    signaller = summary("1", [(ev.SIGNAL, "cv"), (ev.SIGNAL, "cv")])
    waiter = wait_thread()
    hard, clauses, amo, sw = encode_sync_order({"1": signaller, "2": waiter})
    assert sw[("2", 2)] == [("1", 0), ("1", 1)]
    # signal->wait order and release->signal order clauses exist per choice.
    origins = [c.origin for c in clauses]
    assert origins.count("sw-order") == 2
    assert origins.count("sw-release") == 2
    assert origins.count("sw-some") == 1


def test_signal_wakes_at_most_one_wait():
    signaller = summary("1", [(ev.SIGNAL, "cv")])
    w1 = wait_thread("2")
    w2 = wait_thread("3")
    hard, clauses, amo, sw = encode_sync_order(
        {"1": signaller, "2": w1, "3": w2}
    )
    assert len(amo) == 1
    assert {l.atom for l in amo[0].lits} == {
        SWChoice(("1", 0), ("2", 2)),
        SWChoice(("1", 0), ("3", 2)),
    }


def test_broadcast_has_no_at_most_one():
    caster = summary("1", [(ev.BROADCAST, "cv")])
    w1 = wait_thread("2")
    w2 = wait_thread("3")
    _, _, amo, sw = encode_sync_order({"1": caster, "2": w1, "3": w2})
    assert amo == []
    assert sw[("2", 2)] == [("1", 0)]


def test_wait_with_no_candidate_signal_is_an_error():
    waiter = wait_thread()
    with pytest.raises(SyncEncodingError):
        encode_sync_order({"2": waiter})


def test_own_thread_signal_is_not_a_candidate():
    # A thread cannot signal its own wait.
    both = summary(
        "1",
        [
            (ev.SIGNAL, "cv"),
            (ev.LOCK, "m"),
            (ev.UNLOCK, "m"),
            (ev.WAIT, "cv"),
            (ev.LOCK, "m"),
        ],
    )
    other = summary("2", [(ev.SIGNAL, "cv")])
    _, _, _, sw = encode_sync_order({"1": both, "2": other})
    assert sw[("1", 3)] == [("2", 0)]
