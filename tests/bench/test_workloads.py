from repro.bench.workloads import (
    ScalePoint,
    fit_power,
    format_sweep,
    sweep_branches,
    sweep_hot_variable,
)


def test_fit_power_recovers_exponent():
    points = [
        ScalePoint(size=n, n_saps=n, n_constraints=3 * n**3) for n in (2, 4, 8, 16)
    ]
    assert abs(fit_power(points) - 3.0) < 1e-9
    linear = [
        ScalePoint(size=n, n_saps=n, n_constraints=7 * n) for n in (2, 4, 8, 16)
    ]
    assert abs(fit_power(linear) - 1.0) < 1e-9


def test_hot_variable_sweep_monotone():
    points = sweep_hot_variable(sizes=(2, 4), solve=False)
    assert points[0].n_saps < points[1].n_saps
    assert points[0].n_constraints < points[1].n_constraints
    assert points[0].n_reads + points[0].n_writes > 0


def test_branch_sweep_produces_conditions():
    points = sweep_branches(sizes=(2, 6))
    assert points[0].n_branches < points[1].n_branches


def test_format_sweep_renders():
    points = [ScalePoint(size=2, n_saps=10, n_constraints=50)]
    text = format_sweep(points, "demo")
    assert "demo" in text and "50" in text
