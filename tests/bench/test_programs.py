"""Benchmark suite sanity: programs compile, bugs manifest, traits hold."""

import pytest

from repro.analysis.escape import shared_variables
from repro.bench.programs import (
    BENCHMARK_NAMES,
    TABLE1_NAMES,
    TABLE2_NAMES,
    all_benchmarks,
    get_benchmark,
)
from repro.runtime.scheduler import find_buggy_seed


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_benchmark_compiles(name):
    bench = get_benchmark(name)
    prog = bench.compile()
    assert prog.instruction_count() > 0
    assert "main" in prog.functions


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_benchmark_has_shared_state(name):
    prog = get_benchmark(name).compile()
    assert shared_variables(prog), name


def manifest(bench, seeds=None):
    prog = bench.compile()
    shared = shared_variables(prog)
    return find_buggy_seed(
        prog,
        bench.memory_model,
        seeds=seeds if seeds is not None else bench.seeds,
        stickiness=bench.stickiness,
        flush_prob=bench.flush_prob,
        max_steps=bench.max_steps,
        shared=shared,
    )


@pytest.mark.parametrize(
    "name", ["sim_race", "aget", "pfscan", "swarm", "figure2"]
)
def test_fast_bugs_manifest(name):
    hit = manifest(get_benchmark(name))
    assert hit is not None, "%s bug never manifested" % name
    assert hit[1].bug.kind == "assertion"


@pytest.mark.slow
@pytest.mark.parametrize(
    "name", ["pbzip2", "bbuf", "apache", "racey", "bakery", "dekker", "peterson"]
)
def test_slow_bugs_manifest(name):
    hit = manifest(get_benchmark(name))
    assert hit is not None, "%s bug never manifested" % name


@pytest.mark.parametrize("name", ["bakery", "dekker", "peterson"])
def test_mutex_algorithms_safe_under_sc(name):
    bench = get_benchmark(name)
    bench.memory_model = "sc"
    hit = manifest(bench, seeds=range(150))
    assert hit is None, "%s must be correct under SC" % name


def test_figure2_pso_assert_is_relaxed_only():
    bench = get_benchmark("figure2")
    prog = bench.compile()
    shared = shared_variables(prog)
    # Under PSO the *reader-side* assertion (inside t2) can fail...
    hit = find_buggy_seed(
        prog, "pso", seeds=range(800), stickiness=0.5, flush_prob=0.02,
        shared=shared,
    )
    reader_line = next(
        i + 1
        for i, line in enumerate(bench.source.splitlines())
        if "assert(d == 1)" in line
    )
    pso_lines = set()
    for seed in range(800):
        from repro.runtime.interpreter import run_program

        res = run_program(
            prog, "pso", seed=seed, shared=shared, stickiness=0.5, flush_prob=0.02
        )
        if res.bug is not None:
            pso_lines.add(res.bug.line)
            if reader_line in pso_lines:
                break
    assert reader_line in pso_lines, "assert2 must be failable under PSO"
    # ... but never under SC or TSO (store-store order preserved).
    for model in ("sc", "tso"):
        for seed in range(300):
            from repro.runtime.interpreter import run_program

            res = run_program(
                prog, model, seed=seed, shared=shared, stickiness=0.4,
                flush_prob=0.05,
            )
            assert res.bug is None or res.bug.line != reader_line, (
                model, seed,
            )


def test_racey_signature_is_deterministic_serially():
    from repro.runtime.interpreter import run_program
    from repro.runtime.scheduler import RoundRobinScheduler

    bench = get_benchmark("racey")
    prog = bench.compile()
    res = run_program(prog, "sc", scheduler=RoundRobinScheduler(quantum=10**9))
    assert res.bug is None, "serialized racey matches its pinned signature"
    assert res.final_globals[("out",)] == bench.params["serial_signature"]


def test_registry_contents():
    assert set(TABLE1_NAMES) <= set(BENCHMARK_NAMES)
    assert set(TABLE2_NAMES) <= set(TABLE1_NAMES)
    benches = all_benchmarks()
    assert len(benches) == len(BENCHMARK_NAMES)
    with pytest.raises(KeyError):
        get_benchmark("nope")


def test_parameterization():
    small = get_benchmark("sim_race", workers=2)
    big = get_benchmark("sim_race", workers=6)
    assert big.compile().instruction_count() > small.compile().instruction_count()
