"""Harness and metrics unit tests (the table machinery itself)."""

import math

import pytest

from repro.bench.harness import (
    Table1Row,
    Table3Row,
    _fmt_bytes,
    format_table1,
    format_table2,
    format_table3,
    run_table1_row,
    save_result,
)
from repro.bench.metrics import (
    CostModel,
    measure_overhead,
    worst_case_schedules_log10,
)
from repro.bench.programs import get_benchmark


def test_measure_overhead_basic_shape():
    row = measure_overhead(get_benchmark("sim_race", iters=20))
    assert row.native_units > 0
    assert row.clap_units > row.native_units
    assert row.leap_units > row.clap_units
    assert 0 < row.clap_overhead_pct < row.leap_overhead_pct
    assert row.clap_log_bytes > 0 and row.leap_log_bytes > 0


def test_cost_model_weights_scale_linearly():
    cheap = measure_overhead(
        get_benchmark("sim_race", iters=10), model=CostModel(bl_op_cost=1.0)
    )
    pricey = measure_overhead(
        get_benchmark("sim_race", iters=10), model=CostModel(bl_op_cost=2.0)
    )
    extra_cheap = cheap.clap_units - cheap.native_units
    extra_pricey = pricey.clap_units - pricey.native_units
    assert abs(extra_pricey - 2 * extra_cheap) < 1e-6


def test_same_seed_same_interleaving_for_all_modes():
    # The recorders must not perturb scheduling: native units identical
    # across two measurements.
    a = measure_overhead(get_benchmark("pfscan"))
    b = measure_overhead(get_benchmark("pfscan"))
    assert a.native_units == b.native_units
    assert a.clap_log_bytes == b.clap_log_bytes


def test_worst_case_schedule_count():
    class FakeSummary:
        def __init__(self, n):
            self.saps = [None] * n

    # Two threads with 2 SAPs each: C(4,2) = 6 interleavings.
    summaries = {"a": FakeSummary(2), "b": FakeSummary(2)}
    log10 = worst_case_schedules_log10(summaries)
    assert math.isclose(10**log10, 6.0, rel_tol=1e-9)


def test_format_tables_render_all_rows():
    rows = [Table1Row(program="x", n_cs=1, success="Y")]
    text = format_table1(rows)
    assert "x" in text and "Program" in text
    t3 = format_table3([Table3Row(program="y", worst_log10=12.5, generated=10)])
    assert "> 10^" in t3


def test_fmt_bytes():
    assert _fmt_bytes(10) == "10B"
    assert _fmt_bytes(2048) == "2.0K"
    assert _fmt_bytes(3 << 20) == "3.0M"


def test_save_result_writes_file(tmp_path, monkeypatch):
    import repro.bench.harness as harness

    monkeypatch.setattr(harness, "RESULTS_DIR", str(tmp_path))
    path = save_result("demo.txt", "hello")
    with open(path) as fh:
        assert fh.read() == "hello\n"


def test_run_table1_row_end_to_end():
    row = run_table1_row(get_benchmark("pfscan"), solver="smt")
    assert row.success == "Y"
    assert row.n_saps > 0
    assert row.loc > 0
