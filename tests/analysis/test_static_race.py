"""Unit tests for the static race/deadlock analyzer (analysis.static_race)."""

import json

from repro.minilang import compile_source
from repro.runtime import events as ev
from repro.analysis.escape import classify_variables
from repro.analysis.static_race import (
    analyze_lock_order,
    analyze_program,
    analyze_races,
    collect_access_sites,
    compute_locksets,
    compute_mhp,
    compute_prune_info,
)
from repro.analysis.static_race.locksets import MAY, MUST
from repro.analysis.static_race.races import COMMON_LOCK, NON_MHP, RACY

from tests.conftest import LOCKED_SRC, RACE_SRC

ABBA_SRC = """
int g0 = 0;
int g1 = 0;
mutex a;
mutex b;
void t_ab() { lock(a); lock(b); g0 = g0 + 1; unlock(b); unlock(a); }
void t_ba() { lock(b); lock(a); g1 = g1 + 1; unlock(a); unlock(b); }
int main() {
    int x = 0; int y = 0;
    x = spawn t_ab(); y = spawn t_ba();
    join(x); join(y);
    return 0;
}
"""


def compiled(src, name="prog"):
    return compile_source(src, name=name)


# -- sites --------------------------------------------------------------


def test_sites_cover_reads_and_writes():
    sites = collect_access_sites(compiled(RACE_SRC))
    kinds = {(s.var, s.kind) for s in sites}
    assert ("c", ev.READ) in kinds
    assert ("c", ev.WRITE) in kinds
    assert all(s.line > 0 for s in sites)


def test_sites_exclude_sync_globals():
    sites = collect_access_sites(compiled(LOCKED_SRC))
    assert all(s.var != "m" for s in sites)


# -- locksets -----------------------------------------------------------


def test_must_lockset_inside_critical_section():
    program = compiled(LOCKED_SRC)
    result = compute_locksets(program, mode=MUST)
    for site in collect_access_sites(program):
        if site.func == "worker" and site.var == "c":
            assert result.held_before(site.point) == {"m"}


def test_must_lockset_empty_outside():
    program = compiled(RACE_SRC)
    result = compute_locksets(program, mode=MUST)
    for site in collect_access_sites(program):
        assert result.held_before(site.point) == frozenset()


def test_lockset_interprocedural_through_call():
    program = compiled(
        """
        int x = 0;
        mutex m;
        void bump() { x = x + 1; }
        void w() { lock(m); bump(); unlock(m); }
        int main() {
            int t = 0;
            t = spawn w();
            lock(m); bump(); unlock(m);
            join(t);
            return 0;
        }
        """
    )
    result = compute_locksets(program, mode=MUST)
    for site in collect_access_sites(program):
        if site.func == "bump":
            assert result.held_before(site.point) == {"m"}


def test_must_meet_is_intersection_across_callers():
    program = compiled(
        """
        int x = 0;
        mutex m;
        void bump() { x = x + 1; }
        void locked() { lock(m); bump(); unlock(m); }
        void unlocked() { bump(); }
        int main() {
            int a = 0; int b = 0;
            a = spawn locked(); b = spawn unlocked();
            join(a); join(b);
            return 0;
        }
        """
    )
    result = compute_locksets(program, mode=MUST)
    assert result.entries["bump"] == frozenset()


def test_lockset_converges_on_normal_programs():
    assert compute_locksets(compiled(LOCKED_SRC), mode=MUST).converged


def test_lockset_cap_exhaustion_fails_safe(monkeypatch):
    # If the fixpoint ever runs out of rounds, partial must-mode state
    # could over-approximate held locks and feed unsound common-lock
    # verdicts into the pruner; the result must collapse to bottom.
    from repro.analysis.static_race import locksets as ls

    monkeypatch.setattr(ls._Engine, "solve", lambda self: False)
    result = compute_locksets(compiled(LOCKED_SRC), mode=MUST)
    assert not result.converged
    assert result.at_point == {} and result.entries == {} and result.exits == {}
    for site in collect_access_sites(compiled(LOCKED_SRC)):
        assert result.held_before(site.point) == frozenset()


def test_may_lockset_unions_across_callers():
    program = compiled(ABBA_SRC)
    may = compute_locksets(program, mode=MAY)
    must = compute_locksets(program, mode=MUST)
    for site in collect_access_sites(program):
        if site.func == "t_ab":
            assert must.held_before(site.point) == {"a", "b"}
            assert may.held_before(site.point) == {"a", "b"}


# -- MHP ----------------------------------------------------------------


def test_mhp_workers_parallel_with_each_other():
    program = compiled(RACE_SRC)
    mhp = compute_mhp(program)
    worker_sites = [
        s for s in collect_access_sites(program) if s.func == "worker"
    ]
    assert worker_sites
    # Two spawns of the same function: self-parallel.
    assert mhp.may_happen_in_parallel(worker_sites[0], worker_sites[0])


def test_mhp_join_orders_main_reads():
    program = compiled(RACE_SRC)
    mhp = compute_mhp(program)
    sites = collect_access_sites(program)
    main_read = next(s for s in sites if s.func == "main" and s.var == "c")
    worker = next(s for s in sites if s.func == "worker")
    # main's assert read happens after both joins: provably sequential.
    assert not mhp.may_happen_in_parallel(main_read, worker)


def test_mhp_before_spawn_is_sequential():
    program = compiled(
        """
        int x = 0;
        void w() { x = x + 1; }
        int main() {
            x = 1;
            int t = 0;
            t = spawn w();
            join(t);
            int v = x;
            return 0;
        }
        """
    )
    mhp = compute_mhp(program)
    sites = collect_access_sites(program)
    init_write = next(
        s for s in sites if s.func == "main" and s.kind == ev.WRITE
    )
    worker_site = next(s for s in sites if s.func == "w")
    assert not mhp.may_happen_in_parallel(init_write, worker_site)


def test_mhp_spawn_in_loop_is_parallel_with_itself():
    program = compiled(
        """
        int x = 0;
        void w() { x = x + 1; }
        int main() {
            for (int i = 0; i < 3; i++) {
                int t = 0;
                t = spawn w();
            }
            return 0;
        }
        """
    )
    mhp = compute_mhp(program)
    site = next(s for s in collect_access_sites(program) if s.func == "w")
    assert mhp.may_happen_in_parallel(site, site)


def test_mhp_shared_helper_self_pair_across_roots():
    # A single access site in a helper reached by two different
    # single-instance threads (main calls bump() while the spawned
    # worker also calls it) overlaps with itself.
    program = compiled(
        """
        int x = 0;
        void bump() { x = x + 1; }
        void w() { bump(); }
        int main() {
            int t = 0;
            t = spawn w();
            bump();
            join(t);
            return 0;
        }
        """
    )
    mhp = compute_mhp(program)
    site = next(s for s in collect_access_sites(program) if s.func == "bump")
    assert mhp.may_happen_in_parallel(site, site)


# -- races --------------------------------------------------------------


def test_shared_helper_self_pair_is_racy():
    # Regression: the self-pair classifier must use the full MHP oracle,
    # not just per-root self_parallel — otherwise the write-write race on
    # bump()'s increment is lost AND exported to the pruner as proven
    # race-free, breaking the static-superset-of-dynamic contract.
    races = analyze_races(
        compiled(
            """
            int x = 0;
            void bump() { x = x + 1; }
            void w() { bump(); }
            int main() {
                int t = 0;
                t = spawn w();
                bump();
                join(t);
                return 0;
            }
            """
        )
    )
    assert "x" in races.racy_vars
    assert any(p.is_write_write for p in races.race_pairs)
    bump_write = next(
        s for s in races.sites if s.func == "bump" and s.kind == ev.WRITE
    )
    assert races.verdict_for(bump_write.key, bump_write.key) == RACY


def test_unprotected_counter_is_racy():
    races = analyze_races(compiled(RACE_SRC))
    assert "c" in races.racy_vars


def test_locked_counter_is_race_free():
    races = analyze_races(compiled(LOCKED_SRC))
    assert races.racy_vars == set()
    assert races.consistent_locks["c"] == frozenset()  # main reads unlocked


def test_consistent_lock_recorded_when_universal():
    races = analyze_races(
        compiled(
            """
            int x = 0;
            mutex m;
            void w() { lock(m); x = x + 1; unlock(m); }
            int main() {
                int a = 0; int b = 0;
                a = spawn w(); b = spawn w();
                join(a); join(b);
                return 0;
            }
            """
        )
    )
    assert races.racy_vars == set()
    assert races.consistent_locks["x"] == {"m"}


def test_pair_verdicts_cover_lock_and_mhp_cases():
    races = analyze_races(compiled(LOCKED_SRC))
    verdicts = set(races.pair_verdicts.values())
    assert COMMON_LOCK in verdicts  # worker/worker pairs under m
    assert NON_MHP in verdicts  # main's post-join read pairs
    assert RACY not in verdicts


# -- lock order ---------------------------------------------------------


def test_abba_cycle_detected():
    report = analyze_lock_order(compiled(ABBA_SRC))
    assert [["a", "b"]] == report.cycles
    held = {(e.held, e.acquired) for e in report.edges}
    assert ("a", "b") in held and ("b", "a") in held


def test_consistent_order_no_cycle():
    report = analyze_lock_order(compiled(LOCKED_SRC))
    assert report.cycles == []
    assert report.edges == []


def test_self_deadlock_reported():
    report = analyze_lock_order(
        compiled(
            """
            int x = 0;
            mutex m;
            int main() { lock(m); lock(m); x = 1; unlock(m); return 0; }
            """
        )
    )
    assert report.self_deadlocks
    assert report.self_deadlocks[0].acquired == "m"


# -- report + diagnostics ----------------------------------------------


def test_report_codes_and_locations():
    report = analyze_program(compiled(RACE_SRC), name="race")
    codes = {d.code for d in report.diagnostics}
    assert "SR001" in codes or "SR002" in codes
    race_diags = [d for d in report.errors()]
    assert all(d.locations for d in race_diags)
    assert "data race" in race_diags[0].render()


def test_report_deadlock_warning():
    report = analyze_program(compiled(ABBA_SRC), name="abba")
    assert any(d.code == "SR101" for d in report.warnings())
    assert report.lock_cycles == [["a", "b"]]


def test_report_json_roundtrips():
    report = analyze_program(compiled(RACE_SRC), name="race")
    payload = json.loads(report.to_json())
    assert payload["program"] == "race"
    assert payload["summary"]["racy_variables"] == ["c"]
    assert all(
        {"code", "severity", "message", "var", "locations"} <= set(d)
        for d in payload["diagnostics"]
    )


def test_report_text_mentions_classification():
    report = analyze_program(compiled(LOCKED_SRC), name="locked")
    text = report.to_text()
    assert "shared" in text
    assert "no races or lock-order cycles found" in text


def test_classify_variables_reasons():
    classified = classify_variables(compiled(RACE_SRC))
    is_shared, reason = classified["c"]
    assert is_shared and "worker" in reason


# -- prune info ---------------------------------------------------------


def test_prune_info_race_free_lookup():
    program = compiled(LOCKED_SRC)
    info = compute_prune_info(program)
    races = analyze_races(program)
    # Every known same-var pair of LOCKED_SRC is race-free.
    assert len(info.race_free_pairs) == len(races.pair_verdicts)
    some_pair = next(iter(info.race_free_pairs))
    assert info.race_free(some_pair[0], some_pair[1])


def test_prune_info_unknown_key_never_race_free():
    info = compute_prune_info(compiled(LOCKED_SRC))
    bogus = ("c", 99999, ev.READ)
    assert not info.race_free(bogus, bogus)


def test_prune_info_racy_pairs_absent():
    program = compiled(RACE_SRC)
    info = compute_prune_info(program)
    races = analyze_races(program)
    racy = [p for p, v in races.pair_verdicts.items() if v == RACY]
    assert racy
    for key_a, key_b in racy:
        assert not info.race_free(key_a, key_b)
