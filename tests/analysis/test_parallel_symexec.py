"""parallel_summaries == execute_recorded_paths, plus its fallbacks."""

import pytest

from repro.analysis.symexec import (
    PARALLEL_MIN_BLOCKS,
    execute_recorded_paths,
    parallel_summaries,
)
from repro.bench.programs import get_benchmark
from repro.constraints.encoder import encode
from repro.core.clap import ClapConfig, ClapPipeline
from repro.tracing.decoder import decode_log


@pytest.fixture(scope="module", params=["swarm", "racey"])
def recorded_bench(request):
    bench = get_benchmark(request.param)
    prog = bench.compile()
    pipeline = ClapPipeline(prog, ClapConfig(**bench.config_kwargs()))
    recorded = pipeline.record()
    decoded = decode_log(recorded.recorder)
    return bench, prog, pipeline.shared, recorded, decoded


def test_parallel_matches_serial(recorded_bench):
    bench, prog, shared, recorded, decoded = recorded_bench
    serial = execute_recorded_paths(prog, decoded, shared, bug=recorded.bug)
    par = parallel_summaries(
        prog,
        decoded,
        shared,
        bug=recorded.bug,
        workers=2,
        min_blocks=0,  # force the pool even for small traces
    )
    assert set(par) == set(serial)
    for thread in serial:
        # Semantic equality; pickle bytes may differ (frozenset order).
        assert par[thread] == serial[thread], thread
    # And the summaries encode to the same constraint system shape.
    s1 = encode(serial, bench.memory_model, prog.symbols, shared)
    s2 = encode(par, bench.memory_model, prog.symbols, shared)
    assert s1.rf_candidates == s2.rf_candidates
    assert len(s1.clauses) == len(s2.clauses)


def test_small_trace_falls_back_to_serial(recorded_bench, monkeypatch):
    _bench, prog, shared, recorded, decoded = recorded_bench

    def boom(*_args, **_kwargs):  # pragma: no cover - must not be reached
        raise AssertionError("WorkerPool must not be constructed")

    import repro.service.pool as pool_mod

    monkeypatch.setattr(pool_mod, "WorkerPool", boom)
    total = sum(t.total_blocks() for t in decoded.values())
    # Below the block threshold, with one worker, the pool is never built.
    for kwargs in (
        {"workers": 1},
        {"workers": 4, "min_blocks": total + 1},
    ):
        summaries = parallel_summaries(
            prog, decoded, shared, bug=recorded.bug, **kwargs
        )
        serial = execute_recorded_paths(prog, decoded, shared, bug=recorded.bug)
        assert summaries.keys() == serial.keys()


def test_threshold_default_is_conservative():
    assert PARALLEL_MIN_BLOCKS >= 256  # fork cost dominates tiny traces
