"""Property tests: MHP oracle and lock-order cycles vs brute force.

Random spawn/join trees are generated as abstract thread models, turned
into MiniLang programs, and analyzed.  The reference answer comes from
an exhaustive interleaving enumeration of the abstract model (which is
tiny by construction), so the two implementations share no code.

* MHP soundness: whenever two accesses are co-enabled in *some*
  interleaving, ``may_happen_in_parallel`` must say True.  (The static
  oracle is a may-analysis; extra Trues are allowed, missing ones are
  bugs — this is the test that caught the nested-spawn hole.)
* Lock-order cycles: random nested lock sequences vs an independent
  brute-force elementary-cycle enumeration over the held->acquired
  edges; here the answers must match exactly, because for straight-line
  acquisition sequences the may-lockset is exact.
"""

import itertools
import random

import pytest

from repro.analysis.static_race.lockorder import analyze_lock_order
from repro.analysis.static_race.races import analyze_races
from repro.minilang import compile_source


# -- random spawn/join trees ----------------------------------------------


def gen_model(rng, max_threads=4, max_accesses=6):
    """A random fork tree: {tid: [op, ...]} with ops ('acc', id),
    ('spawn', tid), ('join', tid).  Thread 0 is main; every child is
    spawned and joined by its parent (in that order), with accesses
    sprinkled anywhere — including between spawn and join, which is
    where parallelism lives."""
    n_threads = rng.randint(2, max_threads)
    parent = {t: rng.randrange(t) for t in range(1, n_threads)}
    ops = {t: [] for t in range(n_threads)}
    for t in range(n_threads - 1, 0, -1):
        body = ops[parent[t]]
        lo = rng.randrange(len(body) + 1)
        hi = rng.randrange(lo, len(body) + 1)
        body.insert(hi, ("join", t))
        body.insert(lo, ("spawn", t))
    n_acc = rng.randint(2, max_accesses)
    for acc in range(n_acc):
        t = rng.randrange(n_threads)
        body = ops[t]
        body.insert(rng.randrange(len(body) + 1), ("acc", acc))
    return ops, n_acc


def brute_parallel(ops):
    """All access pairs co-enabled in some interleaving (exhaustive)."""
    n = len(ops)
    init = (tuple(0 for _ in range(n)), frozenset([0]))
    seen = set()
    stack = [init]
    pairs = set()
    while stack:
        state = stack.pop()
        if state in seen:
            continue
        seen.add(state)
        pos, started = state
        enabled = []
        for t in started:
            if pos[t] >= len(ops[t]):
                continue
            op = ops[t][pos[t]]
            if op[0] == "join":
                child = op[1]
                if child not in started or pos[child] < len(ops[child]):
                    continue  # child not finished: join blocks
            enabled.append((t, op))
        accs = [op[1] for _t, op in enabled if op[0] == "acc"]
        for a, b in itertools.combinations(sorted(accs), 2):
            pairs.add((a, b))
        for t, op in enabled:
            npos = tuple(p + 1 if i == t else p for i, p in enumerate(pos))
            nstarted = started | {op[1]} if op[0] == "spawn" else started
            stack.append((npos, nstarted))
    return pairs


def emit_source(ops, n_acc):
    decls = "\n".join("int x%d = 0;" % i for i in range(n_acc))
    funcs = []
    for t in sorted(ops, reverse=True):
        body = []
        for op in ops[t]:
            if op[0] == "acc":
                body.append("x%d = 1;" % op[1])
            elif op[0] == "spawn":
                body.append("int h%d = 0;" % op[1])
                body.append("h%d = spawn w%d();" % (op[1], op[1]))
            else:
                body.append("join(h%d);" % op[1])
        lines = "\n    ".join(body) if body else ""
        if t == 0:
            funcs.append("int main() {\n    %s\n    return 0;\n}" % lines)
        else:
            funcs.append("void w%d() {\n    %s\n}" % (t, lines))
    return decls + "\n\n" + "\n\n".join(funcs) + "\n"


@pytest.mark.parametrize("seed", range(40))
def test_mhp_sound_vs_brute_force(seed):
    rng = random.Random(seed)
    ops, n_acc = gen_model(rng)
    program = compile_source(emit_source(ops, n_acc))
    races = analyze_races(program)
    site_of = {}
    for site in races.sites:
        if site.is_write and site.var.startswith("x"):
            site_of[int(site.var[1:])] = site
    truth = brute_parallel(ops)
    for a, b in truth:
        assert races.mhp.may_happen_in_parallel(site_of[a], site_of[b]), (
            "MHP unsound for seed %d: accesses %d and %d are co-enabled "
            "in the model but the oracle says sequential\n%s"
            % (seed, a, b, emit_source(ops, n_acc))
        )


@pytest.mark.parametrize("seed", range(40))
def test_mhp_exact_on_flat_fork_join(seed):
    """With a single spawner (main) and no nesting, the oracle should be
    exact, not just sound: its liveness window matches the model's."""
    rng = random.Random(10_000 + seed)
    ops, n_acc = gen_model(rng, max_threads=3)
    if any(op[0] == "spawn" for t in ops for op in ops[t] if t != 0):
        pytest.skip("nested spawn: only soundness is guaranteed")
    program = compile_source(emit_source(ops, n_acc))
    races = analyze_races(program)
    site_of = {}
    for site in races.sites:
        if site.is_write and site.var.startswith("x"):
            site_of[int(site.var[1:])] = site
    truth = brute_parallel(ops)
    for a, b in itertools.combinations(range(n_acc), 2):
        got = races.mhp.may_happen_in_parallel(site_of[a], site_of[b])
        assert got == ((a, b) in truth), (
            "MHP imprecise/unsound for seed %d accesses (%d, %d): "
            "oracle=%s brute=%s\n%s"
            % (seed, a, b, got, (a, b) in truth, emit_source(ops, n_acc))
        )


# -- random lock graphs ----------------------------------------------------


def gen_lock_program(rng, n_locks=4, n_threads=3, max_pairs=3):
    """Each worker acquires random properly-nested two-lock sequences;
    returns (source, edge set) where edges are (held, acquired) names."""
    edges = set()
    funcs = []
    for t in range(1, n_threads + 1):
        body = []
        for _ in range(rng.randint(1, max_pairs)):
            a, b = rng.sample(range(n_locks), 2)
            edges.add(("m%d" % a, "m%d" % b))
            body.append(
                "lock(m%d);\n    lock(m%d);\n    unlock(m%d);\n    unlock(m%d);"
                % (a, b, b, a)
            )
        funcs.append("void w%d() {\n    %s\n}" % (t, "\n    ".join(body)))
    spawns = []
    joins = []
    for t in range(1, n_threads + 1):
        spawns.append("int h%d = 0;" % t)
        spawns.append("h%d = spawn w%d();" % (t, t))
        joins.append("join(h%d);" % t)
    main = "int main() {\n    %s\n    %s\n    return 0;\n}" % (
        "\n    ".join(spawns),
        "\n    ".join(joins),
    )
    decls = "\n".join("mutex m%d;" % i for i in range(n_locks))
    return decls + "\n\n" + "\n\n".join(funcs) + "\n\n" + main + "\n", edges


def brute_cycles(edges):
    """Elementary cycles (length >= 2) by permutation enumeration,
    canonicalized to start at their smallest node."""
    nodes = sorted({n for e in edges for n in e})
    found = set()
    for k in range(2, len(nodes) + 1):
        for combo in itertools.combinations(nodes, k):
            first = combo[0]  # smallest of the combo: canonical start
            for rest in itertools.permutations(combo[1:]):
                cyc = (first,) + rest
                arcs = list(zip(cyc, cyc[1:] + cyc[:1]))
                if all(arc in edges for arc in arcs):
                    found.add(cyc)
    return found


@pytest.mark.parametrize("seed", range(40))
def test_lock_cycles_vs_brute_force(seed):
    rng = random.Random(20_000 + seed)
    source, edges = gen_lock_program(rng)
    program = compile_source(source)
    report = analyze_lock_order(program)
    got_edges = {(e.held, e.acquired) for e in report.edges}
    assert got_edges == edges, "lock-order edges drifted for seed %d" % seed
    got_cycles = {tuple(c) for c in report.cycles}
    assert got_cycles == brute_cycles(edges), (
        "cycle sets differ for seed %d: analyzer=%s brute=%s"
        % (seed, sorted(got_cycles), sorted(brute_cycles(edges)))
    )
