from repro.analysis.escape import shared_variables, thread_roots, transitive_accesses
from repro.minilang import compile_source


def shared_of(src):
    return shared_variables(compile_source(src))


def test_global_accessed_by_two_threads_is_shared():
    assert "x" in shared_of(
        """
        int x;
        void w() { x = 1; }
        int main() { int t = 0; t = spawn w(); x = 2; join(t); }
        """
    )


def test_main_only_global_is_local():
    shared = shared_of(
        """
        int only_main;
        void w() { }
        int main() { int t = 0; t = spawn w(); only_main = 1; join(t); }
        """
    )
    assert "only_main" not in shared


def test_single_spawn_single_instance_private_global():
    # Accessed by exactly one spawned thread, spawned exactly once.
    shared = shared_of(
        """
        int worker_private;
        void w() { worker_private = 1; }
        int main() { int t = 0; t = spawn w(); join(t); }
        """
    )
    assert "worker_private" not in shared


def test_two_spawns_of_same_function_share_its_globals():
    shared = shared_of(
        """
        int v;
        void w() { v = v + 1; }
        int main() {
            int a = 0; int b = 0;
            a = spawn w(); b = spawn w();
            join(a); join(b);
        }
        """
    )
    assert "v" in shared


def test_spawn_in_loop_counts_as_many_instances():
    shared = shared_of(
        """
        int v;
        void w() { v = v + 1; }
        int main() {
            for (int i = 0; i < 4; i++) {
                int t = 0;
                t = spawn w();
                join(t);
            }
        }
        """
    )
    assert "v" in shared


def test_access_through_helper_call_is_transitive():
    shared = shared_of(
        """
        int x;
        void helper() { x = 1; }
        void w() { helper(); }
        int main() { int t = 0; t = spawn w(); x = 2; join(t); }
        """
    )
    assert "x" in shared


def test_declared_shared_overrides_inference():
    assert "x" in shared_of(
        "shared int x; int main() { x = 1; }"
    )


def test_declared_local_overrides_inference():
    shared = shared_of(
        """
        local int x;
        void w() { x = 1; }
        int main() { int t = 0; t = spawn w(); x = 2; join(t); }
        """
    )
    assert "x" not in shared


def test_nested_spawn_multiplicity_propagates():
    # parent() is spawned twice; each parent spawns one child: the child's
    # globals are shared because the child runs in two instances.
    shared = shared_of(
        """
        int cv;
        void child() { cv = cv + 1; }
        void parent() { int t = 0; t = spawn child(); join(t); }
        int main() {
            int a = 0; int b = 0;
            a = spawn parent(); b = spawn parent();
            join(a); join(b);
        }
        """
    )
    assert "cv" in shared


def test_transitive_accesses_fixpoint():
    prog = compile_source(
        """
        int x; int y;
        void a() { x = 1; }
        void b() { a(); y = 1; }
        void c() { b(); }
        int main() { c(); }
        """
    )
    acc = transitive_accesses(prog)
    assert acc["c"] == {"x", "y"}
    assert acc["a"] == {"x"}


def test_thread_roots_and_multiplicity():
    prog = compile_source(
        """
        void w() { }
        int main() {
            int a = 0; int b = 0;
            a = spawn w(); b = spawn w();
            join(a); join(b);
        }
        """
    )
    roots = thread_roots(prog)
    assert roots["main"] == 1
    assert roots["w"] == 2
