import pytest
from hypothesis import given, strategies as st

from repro.analysis.symbolic import (
    BinOp,
    Const,
    Ite,
    Sym,
    expr_size,
    free_syms,
    mk_binop,
    mk_ite,
    mk_not,
    mk_unop,
    sym_eval,
    wrap,
)
from repro.runtime.values import eval_binop, eval_unop

OPS = ["+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&&", "||"]


def test_constant_folding():
    assert mk_binop("+", 2, 3) == Const(5)
    assert mk_binop("<", Const(1), Const(2)) == Const(1)
    assert mk_unop("!", Const(0)) == Const(1)


def test_identity_simplifications():
    x = Sym("x")
    assert mk_binop("+", x, 0) is x
    assert mk_binop("+", 0, x) is x
    assert mk_binop("-", x, 0) is x
    assert mk_binop("*", x, 1) is x
    assert mk_binop("*", 1, x) is x
    assert mk_binop("*", x, 0) == Const(0)


def test_logical_short_simplifications():
    x = mk_binop("<", Sym("x"), 3)
    assert mk_binop("&&", Const(1), x) is x
    assert mk_binop("&&", Const(0), x) == Const(0)
    assert mk_binop("||", Const(0), x) is x
    assert mk_binop("||", Const(1), x) == Const(1)


def test_ite_simplification():
    x = Sym("x")
    assert mk_ite(Const(1), x, Const(0)) is x
    assert mk_ite(Const(0), x, Const(9)) == Const(9)
    assert mk_ite(mk_binop("<", x, 1), Const(7), Const(7)) == Const(7)


def test_eval_matches_concrete_semantics():
    x, y = Sym("x"), Sym("y")
    expr = mk_binop("%", mk_binop("*", x, y), mk_binop("+", y, 1))
    env = {"x": -17, "y": 5}
    assert sym_eval(expr, env) == eval_binop(
        "%", eval_binop("*", -17, 5), eval_binop("+", 5, 1)
    )


def test_eval_missing_symbol_raises_keyerror():
    with pytest.raises(KeyError):
        sym_eval(Sym("nope"), {})


def test_free_syms():
    x, y = Sym("x"), Sym("y")
    expr = mk_ite(mk_binop("<", x, y), mk_unop("-", x), Const(3))
    assert free_syms(expr) == {"x", "y"}
    assert free_syms(Const(5)) == set()


def test_expr_size_counts_nodes():
    x = Sym("x")
    assert expr_size(x) == 1
    assert expr_size(mk_binop("+", x, Sym("y"))) == 3


def test_wrap_idempotent():
    x = Sym("x")
    assert wrap(x) is x
    assert wrap(7) == Const(7)


@st.composite
def exprs(draw, depth=3):
    syms = ["a", "b", "c"]
    if depth == 0:
        if draw(st.booleans()):
            return Sym(draw(st.sampled_from(syms)))
        return Const(draw(st.integers(-50, 50)))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return Const(draw(st.integers(-50, 50)))
    if kind == 1:
        return Sym(draw(st.sampled_from(syms)))
    if kind == 2:
        from repro.runtime.errors import MiniRuntimeError

        op = draw(st.sampled_from(OPS))
        left = draw(exprs(depth=depth - 1))
        right = draw(exprs(depth=depth - 1))
        try:
            return mk_binop(op, left, right)
        except MiniRuntimeError:  # constant-folded division by zero
            return mk_binop("+", left, right)
    return mk_unop(
        draw(st.sampled_from(["-", "!"])), draw(exprs(depth=depth - 1))
    )


@given(exprs(), st.integers(-9, 9), st.integers(-9, 9), st.integers(-9, 9))
def test_simplification_preserves_semantics(expr, a, b, c):
    """Property: the smart constructors never change evaluation."""
    env = {"a": a, "b": b, "c": c}

    def eval_raw(node):
        if isinstance(node, Const):
            return node.value
        if isinstance(node, Sym):
            return env[node.name]
        if isinstance(node, BinOp):
            return eval_binop(node.op, eval_raw(node.left), eval_raw(node.right))
        if isinstance(node, Ite):
            return eval_raw(node.then) if eval_raw(node.cond) else eval_raw(node.els)
        return eval_unop(node.op, eval_raw(node.operand))

    from repro.runtime.errors import MiniRuntimeError

    try:
        expected = eval_raw(expr)
    except MiniRuntimeError:
        return  # division by zero along the raw tree
    assert sym_eval(expr, env) == expected


@given(
    st.sampled_from(OPS), st.integers(-100, 100), st.integers(-100, 100)
)
def test_mk_binop_folds_exactly_like_runtime(op, a, b):
    from repro.runtime.errors import MiniRuntimeError

    try:
        expected = eval_binop(op, a, b)
    except MiniRuntimeError:
        return
    assert mk_binop(op, Const(a), Const(b)) == Const(expected)
