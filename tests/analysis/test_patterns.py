"""SR3xx bug-pattern passes: atomicity, order, lost-notify.

Each pattern is exercised on a buggy variant (must fire, with the right
predicate fields) and a fixed variant (must stay silent).  The seeded
example programs under examples/minilang/ are covered by the golden
tests; here we use small inline sources so each guard in the passes is
pinned down individually.
"""

import os

import pytest

from repro.analysis.static_race import find_bug_patterns
from repro.minilang import compile_source

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def patterns_of(src):
    return find_bug_patterns(compile_source(src))


def codes_of(report):
    return sorted(p.code for p in report.predicates)


def predicate(report, code):
    matches = [p for p in report.predicates if p.code == code]
    assert matches, "expected a %s predicate, got %s" % (code, codes_of(report))
    return matches[0]


def example(name):
    path = os.path.join(ROOT, "examples", "minilang", name)
    with open(path) as fh:
        return compile_source(fh.read(), name=name)


# -- SR301: atomicity violations ------------------------------------------

RMW_SPLIT_LOCK = """
int c = 0;
mutex m;

void worker() {
    lock(m);
    int t = c;
    unlock(m);
    lock(m);
    c = t + 1;
    unlock(m);
}

int main() {
    int a = 0; int b = 0;
    a = spawn worker();
    b = spawn worker();
    join(a);
    join(b);
    assert(c == 2);
    return 0;
}
"""

RMW_ONE_LOCK = """
int c = 0;
mutex m;

void worker() {
    lock(m);
    int t = c;
    c = t + 1;
    unlock(m);
}

int main() {
    int a = 0; int b = 0;
    a = spawn worker();
    b = spawn worker();
    join(a);
    join(b);
    assert(c == 2);
    return 0;
}
"""

CHECK_THEN_ACT = """
int slots = 1;
mutex m;

void taker() {
    lock(m);
    int s = slots;
    unlock(m);
    if (s > 0) {
        lock(m);
        slots = slots - 1;
        unlock(m);
    }
}

int main() {
    int a = 0; int b = 0;
    a = spawn taker();
    b = spawn taker();
    join(a);
    join(b);
    assert(slots >= 0);
    return 0;
}
"""


def test_sr301_fires_on_split_lock_rmw():
    report = patterns_of(RMW_SPLIT_LOCK)
    pred = predicate(report, "SR301")
    assert pred.var == "c"
    assert pred.func == "worker"
    assert pred.focus_vars == ("c",)
    # The span runs read -> write, and the interleaving writer is the
    # other instance of the same line.
    assert pred.read_line < pred.write_line
    assert pred.write_line in pred.remote_write_lines


def test_sr301_silent_when_span_is_one_critical_section():
    report = patterns_of(RMW_ONE_LOCK)
    assert "SR301" not in codes_of(report)


def test_sr301_fires_on_check_then_act():
    report = patterns_of(CHECK_THEN_ACT)
    pred = predicate(report, "SR301")
    assert pred.var == "slots"


def test_sr301_silent_without_concurrency():
    src = RMW_SPLIT_LOCK.replace("b = spawn worker();", "").replace(
        "join(b);", ""
    ).replace("assert(c == 2)", "assert(c == 1)")
    report = patterns_of(src)
    # A single worker joined before the assert: no parallel remote write.
    assert "SR301" not in codes_of(report)


def test_sr301_example_programs():
    assert "SR301" in codes_of(find_bug_patterns(example("atomicity_ctr.ml")))
    assert "SR301" not in codes_of(
        find_bug_patterns(example("atomicity_ctr_fixed.ml"))
    )


# -- SR302: order violations ----------------------------------------------

USE_BEFORE_INIT = """
int data = 0;
int out = 0;

void reader() {
    int v = data;
    out = v + 1;
}

int main() {
    int h = 0;
    h = spawn reader();
    data = 42;
    join(h);
    assert(out == 43);
    return 0;
}
"""

INIT_BEFORE_SPAWN = """
int data = 0;
int out = 0;

void reader() {
    int v = data;
    out = v + 1;
}

int main() {
    int h = 0;
    data = 42;
    h = spawn reader();
    join(h);
    assert(out == 43);
    return 0;
}
"""

SELF_INIT_READER = """
int data = 0;

void writerthread() {
    data = 7;
}

void reader() {
    data = 1;
    int v = data;
    assert(v > 0);
}

int main() {
    int a = 0; int b = 0;
    a = spawn writerthread();
    b = spawn reader();
    join(a);
    join(b);
    return 0;
}
"""


def test_sr302_fires_on_use_before_init():
    report = patterns_of(USE_BEFORE_INIT)
    pred = predicate(report, "SR302")
    assert pred.var == "data"
    assert pred.func == "reader"
    assert pred.init_write_lines  # main's data = 42


def test_sr302_silent_when_init_precedes_spawn():
    report = patterns_of(INIT_BEFORE_SPAWN)
    assert "SR302" not in codes_of(report)


def test_sr302_silent_for_self_initializing_reader():
    # The reader writes data itself: it is not a pure consumer, so the
    # use-before-init pattern does not apply.
    report = patterns_of(SELF_INIT_READER)
    assert "SR302" not in codes_of(report)


def test_sr302_example_programs():
    assert "SR302" in codes_of(find_bug_patterns(example("order_uninit.ml")))
    assert "SR302" not in codes_of(
        find_bug_patterns(example("order_uninit_fixed.ml"))
    )


# -- SR303: lost notify ---------------------------------------------------

NAKED_SIGNAL = """
int ready = 0;
mutex m;
cond cv;

void waiter() {
    lock(m);
    if (ready == 0) {
        wait(cv, m);
    }
    unlock(m);
}

int main() {
    int h = 0;
    h = spawn waiter();
    signal(cv);
    lock(m);
    ready = 1;
    signal(cv);
    unlock(m);
    join(h);
    return 0;
}
"""

GUARDED_SIGNAL = """
int ready = 0;
mutex m;
cond cv;

void waiter() {
    lock(m);
    if (ready == 0) {
        wait(cv, m);
    }
    unlock(m);
}

int main() {
    int h = 0;
    h = spawn waiter();
    lock(m);
    ready = 1;
    signal(cv);
    unlock(m);
    join(h);
    return 0;
}
"""


def test_sr303_fires_on_naked_signal():
    report = patterns_of(NAKED_SIGNAL)
    pred = predicate(report, "SR303")
    assert pred.condvar == "cv"
    assert pred.mutex == "m"
    assert pred.func == "waiter"
    # Only the unprotected signal is a candidate; the guarded one is not.
    assert len(pred.signal_lines) == 1


def test_sr303_silent_when_signal_holds_the_mutex():
    report = patterns_of(GUARDED_SIGNAL)
    assert "SR303" not in codes_of(report)


def test_sr303_example_programs():
    assert "SR303" in codes_of(find_bug_patterns(example("lost_notify.ml")))
    assert "SR303" not in codes_of(
        find_bug_patterns(example("lost_notify_fixed.ml"))
    )


def test_sr303_silent_on_producer_consumer():
    # The canonical correct condvar program: every signal is inside the
    # matching critical section.
    assert "SR303" not in codes_of(
        find_bug_patterns(example("producer_consumer.ml"))
    )


# -- report structure ------------------------------------------------------


def test_predicates_parallel_diagnostics():
    report = patterns_of(RMW_SPLIT_LOCK)
    assert len(report.diagnostics) == len(report.predicates)
    for diag, pred in zip(report.diagnostics, report.predicates):
        assert diag.code == pred.code
        assert diag.severity == "warning"


def test_all_predicates_carry_focus_vars():
    for src in (RMW_SPLIT_LOCK, USE_BEFORE_INIT, NAKED_SIGNAL):
        for pred in patterns_of(src).predicates:
            assert pred.focus_vars, pred
