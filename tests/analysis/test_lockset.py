from repro.analysis.lockset import analyze_locksets
from repro.minilang import compile_source
from repro.runtime.interpreter import run_program

from tests.conftest import LOCKED_SRC, RACE_SRC


def events_of(src_or_prog, seed=0, stickiness=0.3):
    prog = (
        compile_source(src_or_prog)
        if isinstance(src_or_prog, str)
        else src_or_prog
    )
    return run_program(prog, seed=seed, stickiness=stickiness).events


def test_unprotected_counter_flagged():
    report = analyze_locksets(events_of(RACE_SRC))
    assert ("c",) in report.violations()


def test_consistently_locked_counter_clean():
    report = analyze_locksets(events_of(LOCKED_SRC))
    assert report.violations() == []


def test_exclusive_single_thread_access_clean():
    src = """
    int x = 0;
    int main() { x = 1; x = x + 1; return 0; }
    """
    report = analyze_locksets(events_of(src))
    assert report.violations() == []


def test_shared_read_only_clean():
    src = """
    int x = 7;
    int sink0 = 0;
    int sink1 = 0;
    void r(int id) { if (id == 0) { sink0 = x; } else { sink1 = x; } }
    int main() {
        int a = 0; int b = 0;
        a = spawn r(0); b = spawn r(1);
        join(a); join(b);
        return 0;
    }
    """
    report = analyze_locksets(events_of(src))
    assert ("x",) not in report.violations()


def test_partial_locking_flagged():
    # One thread locks, the other does not: candidate set empties.
    src = """
    int x = 0;
    mutex m;
    void locked() { lock(m); x = x + 1; unlock(m); }
    void unlocked() { x = x + 1; }
    int main() {
        int a = 0; int b = 0;
        a = spawn locked(); b = spawn unlocked();
        join(a); join(b);
        return 0;
    }
    """
    report = analyze_locksets(events_of(src))
    assert ("x",) in report.violations()


def test_violation_location_recorded():
    report = analyze_locksets(events_of(RACE_SRC))
    loc = report.locations[("c",)]
    assert loc.violated
    thread, line = loc.first_violation
    assert line > 0
