"""Static analysis must over-approximate the dynamic Eraser detector.

For every benchmark program: any variable the dynamic lockset pass
(`analysis.lockset`, Eraser-style, observing one concrete execution)
flags as a violation must also appear in the static analyzer's racy set.
The static side sees every path and over-approximates parallelism, so
missing a dynamically observed race would be a soundness bug, not a
precision tradeoff.
"""

import pytest

from repro.analysis.lockset import analyze_locksets
from repro.analysis.static_race import analyze_races
from repro.bench.programs import BENCHMARK_NAMES, get_benchmark
from repro.runtime.interpreter import run_program

SEEDS = (0, 7, 23)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_static_racy_set_superset_of_eraser(name):
    bench = get_benchmark(name)
    program = bench.compile()
    static_racy = analyze_races(program).racy_vars

    dynamic_vars = set()
    for seed in SEEDS:
        result = run_program(
            program,
            bench.memory_model,
            seed=seed,
            stickiness=0.4,
            flush_prob=0.2,
        )
        report = analyze_locksets(result.events)
        dynamic_vars |= {addr[0] for addr in report.violations()}

    missed = dynamic_vars - static_racy
    assert not missed, (
        "%s: Eraser saw races on %s that the static analyzer missed "
        "(static racy set: %s)" % (name, sorted(missed), sorted(static_racy))
    )
