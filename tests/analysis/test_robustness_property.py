"""Property test: the robustness verdict vs brute-force enumeration.

Random straight-line two-worker litmus programs (stores of distinct
constants, loads into locals, optional fences) are generated as abstract
op lists, turned into MiniLang programs for the analyzer, and
exhaustively enumerated under abstract SC/TSO/PSO semantics that share
no code with ``repro.runtime.memory``:

* SC interleaves ops directly;
* TSO gives each thread one FIFO store buffer (loads forward from the
  youngest buffered store to the same variable) with buffer flushes as
  separate nondeterministic steps;
* PSO keys the buffers per (thread, variable);
* a fence is enabled only once the thread's own buffers are empty —
  the gradual-drain formulation, equivalent to "fence drains buffers".

A final state is (global values, per-thread load-value tuples).  The
property is Shasha-Snir soundness: if the analyzer calls the program
*robust* under a model, exhaustive enumeration under that model must
reach no final state that SC cannot.  (The converse need not hold
state-wise — a critical cycle witnesses a non-SC *trace*, whose final
state may still coincide with an SC one — so only the robust direction
is asserted per seed, plus an aggregate check that the generator
actually produces both verdicts and genuinely weak behaviors.)
"""

import itertools
import random

import pytest

from repro.analysis.static_race.robustness import analyze_robustness
from repro.minilang import compile_source

N_SEEDS = 40


# -- random straight-line litmus programs -----------------------------------


def gen_litmus(rng, n_vars=2, max_ops=4):
    """Two workers, each a straight-line op list over g0..g{n_vars-1}:
    ('store', var, val) with globally unique values, ('load', var), or
    ('fence',).  Returns {1: ops, 2: ops}."""
    next_val = itertools.count(1)
    threads = {}
    for t in (1, 2):
        ops = []
        for _ in range(rng.randint(2, max_ops)):
            roll = rng.random()
            var = rng.randrange(n_vars)
            if roll < 0.45:
                ops.append(("store", var, next(next_val)))
            elif roll < 0.85:
                ops.append(("load", var))
            else:
                ops.append(("fence",))
        threads[t] = ops
    return threads


def emit_source(threads, n_vars):
    decls = "\n".join("int g%d = 0;" % v for v in range(n_vars))
    funcs = []
    for t, ops in sorted(threads.items()):
        body = []
        for i, op in enumerate(ops):
            if op[0] == "store":
                body.append("g%d = %d;" % (op[1], op[2]))
            elif op[0] == "load":
                body.append("int l%d = g%d;" % (i, op[1]))
            else:
                body.append("fence;")
        funcs.append("void w%d() {\n    %s\n}" % (t, "\n    ".join(body)))
    main = (
        "int main() {\n"
        "    int h1 = 0;\n    int h2 = 0;\n"
        "    h1 = spawn w1();\n    h2 = spawn w2();\n"
        "    join(h1);\n    join(h2);\n    return 0;\n}"
    )
    return decls + "\n\n" + "\n\n".join(funcs) + "\n\n" + main + "\n"


# -- abstract enumerators ----------------------------------------------------
#
# State: (pcs, buffers, globals, loads) with every component hashable.
# Buffers are per-thread tuples of (var, val) for TSO and per-(thread,
# var) tuples for PSO; SC is the degenerate case with no buffers.


def _enumerate(threads, n_vars, model):
    tids = sorted(threads)
    init_globals = tuple(0 for _ in range(n_vars))
    if model == "sc":
        init_buf = ()
    elif model == "tso":
        init_buf = tuple((t, ()) for t in tids)
    else:  # pso
        init_buf = tuple(((t, v), ()) for t in tids for v in range(n_vars))
    init = (
        tuple(0 for _ in tids),
        init_buf,
        init_globals,
        tuple(() for _ in tids),
    )
    finals = set()
    seen = set()
    stack = [init]

    def buf_get(buffers, key):
        return dict(buffers)[key]

    def buf_set(buffers, key, value):
        return tuple((k, value if k == key else q) for k, q in buffers)

    while stack:
        state = stack.pop()
        if state in seen:
            continue
        seen.add(state)
        pcs, buffers, gvals, loads = state
        for ti, t in enumerate(tids):
            # Flush steps: commit the oldest buffered store of one queue.
            if model == "tso":
                queue = buf_get(buffers, t)
                if queue:
                    (var, val), rest = queue[0], queue[1:]
                    ng = tuple(
                        val if i == var else g for i, g in enumerate(gvals)
                    )
                    stack.append(
                        (pcs, buf_set(buffers, t, rest), ng, loads)
                    )
            elif model == "pso":
                for v in range(n_vars):
                    queue = buf_get(buffers, (t, v))
                    if queue:
                        val, rest = queue[0], queue[1:]
                        ng = tuple(
                            val if i == v else g for i, g in enumerate(gvals)
                        )
                        stack.append(
                            (pcs, buf_set(buffers, (t, v), rest), ng, loads)
                        )
            pc = pcs[ti]
            if pc >= len(threads[t]):
                continue
            op = threads[t][pc]
            npcs = tuple(p + 1 if i == ti else p for i, p in enumerate(pcs))
            if op[0] == "fence":
                # Enabled only once the thread's own buffers are empty
                # (gradual drain; flush steps above do the draining).
                if model == "tso" and buf_get(buffers, t):
                    continue
                if model == "pso" and any(
                    buf_get(buffers, (t, v)) for v in range(n_vars)
                ):
                    continue
                stack.append((npcs, buffers, gvals, loads))
            elif op[0] == "store":
                _kind, var, val = op
                if model == "sc":
                    ng = tuple(
                        val if i == var else g for i, g in enumerate(gvals)
                    )
                    stack.append((npcs, buffers, ng, loads))
                elif model == "tso":
                    queue = buf_get(buffers, t) + ((var, val),)
                    stack.append((npcs, buf_set(buffers, t, queue), gvals, loads))
                else:
                    queue = buf_get(buffers, (t, var)) + (val,)
                    stack.append(
                        (npcs, buf_set(buffers, (t, var), queue), gvals, loads)
                    )
            else:  # load
                var = op[1]
                val = gvals[var]
                if model == "tso":
                    for bvar, bval in reversed(buf_get(buffers, t)):
                        if bvar == var:
                            val = bval  # store forwarding
                            break
                elif model == "pso":
                    queue = buf_get(buffers, (t, var))
                    if queue:
                        val = queue[-1]
                nloads = tuple(
                    ld + (val,) if i == ti else ld for i, ld in enumerate(loads)
                )
                stack.append((npcs, buffers, gvals, nloads))
        if all(pcs[ti] >= len(threads[t]) for ti, t in enumerate(tids)):
            drained = model == "sc" or all(not q for _k, q in buffers)
            if drained:
                finals.add((gvals, loads))
    return finals


# -- the property ------------------------------------------------------------


def _case(seed):
    rng = random.Random(seed)
    n_vars = rng.randint(2, 3)
    threads = gen_litmus(rng, n_vars=n_vars)
    source = emit_source(threads, n_vars)
    program = compile_source(source)
    return threads, n_vars, source, program


@pytest.mark.parametrize("model", ["tso", "pso"])
@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_robust_implies_no_weak_final_state(seed, model):
    threads, n_vars, source, program = _case(seed)
    report = analyze_robustness(program, model)
    if not report.robust:
        return  # only the robust direction is a state-level guarantee
    sc = _enumerate(threads, n_vars, "sc")
    weak = _enumerate(threads, n_vars, model)
    extra = weak - sc
    assert not extra, (
        "analyzer calls seed %d robust under %s but enumeration finds "
        "weak-only final states %s\n%s" % (seed, model, sorted(extra), source)
    )


def test_generator_exercises_both_verdicts():
    """Sanity: across the seed set the generator must produce robust and
    non-robust programs, and at least one non-robust program must show a
    genuinely weak final state — otherwise the property is vacuous."""
    verdicts = {True: 0, False: 0}
    weak_only_seen = False
    for seed in range(N_SEEDS):
        threads, n_vars, _source, program = _case(seed)
        report = analyze_robustness(program, "pso")
        verdicts[report.robust] += 1
        if not report.robust and not weak_only_seen:
            sc = _enumerate(threads, n_vars, "sc")
            weak = _enumerate(threads, n_vars, "pso")
            weak_only_seen = bool(weak - sc)
    assert verdicts[True] > 0, "no robust programs generated"
    assert verdicts[False] > 0, "no non-robust programs generated"
    assert weak_only_seen, "no non-robust program showed a weak final state"
