"""Symbolic re-execution must mirror the runtime's SAP streams exactly."""

import pytest

from repro.analysis.escape import shared_variables
from repro.analysis.symbolic import Const, Sym, sym_eval
from repro.analysis.symexec import SymExecError, execute_recorded_paths
from repro.minilang import compile_source
from repro.runtime.interpreter import Interpreter
from repro.runtime.scheduler import RandomScheduler
from repro.tracing.decoder import decode_log
from repro.tracing.recorder import PathRecorder


def record(src, seed=0, stickiness=0.4, memory_model="sc", shared=None):
    prog = compile_source(src, name="sx")
    if shared is None:
        shared = shared_variables(prog)
    recorder = PathRecorder(prog)
    interp = Interpreter(
        prog,
        memory_model=memory_model,
        scheduler=RandomScheduler(seed, stickiness=stickiness),
        shared=shared,
        hooks=[recorder],
    )
    result = interp.run()
    recorder.finalize(interp)
    decoded = decode_log(recorder)
    return prog, shared, result, decoded


def summaries_for(src, **kwargs):
    prog, shared, result, decoded = record(src, **kwargs)
    summaries = execute_recorded_paths(prog, decoded, shared, bug=result.bug)
    return prog, result, summaries


def assert_saps_match(result, summaries):
    for thread, summary in summaries.items():
        runtime = [(s.kind, s.addr) for s in result.saps_by_thread[thread]]
        offline = [(s.kind, s.addr) for s in summary.saps]
        if runtime:  # threads that never ran have no runtime start SAP
            assert offline == runtime, thread


def test_sap_agreement_on_clean_run(condvar_program=None):
    src = """
    int x = 0;
    mutex m;
    void w(int n) {
        for (int i = 0; i < n; i++) {
            lock(m);
            x = x + i;
            unlock(m);
        }
    }
    int main() {
        int t1 = 0; int t2 = 0;
        t1 = spawn w(2); t2 = spawn w(3);
        join(t1); join(t2);
        assert(x >= 0);
        return 0;
    }
    """
    prog, result, summaries = summaries_for(src, seed=4)
    assert_saps_match(result, summaries)


@pytest.mark.parametrize("seed", [0, 2, 8])
def test_sap_agreement_on_buggy_run(seed):
    src = """
    int c = 0;
    void w() { int r = c; c = r + 1; }
    int main() {
        int t1 = 0; int t2 = 0;
        t1 = spawn w(); t2 = spawn w();
        join(t1); join(t2);
        assert(c == 2);
        return 0;
    }
    """
    prog, result, summaries = summaries_for(src, seed=seed, stickiness=0.25)
    assert_saps_match(result, summaries)
    if result.bug is not None:
        assert summaries["1"].bug_expr is not None


def test_read_values_become_fresh_symbols():
    src = """
    shared int x = 5;
    int main() { int a = x; assert(a == 5); return 0; }
    """
    _, result, summaries = summaries_for(src)
    reads = [s for s in summaries["1"].saps if s.is_read]
    assert len(reads) == 1
    assert isinstance(reads[0].value, Sym)


def test_write_value_expression_uses_read_symbol():
    src = """
    shared int x = 1;
    int main() { x = x * 3 + 1; return 0; }
    """
    _, result, summaries = summaries_for(src)
    write = next(s for s in summaries["1"].saps if s.is_write)
    read = next(s for s in summaries["1"].saps if s.is_read)
    assert sym_eval(write.value, {read.value.name: 7}) == 22


def test_branch_conditions_become_path_conditions():
    src = """
    shared int x = 3;
    int main() {
        if (x > 1) { x = 0; } else { x = 9; }
        return 0;
    }
    """
    _, result, summaries = summaries_for(src)
    conds = summaries["1"].conditions
    assert len(conds) == 1
    read = next(s for s in summaries["1"].saps if s.is_read)
    assert sym_eval(conds[0].expr, {read.value.name: 3}) == 1
    assert sym_eval(conds[0].expr, {read.value.name: 0}) == 0


def test_bug_predicate_is_negated_assert():
    src = """
    int x = 0;
    void w() { x = 1; }
    int main() {
        int t = 0;
        t = spawn w();
        join(t);
        assert(x == 0);
        return 0;
    }
    """
    # x==0 fails whenever the child's write lands before the read.
    prog, result, summaries = summaries_for(src, seed=0)
    if result.bug is None:
        pytest.skip("assert did not fail under this seed")
    bug = summaries["1"].bug_expr
    read = next(s for s in summaries["1"].saps if s.is_read)
    assert sym_eval(bug, {read.value.name: 1}) == 1
    assert sym_eval(bug, {read.value.name: 0}) == 0


def test_thread_local_globals_stay_concrete():
    src = """
    local int priv = 2;
    int shared_x = 0;
    void w() { shared_x = 1; }
    int main() {
        int t = 0;
        t = spawn w();
        priv = priv * 10;
        join(t);
        assert(priv == 20);
        return 0;
    }
    """
    _, result, summaries = summaries_for(src)
    # No read SAPs for priv, and the assert folded away concretely.
    for summary in summaries.values():
        for sap in summary.saps:
            assert sap.addr != ("priv",)


def test_local_array_symbolic_index_resolves_via_ite():
    src = """
    local int table[4];
    int sel = 0;
    void w() { sel = 2; }
    int main() {
        int t = 0;
        t = spawn w();
        join(t);
        table[0] = 10;
        table[1] = 11;
        table[2] = 12;
        table[3] = 13;
        int i = sel;
        table[i] = 99;
        int v = table[2];
        assert(v == 99 || v == 12);
        return 0;
    }
    """
    prog, result, summaries = summaries_for(src)
    assert result.bug is None
    main = summaries["1"]
    # The read of sel is symbolic, so table[i] went through the overlay and
    # the assert produced a path condition mentioning that symbol.
    sel_reads = [s for s in main.saps if s.is_read and s.addr == ("sel",)]
    assert sel_reads
    sym_name = sel_reads[0].value.name
    cond = main.conditions[-1]
    assert sym_eval(cond.expr, {sym_name: 2}) == 1


def test_shared_array_symbolic_index_rejected():
    src = """
    int a[4];
    int idx = 0;
    void w() { idx = 1; a[0] = 5; }
    int main() {
        int t = 0;
        t = spawn w();
        join(t);
        int i = idx;
        int v = a[i];
        return 0;
    }
    """
    prog, shared, result, decoded = record(src)
    with pytest.raises(SymExecError):
        execute_recorded_paths(prog, decoded, shared, bug=result.bug)


def test_spawn_args_flow_to_children():
    src = """
    int x = 0;
    void w(int k) { x = x + k; }
    int main() {
        int t1 = 0; int t2 = 0;
        t1 = spawn w(10);
        t2 = spawn w(20);
        join(t1); join(t2);
        return 0;
    }
    """
    _, result, summaries = summaries_for(src)
    w1 = next(s for s in summaries["1:1"].saps if s.is_write)
    w2 = next(s for s in summaries["1:2"].saps if s.is_write)
    r1 = next(s for s in summaries["1:1"].saps if s.is_read)
    r2 = next(s for s in summaries["1:2"].saps if s.is_read)
    assert sym_eval(w1.value, {r1.value.name: 0}) == 10
    assert sym_eval(w2.value, {r2.value.name: 0}) == 20


def test_wait_desugars_to_three_saps(condvar_program=None):
    src = """
    int ready = 0;
    mutex m;
    cond cv;
    void waiter() {
        lock(m);
        while (ready == 0) { wait(cv, m); }
        unlock(m);
    }
    int main() {
        int t = 0;
        t = spawn waiter();
        lock(m);
        ready = 1;
        signal(cv);
        unlock(m);
        join(t);
        return 0;
    }
    """
    for seed in range(20):
        prog, shared, result, decoded = record(src, seed=seed, stickiness=0.3)
        summaries = execute_recorded_paths(prog, decoded, shared, bug=result.bug)
        assert_saps_match(result, summaries)
        waiter = summaries["1:1"]
        kinds = [s.kind for s in waiter.saps]
        if "wait" in kinds:
            i = kinds.index("wait")
            assert kinds[i - 1] == "unlock"
            assert kinds[i + 1] == "lock"
            return
    pytest.skip("no seed made the waiter actually block")
