"""Differential battery: the cube-and-conquer portfolio vs ``smt-inc``.

The portfolio races a pristine sequential replica, genval probes pinned
to single rungs, rf-prefix cube workers and diversified full-space
workers, exchanging short learned clauses through the pool channel.
None of that machinery may change *answers*:

* same SAT/UNSAT verdict as the sequential incremental bound loop on
  every Table-1 entry and on fuzzed litmus programs;
* the portfolio's context-switch bound is never *worse* than the
  sequential one; whenever the sequential bound is proven (every lower
  rung exhausted, not budget-cut) a winner sharing the SMT path's
  canonical greedy switch metric must reproduce it exactly, and a
  genval winner may only *improve* it (the ladder's exhaustion proof is
  modulo greedy canonical scheduling; genval searches the exact
  schedule space, and the validator certifies the lower count);
* the returned schedule replays the bug through the independent
  :class:`~repro.solver.validate.ScheduleValidator`;
* ``portfolio_workers=1`` degenerates to the sequential loop in the
  same process and must be bit-identical to it, run after run.
"""

import random

import pytest

from repro.analysis.escape import shared_variables
from repro.analysis.symexec import execute_recorded_paths
from repro.bench.programs import TABLE1_NAMES, get_benchmark
from repro.constraints.encoder import encode
from repro.core.clap import ClapConfig, ClapPipeline
from repro.minilang import compile_source
from repro.solver.portfolio import solve_constraints_portfolio
from repro.solver.smt import solve_constraints_bounded
from repro.solver.validate import validate_schedule
from repro.tracing.decoder import decode_log

from tests.test_differential import generate_program, record

MAX_CS = 4
MAX_SECONDS = 60
# Per-round CEGAR budget. bbuf's constraint system is an order of
# magnitude bigger than the rest; a tighter slice keeps the sweep inside
# tier-1 time without changing its verdict (still found at cs=4).
ROUND_ITERATIONS = {"bbuf": 150}
DEFAULT_ROUND_ITERATIONS = 600

_SYSTEMS = {}


def table1_system(name):
    """Record + analyze one Table-1 entry, cached across tests."""
    if name not in _SYSTEMS:
        bench = get_benchmark(name)
        pipeline = ClapPipeline(
            bench.compile(), ClapConfig(**bench.config_kwargs())
        )
        _SYSTEMS[name] = pipeline.analyze(pipeline.record())
    return _SYSTEMS[name]


def _proven_minimal(result):
    """The bound is a theorem (not a budget artifact) when every lower
    round exhausted its space."""
    return all(
        entry["exhausted"]
        for entry in result.round_stats
        if entry["bound"] < result.bound
    )


def _assert_portfolio_agrees(system, round_iterations=DEFAULT_ROUND_ITERATIONS):
    sequential = solve_constraints_bounded(
        system,
        max_cs=MAX_CS,
        incremental=True,
        round_iterations=round_iterations,
        max_seconds=MAX_SECONDS,
    )
    portfolio = solve_constraints_portfolio(
        system,
        max_cs=MAX_CS,
        workers=3,
        round_iterations=round_iterations,
        max_seconds=MAX_SECONDS,
    )
    assert sequential.ok == portfolio.ok, (
        sequential.reason,
        portfolio.reason,
    )
    if sequential.ok:
        # The schedule must replay the bug through the independent
        # validator, with the claimed number of context switches.
        for result in (sequential, portfolio):
            outcome = validate_schedule(system, result.schedule)
            assert outcome.ok, outcome.reason
            assert outcome.context_switches == result.context_switches
        # A racing worker may find a *better* bound than the sequential
        # loop, never a worse one: the finish rule refuses to declare a
        # winner at rung c until every rung below c is resolved.
        assert portfolio.context_switches <= sequential.context_switches
        stats = portfolio.portfolio
        assert stats["workers"] == 3
        assert stats["winner"], stats
        if _proven_minimal(sequential):
            if stats["winner_kind"] == "genval":
                # The SMT ladder's exhaustion proof is modulo the greedy
                # canonical scheduler (each rf combo is charged the best
                # switch count greedy scheduling finds for it), so an
                # exact-metric genval winner may legitimately beat a
                # "proven" sequential bound — the validator certified the
                # lower count above.  It must never be worse.
                assert (
                    portfolio.context_switches <= sequential.context_switches
                )
            else:
                # Workers sharing the canonical metric (seq replica,
                # cubes, diversified solvers) must reproduce a proven
                # sequential bound exactly.
                assert (
                    portfolio.context_switches == sequential.context_switches
                )
    return sequential, portfolio


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_table1_portfolio_matches_sequential(name):
    system = table1_system(name)
    round_iterations = ROUND_ITERATIONS.get(name, DEFAULT_ROUND_ITERATIONS)
    _assert_portfolio_agrees(system, round_iterations=round_iterations)


# Fuzzer trials whose seeded generation yields a recordable assertion
# failure with a modest constraint system — same set the incremental
# differential suite pins (tests/solver/test_smt_incremental.py).
_FAILING_TRIALS = [2, 11, 16, 29]


@pytest.mark.parametrize("trial", _FAILING_TRIALS)
def test_fuzzed_programs_portfolio_matches_sequential(trial):
    rng = random.Random(77000 + trial)
    source = generate_program(rng)
    program = compile_source(source, name="portfuzz%d" % trial)
    shared = shared_variables(program)
    for seed in range(25):
        result, recorder = record(program, shared, seed, "sc")
        if result.bug is None or result.bug.kind != "assertion":
            continue
        summaries = execute_recorded_paths(
            program, decode_log(recorder), shared, bug=result.bug
        )
        system = encode(summaries, "sc", program.symbols, shared)
        _assert_portfolio_agrees(system)
        return
    pytest.skip("no assertion failure manifested for this fuzzed program")


def test_single_worker_is_bit_identical_to_sequential():
    # ``portfolio_workers=1`` must not fork at all: same process, same
    # solver, bit-identical outcome — the determinism anchor.
    system = table1_system("pbzip2")
    sequential = solve_constraints_bounded(
        system, max_cs=MAX_CS, incremental=True, max_seconds=MAX_SECONDS
    )
    runs = [
        solve_constraints_portfolio(
            system, max_cs=MAX_CS, workers=1, max_seconds=MAX_SECONDS
        )
        for _ in range(2)
    ]
    for single in runs:
        assert single.ok == sequential.ok
        assert single.schedule == sequential.schedule
        assert single.reads_from == sequential.reads_from
        assert single.context_switches == sequential.context_switches
        assert single.bound == sequential.bound
        assert single.iterations == sequential.iterations
        assert single.portfolio["winner"] == "seq"
        assert single.portfolio["workers"] == 1
    # Run-to-run determinism of the degenerate mode itself.
    assert runs[0].schedule == runs[1].schedule
    assert runs[0].iterations == runs[1].iterations


def test_portfolio_round_stats_preserve_minimality_evidence():
    # Whatever worker wins, the assembled result must still carry a
    # round_stats ladder covering every bound up to the winner's, so
    # downstream minimality checks (``_proven_minimal`` in the perf
    # harness, the batch report) keep working unchanged.
    system = table1_system("aget")
    portfolio = solve_constraints_portfolio(
        system, max_cs=MAX_CS, workers=3, max_seconds=MAX_SECONDS
    )
    assert portfolio.ok
    bounds = [entry["bound"] for entry in portfolio.round_stats]
    assert bounds == list(range(portfolio.bound + 1))
    assert portfolio.round_stats[-1]["found"] is True
    for entry in portfolio.round_stats[:-1]:
        assert entry["found"] is False
        assert "exhausted" in entry
