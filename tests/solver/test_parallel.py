"""Generate-and-validate driver (sequential and parallel modes)."""

import pytest

from repro.core.clap import ClapConfig, ClapPipeline
from repro.constraints.context_switch import count_context_switches
from repro.runtime.replay import replay_schedule
from repro.solver.parallel import _bug_holds, solve_generate_validate
from repro.solver.schedule_gen import ScheduleGenerator
from repro.solver.validate import validate_schedule

from tests.conftest import RACE_SRC


@pytest.fixture(scope="module")
def race_setup():
    pipe = ClapPipeline(RACE_SRC, ClapConfig(stickiness=0.3))
    recorded = pipe.record()
    system = pipe.analyze(recorded)
    return pipe, recorded, system


def test_sequential_solve_finds_minimal_schedule(race_setup):
    pipe, recorded, system = race_setup
    result = solve_generate_validate(system)
    assert result.ok
    assert result.context_switches == 1, "race needs exactly one preemption"
    assert result.rounds == 1
    assert result.generated > 0
    assert result.good >= 1


def test_solution_is_valid_and_replayable(race_setup):
    pipe, recorded, system = race_setup
    result = solve_generate_validate(system)
    assert validate_schedule(system, result.schedule).ok
    outcome = replay_schedule(
        pipe.program,
        result.schedule,
        "sc",
        shared=pipe.shared,
        expected_bug=recorded.bug,
    )
    assert outcome.reproduced


def test_all_good_schedules_manifest_bug(race_setup):
    pipe, recorded, system = race_setup
    result = solve_generate_validate(system)
    gen = ScheduleGenerator(system)
    for schedule in result.good_schedules:
        assert _bug_holds(system, schedule, gen)
        assert (
            count_context_switches(schedule, system.summaries)
            >= result.context_switches
        )


def test_zero_budget_round_cannot_find_race(race_setup):
    pipe, recorded, system = race_setup
    result = solve_generate_validate(system, max_cs=0)
    assert not result.ok
    assert result.generated > 0, "zero-preemption schedules exist, just no bug"


def test_timeout(race_setup):
    pipe, recorded, system = race_setup
    result = solve_generate_validate(system, max_seconds=0.0)
    assert not result.ok
    assert result.reason == "timeout"


@pytest.mark.slow
def test_parallel_mode_matches_sequential(race_setup):
    pipe, recorded, system = race_setup
    seq = solve_generate_validate(system)
    par = solve_generate_validate(system, workers=2, probes_per_round=8)
    assert seq.ok and par.ok
    assert par.context_switches == seq.context_switches
