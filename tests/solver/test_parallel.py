"""Generate-and-validate driver (sequential and parallel modes)."""

import pytest

from repro.core.clap import ClapConfig, ClapPipeline
from repro.constraints.context_switch import count_context_switches
from repro.runtime.replay import replay_schedule
from repro.solver.parallel import _bug_holds, solve_generate_validate
from repro.solver.schedule_gen import ScheduleGenerator
from repro.solver.validate import validate_schedule

from tests.conftest import RACE_SRC


@pytest.fixture(scope="module")
def race_setup():
    pipe = ClapPipeline(RACE_SRC, ClapConfig(stickiness=0.3))
    recorded = pipe.record()
    system = pipe.analyze(recorded)
    return pipe, recorded, system


def test_sequential_solve_finds_minimal_schedule(race_setup):
    pipe, recorded, system = race_setup
    result = solve_generate_validate(system)
    assert result.ok
    assert result.context_switches == 1, "race needs exactly one preemption"
    assert result.rounds == 1
    assert result.generated > 0
    assert result.good >= 1


def test_solution_is_valid_and_replayable(race_setup):
    pipe, recorded, system = race_setup
    result = solve_generate_validate(system)
    assert validate_schedule(system, result.schedule).ok
    outcome = replay_schedule(
        pipe.program,
        result.schedule,
        "sc",
        shared=pipe.shared,
        expected_bug=recorded.bug,
    )
    assert outcome.reproduced


def test_all_good_schedules_manifest_bug(race_setup):
    pipe, recorded, system = race_setup
    result = solve_generate_validate(system)
    gen = ScheduleGenerator(system)
    for schedule in result.good_schedules:
        assert _bug_holds(system, schedule, gen)
        assert (
            count_context_switches(schedule, system.summaries)
            >= result.context_switches
        )


def test_zero_budget_round_cannot_find_race(race_setup):
    pipe, recorded, system = race_setup
    result = solve_generate_validate(system, max_cs=0)
    assert not result.ok
    assert result.generated > 0, "zero-preemption schedules exist, just no bug"


def test_timeout(race_setup):
    pipe, recorded, system = race_setup
    result = solve_generate_validate(system, max_seconds=0.0)
    assert not result.ok
    assert result.reason == "timeout"


@pytest.mark.slow
def test_parallel_mode_matches_sequential(race_setup):
    pipe, recorded, system = race_setup
    seq = solve_generate_validate(system)
    par = solve_generate_validate(system, workers=2, probes_per_round=8)
    assert seq.ok and par.ok
    assert par.context_switches == seq.context_switches


def test_solve_time_includes_formula_construction(race_setup, monkeypatch):
    """Regression: ``solve_time`` must charge generator/validator
    construction (the formula build) to the solver, and ``encode_time``
    must report it — Table 2's overhead split depends on both."""
    import time as time_mod

    import repro.solver.parallel as parallel_mod
    from repro.solver.schedule_gen import ScheduleGenerator

    pipe, recorded, system = race_setup
    delay = 0.05
    original_init = ScheduleGenerator.__init__

    def slow_init(self, *args, **kwargs):
        time_mod.sleep(delay)
        original_init(self, *args, **kwargs)

    monkeypatch.setattr(ScheduleGenerator, "__init__", slow_init)
    result = parallel_mod.solve_generate_validate(system)
    assert result.ok
    assert result.encode_time >= delay
    assert result.solve_time >= result.encode_time


def test_generator_and_validator_built_once(race_setup, monkeypatch):
    """The sequential driver must reuse one generator/validator across all
    probes and bound rounds instead of rebuilding them per probe."""
    import repro.solver.parallel as parallel_mod
    from repro.solver.schedule_gen import ScheduleGenerator
    from repro.solver.validate import ScheduleValidator

    pipe, recorded, system = race_setup
    counts = {"gen": 0, "val": 0}
    gen_init = ScheduleGenerator.__init__
    val_init = ScheduleValidator.__init__

    def counting_gen_init(self, *args, **kwargs):
        counts["gen"] += 1
        gen_init(self, *args, **kwargs)

    def counting_val_init(self, *args, **kwargs):
        counts["val"] += 1
        val_init(self, *args, **kwargs)

    monkeypatch.setattr(ScheduleGenerator, "__init__", counting_gen_init)
    monkeypatch.setattr(ScheduleValidator, "__init__", counting_val_init)
    result = parallel_mod.solve_generate_validate(system, probes_per_round=8)
    assert result.ok
    assert counts == {"gen": 1, "val": 1}
