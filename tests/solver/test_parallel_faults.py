"""Fault injection against the pooled solver paths.

The parallel genval rounds and the portfolio both run over
``service.pool.WorkerPool``; ``service.faults`` hooks let a test kill or
stall a specific worker deterministically.  Contracts under test:

* a worker dying mid-probe costs one retry, never the round — the old
  ``ProcessPoolExecutor`` version raised ``BrokenProcessPool`` out of
  ``future.result()`` and poisoned the whole executor;
* a portfolio task whose worker dies on every attempt is reported
  crashed while the rest of the portfolio still produces the answer;
* once a winner is in, losers stalled by an injected ``slow_solve`` are
  killed within the poll interval — no orphan processes survive the run.
"""

import multiprocessing
import time

import pytest

from repro.bench.programs import get_benchmark
from repro.core.clap import ClapConfig, ClapPipeline
from repro.solver.parallel import solve_generate_validate
from repro.solver.portfolio import solve_constraints_portfolio

_SYSTEMS = {}


def table1_system(name):
    if name not in _SYSTEMS:
        bench = get_benchmark(name)
        pipeline = ClapPipeline(
            bench.compile(), ClapConfig(**bench.config_kwargs())
        )
        _SYSTEMS[name] = pipeline.analyze(pipeline.record())
    return _SYSTEMS[name]


def _no_orphans():
    """No worker process outlived its pool."""
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return False


# -- genval path ----------------------------------------------------------


def test_genval_worker_death_is_retried_not_hung():
    system = table1_system("pbzip2")
    t0 = time.monotonic()
    result = solve_generate_validate(
        system,
        max_cs=2,
        probes_per_round=4,
        workers=2,
        faults={"kill_worker": {"attempts": [1]}},
    )
    elapsed = time.monotonic() - t0
    # Every probe's first attempt dies like a SIGKILL'd process; the pool
    # respawns the worker and the retry succeeds, so the round completes
    # with the same answer as a fault-free run.
    assert result.ok
    assert result.context_switches == 2
    assert result.pool_counters["respawns"] >= 1
    assert elapsed < 60
    assert _no_orphans()


def test_genval_matches_fault_free_run():
    system = table1_system("pbzip2")
    clean = solve_generate_validate(
        system, max_cs=2, probes_per_round=4, workers=2
    )
    faulty = solve_generate_validate(
        system,
        max_cs=2,
        probes_per_round=4,
        workers=2,
        faults={"kill_worker": {"attempts": [1]}},
    )
    assert clean.ok and faulty.ok
    assert clean.context_switches == faulty.context_switches
    assert clean.rounds == faulty.rounds
    assert clean.pool_counters.get("respawns", 0) == 0
    assert faulty.pool_counters["respawns"] >= 1


# -- portfolio path -------------------------------------------------------


def test_portfolio_worker_death_costs_a_retry_not_the_run():
    system = table1_system("pbzip2")
    result = solve_constraints_portfolio(
        system,
        max_cs=4,
        workers=3,
        round_iterations=600,
        max_seconds=60,
        faults={"kill_worker": {"attempts": [1], "tasks": ["seq"]}},
    )
    assert result.ok
    assert result.portfolio["respawns"] >= 1


def test_portfolio_survives_terminally_crashed_task():
    # ``seq`` dies on both attempts (max_attempts=2): it can never
    # contribute, but the racing workers still deliver the verdict.  (The
    # retry may be cancelled rather than re-killed when the winner lands
    # first — either way the run must complete.)
    system = table1_system("pbzip2")
    t0 = time.monotonic()
    result = solve_constraints_portfolio(
        system,
        max_cs=4,
        workers=3,
        round_iterations=600,
        max_seconds=60,
        faults={"kill_worker": {"attempts": [1, 2], "tasks": ["seq"]}},
    )
    elapsed = time.monotonic() - t0
    assert result.ok
    assert result.portfolio["winner"] != "seq"
    assert result.portfolio["respawns"] >= 1
    assert elapsed < 60
    assert _no_orphans()


def test_portfolio_losers_cancelled_after_winner():
    # aget's winner arrives in a couple of seconds; the cube and div
    # workers are stalled behind a 60s injected sleep.  The finish rule
    # must kill them within the poll interval instead of waiting them
    # out, and nothing may be left running afterwards.
    system = table1_system("aget")
    stall = {
        "slow_solve": {
            "seconds": 60,
            "tasks": ["cube-0", "cube-1", "cube-2", "cube-3", "div-1", "div-2"],
        }
    }
    t0 = time.monotonic()
    result = solve_constraints_portfolio(
        system,
        max_cs=4,
        workers=3,
        round_iterations=600,
        max_seconds=90,
        faults=stall,
    )
    elapsed = time.monotonic() - t0
    assert result.ok
    assert result.context_switches == 1
    # Far below the 60s stall: the losers were killed, not awaited.
    assert elapsed < 40
    assert result.portfolio["cancelled"] > 0
    assert _no_orphans()
