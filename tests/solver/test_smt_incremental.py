"""Incremental-equivalence differential tests for the bound loop.

``solve_constraints_bounded(incremental=True)`` runs every bound round
``c = 0, 1, 2, …`` on ONE SAT instance, retracting switch-count blocks by
dropping ladder assumptions while keeping learned clauses.
``incremental=False`` re-encodes into a fresh solver per round — the
pre-incremental behavior.  Both paths share the encoder's stable atom
numbering and the same per-round budget, and must agree on whether a
schedule exists; when the bound is *proven* (every lower round exhausted
its space rather than hitting the round budget) they must also agree on
the minimal context-switch bound — unconditionally so on the Table-1
benchmarks.
"""

import random

import pytest

from repro.analysis.escape import shared_variables
from repro.analysis.symexec import execute_recorded_paths
from repro.bench.programs import get_benchmark
from repro.constraints.encoder import encode
from repro.core.clap import ClapConfig, ClapPipeline
from repro.minilang import compile_source
from repro.solver.smt import solve_constraints_bounded
from repro.solver.validate import validate_schedule
from repro.tracing.decoder import decode_log

from tests.test_differential import generate_program, record


def _proven_minimal(result):
    """True when every round below the found bound exhausted its space —
    the bound is then a theorem, not a budget artifact.  A round cut by
    the per-round iteration budget leaves ``exhausted=False``; bounds
    influenced by such rounds are best-effort and the two paths may
    legitimately differ (the incremental path tends to find *better*
    bounds, because its multi-round blocks stop later rounds from
    re-walking space an earlier round already covered, while a fresh
    solver restarts every round from scratch)."""
    return all(
        entry["exhausted"]
        for entry in result.round_stats
        if entry["bound"] < result.bound
    )


def _assert_paths_agree(system, max_cs=4, max_seconds=60, strict=False):
    incremental = solve_constraints_bounded(
        system, max_cs=max_cs, incremental=True, max_seconds=max_seconds
    )
    fresh = solve_constraints_bounded(
        system, max_cs=max_cs, incremental=False, max_seconds=max_seconds
    )
    assert incremental.ok == fresh.ok, (incremental.reason, fresh.reason)
    if incremental.ok:
        for result in (incremental, fresh):
            outcome = validate_schedule(system, result.schedule)
            assert outcome.ok, outcome.reason
            assert outcome.context_switches == result.context_switches
            assert result.context_switches <= result.bound
        if strict or (_proven_minimal(incremental) and _proven_minimal(fresh)):
            assert incremental.context_switches == fresh.context_switches
            assert incremental.bound == fresh.bound
    return incremental, fresh


# Fuzzer trial numbers whose deterministic generation yields a program
# with a recordable assertion failure and a modestly sized constraint
# system (≤ ~120 reads-from choices) — found by scanning trial seeds
# 0..59; the generation below is fully seeded, so the set is stable.
_FAILING_TRIALS = [2, 11, 13, 16, 17, 19, 29, 35]


@pytest.mark.parametrize("trial", _FAILING_TRIALS)
def test_fuzzed_programs_same_minimal_bound(trial):
    rng = random.Random(77000 + trial)
    source = generate_program(rng)
    program = compile_source(source, name="incfuzz%d" % trial)
    shared = shared_variables(program)
    for seed in range(25):
        result, recorder = record(program, shared, seed, "sc")
        if result.bug is None or result.bug.kind != "assertion":
            continue
        summaries = execute_recorded_paths(
            program, decode_log(recorder), shared, bug=result.bug
        )
        system = encode(summaries, "sc", program.symbols, shared)
        _assert_paths_agree(system)
        return
    pytest.skip("no assertion failure manifested for this fuzzed program")


@pytest.mark.parametrize(
    "name", ["pbzip2", "apache", "pfscan", "dekker", "figure2"]
)
def test_table1_benchmarks_same_minimal_bound(name):
    # Strict: on the real benchmarks the two paths must agree outright
    # (the full Table-1 sweep is asserted again by the perf harness in
    # benchmarks/test_solver_perf.py).
    bench = get_benchmark(name)
    pipeline = ClapPipeline(bench.compile(), ClapConfig(**bench.config_kwargs()))
    system = pipeline.analyze(pipeline.record())
    incremental, fresh = _assert_paths_agree(system, strict=True)
    assert incremental.ok


def test_incremental_round_stats_cover_every_bound():
    bench = get_benchmark("pbzip2")
    pipeline = ClapPipeline(bench.compile(), ClapConfig(**bench.config_kwargs()))
    system = pipeline.analyze(pipeline.record())
    result = solve_constraints_bounded(system, max_cs=4, incremental=True)
    assert result.ok
    bounds = [entry["bound"] for entry in result.round_stats]
    assert bounds == list(range(result.bound + 1))
    final = result.round_stats[-1]
    assert final["found"] is True
    assert result.sat_stats["solve_calls"] >= result.iterations
    # Rounds that were neither satisfied nor exhausted were cut by the
    # per-round budget — recorded so callers can tell best-effort bounds
    # from proven ones.
    for entry in result.round_stats[:-1]:
        assert entry["found"] is False
        assert "exhausted" in entry


def test_reference_core_rejects_multi_round_incremental_use():
    from repro.solver.cdcl_reference import CDCLSolver as ReferenceCDCL
    from repro.solver.smt import ClapSmtSolver

    bench = get_benchmark("figure2")
    pipeline = ClapPipeline(bench.compile(), ClapConfig(**bench.config_kwargs()))
    system = pipeline.analyze(pipeline.record())
    solver = ClapSmtSolver(system, sat_factory=ReferenceCDCL)
    with pytest.raises(TypeError):
        solver.solve_bounded(3)


def test_smt_solve_time_includes_construction(monkeypatch):
    """Regression: ``solve_constraints``/``solve_constraints_bounded``
    must charge CNF construction (transitive closure, clause build) to
    ``solve_time``."""
    import time as time_mod

    import repro.solver.smt as smt_mod

    bench = get_benchmark("figure2")
    pipeline = ClapPipeline(bench.compile(), ClapConfig(**bench.config_kwargs()))
    system = pipeline.analyze(pipeline.record())
    delay = 0.05
    original_init = smt_mod.ClapSmtSolver.__init__

    def slow_init(self, *args, **kwargs):
        time_mod.sleep(delay)
        original_init(self, *args, **kwargs)

    monkeypatch.setattr(smt_mod.ClapSmtSolver, "__init__", slow_init)
    single = smt_mod.solve_constraints(system)
    assert single.ok
    assert single.solve_time >= delay
    bounded = smt_mod.solve_constraints_bounded(system, max_cs=2)
    assert bounded.ok
    assert bounded.solve_time >= delay
