"""Unit tests for CDCL(T) internals: atom canonicalization, fixed-order
folding, and the targeted value-conflict blocking cone."""

import pytest

from repro.core.clap import ClapConfig, ClapPipeline
from repro.constraints.model import INIT, OLt, RFChoice
from repro.solver.smt import ClapSmtSolver

from tests.conftest import RACE_SRC


@pytest.fixture(scope="module")
def solver():
    pipe = ClapPipeline(RACE_SRC, ClapConfig(stickiness=0.3))
    system = pipe.analyze(pipe.record())
    return ClapSmtSolver(system)


def test_order_atoms_share_one_variable_both_directions(solver):
    uids = list(solver.system.saps)
    # Pick two SAPs of different threads not ordered by fixed edges.
    a = next(u for u in uids if u[0] == "1:1" and u[1] == 2)
    b = next(u for u in uids if u[0] == "1:2" and u[1] == 2)
    lit_ab = solver._order_lit(OLt(a, b))
    lit_ba = solver._order_lit(OLt(b, a))
    assert lit_ab == -lit_ba, "negation must reuse the same variable"


def test_fixed_order_folds_to_constants(solver):
    # Program order within one thread is a fixed edge: the atom is decided.
    a = ("1:1", 1)
    b = ("1:1", 2)
    assert solver._order_lit(OLt(a, b)) is True
    assert solver._order_lit(OLt(b, a)) is False


def test_reflexive_atom_is_false(solver):
    a = ("1", 0)
    assert solver._order_lit(OLt(a, a)) is False


def test_value_check_accepts_observed_mapping(solver):
    system = solver.system
    # Map every read to INIT where possible; otherwise any same-addr write.
    rf = {}
    for read_uid, sources in system.rf_candidates.items():
        rf[read_uid] = INIT
    env, blamed, failure = solver._check_values(rf)
    # All-init cannot satisfy the bug (c==4 would then hold... actually
    # all reads 0 -> writes produce 1s -> final read 0 != 4: bug holds) —
    # whatever the outcome, the call must terminate and blame only reads.
    assert all(isinstance(b, tuple) for b in blamed)


def test_blocking_cone_is_subset_of_reads(solver):
    system = solver.system
    reads = {u for u, s in system.saps.items() if s.is_read}
    rf = {read_uid: INIT for read_uid in system.rf_candidates}
    env, blamed, failure = solver._check_values(rf)
    assert blamed <= reads


def test_solver_enumerate_multiple_solutions(solver):
    seen = set()
    for _ in range(3):
        result = solver.solve()
        if not result.ok:
            break
        key = tuple(sorted(result.reads_from.items()))
        assert key not in seen
        seen.add(key)
        lits = []
        for read_uid, source in result.reads_from.items():
            var = solver.atom_var.get(RFChoice(read_uid, source))
            if var is not None:
                lits.append(-var)
        solver.sat.add_clause(lits)
    assert len(seen) >= 1
