"""CDCL SAT core: correctness against brute force + behavioural checks."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver.cdcl import CDCLSolver, SAT, UNSAT


def brute_force_sat(n, clauses):
    for bits in itertools.product([False, True], repeat=n):
        if all(any((l > 0) == bits[abs(l) - 1] for l in c) for c in clauses):
            return True
    return False


def model_satisfies(model, clauses):
    for clause in clauses:
        ok = False
        for lit in clause:
            value = model.get(abs(lit))
            if value is not None and value == (lit > 0):
                ok = True
                break
        if not ok:
            return False
    return True


def solve(clauses):
    solver = CDCLSolver()
    for clause in clauses:
        solver.add_clause(clause)
    return solver, solver.solve()


def test_empty_problem_is_sat():
    solver = CDCLSolver()
    assert solver.solve() == SAT


def test_unit_clauses_propagate():
    solver, result = solve([[1], [-1, 2], [-2, 3]])
    assert result == SAT
    model = solver.model()
    assert model[1] and model[2] and model[3]


def test_trivially_unsat():
    _, result = solve([[1], [-1]])
    assert result == UNSAT


def test_empty_clause_is_unsat():
    _, result = solve([[1, 2], []])
    assert result == UNSAT


def test_tautology_ignored():
    solver, result = solve([[1, -1]])
    assert result == SAT


def test_pigeonhole_2_into_1_unsat():
    # p1 in h1, p2 in h1, not both.
    _, result = solve([[1], [2], [-1, -2]])
    assert result == UNSAT


def test_php_3_pigeons_2_holes():
    # var(p, h) for p in 0..2, h in 0..1
    def v(p, h):
        return p * 2 + h + 1

    clauses = []
    for p in range(3):
        clauses.append([v(p, 0), v(p, 1)])
    for h in range(2):
        for p1 in range(3):
            for p2 in range(p1 + 1, 3):
                clauses.append([-v(p1, h), -v(p2, h)])
    _, result = solve(clauses)
    assert result == UNSAT


def test_incremental_clause_addition():
    solver = CDCLSolver()
    solver.add_clause([1, 2])
    assert solver.solve() == SAT
    solver.add_clause([-1])
    assert solver.solve() == SAT
    assert solver.model()[2] is True
    solver.add_clause([-2])
    assert solver.solve() == UNSAT


def test_blocking_clauses_enumerate_models():
    solver = CDCLSolver()
    solver.add_clause([1, 2])
    models = set()
    while solver.solve() == SAT:
        model = solver.model()
        key = (model.get(1, False), model.get(2, False))
        assert key not in models
        models.add(key)
        solver.add_clause([-1 if model.get(1) else 1, -2 if model.get(2) else 2])
    assert models == {(True, True), (True, False), (False, True)}


@pytest.mark.parametrize("seed", range(10))
def test_random_instances_match_brute_force(seed):
    rng = random.Random(seed)
    for _ in range(60):
        n = rng.randint(1, 9)
        m = rng.randint(1, 35)
        clauses = [
            [rng.choice([1, -1]) * rng.randint(1, n) for _ in range(rng.randint(1, 3))]
            for _ in range(m)
        ]
        solver, result = solve(clauses)
        expected = SAT if brute_force_sat(n, clauses) else UNSAT
        assert result == expected, clauses
        if result == SAT:
            assert model_satisfies(solver.model(), clauses), clauses


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_hypothesis_instances(data):
    n = data.draw(st.integers(1, 7))
    clauses = data.draw(
        st.lists(
            st.lists(
                st.integers(1, n).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=1,
                max_size=3,
            ),
            max_size=25,
        )
    )
    solver, result = solve(clauses)
    expected = SAT if brute_force_sat(n, clauses) else UNSAT
    assert result == expected
    if result == SAT:
        assert model_satisfies(solver.model(), clauses)


def test_hard_random_3sat_near_threshold():
    rng = random.Random(7)
    n, m = 40, 170
    clauses = [
        [rng.choice([1, -1]) * rng.randint(1, n) for _ in range(3)] for _ in range(m)
    ]
    solver, result = solve(clauses)
    assert result in (SAT, UNSAT)
    if result == SAT:
        assert model_satisfies(solver.model(), clauses)
