"""Property-based CNF fuzzing of the incremental CDCL core.

~500 random small instances (≤ 12 variables) checked three ways against
ground truth:

* plain solving agrees with a truth-table oracle on SAT/UNSAT, and every
  SAT model actually satisfies every clause;
* solving under random assumptions agrees with the oracle applied to the
  CNF plus the assumptions as unit clauses, and an UNSAT-under-assumptions
  answer leaves the solver reusable (the incremental contract the bound
  loop depends on);
* interleaving clause additions with solve calls — the incremental usage
  pattern — never contradicts the oracle on any prefix, and agrees with
  the frozen reference solver run fresh on the same prefix.

The truth-table oracle enumerates all 2^n assignments as bitmasks: bit a
of a literal's mask says whether assignment a satisfies it, so a clause is
an OR of masks and the formula an AND — exact and fast at this size.
"""

import random

import pytest

from repro.solver.cdcl import CDCLSolver, SAT, UNSAT
from repro.solver.cdcl_reference import CDCLSolver as ReferenceCDCL

MAX_VARS = 12


def literal_masks(n):
    """mask[v] = bitset over all 2^n assignments where var v is true."""
    full = (1 << (1 << n)) - 1
    masks = {}
    for v in range(1, n + 1):
        # Alternating blocks of 2^(v-1) zeros then ones, tiled to 2^n bits.
        block = (1 << (1 << (v - 1))) - 1
        period = block << (1 << (v - 1))
        mask = 0
        shift = 0
        while shift < (1 << n):
            mask |= period << shift
            shift += 2 << (v - 1)
        masks[v] = mask & full
    return masks, full


def oracle_sat(n, clauses, assumptions=()):
    masks, full = literal_masks(n)
    formula = full
    for clause in clauses:
        cm = 0
        for lit in clause:
            cm |= masks[abs(lit)] if lit > 0 else (full & ~masks[abs(lit)])
        formula &= cm
    for lit in assumptions:
        formula &= masks[abs(lit)] if lit > 0 else (full & ~masks[abs(lit)])
    return formula != 0


def model_satisfies(model, clauses):
    return all(
        any(model.get(abs(l)) == (l > 0) for l in clause) for clause in clauses
    )


def random_cnf(rng):
    n = rng.randint(1, MAX_VARS)
    # Around the 3-SAT phase transition half the time, easy otherwise.
    n_clauses = rng.randint(1, max(2, int(n * rng.uniform(1.0, 4.5))))
    clauses = []
    for _ in range(n_clauses):
        width = rng.randint(1, min(3, n))
        lits = []
        for v in rng.sample(range(1, n + 1), width):
            lits.append(v if rng.random() < 0.5 else -v)
        clauses.append(lits)
    return n, clauses


# 25 × 20 = 500 fuzzed instances.
@pytest.mark.parametrize("batch", range(25))
def test_fuzz_against_truth_table(batch):
    rng = random.Random(9000 + batch)
    for _ in range(20):
        n, clauses = random_cnf(rng)
        expected = oracle_sat(n, clauses)
        solver = CDCLSolver()
        for clause in clauses:
            solver.add_clause(clause)
        status = solver.solve()
        assert status == (SAT if expected else UNSAT), (n, clauses)
        if status == SAT:
            assert model_satisfies(solver.model(), clauses), (n, clauses)


@pytest.mark.parametrize("batch", range(10))
def test_fuzz_assumptions_against_truth_table(batch):
    rng = random.Random(17000 + batch)
    for _ in range(20):
        n, clauses = random_cnf(rng)
        solver = CDCLSolver()
        for clause in clauses:
            solver.add_clause(clause)
        # Several assumption sets against ONE solver instance: answers
        # under assumptions must match the oracle, and earlier UNSAT
        # answers must not poison later, weaker queries.
        for _ in range(4):
            k = rng.randint(0, min(4, n))
            assumptions = [
                v if rng.random() < 0.5 else -v
                for v in rng.sample(range(1, n + 1), k)
            ]
            expected = oracle_sat(n, clauses, assumptions)
            status = solver.solve(assumptions=assumptions)
            assert status == (SAT if expected else UNSAT), (
                n,
                clauses,
                assumptions,
            )
            if status == SAT:
                model = solver.model()
                assert model_satisfies(model, clauses)
                for lit in assumptions:
                    assert model.get(abs(lit)) == (lit > 0), (
                        "assumption not honored",
                        lit,
                    )


@pytest.mark.parametrize("batch", range(10))
def test_fuzz_incremental_prefixes_against_reference(batch):
    rng = random.Random(33000 + batch)
    for _ in range(10):
        n, clauses = random_cnf(rng)
        incremental = CDCLSolver()
        added = []
        for clause in clauses:
            incremental.add_clause(clause)
            added.append(clause)
            if rng.random() < 0.4:
                continue  # batch a few additions between solves
            expected = oracle_sat(n, added)
            assert (incremental.solve() == SAT) == expected, (n, added)
            reference = ReferenceCDCL()
            for c in added:
                reference.add_clause(c)
            assert (reference.solve() == SAT) == expected, (n, added)
        expected = oracle_sat(n, added)
        assert (incremental.solve() == SAT) == expected, (n, added)


# -- cube-and-conquer clause sharing --------------------------------------
#
# The portfolio splits the search space into prefix cubes (assignments to
# the first k variables, entered as *assumptions*) and shares short
# learned clauses between cube solvers.  The soundness claim under test:
# a clause learned while solving under cube assumptions is valid for the
# whole formula, so importing it into a solver working a *different* cube
# can never flip a SAT answer to UNSAT or vice versa.  ~500 fuzzed
# formulas at ≤ 14 variables, checked against the truth-table oracle.

CUBE_MAX_VARS = 14


def random_cube_cnf(rng):
    n = rng.randint(3, CUBE_MAX_VARS)
    n_clauses = rng.randint(2, max(3, int(n * rng.uniform(1.5, 4.5))))
    clauses = []
    for _ in range(n_clauses):
        width = rng.randint(1, min(3, n))
        clauses.append(
            [
                v if rng.random() < 0.5 else -v
                for v in rng.sample(range(1, n + 1), width)
            ]
        )
    return n, clauses


def prefix_cubes(n, rng):
    """All sign assignments over the first k variables: disjoint and
    exhaustive by construction."""
    k = rng.randint(1, min(3, n))
    cubes = [[]]
    for v in range(1, k + 1):
        cubes = [cube + [sign * v] for cube in cubes for sign in (1, -1)]
    return cubes


# 25 × 20 = 500 fuzzed formulas.
@pytest.mark.parametrize("batch", range(25))
def test_fuzz_cube_solving_with_shared_clauses(batch):
    rng = random.Random(51000 + batch)
    for _ in range(20):
        n, clauses = random_cube_cnf(rng)
        cubes = prefix_cubes(n, rng)
        solvers = []
        for _ in cubes:
            solver = CDCLSolver()
            solver.ensure_var(n)
            for clause in clauses:
                solver.add_clause(clause)
            solvers.append(solver)
        shared = set()
        cursors = [0] * len(cubes)
        verdicts = [None] * len(cubes)
        # Two passes: the second pass re-solves with everything every
        # *other* cube learned in the first imported, which is where an
        # unsound exchange would flip an answer.
        for round_ in range(2):
            for i, (cube, solver) in enumerate(zip(cubes, solvers)):
                if round_:
                    for clause in shared:
                        solver.add_clause(list(clause))
                status = solver.solve(assumptions=cube)
                expected = oracle_sat(n, clauses, cube)
                assert status == (SAT if expected else UNSAT), (
                    n,
                    clauses,
                    cube,
                    round_,
                )
                if status == SAT:
                    model = solver.model()
                    assert model_satisfies(model, clauses)
                    for lit in cube:
                        assert model.get(abs(lit)) == (lit > 0)
                verdicts[i] = status
                exported, cursors[i] = solver.export_learned(
                    cursors[i],
                    max_len=8,
                    max_var=n,
                    exclude_vars=[abs(l) for l in cube],
                )
                for clause in exported:
                    # Every shared clause must itself be implied by the
                    # formula: formula ∧ ¬clause is UNSAT on the oracle.
                    negation = [-l for l in clause]
                    assert not oracle_sat(n, clauses, negation), (
                        "exported clause not implied",
                        clause,
                        clauses,
                    )
                    shared.add(clause)
        # Cube partition agreement: the formula is SAT iff some cube is.
        assert (SAT in verdicts) == oracle_sat(n, clauses), (n, clauses)


def test_learned_clause_reuse_is_visible_in_stats():
    # A pigeonhole-flavored instance forces conflicts; re-solving under
    # fresh assumptions must reuse previously learned clauses and count
    # the reuse.
    rng = random.Random(4242)
    solver = CDCLSolver()
    n, clauses = 0, []
    while True:
        n, clauses = random_cnf(rng)
        if n >= 6 and not oracle_sat(n, clauses):
            break
    guard = n + 1
    solver.ensure_var(guard)
    for clause in clauses:
        solver.add_clause([-guard] + clause)
    assert solver.solve(assumptions=[guard]) == UNSAT
    assert solver.stats.conflicts > 0
    before = solver.stats.snapshot()
    assert solver.solve(assumptions=[guard]) == UNSAT
    delta = solver.stats.delta(before)
    assert delta["reuse_hits"] > 0 or delta["propagations"] == 0
