"""Preemption-bounded schedule generation."""

import pytest

from repro.core.clap import ClapConfig, ClapPipeline
from repro.constraints.context_switch import count_context_switches
from repro.solver.schedule_gen import ScheduleGenerator, csp_universe
from repro.solver.validate import ScheduleValidator

from tests.conftest import CONDVAR_SRC, RACE_SRC


@pytest.fixture(scope="module")
def race_system():
    pipe = ClapPipeline(RACE_SRC, ClapConfig(stickiness=0.3))
    return pipe.analyze(pipe.record())


def test_generated_schedules_are_complete_and_valid_fmo(race_system):
    gen = ScheduleGenerator(race_system)
    validator = ScheduleValidator(race_system)
    count = 0
    for schedule in gen.generate(max_preemptions=1, max_schedules=200):
        count += 1
        assert sorted(schedule) == sorted(race_system.saps)
        # Per-thread SC order respected.
        pos = {uid: i for i, uid in enumerate(schedule)}
        for thread, edges in race_system.thread_order.items():
            for a, b in edges:
                assert pos[a] < pos[b]
    assert count > 0


def test_budget_bounds_interleaved_segments(race_system):
    gen = ScheduleGenerator(race_system)
    for c in (0, 1, 2):
        for schedule in gen.generate(max_preemptions=c, max_schedules=100):
            assert (
                count_context_switches(schedule, race_system.summaries) <= c
            )


def test_exact_budget_filters(race_system):
    gen = ScheduleGenerator(race_system)
    for schedule in gen.generate(
        max_preemptions=1, exact_preemptions=True, max_schedules=50
    ):
        assert count_context_switches(schedule, race_system.summaries) == 1


def test_value_guided_pruning_respects_path_conditions(race_system):
    gen = ScheduleGenerator(race_system)
    validator = ScheduleValidator(race_system)
    for schedule in gen.generate(max_preemptions=1, max_schedules=100):
        outcome = validator.validate(schedule)
        # Path conditions hold on every generated schedule (the bug
        # predicate may or may not).
        assert outcome.ok or outcome.reason == "bug predicate not satisfied"


def test_generation_deterministic_without_seed(race_system):
    gen = ScheduleGenerator(race_system)
    a = [tuple(s) for s in gen.generate(max_preemptions=1, max_schedules=30)]
    b = [tuple(s) for s in gen.generate(max_preemptions=1, max_schedules=30)]
    assert a == b


def test_order_seed_changes_exploration(race_system):
    gen = ScheduleGenerator(race_system)
    a = [tuple(s) for s in gen.generate(max_preemptions=1, max_schedules=30)]
    b = [
        tuple(s)
        for s in gen.generate(max_preemptions=1, max_schedules=30, order_seed=5)
    ]
    assert a != b


def test_max_schedules_budget(race_system):
    gen = ScheduleGenerator(race_system)
    schedules = list(gen.generate(max_preemptions=2, max_schedules=7))
    assert len(schedules) == 7


def test_max_steps_budget(race_system):
    gen = ScheduleGenerator(race_system)
    unbounded = len(list(gen.generate(max_preemptions=1, max_schedules=200)))
    bounded = len(
        list(gen.generate(max_preemptions=1, max_schedules=200, max_steps=60))
    )
    # The step budget cuts the search off early.
    assert bounded < unbounded


def test_csp_universe_shape(race_system):
    universe = csp_universe(race_system)
    threads = sorted(race_system.summaries)
    for (t1, k, t2) in universe:
        assert t1 in threads and t2 in threads and t1 != t2
        assert 1 <= k <= len(race_system.summaries[t2].saps)


def test_condvar_program_generates_feasible_schedules():
    pipe = ClapPipeline(CONDVAR_SRC, ClapConfig(stickiness=0.4))
    recorded = pipe.record_once(3)
    assert recorded.bug is None
    from repro.analysis.symexec import execute_recorded_paths
    from repro.constraints.memory_order import encode_memory_order
    from repro.constraints.model import ConstraintSystem
    from repro.tracing.decoder import decode_log

    summaries = execute_recorded_paths(
        pipe.program, decode_log(recorded.recorder), pipe.shared, bug=None
    )
    system = ConstraintSystem(memory_model="sc", summaries=summaries)
    for summary in summaries.values():
        for sap in summary.saps:
            system.saps[sap.uid] = sap
        system.conditions.extend(summary.conditions)
    for info in pipe.program.symbols.globals.values():
        if info.is_data and info.name in pipe.shared:
            system.initial_values[(info.name,)] = info.init
    edges, per_thread = encode_memory_order(summaries, "sc")
    system.hard_edges.extend(edges)
    system.thread_order = per_thread

    gen = ScheduleGenerator(system)
    validator = ScheduleValidator(system)
    found = 0
    for schedule in gen.generate(max_preemptions=2, max_schedules=500):
        outcome = validator.validate(schedule)
        if outcome.ok:
            found += 1
    assert found > 0, "wait/signal program must admit feasible schedules"
