"""Preemption-bounded schedule generation."""

import pytest

from repro.core.clap import ClapConfig, ClapPipeline
from repro.constraints.context_switch import count_context_switches
from repro.solver.schedule_gen import ScheduleGenerator, csp_universe
from repro.solver.validate import ScheduleValidator

from tests.conftest import CONDVAR_SRC, RACE_SRC


@pytest.fixture(scope="module")
def race_system():
    pipe = ClapPipeline(RACE_SRC, ClapConfig(stickiness=0.3))
    return pipe.analyze(pipe.record())


def test_generated_schedules_are_complete_and_valid_fmo(race_system):
    gen = ScheduleGenerator(race_system)
    validator = ScheduleValidator(race_system)
    count = 0
    for schedule in gen.generate(max_preemptions=1, max_schedules=200):
        count += 1
        assert sorted(schedule) == sorted(race_system.saps)
        # Per-thread SC order respected.
        pos = {uid: i for i, uid in enumerate(schedule)}
        for thread, edges in race_system.thread_order.items():
            for a, b in edges:
                assert pos[a] < pos[b]
    assert count > 0


def test_budget_bounds_interleaved_segments(race_system):
    gen = ScheduleGenerator(race_system)
    for c in (0, 1, 2):
        for schedule in gen.generate(max_preemptions=c, max_schedules=100):
            assert (
                count_context_switches(schedule, race_system.summaries) <= c
            )


def test_exact_budget_filters(race_system):
    gen = ScheduleGenerator(race_system)
    for schedule in gen.generate(
        max_preemptions=1, exact_preemptions=True, max_schedules=50
    ):
        assert count_context_switches(schedule, race_system.summaries) == 1


def test_value_guided_pruning_respects_path_conditions(race_system):
    gen = ScheduleGenerator(race_system)
    validator = ScheduleValidator(race_system)
    for schedule in gen.generate(max_preemptions=1, max_schedules=100):
        outcome = validator.validate(schedule)
        # Path conditions hold on every generated schedule (the bug
        # predicate may or may not).
        assert outcome.ok or outcome.reason == "bug predicate not satisfied"


def test_generation_deterministic_without_seed(race_system):
    gen = ScheduleGenerator(race_system)
    a = [tuple(s) for s in gen.generate(max_preemptions=1, max_schedules=30)]
    b = [tuple(s) for s in gen.generate(max_preemptions=1, max_schedules=30)]
    assert a == b


def test_order_seed_changes_exploration(race_system):
    gen = ScheduleGenerator(race_system)
    a = [tuple(s) for s in gen.generate(max_preemptions=1, max_schedules=30)]
    b = [
        tuple(s)
        for s in gen.generate(max_preemptions=1, max_schedules=30, order_seed=5)
    ]
    assert a != b


def test_max_schedules_budget(race_system):
    gen = ScheduleGenerator(race_system)
    schedules = list(gen.generate(max_preemptions=2, max_schedules=7))
    assert len(schedules) == 7


def test_max_steps_budget(race_system):
    gen = ScheduleGenerator(race_system)
    unbounded = len(list(gen.generate(max_preemptions=1, max_schedules=200)))
    bounded = len(
        list(gen.generate(max_preemptions=1, max_schedules=200, max_steps=60))
    )
    # The step budget cuts the search off early.
    assert bounded < unbounded


def test_csp_universe_shape(race_system):
    universe = csp_universe(race_system)
    threads = sorted(race_system.summaries)
    for (t1, k, t2) in universe:
        assert t1 in threads and t2 in threads and t1 != t2
        assert 1 <= k <= len(race_system.summaries[t2].saps)


def test_condvar_program_generates_feasible_schedules():
    pipe = ClapPipeline(CONDVAR_SRC, ClapConfig(stickiness=0.4))
    recorded = pipe.record_once(3)
    assert recorded.bug is None
    from repro.analysis.symexec import execute_recorded_paths
    from repro.constraints.memory_order import encode_memory_order
    from repro.constraints.model import ConstraintSystem
    from repro.tracing.decoder import decode_log

    summaries = execute_recorded_paths(
        pipe.program, decode_log(recorded.recorder), pipe.shared, bug=None
    )
    system = ConstraintSystem(memory_model="sc", summaries=summaries)
    for summary in summaries.values():
        for sap in summary.saps:
            system.saps[sap.uid] = sap
        system.conditions.extend(summary.conditions)
    for info in pipe.program.symbols.globals.values():
        if info.is_data and info.name in pipe.shared:
            system.initial_values[(info.name,)] = info.init
    edges, per_thread = encode_memory_order(summaries, "sc")
    system.hard_edges.extend(edges)
    system.thread_order = per_thread

    gen = ScheduleGenerator(system)
    validator = ScheduleValidator(system)
    found = 0
    for schedule in gen.generate(max_preemptions=2, max_schedules=500):
        outcome = validator.validate(schedule)
        if outcome.ok:
            found += 1
    assert found > 0, "wait/signal program must admit feasible schedules"


SINGLE_THREAD_SRC = """
int x = 0;
int main() {
    x = x + 1;
    x = x + 2;
    assert(x == 0);
    return 0;
}
"""


@pytest.fixture(scope="module")
def single_thread_system():
    pipe = ClapPipeline(SINGLE_THREAD_SRC, ClapConfig())
    return pipe.analyze(pipe.record())


def test_single_thread_program_yields_exactly_program_order(
    single_thread_system,
):
    gen = ScheduleGenerator(single_thread_system)
    schedules = [
        tuple(s) for s in gen.generate(max_preemptions=0, max_schedules=50)
    ]
    # One thread, SC: the program order is the only schedule.
    assert len(schedules) == 1
    pos = {uid: i for i, uid in enumerate(schedules[0])}
    for thread, edges in single_thread_system.thread_order.items():
        for a, b in edges:
            assert pos[a] < pos[b]


def test_single_thread_program_has_no_exact_preemption_schedules(
    single_thread_system,
):
    gen = ScheduleGenerator(single_thread_system)
    # There is no second thread to charge a segment: demanding exactly one
    # interleaving must produce nothing, and the walk must terminate.
    stats = {}
    schedules = list(
        gen.generate(
            max_preemptions=1, exact_preemptions=True, stats=stats
        )
    )
    assert schedules == []
    assert stats["capped"] is False, "space must be exhausted, not cut off"


def test_zero_preemption_round_with_unsatisfiable_bug(race_system):
    """c = 0 on the race program: schedules exist, none manifests the bug
    (the race needs a preemption), and the bounded space exhausts."""
    from repro.solver.parallel import _bug_holds

    gen = ScheduleGenerator(race_system)
    stats = {}
    n = 0
    for schedule in gen.generate(max_preemptions=0, stats=stats):
        n += 1
        assert not _bug_holds(race_system, schedule, gen)
    assert n > 0
    assert stats["capped"] is False


def test_no_duplicate_schedules_emitted(race_system):
    gen = ScheduleGenerator(race_system)
    for kwargs in (
        dict(max_preemptions=1, max_schedules=300),
        dict(max_preemptions=2, exact_preemptions=True, max_schedules=300),
        dict(max_preemptions=1, max_schedules=300, order_seed=7),
    ):
        schedules = [tuple(s) for s in gen.generate(**kwargs)]
        assert len(schedules) == len(set(schedules)), kwargs


# Two waiters and two signalers on one condvar: branches that assign the
# two signals to the two waiters in swapped ways can pop the exact same
# SAP sequence — the canonical duplicate-producing shape (without the
# generator's seen-set, ~1 in 6 of this program's yields is a repeat).
TWO_WAITER_SRC = """
int go = 0;
int served = 0;
mutex m;
cond cv;
void waiter() {
    lock(m);
    while (go == 0) { wait(cv, m); }
    served = served + 1;
    unlock(m);
}
void signaler() {
    lock(m);
    go = 1;
    signal(cv);
    unlock(m);
}
int main() {
    int w1 = 0;
    int w2 = 0;
    int s1 = 0;
    int s2 = 0;
    w1 = spawn waiter();
    w2 = spawn waiter();
    s1 = spawn signaler();
    s2 = spawn signaler();
    join(w1);
    join(w2);
    join(s1);
    join(s2);
    assert(served == 2);
    return 0;
}
"""


def test_no_duplicate_schedules_with_signal_wake_choices():
    """Wake choices (which waiter a signal wakes, or none) fork branches
    that can converge on the same SAP sequence; the generator must
    suppress the re-yields."""
    pipe = ClapPipeline(TWO_WAITER_SRC, ClapConfig(stickiness=0.4))
    recorded = pipe.record_once(0)
    from repro.analysis.symexec import execute_recorded_paths
    from repro.constraints.memory_order import encode_memory_order
    from repro.constraints.model import ConstraintSystem
    from repro.tracing.decoder import decode_log

    summaries = execute_recorded_paths(
        pipe.program, decode_log(recorded.recorder), pipe.shared, bug=None
    )
    system = ConstraintSystem(memory_model="sc", summaries=summaries)
    for summary in summaries.values():
        for sap in summary.saps:
            system.saps[sap.uid] = sap
        system.conditions.extend(summary.conditions)
    for info in pipe.program.symbols.globals.values():
        if info.is_data and info.name in pipe.shared:
            system.initial_values[(info.name,)] = info.init
    edges, per_thread = encode_memory_order(summaries, "sc")
    system.hard_edges.extend(edges)
    system.thread_order = per_thread

    gen = ScheduleGenerator(system)
    schedules = [
        tuple(s) for s in gen.generate(max_preemptions=3, max_schedules=3000)
    ]
    assert schedules, "condvar program must generate schedules"
    assert len(schedules) == len(set(schedules))
