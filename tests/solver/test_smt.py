"""The CDCL(T) solver: reproduces bugs, respects theories, detects unsat."""

import pytest

from repro.core.clap import ClapConfig, ClapPipeline
from repro.runtime.replay import replay_schedule
from repro.solver.smt import SmtResult, _find_cycle, _Reachability, solve_constraints
from repro.solver.validate import validate_schedule

from tests.conftest import RACE_SRC, SB_SRC


def pipeline_for(src, **cfg):
    pipe = ClapPipeline(src, ClapConfig(**cfg))
    recorded = pipe.record()
    system = pipe.analyze(recorded)
    return pipe, recorded, system


def test_reachability_closure():
    uids = ["a", "b", "c", "d"]
    reach = _Reachability(uids, [("a", "b"), ("b", "c")])
    assert reach.reaches("a", "c")
    assert not reach.reaches("c", "a")
    assert not reach.reaches("a", "d")


def test_reachability_rejects_cycles():
    with pytest.raises(ValueError):
        _Reachability(["a", "b"], [("a", "b"), ("b", "a")])


def test_find_cycle_reports_literals():
    adjacency = {
        "a": [("b", 5)],
        "b": [("c", None)],  # hard edge: no literal
        "c": [("a", 9)],
    }
    lits = _find_cycle(adjacency)
    assert lits is not None
    assert set(lits) == {5, 9}


def test_find_cycle_none_on_dag():
    adjacency = {"a": [("b", 1)], "b": [("c", 2)], "c": []}
    assert _find_cycle(adjacency) is None


def test_race_bug_solved_and_replayable():
    pipe, recorded, system = pipeline_for(RACE_SRC, stickiness=0.3)
    result = solve_constraints(system)
    assert result.ok
    assert validate_schedule(system, result.schedule).ok
    outcome = replay_schedule(
        pipe.program, result.schedule, "sc", shared=pipe.shared,
        expected_bug=recorded.bug,
    )
    assert outcome.reproduced


def test_sb_bug_unsat_under_sc_constraints():
    """The store-buffering assertion can only fail under TSO; if we record
    the failure under TSO but encode with the *SC* memory order, the
    constraints must be unsatisfiable (the SC order forbids the outcome)."""
    pipe, recorded, system = pipeline_for(
        SB_SRC, memory_model="tso", stickiness=0.5, flush_prob=0.05,
        seeds=range(400),
    )
    tso_result = solve_constraints(system)
    assert tso_result.ok, "TSO encoding must reproduce the TSO bug"

    # Re-encode the same summaries under SC.
    from repro.constraints.encoder import encode

    sc_system = encode(system.summaries, "sc", pipe.program.symbols, pipe.shared)
    sc_result = solve_constraints(sc_system)
    assert not sc_result.ok
    assert sc_result.reason == "unsatisfiable"


def test_solution_read_values_satisfy_bug(race_system=None):
    pipe, recorded, system = pipeline_for(RACE_SRC, stickiness=0.3)
    result = solve_constraints(system)
    from repro.analysis.symbolic import sym_eval

    for bug_expr in system.bug_exprs:
        assert sym_eval(bug_expr, result.env) == 1


def test_schedule_covers_every_sap():
    pipe, recorded, system = pipeline_for(RACE_SRC, stickiness=0.3)
    result = solve_constraints(system)
    assert sorted(result.schedule) == sorted(system.saps)


def test_timeout_reported():
    pipe, recorded, system = pipeline_for(RACE_SRC, stickiness=0.3)
    result = solve_constraints(system, max_seconds=0.0)
    assert not result.ok
    assert result.reason == "timeout"


def test_locked_program_clean_run_unsat_for_fake_bug():
    """With proper locking the counter is always 4; a fabricated bug
    predicate c != 4 over a recorded clean run must be unsatisfiable."""
    from tests.conftest import LOCKED_SRC
    from repro.analysis.symbolic import mk_not, mk_binop
    from repro.analysis.symexec import execute_recorded_paths
    from repro.constraints.encoder import encode
    from repro.tracing.decoder import decode_log

    pipe = ClapPipeline(LOCKED_SRC, ClapConfig(stickiness=0.3))
    recorded = pipe.record_once(0)
    assert recorded.bug is None
    summaries = execute_recorded_paths(
        pipe.program, decode_log(recorded.recorder), pipe.shared, bug=None
    )
    # The final assert's read of c is the last read of thread 1.
    main = summaries["1"]
    last_read = [s for s in main.saps if s.is_read][-1]
    # Fabricate: that read returned something other than 4.
    main.bug_expr = mk_not(mk_binop("==", last_read.value, 4))
    # Drop the real passing assert condition mentioning this read, since we
    # are inverting it.
    main.conditions = [
        c for c in main.conditions if last_read.value.name not in _syms(c.expr)
    ]
    system = encode(summaries, "sc", pipe.program.symbols, pipe.shared)
    result = solve_constraints(system)
    assert not result.ok


def _syms(expr):
    from repro.analysis.symbolic import free_syms

    return free_syms(expr)
