"""Schedule validator: accepts feasible bug schedules, rejects broken ones."""

import pytest

from repro.core.clap import ClapConfig, ClapPipeline
from repro.solver.smt import solve_constraints
from repro.solver.validate import ScheduleValidator, validate_schedule

from tests.conftest import CONDVAR_SRC, RACE_SRC


@pytest.fixture(scope="module")
def race_system():
    pipe = ClapPipeline(RACE_SRC, ClapConfig(stickiness=0.3))
    recorded = pipe.record()
    return pipe.analyze(recorded)


@pytest.fixture(scope="module")
def race_solution(race_system):
    result = solve_constraints(race_system)
    assert result.ok
    return result


def test_smt_schedule_validates(race_system, race_solution):
    outcome = validate_schedule(race_system, race_solution.schedule)
    assert outcome.ok
    assert outcome.context_switches >= 1


def test_incomplete_schedule_rejected(race_system, race_solution):
    outcome = validate_schedule(race_system, race_solution.schedule[:-2])
    assert not outcome.ok
    assert "cover" in outcome.reason


def test_duplicated_sap_rejected(race_system, race_solution):
    schedule = list(race_solution.schedule)
    schedule[-1] = schedule[0]
    outcome = validate_schedule(race_system, schedule)
    assert not outcome.ok


def test_start_before_fork_rejected(race_system, race_solution):
    schedule = list(race_solution.schedule)
    # Move a child's start SAP to the very front, before main's fork.
    start = next(
        uid
        for uid in schedule
        if uid[0] != "1" and race_system.saps[uid].kind == "start"
    )
    schedule.remove(start)
    schedule.insert(0, start)
    outcome = validate_schedule(race_system, schedule)
    assert not outcome.ok


def test_program_order_permutation_caught_by_semantics(race_system, race_solution):
    # Swapping a read with the write that produced its observed value makes
    # path/bug constraints fail (or sync checks, depending on the pair).
    schedule = list(race_solution.schedule)
    schedule.reverse()
    outcome = validate_schedule(race_system, schedule)
    assert not outcome.ok


def test_reads_from_extracted(race_system, race_solution):
    outcome = validate_schedule(race_system, race_solution.schedule)
    reads = [uid for uid, sap in race_system.saps.items() if sap.is_read]
    assert set(outcome.reads_from) == set(reads)


def test_env_contains_every_read_value(race_system, race_solution):
    outcome = validate_schedule(race_system, race_solution.schedule)
    n_reads = sum(1 for sap in race_system.saps.values() if sap.is_read)
    assert len(outcome.env) == n_reads


def condvar_system():
    pipe = ClapPipeline(CONDVAR_SRC, ClapConfig(stickiness=0.4))
    # The condvar program is correct; fabricate a "bug" by treating the
    # ground-truth schedule of a clean run as the thing to validate.
    recorded = pipe.record_once(3)
    assert recorded.bug is None
    from repro.analysis.symexec import execute_recorded_paths
    from repro.tracing.decoder import decode_log

    summaries = execute_recorded_paths(
        pipe.program, decode_log(recorded.recorder), pipe.shared, bug=None
    )
    from repro.constraints import encoder
    from repro.constraints.model import ConstraintSystem

    # Bypass the bug-predicate requirement for this structural test.
    system = ConstraintSystem(memory_model="sc", summaries=summaries)
    for summary in summaries.values():
        for sap in summary.saps:
            system.saps[sap.uid] = sap
        system.conditions.extend(summary.conditions)
    for info in pipe.program.symbols.globals.values():
        if info.is_data and info.name in pipe.shared:
            if info.is_array:
                for i in range(info.size):
                    system.initial_values[(info.name, i)] = 0
            else:
                system.initial_values[(info.name,)] = info.init
    from repro.constraints.memory_order import encode_memory_order

    edges, per_thread = encode_memory_order(summaries, "sc")
    system.hard_edges.extend(edges)
    system.thread_order = per_thread
    return system, recorded


def test_wait_signal_semantics_validated():
    system, recorded = condvar_system()
    schedule = recorded.result.schedule()
    outcome = validate_schedule(system, schedule)
    assert outcome.ok, outcome.reason
    # Moving the wait SAP before its signal breaks feasibility.
    wait_uid = next(
        uid for uid, sap in system.saps.items() if sap.kind == "wait"
    )
    signal_uid = next(
        uid for uid, sap in system.saps.items() if sap.kind == "signal"
    )
    bad = list(schedule)
    if bad.index(wait_uid) > bad.index(signal_uid):
        bad.remove(wait_uid)
        bad.insert(bad.index(signal_uid), wait_uid)
        outcome = validate_schedule(system, bad)
        assert not outcome.ok


def test_lock_exclusion_validated():
    system, recorded = condvar_system()
    schedule = list(recorded.result.schedule())
    locks = [uid for uid in schedule if system.saps[uid].kind == "lock"]
    if len(locks) >= 2:
        # Place the second lock right after the first: two holders at once.
        second = locks[1]
        schedule.remove(second)
        schedule.insert(schedule.index(locks[0]) + 1, second)
        outcome = validate_schedule(system, schedule)
        assert not outcome.ok
