"""Figure 4 — two solver solutions for the PSO case of the example.

The paper's Figure 4 shows two schedules the solver can return for the
same constraint system: one mirroring the original tangled execution and
one with the minimal number of thread context switches.  We regenerate
the pair: the CDCL(T) solver's first solution, and the minimal-switch
schedule from the incrementing-bound search (Section 4.2) — both must
replay to the same failure.
"""

from repro.bench.programs import figure2
from repro.constraints.context_switch import count_context_switches
from repro.core.clap import ClapConfig, ClapPipeline
from repro.core.minimal_cs import minimize_context_switches
from repro.solver.smt import solve_constraints

from conftest import emit


def _fmt(system, schedule, title):
    cs = count_context_switches(schedule, system.summaries)
    body = " -> ".join("%s#%d" % uid for uid in schedule)
    return "%s (%d context switches):\n  %s" % (title, cs, body)


def test_fig4_two_solutions(benchmark):
    bench = figure2(memory_model="pso")
    config = ClapConfig(**bench.config_kwargs())
    pipeline = ClapPipeline(bench.compile(), config)
    line = next(
        i + 1
        for i, text in enumerate(bench.source.splitlines())
        if "assert(d == 1)" in text
    )

    def once():
        recorded = None
        for seed in range(2000):
            candidate = pipeline.record_once(seed)
            if candidate.bug is not None and candidate.bug.line == line:
                recorded = candidate
                break
        assert recorded is not None
        system = pipeline.analyze(recorded)
        first = solve_constraints(system)
        assert first.ok
        minimal = minimize_context_switches(
            system, first.schedule, max_seconds=30
        )
        return recorded, system, first, minimal

    recorded, system, first, minimal = benchmark.pedantic(
        once, rounds=1, iterations=1
    )
    text = "\n\n".join(
        [
            "Figure 4 analogue: two bug-reproducing schedules (PSO)",
            _fmt(system, first.schedule, "Solution 1 (solver's first)"),
            _fmt(system, minimal.schedule, "Solution 2 (minimal switches)"),
        ]
    )
    emit("fig4_solutions.txt", text)

    assert minimal.context_switches <= count_context_switches(
        first.schedule, system.summaries
    )
    # Both replay to the same failure.
    for schedule in (first.schedule, minimal.schedule):
        outcome = pipeline.replay(schedule, recorded.bug)
        assert outcome.reproduced
