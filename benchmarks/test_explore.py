"""Explore-mode benchmark: witness search cost on the seeded examples.

For each seeded-bug example the static pass proposes one SR3xx
predicate; the explore driver must find a replay-validated witness
using only passing recordings.  The table records the wall-clock of
the search, the number of schedules the bound ladder enumerated, and
the context-switch bound of the winning round.  Machine-readable
results land in ``results/BENCH_explore.json`` (uploaded by the CI
``explore`` job); the gate fails when any example misses its witness
or blows the per-example wall-clock budget.
"""

import json
import os
import time

from conftest import emit

from repro.core.explore import ExploreConfig, explore_program

ROOT = os.path.join(os.path.dirname(__file__), "..")
EXAMPLES = {
    "atomicity_ctr": "SR301",
    "order_uninit": "SR302",
    "lost_notify": "SR303",
}

# Generous CI budget: the searches take well under a second locally.
MAX_SECONDS_PER_EXAMPLE = 60.0

_PAYLOAD = {"examples": {}}


def _source(name):
    path = os.path.join(ROOT, "examples", "minilang", name + ".ml")
    with open(path) as fh:
        return fh.read()


def test_explore_witness_benchmark():
    rows = []
    for name in sorted(EXAMPLES):
        t0 = time.monotonic()
        report = explore_program(
            _source(name), ExploreConfig(max_seeds=32), name=name
        )
        wall = time.monotonic() - t0
        assert len(report.targets) == 1, name
        target = report.targets[0]

        # The gate: a replay-validated witness, inside the budget.
        assert target.code == EXAMPLES[name], name
        assert target.status == "witness", (name, target.status)
        assert target.replay_validated, name
        assert wall <= MAX_SECONDS_PER_EXAMPLE, (name, wall)
        assert target.schedules_enumerated >= 1, name
        assert 0 <= target.bound <= ExploreConfig().max_cs, name

        _PAYLOAD["examples"][name] = {
            "code": target.code,
            "status": target.status,
            "wall_seconds": round(wall, 4),
            "search_seconds": round(target.time_search, 4),
            "schedules_enumerated": target.schedules_enumerated,
            "bound": target.bound,
            "max_cs": ExploreConfig().max_cs,
            "rung": target.rung,
            "attempts": target.attempts,
            "seeds_scanned": report.seeds_scanned,
            "passing_runs": report.passing_runs,
            "schedule_length": len(target.schedule),
        }
        rows.append(
            "%-14s %s %-8s %8.3fs %10d enum / cs<=%d  rung=%d seeds=%d"
            % (
                name,
                target.code,
                target.status,
                wall,
                target.schedules_enumerated,
                target.bound,
                target.rung,
                report.seeds_scanned,
            )
        )

    header = (
        "explore witness search (predicate -> goal solve -> replay)\n"
        "%-14s %s %-8s %9s %24s" % ("program", "code", "status", "wall", "search")
    )
    emit("explore_bench.txt", header + "\n" + "\n".join(rows))

    results_dir = os.path.join(ROOT, "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, "BENCH_explore.json")
    with open(path, "w") as fh:
        json.dump(_PAYLOAD, fh, indent=2)
        fh.write("\n")
    print("[saved to %s]" % path)
