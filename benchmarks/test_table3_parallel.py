"""Table 3 — generate-and-validate solving, parallel vs the SMT solver.

Regenerates the paper's Table 3: for every benchmark, the worst-case
schedule-space size, the number of schedules generated and found correct
by the preemption-bounded search, the bound at which they were found, and
wall time against the monolithic (sequential) CDCL(T) solver.

Expected shape (paper): the worst-case space is astronomically large
(10^6..10^10000) yet bounded generation finds correct schedules quickly
for most programs; racey — whose bug predicate pins the exact observed
output — defeats the bounded search (the paper's parallel algorithm also
failed on racey after two hours).  On our substrate ``bakery`` (many
buffered TSO stores whose drain points must align with pinned spin reads)
is a second hard case: its witnesses are too rare for the budgeted
sampler, while the CDCL(T) solver cracks it instantly.
"""

# Benchmarks the bounded search is allowed to miss within its budget.
HARD = {"racey", "bakery"}

import os

import pytest

from repro.bench.harness import Table3Row, format_table3, run_table3_row
from repro.bench.programs import TABLE1_NAMES, get_benchmark

from conftest import emit

_WORKERS = min(4, os.cpu_count() or 1)
_ROWS = {}


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_table3_row(benchmark, name):
    bench = get_benchmark(name)

    def once():
        return run_table3_row(
            bench,
            workers=0,
            max_seconds=90.0,
            smt_max_seconds=120.0,
        )

    row = benchmark.pedantic(once, rounds=1, iterations=1)
    _ROWS[name] = row
    if name == "racey":
        assert row.success == "N", (
            "racey's exact-output reproduction should defeat bounded search"
        )
    elif name not in HARD:
        assert row.success == "Y", row.note


def test_table3_render(benchmark):
    missing = [n for n in TABLE1_NAMES if n not in _ROWS]
    assert not missing, "rows missing (run the whole module): %s" % missing
    rows = [_ROWS[n] for n in TABLE1_NAMES]
    benchmark.pedantic(lambda: format_table3(rows), rounds=1, iterations=1)
    emit("table3.txt", format_table3(rows))
    # Worst-case spaces are enormous while bounded search stays feasible.
    assert all(r.worst_log10 > 5 for r in rows)
    ok_rows = [r for r in rows if r.success == "Y"]
    assert ok_rows and all(r.time_par < 90.0 for r in ok_rows)
