"""Empirical complexity scaling (paper Section 4.1).

"The worst case complexity of our constraints is linear to the number of
conditional branches and cubic to the number of shared data accesses."

Two sweeps check that analysis empirically:

* ``hot variable`` — all accesses hit one shared variable, the Frw worst
  case: constraint count must grow super-quadratically in #SAPs;
* ``branchy`` — thread-local branching scales while shared accesses stay
  fixed: total constraint growth must stay ~linear in #branches.
"""

from repro.bench.workloads import (
    fit_power,
    format_sweep,
    sweep_branches,
    sweep_hot_variable,
)

from conftest import emit

_RESULTS = {}


def test_hot_variable_cubic_growth(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_hot_variable(sizes=(2, 4, 6, 8)), rounds=1, iterations=1
    )
    _RESULTS["hot"] = points
    exponent = fit_power(points)
    # Frw is 4·Nr·Nw² on one address: expect a clearly superquadratic fit.
    assert exponent > 2.2, "measured exponent %.2f" % exponent
    assert all(p.solved for p in points)


def test_branchy_linear_growth(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_branches(sizes=(2, 6, 12, 20)), rounds=1, iterations=1
    )
    _RESULTS["branchy"] = points
    exponent = fit_power(points, x_attr="n_branches", y_attr="n_constraints")
    assert exponent < 1.5, "measured exponent %.2f" % exponent


def test_scaling_render(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    parts = []
    if "hot" in _RESULTS:
        points = _RESULTS["hot"]
        parts.append(format_sweep(points, "Scaling: racy accesses to one variable"))
        parts.append(
            "log-log exponent (constraints vs #SAPs): %.2f  (paper: cubic worst case)"
            % fit_power(points)
        )
    if "branchy" in _RESULTS:
        points = _RESULTS["branchy"]
        parts.append("")
        parts.append(format_sweep(points, "Scaling: thread-local branches"))
        parts.append(
            "log-log exponent (constraints vs #branches): %.2f  (paper: linear)"
            % fit_power(points, x_attr="n_branches", y_attr="n_constraints")
        )
    emit("scaling_complexity.txt", "\n".join(parts))
