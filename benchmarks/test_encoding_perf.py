"""Encoding front-end performance: raw Frw vs the HB-closed front end.

Three sections, all emitted to ``results/encoding_perf.txt`` and
machine-readable as ``results/BENCH_encoding.json`` (parsed by the CI
``encoding-perf`` job):

* **scaling** — the hot-variable workload (Frw's ``4·Nr·Nw²`` worst
  case) measured end-to-end offline (symexec + encode + solve), old
  (``encode(..., hb=False)``) vs new (HB closure on).  The CI gate
  fails when the largest size's end-to-end speedup drops below
  ``GATE_MIN_SPEEDUP``.
* **table1** — per-benchmark clause counts: the HB closure must drop
  strictly more than zero Frw clauses on *every* entry, never increase
  the total clause count, and every entry must still reproduce from the
  HB-closed system's schedule.
* **cache** — a two-entry corpus run through ``run_batch`` twice: the
  second run must be all cache hits and its JSONL must match the first
  modulo volatile fields (wall clocks, pids, cache counters) — the
  "byte-for-byte" claim is over that normalized form.
"""

import json
import os
import time

from repro.analysis.symexec import execute_recorded_paths
from repro.bench.programs import TABLE1_NAMES
from repro.bench.workloads import HOT_VAR_TEMPLATE
from repro.constraints.encoder import encode
from repro.constraints.stats import compute_stats
from repro.core.clap import ClapConfig, ClapPipeline
from repro.minilang import compile_source
from repro.service.batch import JsonlSink, run_batch
from repro.solver.smt import solve_constraints
from repro.store import Corpus
from repro.tracing.decoder import decode_log

from conftest import emit, pipeline_artifacts

SCALING_SIZES = (4, 8, 12)
MAX_SECONDS = 120
# CI gate on the largest scaling size.  Measured headroom: the HB
# closure lands 1.5-1.8x end-to-end on this workload; 1.25x leaves
# room for noisy runners.
GATE_MIN_SPEEDUP = 1.25

RF_ORIGINS = ("rf-before", "rf-nomid", "rf-init")

VOLATILE_FIELDS = ("wall_time", "time_symbolic", "time_solve", "worker_pid", "cache")

_PAYLOAD = {}

RACE_SRC = """
int c = 0;
void worker(int n) {
    for (int i = 0; i < n; i++) {
        int r = c;
        c = r + 1;
    }
}
int main() {
    int t1 = 0;
    int t2 = 0;
    t1 = spawn worker(2);
    t2 = spawn worker(2);
    join(t1);
    join(t2);
    assert(c == 4);
    return 0;
}
"""

ORDER_SRC = """
int ready = 0;
int data = 0;
void producer() {
    data = 41;
    ready = 1;
}
int main() {
    int t = 0;
    t = spawn producer();
    if (ready == 1) {
        assert(data == 42);
    }
    join(t);
    return 0;
}
"""


def _rf_clauses(system):
    return sum(1 for c in system.clauses if c.origin in RF_ORIGINS)


def _front_end(pipeline, recorded, hb):
    """One end-to-end offline pass; returns (seconds, system, result)."""
    t0 = time.monotonic()
    decoded = decode_log(recorded.recorder)
    summaries = execute_recorded_paths(
        pipeline.program, decoded, pipeline.shared, bug=recorded.bug
    )
    system = encode(
        summaries,
        pipeline.config.memory_model,
        pipeline.program.symbols,
        pipeline.shared,
        hb=hb,
    )
    result = solve_constraints(system, max_seconds=MAX_SECONDS)
    return time.monotonic() - t0, system, result


def test_scaling_speedup():
    rows = []
    for n in SCALING_SIZES:
        src = HOT_VAR_TEMPLATE % (n, n, 2 * n)
        pipeline = ClapPipeline(
            compile_source(src, name="hot%d" % n), ClapConfig(stickiness=0.3)
        )
        recorded = pipeline.record()
        old_seconds, raw, old_result = _front_end(pipeline, recorded, hb=False)
        new_seconds, hb, new_result = _front_end(pipeline, recorded, hb=True)
        assert old_result.ok and new_result.ok, n
        sraw, shb = compute_stats(raw), compute_stats(hb)
        rows.append(
            {
                "size": n,
                "old_clauses": sraw.n_clauses,
                "new_clauses": shb.n_clauses,
                "old_choice_vars": sraw.n_choice_vars,
                "new_choice_vars": shb.n_choice_vars,
                "old_seconds": round(old_seconds, 4),
                "new_seconds": round(new_seconds, 4),
                "speedup": round(old_seconds / max(new_seconds, 1e-9), 2),
            }
        )
    _PAYLOAD["scaling"] = {
        "workload": "hot_variable",
        "sizes": list(SCALING_SIZES),
        "gate_min_speedup": GATE_MIN_SPEEDUP,
        "rows": rows,
    }
    gate_row = rows[-1]
    assert gate_row["new_clauses"] < gate_row["old_clauses"]
    assert gate_row["speedup"] >= GATE_MIN_SPEEDUP, (
        "HB-closed front end regressed at size %d: %.2fx < %.2fx gate"
        % (gate_row["size"], gate_row["speedup"], GATE_MIN_SPEEDUP)
    )


def test_table1_clause_counts():
    rows = []
    for name in TABLE1_NAMES:
        bench, pipeline, recorded, _system = pipeline_artifacts(name)
        decoded = decode_log(recorded.recorder)
        summaries = execute_recorded_paths(
            pipeline.program, decoded, pipeline.shared, bug=recorded.bug
        )
        args = (
            summaries,
            pipeline.config.memory_model,
            pipeline.program.symbols,
            pipeline.shared,
        )
        raw = encode(*args, hb=False)
        hb = encode(*args)
        raw_rf, hb_rf = _rf_clauses(raw), _rf_clauses(hb)
        sraw, shb = compute_stats(raw), compute_stats(hb)
        # Strictly fewer Frw clauses on every entry, no total regression.
        assert hb_rf < raw_rf, name
        assert shb.n_clauses <= sraw.n_clauses, name
        solved = solve_constraints(hb, max_seconds=MAX_SECONDS)
        assert solved.ok, name
        outcome = pipeline.replay(solved.schedule, recorded.bug)
        assert outcome.reproduced, name
        rows.append(
            {
                "name": name,
                "memory_model": bench.memory_model,
                "raw_rf_clauses": raw_rf,
                "hb_rf_clauses": hb_rf,
                "raw_clauses": sraw.n_clauses,
                "hb_clauses": shb.n_clauses,
                "reproduced": outcome.reproduced,
            }
        )
    _PAYLOAD["table1"] = {"rows": rows}


def _normalized(records):
    out = []
    for record in sorted(records, key=lambda r: r["entry_id"]):
        out.append(
            {k: v for k, v in record.items() if k not in VOLATILE_FIELDS}
        )
    return out


def test_cached_batch(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("encperf_corpus"))
    corpus = Corpus.create(root)
    corpus.add(RACE_SRC, name="race", config=ClapConfig(seeds=range(50)))
    corpus.add(ORDER_SRC, name="order", config=ClapConfig(seeds=range(200)))
    sink1 = os.path.join(root, "run1.jsonl")
    sink2 = os.path.join(root, "run2.jsonl")

    t0 = time.monotonic()
    _results1, agg1 = run_batch(root, jobs=2, sink_path=sink1)
    first_seconds = time.monotonic() - t0
    t0 = time.monotonic()
    _results2, agg2 = run_batch(root, jobs=2, sink_path=sink2)
    second_seconds = time.monotonic() - t0

    assert agg1["reproduced"] == 2 and agg2["reproduced"] == 2
    assert agg1["cache"]["misses"] == 2
    assert agg2["cache"]["hits"] == 2 and agg2["cache"]["misses"] == 0
    n1 = _normalized(JsonlSink.read(sink1))
    n2 = _normalized(JsonlSink.read(sink2))
    assert [json.dumps(r, sort_keys=True) for r in n1] == [
        json.dumps(r, sort_keys=True) for r in n2
    ]
    _PAYLOAD["cache"] = {
        "entries": 2,
        "first_run_seconds": round(first_seconds, 4),
        "second_run_seconds": round(second_seconds, 4),
        "second_run_hits": agg2["cache"]["hits"],
        "bytes_written": agg1["cache"]["bytes_written"],
        "bytes_read": agg2["cache"]["bytes_read"],
        "normalized_jsonl_equal": True,
        "volatile_fields": list(VOLATILE_FIELDS),
    }


def test_encoding_perf_render():
    missing = [k for k in ("scaling", "table1", "cache") if k not in _PAYLOAD]
    assert not missing, "sections missing (run the whole module): %s" % missing

    lines = [
        "Encoding front end: raw Frw vs happens-before-closed encoding",
        "",
        "scaling (hot variable, end-to-end offline: symexec+encode+solve)",
        "%6s %9s %9s %9s %9s %8s"
        % ("size", "clauses", "clauses'", "old (s)", "new (s)", "speedup"),
    ]
    for r in _PAYLOAD["scaling"]["rows"]:
        lines.append(
            "%6d %9d %9d %9.3f %9.3f %7.2fx"
            % (
                r["size"],
                r["old_clauses"],
                r["new_clauses"],
                r["old_seconds"],
                r["new_seconds"],
                r["speedup"],
            )
        )
    lines += [
        "",
        "table 1 (rf clause counts, raw vs hb-closed)",
        "%-10s %5s %8s %8s %8s %8s  %s"
        % ("program", "model", "rf", "rf'", "clauses", "clauses'", "repro"),
    ]
    for r in _PAYLOAD["table1"]["rows"]:
        lines.append(
            "%-10s %5s %8d %8d %8d %8d  %s"
            % (
                r["name"],
                r["memory_model"],
                r["raw_rf_clauses"],
                r["hb_rf_clauses"],
                r["raw_clauses"],
                r["hb_clauses"],
                "yes" if r["reproduced"] else "NO",
            )
        )
    cache = _PAYLOAD["cache"]
    lines += [
        "",
        "analysis cache (2-entry corpus, repro batch twice)",
        "first run  %.3fs (%d misses, %dB written)"
        % (cache["first_run_seconds"], 2, cache["bytes_written"]),
        "second run %.3fs (%d hits, %dB read), JSONL equal modulo %s"
        % (
            cache["second_run_seconds"],
            cache["second_run_hits"],
            cache["bytes_read"],
            ",".join(cache["volatile_fields"]),
        ),
    ]
    emit("encoding_perf.txt", "\n".join(lines))

    results_dir = os.path.join(os.path.dirname(__file__), "..", "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, "BENCH_encoding.json")
    with open(path, "w") as fh:
        json.dump(_PAYLOAD, fh, indent=2)
        fh.write("\n")
    print("[saved to %s]" % path)
