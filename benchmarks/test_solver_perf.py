"""Solver hot-path performance: old stack vs incremental CDCL.

Times the Table-1 suite through ``solve_constraints_bounded`` twice per
benchmark:

* **old** — fresh solver per bound round backed by the frozen reference
  CDCL core (``cdcl_reference``): the pre-incremental behavior;
* **new** — one incremental solver across all rounds (watched literals,
  Luby restarts, phase saving, ladder assumptions, learned-clause reuse).

plus a third **portfolio** run through the cube-and-conquer racing layer
(``solve_constraints_portfolio``: sequential replica + genval rung
probes + rf-prefix cubes + diversified solvers with learned-clause
exchange).

All runs share the encoder's stable atom numbering and the same
per-round iteration budget, so the comparison isolates the solver core
and the cross-round reuse.  Results are printed, rendered to
``results/solver_perf.txt``, and emitted machine-readable as
``results/BENCH_solver.json`` (the CI perf job parses the latter and
fails when the aggregate speedup drops below ``GATE_MIN_SPEEDUP`` or
the portfolio's ``aget`` speedup over the sequential incremental run
drops below ``PORTFOLIO_GATE``).
"""

import json
import os

import pytest

from repro.bench.programs import TABLE1_NAMES
from repro.solver.cdcl_reference import CDCLSolver as ReferenceCDCL
from repro.solver.portfolio import solve_constraints_portfolio
from repro.solver.smt import solve_constraints_bounded

from conftest import emit, pipeline_artifacts

MAX_CS = 6
MAX_SECONDS = 120
# CI gate: the incremental core must keep at least this aggregate
# speedup over the recorded old-stack baseline measured in the same run
# (same machine, same load — immune to runner-speed drift).  The
# acceptance target for this change is 1.5x; the gate leaves headroom
# for noisy CI runners.
GATE_MIN_SPEEDUP = 1.25
# CI gate for the portfolio layer, pinned to the benchmark where
# algorithm diversity pays: on ``aget`` a genval rung probe proves and
# finds the minimal bound in seconds while the CEGAR ladder grinds, so
# the portfolio must beat the sequential incremental run by at least
# this factor.  (On single-core runners most other rows *lose* a little
# to process contention — that cost is reported, not gated.)
PORTFOLIO_GATE = 1.5
PORTFOLIO_GATE_NAME = "aget"
PORTFOLIO_WORKERS = 3

_ROWS = {}


def _measure(system, incremental, sat_factory=None):
    result = solve_constraints_bounded(
        system,
        max_cs=MAX_CS,
        incremental=incremental,
        sat_factory=sat_factory,
        max_seconds=MAX_SECONDS,
    )
    assert result.ok, result.reason
    return result


def _proven_minimal(result):
    return all(
        entry["exhausted"]
        for entry in result.round_stats
        if entry["bound"] < result.bound
    )


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_solver_perf_row(name):
    _, _, _, system = pipeline_artifacts(name)
    old = _measure(system, incremental=False, sat_factory=ReferenceCDCL)
    new = _measure(system, incremental=True)
    port = solve_constraints_portfolio(
        system,
        max_cs=MAX_CS,
        workers=PORTFOLIO_WORKERS,
        max_seconds=MAX_SECONDS,
    )
    assert port.ok, port.reason
    # Bound quality: when both paths prove their bound (every lower
    # round exhausted rather than budget-cut) they must agree exactly;
    # under budget truncation the incremental path may not be worse.
    if _proven_minimal(old) and _proven_minimal(new):
        assert new.context_switches == old.context_switches, name
    else:
        assert new.context_switches <= max(
            old.context_switches, new.bound
        ), name
    # The portfolio's finish rule resolves every rung below its winner,
    # so its bound is never worse than the sequential incremental one
    # (a genval winner may improve on it: exact switch metric vs the
    # ladder's greedy canonical one).
    assert port.context_switches <= new.context_switches, name
    _ROWS[name] = {
        "name": name,
        "old_seconds": round(old.solve_time, 4),
        "new_seconds": round(new.solve_time, 4),
        "speedup": round(old.solve_time / max(new.solve_time, 1e-9), 2),
        "old_context_switches": old.context_switches,
        "new_context_switches": new.context_switches,
        "old_iterations": old.iterations,
        "new_iterations": new.iterations,
        "new_sat_stats": new.sat_stats,
        "portfolio_seconds": round(port.solve_time, 4),
        "portfolio_speedup": round(
            new.solve_time / max(port.solve_time, 1e-9), 2
        ),
        "portfolio_context_switches": port.context_switches,
        "portfolio": port.portfolio,
    }


def test_solver_perf_render():
    missing = [n for n in TABLE1_NAMES if n not in _ROWS]
    assert not missing, "rows missing (run the whole module): %s" % missing
    rows = [_ROWS[n] for n in TABLE1_NAMES]
    old_total = sum(r["old_seconds"] for r in rows)
    new_total = sum(r["new_seconds"] for r in rows)
    speedup = old_total / max(new_total, 1e-9)

    lines = [
        "Solver hot path: old (fresh reference CDCL per round) vs new "
        "(incremental CDCL, ladder assumptions) vs portfolio "
        "(cube-and-conquer racing, %d workers)" % PORTFOLIO_WORKERS,
        "max_cs=%d  per-round budget=2000 iterations" % MAX_CS,
        "",
        "%-10s %10s %10s %8s %10s %8s %6s %6s %7s  %s"
        % (
            "program",
            "old (s)",
            "new (s)",
            "speedup",
            "port (s)",
            "p-spd",
            "old cs",
            "new cs",
            "port cs",
            "winner",
        ),
    ]
    for r in rows:
        lines.append(
            "%-10s %10.3f %10.3f %7.2fx %10.3f %7.2fx %6d %6d %7d  %s"
            % (
                r["name"],
                r["old_seconds"],
                r["new_seconds"],
                r["speedup"],
                r["portfolio_seconds"],
                r["portfolio_speedup"],
                r["old_context_switches"],
                r["new_context_switches"],
                r["portfolio_context_switches"],
                r["portfolio"]["winner"],
            )
        )
    port_total = sum(r["portfolio_seconds"] for r in rows)
    lines.append(
        "%-10s %10.3f %10.3f %7.2fx %10.3f"
        % ("TOTAL", old_total, new_total, speedup, port_total)
    )
    emit("solver_perf.txt", "\n".join(lines))

    gate_row = _ROWS[PORTFOLIO_GATE_NAME]
    payload = {
        "suite": "table1",
        "max_cs": MAX_CS,
        "gate_min_speedup": GATE_MIN_SPEEDUP,
        "portfolio_gate": {
            "name": PORTFOLIO_GATE_NAME,
            "min_speedup": PORTFOLIO_GATE,
            "speedup": gate_row["portfolio_speedup"],
            "workers": PORTFOLIO_WORKERS,
        },
        "benchmarks": rows,
        "total": {
            "old_seconds": round(old_total, 4),
            "new_seconds": round(new_total, 4),
            "speedup": round(speedup, 2),
            "portfolio_seconds": round(port_total, 4),
        },
    }
    results_dir = os.path.join(os.path.dirname(__file__), "..", "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, "BENCH_solver.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print("[saved to %s]" % path)

    assert speedup >= GATE_MIN_SPEEDUP, (
        "incremental solver regressed: %.2fx < %.2fx aggregate gate"
        % (speedup, GATE_MIN_SPEEDUP)
    )
    assert gate_row["portfolio_speedup"] >= PORTFOLIO_GATE, (
        "portfolio regressed on %s: %.2fx < %.2fx gate vs sequential "
        "incremental"
        % (
            PORTFOLIO_GATE_NAME,
            gate_row["portfolio_speedup"],
            PORTFOLIO_GATE,
        )
    )
