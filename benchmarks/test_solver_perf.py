"""Solver hot-path performance: old stack vs incremental CDCL.

Times the Table-1 suite through ``solve_constraints_bounded`` twice per
benchmark:

* **old** — fresh solver per bound round backed by the frozen reference
  CDCL core (``cdcl_reference``): the pre-incremental behavior;
* **new** — one incremental solver across all rounds (watched literals,
  Luby restarts, phase saving, ladder assumptions, learned-clause reuse).

Both runs share the encoder's stable atom numbering and the same
per-round iteration budget, so the comparison isolates the solver core
and the cross-round reuse.  Results are printed, rendered to
``results/solver_perf.txt``, and emitted machine-readable as
``results/BENCH_solver.json`` (the CI perf job parses the latter and
fails when the aggregate speedup drops below ``GATE_MIN_SPEEDUP``).
"""

import json
import os

import pytest

from repro.bench.programs import TABLE1_NAMES
from repro.solver.cdcl_reference import CDCLSolver as ReferenceCDCL
from repro.solver.smt import solve_constraints_bounded

from conftest import emit, pipeline_artifacts

MAX_CS = 6
MAX_SECONDS = 120
# CI gate: the incremental core must keep at least this aggregate
# speedup over the recorded old-stack baseline measured in the same run
# (same machine, same load — immune to runner-speed drift).  The
# acceptance target for this change is 1.5x; the gate leaves headroom
# for noisy CI runners.
GATE_MIN_SPEEDUP = 1.25

_ROWS = {}


def _measure(system, incremental, sat_factory=None):
    result = solve_constraints_bounded(
        system,
        max_cs=MAX_CS,
        incremental=incremental,
        sat_factory=sat_factory,
        max_seconds=MAX_SECONDS,
    )
    assert result.ok, result.reason
    return result


def _proven_minimal(result):
    return all(
        entry["exhausted"]
        for entry in result.round_stats
        if entry["bound"] < result.bound
    )


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_solver_perf_row(name):
    _, _, _, system = pipeline_artifacts(name)
    old = _measure(system, incremental=False, sat_factory=ReferenceCDCL)
    new = _measure(system, incremental=True)
    # Bound quality: when both paths prove their bound (every lower
    # round exhausted rather than budget-cut) they must agree exactly;
    # under budget truncation the incremental path may not be worse.
    if _proven_minimal(old) and _proven_minimal(new):
        assert new.context_switches == old.context_switches, name
    else:
        assert new.context_switches <= max(
            old.context_switches, new.bound
        ), name
    _ROWS[name] = {
        "name": name,
        "old_seconds": round(old.solve_time, 4),
        "new_seconds": round(new.solve_time, 4),
        "speedup": round(old.solve_time / max(new.solve_time, 1e-9), 2),
        "old_context_switches": old.context_switches,
        "new_context_switches": new.context_switches,
        "old_iterations": old.iterations,
        "new_iterations": new.iterations,
        "new_sat_stats": new.sat_stats,
    }


def test_solver_perf_render():
    missing = [n for n in TABLE1_NAMES if n not in _ROWS]
    assert not missing, "rows missing (run the whole module): %s" % missing
    rows = [_ROWS[n] for n in TABLE1_NAMES]
    old_total = sum(r["old_seconds"] for r in rows)
    new_total = sum(r["new_seconds"] for r in rows)
    speedup = old_total / max(new_total, 1e-9)

    lines = [
        "Solver hot path: old (fresh reference CDCL per round) vs new "
        "(incremental CDCL, ladder assumptions)",
        "max_cs=%d  per-round budget=2000 iterations" % MAX_CS,
        "",
        "%-10s %10s %10s %8s %6s %6s"
        % ("program", "old (s)", "new (s)", "speedup", "old cs", "new cs"),
    ]
    for r in rows:
        lines.append(
            "%-10s %10.3f %10.3f %7.2fx %6d %6d"
            % (
                r["name"],
                r["old_seconds"],
                r["new_seconds"],
                r["speedup"],
                r["old_context_switches"],
                r["new_context_switches"],
            )
        )
    lines.append(
        "%-10s %10.3f %10.3f %7.2fx"
        % ("TOTAL", old_total, new_total, speedup)
    )
    emit("solver_perf.txt", "\n".join(lines))

    payload = {
        "suite": "table1",
        "max_cs": MAX_CS,
        "gate_min_speedup": GATE_MIN_SPEEDUP,
        "benchmarks": rows,
        "total": {
            "old_seconds": round(old_total, 4),
            "new_seconds": round(new_total, 4),
            "speedup": round(speedup, 2),
        },
    }
    results_dir = os.path.join(os.path.dirname(__file__), "..", "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, "BENCH_solver.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print("[saved to %s]" % path)

    assert speedup >= GATE_MIN_SPEEDUP, (
        "incremental solver regressed: %.2fx < %.2fx aggregate gate"
        % (speedup, GATE_MIN_SPEEDUP)
    )
