"""Fleet-scale dedup benchmark over the paper's Table-1 suite.

The production scenario: every Table-1 failure arrives at the ingestion
gateway several times over — the same crash from many machines — plus
*perturbed* copies (same program, genuinely different whole-path
profile, found by scanning other failing seeds).  Everything flows
through the real asyncio TCP gateway into a sharded fleet, the
dispatcher drains the solve queue through the worker pool against the
shared analysis cache, and each solved schedule fans out to its cluster
members with a replay check.

Gates (the acceptance bars for the fleet layer):

* **dedup ratio >= 2x** — reports ingested per constraint solve actually
  run;
* **zero wrong-cluster merges** — every duplicate joins its original's
  cluster, every perturbed copy gets its own, and every fanned-out
  member's replay reproduces its recorded failure;
* the **shared cache** serves a re-verification sweep entirely from
  hits.

Rendered summary lands in ``results/fleet_bench.txt``; machine-readable
metrics (dedup ratio, cache hit/miss/eviction counters, per-shard
rollups) in ``results/BENCH_fleet.json`` for the CI artifact upload.
"""

import asyncio
import json
import os
import threading
import time

from repro.bench.programs import TABLE1_NAMES, get_benchmark
from repro.core.clap import ClapConfig, ClapPipeline
from repro.fleet import (
    FleetDispatcher,
    IngestGateway,
    ShardedCorpus,
    report_from_recorded,
    request,
)
from repro.fleet.cluster import profile_digests
from repro.service.batch import format_batch_table, run_repro_job
from repro.service.jobs import JobSpec

from conftest import emit

ROOT = os.path.join(os.path.dirname(__file__), "..")

DUPLICATES_PER_REPORT = 3  # original + 2 byte-identical re-reports
PERTURBED_TARGET = 2  # distinct-profile copies to hunt for
PERTURBED_SEED_BUDGET = 120  # max seeds scanned per program


def _record(bench):
    config = ClapConfig(**bench.config_kwargs())
    pipeline = ClapPipeline(bench.compile(), config)
    recorded = pipeline.record()
    return pipeline, config, recorded


def _perturbed_copy(pipeline, base_recorded):
    """A failing recording with a different whole-path profile, or None.

    Candidates are vetted with a local ``reproduce_offline`` first: the
    benchmark measures the *fleet's* dedup/fan-out behaviour, so it only
    feeds it traces the underlying pipeline can solve (e.g. bbuf's
    seed-0 trace solves to a schedule that does not replay — a baseline
    limitation, not a fleet one).
    """
    base = profile_digests(base_recorded.recorder.logs)
    for seed in range(PERTURBED_SEED_BUDGET):
        if seed == base_recorded.seed:
            continue
        recorded = pipeline.record_once(seed)
        if recorded.bug is None:
            continue
        if profile_digests(recorded.recorder.logs) == base:
            continue
        try:
            if pipeline.reproduce_offline(recorded).reproduced:
                return recorded
        except Exception:
            continue
    return None


class _GatewayThread:
    def __init__(self, gateway):
        self.gateway = gateway
        self.drained = None
        ready = threading.Event()
        self.thread = threading.Thread(
            target=self._run, args=(ready,), daemon=True
        )
        self.thread.start()
        assert ready.wait(30), "gateway did not start"
        self.address = gateway.address

    def _run(self, ready):
        self.drained = asyncio.run(self.gateway.serve(ready=ready))

    def shutdown(self):
        request(self.address, {"op": "shutdown"}, timeout=1800.0)
        self.thread.join(timeout=1800)
        assert not self.thread.is_alive(), "gateway drain did not finish"
        return self.drained


def test_fleet_dedup_over_table1(tmp_path_factory):
    fleet_root = str(tmp_path_factory.mktemp("fleet"))
    fleet = ShardedCorpus.create(fleet_root, shards=4)
    dispatcher = FleetDispatcher(fleet, jobs=2, timeout=600.0)
    gateway = IngestGateway(fleet, dispatcher=dispatcher)
    server = _GatewayThread(gateway)

    t0 = time.monotonic()
    expected = {}  # report index -> (program, base cluster sig or None)
    outcomes = []
    perturbed_found = 0
    base_cluster = {}  # program -> its original report's cluster signature
    perturbed_cluster = {}  # program -> the perturbed copy's signature

    for name in TABLE1_NAMES:
        bench = get_benchmark(name)
        pipeline, config, recorded = _record(bench)
        report = report_from_recorded(bench.source, name, config, recorded)
        for copy in range(DUPLICATES_PER_REPORT):
            outcome = request(
                server.address, {"op": "ingest", "report": report},
                timeout=600.0,
            )
            outcomes.append(outcome)
            if copy == 0:
                base_cluster[name] = outcome["cluster"]
                expected[len(outcomes) - 1] = (name, None)
            else:
                expected[len(outcomes) - 1] = (name, base_cluster[name])
        if perturbed_found < PERTURBED_TARGET:
            twisted = _perturbed_copy(pipeline, recorded)
            if twisted is not None:
                perturbed_found += 1
                report = report_from_recorded(
                    bench.source, name, config, twisted
                )
                outcome = request(
                    server.address, {"op": "ingest", "report": report},
                    timeout=600.0,
                )
                outcomes.append(outcome)
                perturbed_cluster[name] = outcome["cluster"]
                expected[len(outcomes) - 1] = (name, "NEW")
    ingest_wall = time.monotonic() - t0

    # -- ingest-side invariants -----------------------------------------
    assert all(o["status"] in ("enqueued", "deduped") for o in outcomes)
    wrong_merges = 0
    for i, outcome in enumerate(outcomes):
        name, want = expected[i]
        if want is None:  # first sighting: must open a cluster
            if outcome["status"] != "enqueued":
                wrong_merges += 1
        elif want == "NEW":  # perturbed: must NOT join the base cluster
            if outcome["cluster"] == base_cluster[name]:
                wrong_merges += 1
        else:  # duplicate: must join exactly its original's cluster
            if outcome["status"] != "deduped" or outcome["cluster"] != want:
                wrong_merges += 1
    assert wrong_merges == 0
    assert perturbed_found >= 1, "no benchmark yielded a second profile"

    n_reports = len(outcomes)
    n_clusters = len(TABLE1_NAMES) + perturbed_found
    dedup_ratio = n_reports / n_clusters
    assert dedup_ratio >= 2.0, "dedup ratio %.2f below the 2x gate" % (
        dedup_ratio
    )

    # -- drain: one solve per cluster, fan-out replays every member ------
    t0 = time.monotonic()
    results, aggregate = server.shutdown()
    drain_wall = time.monotonic() - t0
    assert len(results) == n_reports
    failed = [
        "%s: %s (%s)" % (r.entry_id, r.status, r.reason)
        for r in results
        if not r.ok
    ]
    assert not failed, failed
    solves_run = sum(1 for r in results if not r.deduped)
    assert solves_run == n_clusters
    assert aggregate["deduped"] == n_reports - n_clusters
    registry_stats = fleet.registry().stats()
    assert registry_stats["solved"] == n_clusters
    assert registry_stats["members_validated"] == n_reports

    # -- shared-cache re-verification sweep: all hits --------------------
    cache_root = fleet.shared_cache().root
    sweep_cache = {"hits": 0, "misses": 0}
    t0 = time.monotonic()
    for record in (fleet.registry().get(s) for s in fleet.registry().signatures()):
        rep = record["representative"]
        out = run_repro_job(
            JobSpec(
                corpus_root=fleet.shard_root(rep["shard"]),
                entry_id=rep["entry_id"],
                timeout=600.0,
                shard=rep["shard"],
                cluster=record["signature"],
                cache_root=cache_root,
                cache_max_bytes=fleet.config["cache_max_bytes"],
            ).to_dict()
        )
        assert out["status"] == "reproduced", out
        assert out["cache"]["state"] == "hit", out["cache"]
        sweep_cache["hits"] += out["cache"].get("hits", 0)
        sweep_cache["misses"] += out["cache"].get("misses", 0)
    sweep_wall = time.monotonic() - t0
    assert sweep_cache["misses"] == 0
    assert sweep_cache["hits"] == n_clusters

    drain_cache = aggregate.get("cache", {})
    total_lookups = (
        drain_cache.get("hits", 0)
        + sweep_cache["hits"]
        + drain_cache.get("misses", 0)
        + sweep_cache["misses"]
    )
    hit_rate = (
        (drain_cache.get("hits", 0) + sweep_cache["hits"]) / total_lookups
        if total_lookups
        else 0.0
    )

    # -- report -----------------------------------------------------------
    table = format_batch_table(results, aggregate)
    summary = [
        "fleet ingest/dedup over Table 1 (through the TCP gateway)",
        "",
        "reports ingested:   %d (%d programs x %d copies + %d perturbed)"
        % (
            n_reports,
            len(TABLE1_NAMES),
            DUPLICATES_PER_REPORT,
            perturbed_found,
        ),
        "clusters / solves:  %d" % n_clusters,
        "dedup ratio:        %.2fx (gate: >= 2x)" % dedup_ratio,
        "wrong merges:       %d (gate: 0)" % wrong_merges,
        "fan-out validated:  %d/%d members"
        % (registry_stats["members_validated"], registry_stats["members"]),
        "shared-cache sweep: %d hits, %d misses (hit rate %.2f overall)"
        % (sweep_cache["hits"], sweep_cache["misses"], hit_rate),
        "wall: ingest %.1fs, drain %.1fs, sweep %.1fs"
        % (ingest_wall, drain_wall, sweep_wall),
        "",
        table,
    ]
    emit("fleet_bench.txt", "\n".join(summary))

    payload = {
        "programs": list(TABLE1_NAMES),
        "reports": n_reports,
        "duplicates_per_report": DUPLICATES_PER_REPORT,
        "perturbed_copies": perturbed_found,
        "perturbed_programs": sorted(perturbed_cluster),
        "clusters": n_clusters,
        "solves_run": solves_run,
        "solves_avoided": n_reports - n_clusters,
        "dedup_ratio": round(dedup_ratio, 4),
        "wrong_merges": wrong_merges,
        "members_validated": registry_stats["members_validated"],
        "cache": {
            "drain": {
                key: drain_cache.get(key, 0)
                for key in ("hits", "misses", "stale", "evictions")
            },
            "sweep": sweep_cache,
            "hit_rate": round(hit_rate, 4),
            "usage": fleet.shared_cache().usage(),
        },
        "shards": fleet.stats()["shards"],
        "by_shard": aggregate.get("by_shard", {}),
        "wall": {
            "ingest": round(ingest_wall, 3),
            "drain": round(drain_wall, 3),
            "sweep": round(sweep_wall, 3),
        },
        "gateway": dict(gateway.counters),
    }
    results_dir = os.path.join(ROOT, "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, "BENCH_fleet.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print("[saved to %s]" % path)
