"""Figure 2 — the paper's running example.

Two assertions in one program: ``assert1`` (the racy counter in main) is
violated by an SC-reachable interleaving; ``assert2`` (message passing in
t2) can only be violated when the writer's two stores drain out of order,
i.e. under PSO.  This target demonstrates both, plus the negative
direction: assert2 is NOT violable under SC or TSO.
"""

import pytest

from repro.analysis.escape import shared_variables
from repro.bench.programs import figure2
from repro.core.clap import ClapConfig, ClapPipeline
from repro.runtime.interpreter import run_program

from conftest import emit


def _assert2_line(bench):
    return next(
        i + 1
        for i, line in enumerate(bench.source.splitlines())
        if "assert(d == 1)" in line
    )


def _record_line(pipeline, line, seeds=2000):
    for seed in range(seeds):
        recorded = pipeline.record_once(seed)
        if recorded.bug is not None and recorded.bug.line == line:
            return recorded
    return None


def test_fig2_assert1_fails_under_sc(benchmark):
    bench = figure2(memory_model="sc")
    config = ClapConfig(**bench.config_kwargs())
    pipeline = ClapPipeline(bench.compile(), config)

    def once():
        return pipeline.reproduce()

    report = benchmark.pedantic(once, rounds=1, iterations=1)
    assert report.reproduced
    assert "assert(c == 2)" in bench.source


def test_fig2_assert2_fails_only_under_pso(benchmark):
    bench = figure2(memory_model="pso")
    config = ClapConfig(**bench.config_kwargs())
    pipeline = ClapPipeline(bench.compile(), config)
    line = _assert2_line(bench)

    def once():
        recorded = _record_line(pipeline, line)
        assert recorded is not None, "assert2 never fired under PSO"
        system = pipeline.analyze(recorded)
        solved = pipeline.solve(system)
        assert solved.ok
        return pipeline.replay(solved.schedule, recorded.bug)

    outcome = benchmark.pedantic(once, rounds=1, iterations=1)
    assert outcome.reproduced


@pytest.mark.parametrize("model", ["sc", "tso"])
def test_fig2_assert2_unreachable_on_stronger_models(benchmark, model):
    bench = figure2(memory_model=model)
    prog = bench.compile()
    shared = shared_variables(prog)
    line = _assert2_line(bench)

    def sweep():
        for seed in range(300):
            res = run_program(
                prog, model, seed=seed, shared=shared,
                stickiness=0.4, flush_prob=0.05,
            )
            assert res.bug is None or res.bug.line != line, (model, seed)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "fig2_%s_negative.txt" % model,
        "figure2 assert2 (message passing): 300 seeds under %s, 0 violations"
        % model.upper(),
    )
