"""Figure 3 — the constraint modelling of the running example.

Prints the actual constraint groups (path conditions, read-write
constraints, memory order for SC vs PSO) that the encoder builds for the
figure2 program, mirroring the paper's Figure 3 panels (a)-(c), and
checks the structural properties the figure illustrates:

* every read has a reads-from disjunction over same-address writes + init;
* SC memory order is the full per-thread program-order chain;
* PSO drops write-write edges on different addresses but keeps
  same-address and read-chain edges.
"""

from repro.bench.programs import figure2
from repro.core.clap import ClapConfig, ClapPipeline
from repro.constraints.encoder import encode

from conftest import emit


def _system(memory_model):
    bench = figure2(memory_model=memory_model)
    config = ClapConfig(**bench.config_kwargs())
    pipeline = ClapPipeline(bench.compile(), config)
    recorded = pipeline.record()
    summaries_system = pipeline.analyze(recorded)
    return pipeline, recorded, summaries_system


def test_fig3_constraint_dump(benchmark):
    def once():
        return _system("pso")

    pipeline, recorded, system = benchmark.pedantic(once, rounds=1, iterations=1)
    lines = ["Figure 3 analogue: constraints for the figure2 example (PSO)\n"]
    lines.append("(a) Path conditions and bug predicate:")
    for cond in system.conditions:
        lines.append("    %s after %s#%d: %r" % (cond.thread, cond.thread, cond.after_index, cond.expr))
    for expr in system.bug_exprs:
        lines.append("    BUG: %r" % (expr,))
    lines.append("\n(b) Read-write constraints (reads-from candidates):")
    for read_uid, sources in sorted(system.rf_candidates.items()):
        sap = system.saps[read_uid]
        lines.append("    %s#%d reads %r <- %s" % (read_uid[0], read_uid[1], sap.addr, sources))
    lines.append("\n(c) Memory-order edges (per-thread, PSO):")
    for thread, edges in sorted(system.thread_order.items()):
        lines.append("    %s: %s" % (thread, ["%d<%d" % (a[1], b[1]) for a, b in edges]))
    emit("fig3_constraints.txt", "\n".join(lines))

    # Structural checks.
    reads = [uid for uid, sap in system.saps.items() if sap.is_read]
    assert set(system.rf_candidates) == set(reads)
    # Every read keeps at least one candidate; when the HB closure could
    # not rule out the initial value, "<init>" is listed last.
    init_reads = 0
    for sources in system.rf_candidates.values():
        assert sources
        assert "<init>" not in sources[:-1]
        init_reads += sources[-1] == "<init>"
    assert init_reads > 0  # some read can still observe the initial value
    assert system.bug_exprs


def test_fig3_sc_vs_pso_order_relaxation(benchmark):
    sc_system = benchmark.pedantic(lambda: _system("sc")[2], rounds=1, iterations=1)
    _, _, pso_system = _system("pso")

    def writer_edges(system):
        # t1 is thread "1:1": writes c (via read), then x, then y.
        return {
            (a[1], b[1]) for a, b in system.thread_order.get("1:1", [])
        }

    sc_edges = _closure(writer_edges(sc_system))
    pso_edges = _closure(writer_edges(pso_system))
    # SC totally orders the writer's SAPs; PSO has strictly fewer orderings.
    assert pso_edges < sc_edges
    # Find the two different-address data writes (x and y).
    writes = [
        sap
        for sap in pso_system.summaries["1:1"].saps
        if sap.is_write and sap.addr in (("x",), ("y",))
    ]
    assert len(writes) == 2
    a, b = writes[0].index, writes[1].index
    assert (a, b) not in pso_edges and (b, a) not in pso_edges, (
        "PSO must leave the x/y writes unordered"
    )


def _closure(edges):
    nodes = {n for e in edges for n in e}
    adj = {n: set() for n in nodes}
    for a, b in edges:
        adj[a].add(b)
    out = set()
    for start in nodes:
        stack = [start]
        seen = set()
        while stack:
            node = stack.pop()
            for nxt in adj[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        out |= {(start, x) for x in seen}
    return out
