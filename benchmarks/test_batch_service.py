"""The durable-store round trip over the paper's Table-1 suite.

Every benchmark is recorded into a trace corpus (streaming ``.clap``
write), then reproduced by the batch service **from disk alone** — the
in-memory recording is gone by the time the worker pool runs, so this is
the paper's scenario of analyzing a production failure after the fact.

Shape assertions: all 11 entries verify clean, and the batch reports
``reproduced`` for every one.  The rendered per-job table (solve times,
context switches, SAT counters) lands in ``results/batch_service.txt``.
"""

import pytest

from repro.bench.programs import TABLE1_NAMES, get_benchmark
from repro.core.clap import ClapConfig
from repro.service import format_batch_table, run_batch
from repro.store import Corpus

from conftest import emit


@pytest.fixture(scope="module")
def corpus_root(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("table1_corpus"))
    corpus = Corpus.create(root)
    for name in TABLE1_NAMES:
        bench = get_benchmark(name)
        corpus.add(
            bench.source,
            name=name,
            config=ClapConfig(**bench.config_kwargs()),
        )
    return root


def test_corpus_holds_all_benchmarks(corpus_root):
    corpus = Corpus.open(corpus_root)
    programs = sorted(e.program_name() for e in corpus.entries())
    assert programs == sorted(TABLE1_NAMES)
    for entry in corpus.entries():
        ok, problems = entry.verify()
        assert ok, "%s: %s" % (entry.entry_id, problems)


def test_batch_reproduces_table1_from_disk(corpus_root):
    results, aggregate = run_batch(corpus_root, jobs=2, timeout=600.0)
    emit("batch_service.txt", format_batch_table(results, aggregate))
    failed = [
        "%s: %s (%s)" % (r.entry_id, r.status, r.reason)
        for r in results
        if not r.ok
    ]
    assert not failed, failed
    assert aggregate["reproduced"] == len(TABLE1_NAMES)
    # The offline phase reuses the recorded schedule parameters, so the
    # solve-time profile should match Table 1: every job under a minute.
    assert aggregate["max_solve_time"] < 60.0
