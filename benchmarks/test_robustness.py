"""Weak-memory robustness benchmark: SR4xx witness search on the
litmus examples, and the fence-inference round trip.

Three gates, matching the paper-reproduction acceptance criteria:

* ``dekker`` (and the store-buffering litmus) must yield a
  replay-validated SR401 witness under ``--memory-model tso`` — a
  weak-memory failure that cannot exist under SC (the robustness pass
  emits no SR4xx predicate at all for ``sc``);
* ``pso_reorder`` (message passing) must yield a witness only under
  PSO: its store->store cycle is invisible to TSO's FIFO buffer;
* every ``*_fenced`` variant — the SR403-inferred placements — must
  yield zero SR4xx targets and zero witnesses under both TSO and PSO.

Machine-readable results land in ``results/BENCH_robustness.json``
(uploaded by the CI ``explore-weak`` job).
"""

import json
import os
import time

from conftest import emit

from repro.core.explore import ExploreConfig, explore_program

ROOT = os.path.join(os.path.dirname(__file__), "..")

# Generous CI budget: the searches take a few seconds locally.
MAX_SECONDS_PER_CASE = 120.0

WEAK_CODES = ("SR401", "SR402")

_PAYLOAD = {"cases": {}}


def _source(name):
    path = os.path.join(ROOT, "examples", "minilang", name + ".ml")
    with open(path) as fh:
        return fh.read()


def _explore(name, model):
    t0 = time.monotonic()
    report = explore_program(
        _source(name),
        ExploreConfig(memory_model=model, max_seeds=32, codes=WEAK_CODES),
        name=name,
    )
    wall = time.monotonic() - t0
    assert wall <= MAX_SECONDS_PER_CASE, (name, model, wall)
    witnesses = [t for t in report.targets if t.found]
    _PAYLOAD["cases"]["%s.%s" % (name, model)] = {
        "memory_model": model,
        "n_targets": len(report.targets),
        "n_witnesses": len(witnesses),
        "wall_seconds": round(wall, 4),
        "witnesses": [
            {
                "code": t.code,
                "var": t.var,
                "memory_model": t.memory_model,
                "replay_validated": t.replay_validated,
                "bound": t.bound,
                "schedule_length": len(t.schedule),
            }
            for t in witnesses
        ],
    }
    return report, witnesses


def test_weak_memory_witnesses_and_fences():
    rows = []

    # Gate 1: dekker and the SB litmus break under TSO with a
    # replay-validated witness; the predicate is TSO-only by
    # construction (no SR4xx finding exists under sc).
    for name in ("dekker", "store_buffer"):
        report, witnesses = _explore(name, "tso")
        assert report.targets, "%s: no SR4xx targets under tso" % name
        assert witnesses, "%s: no weak-memory witness under tso" % name
        for t in witnesses:
            assert t.code == "SR401", (name, t.code)
            assert t.memory_model == "tso", (name, t.memory_model)
            assert t.replay_validated, name
        rows.append(
            "%-22s tso  %d/%d witnesses" % (name, len(witnesses), len(report.targets))
        )

    # Gate 2: message passing is TSO-robust — zero SR4xx targets under
    # tso — but yields an SR402 witness under pso.
    report, witnesses = _explore("pso_reorder", "tso")
    assert not report.targets, "pso_reorder: unexpected SR4xx targets under tso"
    rows.append("%-22s tso  robust (0 targets)" % "pso_reorder")
    report, witnesses = _explore("pso_reorder", "pso")
    assert witnesses, "pso_reorder: no witness under pso"
    for t in witnesses:
        assert t.code == "SR402", t.code
        assert t.memory_model == "pso", t.memory_model
        assert t.replay_validated
    rows.append(
        "%-22s pso  %d/%d witnesses"
        % ("pso_reorder", len(witnesses), len(report.targets))
    )

    # Gate 3: the fenced variants are robust — zero SR4xx targets and
    # therefore zero witnesses — under both weak models.
    for name in (
        "dekker_fenced",
        "peterson_fenced",
        "store_buffer_fenced",
        "pso_reorder_fenced",
    ):
        for model in ("tso", "pso"):
            report, witnesses = _explore(name, model)
            assert not report.targets, (
                "%s: fence placement left SR4xx targets under %s" % (name, model)
            )
            assert not witnesses, (name, model)
            rows.append("%-22s %-4s robust (0 targets)" % (name, model))

    header = (
        "weak-memory robustness gates (SR4xx explore + fence round trip)\n"
        "%-22s %-4s result" % ("program", "mm")
    )
    emit("robustness_bench.txt", header + "\n" + "\n".join(rows))

    results_dir = os.path.join(ROOT, "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, "BENCH_robustness.json")
    with open(path, "w") as fh:
        json.dump(_PAYLOAD, fh, indent=2)
        fh.write("\n")
    print("[saved to %s]" % path)
