"""Figure 5 — synchronization constraints restrict reads-from mappings.

The paper's Figure 5 shows two situations:

* a read inside one lock region cannot return a write that is *between*
  two writes of another region of the same lock (the locking constraints
  forbid interleaving the regions);
* fork/join order makes some writes invisible to reads that happen-before
  them (the partial-order constraints).

We build both programs, enumerate every solver solution's reads-from
mapping, and check the forbidden mappings never occur.
"""

from repro.core.clap import ClapConfig, ClapPipeline
from repro.solver.smt import ClapSmtSolver
from repro.constraints.model import RFChoice

from conftest import emit

LOCK_SRC = """
int v = 0;
int sink = 0;
mutex m;

void reader() {
    lock(m);
    int r = v;
    sink = r;
    unlock(m);
}

void writer() {
    lock(m);
    v = 1;
    v = 2;
    unlock(m);
}

int main() {
    int a = 0;
    int b = 0;
    a = spawn reader();
    b = spawn writer();
    join(a);
    join(b);
    assert(sink != 1);
    return 0;
}
"""

FORK_SRC = """
int v = 0;
int first = 0;
int second = 0;

void child() {
    v = 10;
    v = 20;
}

int main() {
    int r1 = v;
    first = r1;
    int t = 0;
    t = spawn child();
    join(t);
    int r2 = v;
    second = r2;
    assert(second == 0);
    return 0;
}
"""


def _all_rf_solutions(pipeline, recorded, limit=64):
    """Enumerate reads-from maps over all solver solutions."""
    system = pipeline.analyze(recorded)
    solver = ClapSmtSolver(system)
    solutions = []
    while len(solutions) < limit:
        result = solver.solve()
        if not result.ok:
            break
        solutions.append(dict(result.reads_from))
        # Block this reads-from combination.
        lits = []
        for read_uid, source in result.reads_from.items():
            src = source if source != "<init>" else "<init>"
            var = solver.atom_var.get(RFChoice(read_uid, src))
            if var is not None:
                lits.append(-var)
        if not lits:
            break
        solver.sat.add_clause(lits)
    return system, solutions


def test_fig5_lock_regions_restrict_reads(benchmark):
    pipeline = ClapPipeline(LOCK_SRC, ClapConfig(stickiness=0.3))

    def sweep():
        # sink == 1 requires reading v *between* the writer's two writes —
        # but both accesses sit in regions of the same lock, so it can
        # never happen: no seed may record the failure.
        for seed in range(300):
            candidate = pipeline.record_once(seed)
            if candidate.bug is not None:
                return candidate
        return None

    found = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert found is None, "lock regions must make sink==1 unreachable"
    emit(
        "fig5_lock.txt",
        "figure 5 (locking): 300 seeds, the read never landed between the\n"
        "writer's two same-lock writes — mutual exclusion holds.",
    )


def test_fig5_fork_join_restrict_reads(benchmark):
    pipeline = ClapPipeline(FORK_SRC, ClapConfig(stickiness=0.3, record_candidates=1))

    def once():
        recorded = pipeline.record()
        return _all_rf_solutions(pipeline, recorded)

    system, solutions = benchmark.pedantic(once, rounds=1, iterations=1)
    assert solutions, "the fork/join bug must be solvable"
    reads = {
        uid: sap for uid, sap in system.saps.items() if sap.is_read
    }
    # r1 (before the fork) may only read the initial value; r2 (after the
    # join) may only read the child's writes.
    r1 = min(u for u, s in reads.items() if s.addr == ("v",))
    writes_of_child = {
        u for u, s in system.saps.items() if s.is_write and s.addr == ("v",)
    }
    for rf in solutions:
        assert rf[r1] == "<init>", "pre-fork read saw a child write"
    lines = ["figure 5 (fork/join): %d distinct solutions enumerated" % len(solutions)]
    lines.append("pre-fork read always maps to <init>; child writes ordered by join.")
    emit("fig5_forkjoin.txt", "\n".join(lines))
