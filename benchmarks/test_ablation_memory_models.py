"""Ablation — memory-model parameterization of Fmo (paper Section 3.2).

The mutual-exclusion trio (bakery, dekker, peterson) is correct under SC
and broken under TSO/PSO.  The constraint system must reflect that:

* the failure recorded under TSO/PSO is *reproducible* with the matching
  Fmo;
* re-encoding the *same* recorded paths with the SC memory order makes
  the constraints unsatisfiable — the bug cannot be explained under SC,
  exactly the soundness property Theorem 1 gives the models.

Also reports the Fmo edge counts per model: SC total order > TSO > PSO.
"""

import pytest

from repro.constraints.encoder import encode
from repro.solver.smt import solve_constraints

from conftest import emit, pipeline_artifacts

CASES = ["dekker", "peterson"]
_RESULTS = {}


@pytest.mark.parametrize("name", CASES)
def test_relaxed_bug_unsat_under_sc_order(benchmark, name):
    bench, pipeline, recorded, system = pipeline_artifacts(name)
    assert bench.memory_model == "tso"

    def once():
        relaxed = solve_constraints(system, max_seconds=120)
        sc_system = encode(
            system.summaries, "sc", pipeline.program.symbols, pipeline.shared
        )
        sc_result = solve_constraints(sc_system, max_seconds=120)
        return relaxed, sc_result, sc_system

    relaxed, sc_result, sc_system = benchmark.pedantic(
        once, rounds=1, iterations=1
    )
    _RESULTS[name] = (system, relaxed, sc_system, sc_result)
    assert relaxed.ok, "TSO encoding must reproduce the TSO failure"
    assert not sc_result.ok and sc_result.reason == "unsatisfiable", (
        "the same trace must be inexplicable under SC"
    )


def test_ablation_render(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        "Ablation: Fmo parameterized by memory model",
        "%-10s %14s %16s %18s" % ("program", "TSO solvable", "SC solvable", "Fmo edges TSO/SC"),
    ]
    for name, (tso_system, relaxed, sc_system, sc_result) in _RESULTS.items():
        lines.append(
            "%-10s %14s %16s %11d / %d"
            % (
                name,
                "yes" if relaxed.ok else "no",
                "yes" if sc_result.ok else "no (unsat)",
                len(tso_system.hard_edges),
                len(sc_system.hard_edges),
            )
        )
    emit("ablation_memory_models.txt", "\n".join(lines))
