"""Ablation — checkpointing (the paper's Section 6.4 plan, implemented).

"For very long runs ... we need to break up the execution so that each
execution segment has tractable size of constraints."  This ablation
scales a long-warm-up program and compares constraint-system size and
solve time for whole-trace CLAP vs checkpointed-suffix CLAP.

Expected shape: the whole-trace system grows linearly with the warm-up
length while the suffix system stays flat; both reproduce the failure.
"""

import pytest

from repro.core.checkpoint import CheckpointClapPipeline
from repro.core.clap import ClapConfig, ClapPipeline
from repro.minilang import compile_source
from repro.solver.smt import solve_constraints

from conftest import emit

TEMPLATE = """
int warmup = 0;
int c = 0;
void worker(int n) {
    for (int i = 0; i < n; i++) {
        int w = warmup;
        warmup = w + 1;
    }
    int r = c;
    yield;
    c = r + 1;
}
int main() {
    int t1 = 0;
    int t2 = 0;
    t1 = spawn worker(%d);
    t2 = spawn worker(%d);
    join(t1);
    join(t2);
    assert(c == 2);
    return 0;
}
"""

WARMUPS = (10, 30, 60)
_ROWS = []


@pytest.mark.parametrize("warmup", WARMUPS)
def test_checkpoint_bounds_constraint_growth(benchmark, warmup):
    program = compile_source(TEMPLATE % (warmup, warmup), name="warmup%d" % warmup)
    config = ClapConfig(stickiness=0.35)

    def once():
        full = ClapPipeline(program, config)
        full_rec = full.record()
        full_system = full.analyze(full_rec)
        full_solved = solve_constraints(full_system, max_seconds=120)

        cp = CheckpointClapPipeline(program, config, interval_steps=150)
        cp_rec = cp.record()
        cp_system = cp.analyze(cp_rec)
        cp_solved = cp.solve(cp_system)
        reproduced = False
        if cp_solved.ok:
            outcome = cp.replay(
                cp_solved.schedule, cp_rec.bug, checkpoint=cp_rec.checkpoint
            )
            reproduced = outcome.reproduced
        return (
            warmup,
            len(full_system.saps),
            full_solved.solve_time,
            cp_rec.n_checkpoints,
            len(cp_system.saps),
            cp_solved.solve_time,
            reproduced,
        )

    row = benchmark.pedantic(once, rounds=1, iterations=1)
    _ROWS.append(row)
    assert row[6], "checkpointed suffix must still reproduce the failure"
    if row[3] >= 1:
        assert row[4] < row[1], "suffix must be smaller than the full trace"


def test_ablation_render(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        "Ablation: checkpointing (Section 6.4)",
        "%-8s %12s %12s %8s %12s %12s %6s"
        % ("warmup", "full SAPs", "full t(s)", "#cps", "suffix SAPs", "suffix t(s)", "ok"),
    ]
    for (w, fs, ft, ncp, ss, st, ok) in sorted(_ROWS):
        lines.append(
            "%-8d %12d %12.2f %8d %12d %12.2f %6s"
            % (w, fs, ft, ncp, ss, st, "Y" if ok else "N")
        )
    emit("ablation_checkpoint.txt", "\n".join(lines))
    # Growth shape: full grows with warmup, suffix stays roughly flat.
    rows = sorted(_ROWS)
    if len(rows) >= 2 and rows[0][3] >= 1 and rows[-1][3] >= 1:
        full_growth = rows[-1][1] / max(rows[0][1], 1)
        suffix_growth = rows[-1][4] / max(rows[0][4], 1)
        assert suffix_growth < full_growth
