"""Frw pruning ablation: raw vs HB-closed vs HB-closed + static rules.

Writes ``results/static_prune.txt`` and asserts the headline claims:

* pruning never changes satisfiability, and the pruned schedule still
  reproduces the recorded failure;
* relative to the raw (``hb=False``) encoding, pruning removes strictly
  more than zero rf choice variables on the lock-based benchmarks (bbuf,
  pfscan, pbzip2, apache).  The unconditional happens-before closure now
  subsumes the static candidate pruning on these entries (static-only
  columns show the residue, which may be zero), so the acceptance bar is
  stated against the raw encoding.
"""

from conftest import pipeline_artifacts, emit

from repro.analysis.static_race import compute_prune_info
from repro.bench.programs import TABLE1_NAMES
from repro.constraints.encoder import encode
from repro.constraints.stats import compute_stats
from repro.solver.smt import solve_constraints

LOCK_BASED = ["pbzip2", "bbuf", "pfscan", "apache"]

HEADER = (
    "Frw pruning: raw -> hb closure -> hb closure + static rules\n"
    "%-10s %8s %8s %8s %8s %8s %8s  %s"
    % (
        "program",
        "raw",
        "hb",
        "hb+st",
        "pruned",
        "clauses",
        "-claus",
        "reproduced",
    )
)


def _compare(name):
    bench, pipeline, recorded, _system = pipeline_artifacts(name)
    info = compute_prune_info(pipeline.program)
    from repro.analysis.symexec import execute_recorded_paths
    from repro.tracing.decoder import decode_log

    summaries = execute_recorded_paths(
        pipeline.program,
        decode_log(recorded.recorder),
        pipeline.shared,
        bug=recorded.bug,
    )
    mm = pipeline.config.memory_model
    args = (summaries, mm, pipeline.program.symbols, pipeline.shared)
    raw = encode(*args, hb=False)
    base = encode(*args)
    pruned = encode(*args, prune=info)
    return raw, base, pruned, pipeline, recorded


def test_static_prune_table():
    lines = [HEADER]
    pruned_counts = {}
    for name in TABLE1_NAMES:
        raw, base, pruned, pipeline, recorded = _compare(name)
        sraw = compute_stats(raw)
        sb = compute_stats(base)
        sp = compute_stats(pruned)
        # Prune counters are always totals relative to the raw encoding.
        assert sraw.n_choice_vars - sb.n_choice_vars == sb.n_pruned_choice_vars
        assert sraw.n_choice_vars - sp.n_choice_vars == sp.n_pruned_choice_vars

        solved = solve_constraints(pruned)
        assert solved.ok, name
        outcome = pipeline.replay(solved.schedule, recorded.bug)
        assert outcome.reproduced, name

        pruned_counts[name] = sp.n_pruned_choice_vars
        lines.append(
            "%-10s %8d %8d %8d %8d %8d %8d  %s"
            % (
                name,
                sraw.n_choice_vars,
                sb.n_choice_vars,
                sp.n_choice_vars,
                sp.n_pruned_choice_vars,
                sp.n_clauses,
                sraw.n_clauses - sp.n_clauses,
                "yes" if outcome.reproduced else "NO",
            )
        )
    emit("static_prune.txt", "\n".join(lines))

    for name in LOCK_BASED:
        assert pruned_counts[name] > 0, (
            "%s: pruning removed no rw-order variables" % name
        )
