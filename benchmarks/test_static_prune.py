"""Static-prune ablation: constraint counts before/after, per benchmark.

Writes ``results/static_prune.txt`` and asserts the headline claims:

* pruning never changes satisfiability, and the pruned schedule still
  reproduces the recorded failure;
* on the lock-based benchmarks (bbuf, pfscan, pbzip2, apache) pruning
  removes strictly more than zero rf choice variables — the acceptance
  criterion for feeding the static analysis into Frw.
"""

from conftest import pipeline_artifacts, emit

from repro.analysis.static_race import compute_prune_info
from repro.bench.programs import TABLE1_NAMES
from repro.constraints.encoder import encode
from repro.constraints.stats import compute_stats
from repro.solver.smt import solve_constraints

LOCK_BASED = ["pbzip2", "bbuf", "pfscan", "apache"]

HEADER = (
    "Static pruning of Frw (repro analyze feeding the encoder)\n"
    "%-10s %8s %8s %8s %8s %8s %8s  %s"
    % (
        "program",
        "choice",
        "choice'",
        "pruned",
        "clauses",
        "clauses'",
        "-claus",
        "reproduced",
    )
)


def _compare(name):
    bench, pipeline, recorded, base = pipeline_artifacts(name)
    info = compute_prune_info(pipeline.program)
    from repro.analysis.symexec import execute_recorded_paths
    from repro.tracing.decoder import decode_log

    summaries = execute_recorded_paths(
        pipeline.program,
        decode_log(recorded.recorder),
        pipeline.shared,
        bug=recorded.bug,
    )
    pruned = encode(
        summaries,
        pipeline.config.memory_model,
        pipeline.program.symbols,
        pipeline.shared,
        prune=info,
    )
    return base, pruned, pipeline, recorded


def test_static_prune_table():
    lines = [HEADER]
    pruned_counts = {}
    for name in TABLE1_NAMES:
        base, pruned, pipeline, recorded = _compare(name)
        sb, sp = compute_stats(base), compute_stats(pruned)
        assert sb.n_choice_vars - sp.n_choice_vars == sp.n_pruned_choice_vars

        solved = solve_constraints(pruned)
        assert solved.ok, name
        outcome = pipeline.replay(solved.schedule, recorded.bug)
        assert outcome.reproduced, name

        pruned_counts[name] = sp.n_pruned_choice_vars
        lines.append(
            "%-10s %8d %8d %8d %8d %8d %8d  %s"
            % (
                name,
                sb.n_choice_vars,
                sp.n_choice_vars,
                sp.n_pruned_choice_vars,
                sb.n_clauses,
                sp.n_clauses,
                sb.n_clauses - sp.n_clauses,
                "yes" if outcome.reproduced else "NO",
            )
        )
    emit("static_prune.txt", "\n".join(lines))

    for name in LOCK_BASED:
        assert pruned_counts[name] > 0, (
            "%s: static pruning removed no rw-order variables" % name
        )
