"""Table 1 — CLAP bug-reproduction effectiveness.

Regenerates the paper's Table 1: for each of the 11 benchmarks, run the
full pipeline (record -> symbolic analysis -> constraint solving ->
deterministic replay) and report the trace/constraint statistics, the
solving times, the context-switch count of the computed schedule, and
whether the failure was reproduced.

Paper's expected shape: success on every row, computed schedules with few
preemptive context switches (racey is the designed outlier), symbolic
time and solve time growing with #SAPs.
"""

import pytest

from repro.bench.harness import format_table1, run_table1_row
from repro.bench.programs import TABLE1_NAMES, get_benchmark
from repro.core.minimal_cs import minimize_context_switches

from conftest import emit, pipeline_artifacts

_ROWS = {}


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_table1_row(benchmark, name):
    bench = get_benchmark(name)

    def once():
        return run_table1_row(bench, solver="smt")

    row = benchmark.pedantic(once, rounds=1, iterations=1)
    assert row.success == "Y", "%s: %s" % (name, row.note)
    _ROWS[name] = row


def test_table1_render(benchmark):
    missing = [n for n in TABLE1_NAMES if n not in _ROWS]
    assert not missing, "rows missing (run the whole module): %s" % missing
    rows = [_ROWS[n] for n in TABLE1_NAMES]
    benchmark.pedantic(lambda: format_table1(rows), rounds=1, iterations=1)
    emit("table1.txt", format_table1(rows))
    # Shape assertions from the paper:
    # every bug reproduced,
    assert all(r.success == "Y" for r in rows)
    # real programs need few context switches (racey may be the outlier).
    ordinary = [r for r in rows if r.program != "racey"]
    assert all(0 <= r.n_cs <= 6 for r in ordinary)
