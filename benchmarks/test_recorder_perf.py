"""Flight-recorder performance and reproduction gates.

Three sections, rendered to ``results/recorder_bench.txt`` and
machine-readable as ``results/BENCH_recorder.json`` (uploaded by the CI
``recorder`` job):

* **fast_path** — the fast-path encoder vs the reference recorder on a
  captured hook-event tape.  Full interpreter wall clock is dominated by
  interpretation, so the recorders replay the identical event stream
  (Table-2 programs at production scale) and only the hook bodies are
  timed.  The CI gate fails when the aggregate speedup drops below
  ``GATE_MIN_SPEEDUP``; both recorders must produce identical token
  streams and op counts.
* **table1_ring** — every Table-1 bug recorded through the ring pipeline
  with a full budget (nothing evicted) must still reproduce offline.
* **eviction** — the ``flight`` benchmark under shrinking budgets: small
  rings must genuinely evict the loop prefix and the bug must still
  reproduce from the suffix via prefix synthesis (the tentpole gate:
  at least one reproduction from an evicted log).
"""

import json
import os
import time
from types import SimpleNamespace

from repro.bench.programs import TABLE1_NAMES, TABLE2_NAMES, get_benchmark
from repro.core.clap import ClapConfig, ClapPipeline
from repro.runtime.interpreter import Interpreter
from repro.runtime.scheduler import RandomScheduler
from repro.tracing.recorder import FastPathRecorder, PathRecorder

from conftest import emit

# Measured headroom: the fast path lands 1.2-1.4x on the replay
# microbenchmark (min-of-5 batches); 1.05x tolerates noisy runners.
GATE_MIN_SPEEDUP = 1.05
REPLAY_REPEATS = 10
REPLAY_ROUNDS = 5

# Production-scale parameterizations: long enough that hook costs
# dominate the replay, same programs as Table 2.
FASTPATH_PARAMS = {
    "sim_race": {"workers": 4, "iters": 400},
    "bbuf": {"producers": 2, "consumers": 2, "items_each": 80},
    "swarm": {"cells": 256},
    "pbzip2": {"consumers": 2, "items": 150},
    "aget": {"workers": 3, "chunks": 300},
    "pfscan": {"workers": 2, "chunk": 512, "unroll": 4},
    "apache": {"listeners": 2, "workers": 2, "requests_each": 100},
    "racey": {"loops": 600, "cells": 16},
}

FULL_RING = dict(ring_bytes=1 << 20, ring_segment_bytes=256)
# flight at iters=10 overflows a 40-byte ring by ~27 tokens per worker.
EVICTION_RINGS = ((40, 16), (64, 16), (1 << 20, 256))

_PAYLOAD = {}


class HookTape:
    """Capture one run's control-flow hook events for offline replay."""

    def __init__(self):
        self.events = []

    def on_thread_start(self, thread):
        self.events.append(("on_thread_start", thread.name))

    def on_enter(self, thread, func_name):
        self.events.append(("on_enter", thread.name, func_name))

    def on_edge(self, thread, func_name, src, dst):
        self.events.append(("on_edge", thread.name, func_name, src, dst))

    def on_exit(self, thread, func_name, exit_block):
        self.events.append(("on_exit", thread.name, func_name, exit_block))


def _capture(bench, program, seed=0):
    tape = HookTape()
    interp = Interpreter(
        program,
        memory_model=bench.memory_model,
        scheduler=RandomScheduler(
            seed, stickiness=bench.stickiness, flush_prob=bench.flush_prob
        ),
        hooks=[tape],
        max_steps=bench.max_steps,
        collect_events=False,
    )
    interp.run()
    return tape.events, interp


def _replay(recorder, events):
    # Fresh thread stand-ins each replay: the fast recorder's identity
    # cache keys on the thread object, and real threads start only once.
    fakes = {e[1]: SimpleNamespace(name=e[1]) for e in events}
    t0 = time.perf_counter()
    for ev in events:
        kind = ev[0]
        if kind == "on_edge":
            recorder.on_edge(fakes[ev[1]], ev[2], ev[3], ev[4])
        elif kind == "on_enter":
            recorder.on_enter(fakes[ev[1]], ev[2])
        elif kind == "on_exit":
            recorder.on_exit(fakes[ev[1]], ev[2], ev[3])
        else:
            recorder.on_thread_start(fakes[ev[1]])
    return time.perf_counter() - t0


def test_fast_path_speedup():
    rows = []
    total_classic = total_fast = 0.0
    for name in TABLE2_NAMES:
        bench = get_benchmark(name, **FASTPATH_PARAMS[name])
        program = bench.compile()
        events, interp = _capture(bench, program)
        # Equivalence on one clean replay (op counters accumulate across
        # replays, so the timed multi-replay recorders can't be compared).
        classic = PathRecorder(program)
        fast = FastPathRecorder(program)
        _replay(classic, events)
        _replay(fast, events)
        classic.finalize(interp)
        fast.finalize(interp)
        assert classic.logs == fast.logs, name
        assert classic.instrumentation_ops == fast.instrumentation_ops, name
        classic_times, fast_times = [], []
        for _ in range(REPLAY_ROUNDS):
            classic = PathRecorder(program)
            fast = FastPathRecorder(program)
            classic_times.append(
                sum(_replay(classic, events) for _ in range(REPLAY_REPEATS))
            )
            fast_times.append(
                sum(_replay(fast, events) for _ in range(REPLAY_REPEATS))
            )
        wc, wf = min(classic_times), min(fast_times)
        total_classic += wc
        total_fast += wf
        rows.append(
            {
                "name": name,
                "events": len(events),
                "classic_ms": round(wc * 1000, 3),
                "fast_ms": round(wf * 1000, 3),
                "speedup": round(wc / wf, 2),
            }
        )
    speedup = total_classic / total_fast
    _PAYLOAD["fast_path"] = {
        "replay_repeats": REPLAY_REPEATS,
        "rounds": REPLAY_ROUNDS,
        "gate_min_speedup": GATE_MIN_SPEEDUP,
        "total_classic_ms": round(total_classic * 1000, 3),
        "total_fast_ms": round(total_fast * 1000, 3),
        "speedup": round(speedup, 2),
        "rows": rows,
    }
    assert total_fast < total_classic, (
        "fast-path recorder slower than reference: %.1fms vs %.1fms"
        % (total_fast * 1000, total_classic * 1000)
    )
    assert speedup >= GATE_MIN_SPEEDUP, (
        "fast-path speedup %.2fx below %.2fx gate"
        % (speedup, GATE_MIN_SPEEDUP)
    )


def _ring_reproduce(bench, **ring_kw):
    """Record through the ring pipeline and reproduce offline."""
    kw = bench.config_kwargs()
    kw.update(ring_kw)
    pipeline = ClapPipeline(bench.compile(), ClapConfig(**kw))
    recorded = pipeline.record()
    assert recorded is not None, "%s: bug did not trigger" % bench.name
    t0 = time.monotonic()
    report = pipeline.reproduce_offline(recorded)
    return recorded, report, time.monotonic() - t0


def test_table1_through_full_ring():
    """Full-budget rings are lossless: all Table-1 bugs reproduce."""
    rows = []
    for name in TABLE1_NAMES:
        bench = get_benchmark(name)
        recorded, report, seconds = _ring_reproduce(bench, **FULL_RING)
        assert not recorded.lossy, name
        assert report.reproduced, name
        assert report.recorder_metrics["segments_evicted"] == 0, name
        rows.append(
            {
                "name": name,
                "reproduced": report.reproduced,
                "segments_written": report.recorder_metrics[
                    "segments_written"
                ],
                "bytes_retained": report.recorder_metrics["bytes_retained"],
                "offline_seconds": round(seconds, 3),
            }
        )
    _PAYLOAD["table1_ring"] = {"ring": FULL_RING, "rows": rows}


def test_reproduction_from_evicted_suffix():
    """The tentpole gate: shrink the ring until the loop prefix is
    genuinely evicted and reproduce from the suffix alone."""
    bench = get_benchmark("flight", iters=10)
    rows = []
    evicted_reproductions = 0
    for ring_bytes, segment_bytes in EVICTION_RINGS:
        recorded, report, seconds = _ring_reproduce(
            bench, ring_bytes=ring_bytes, ring_segment_bytes=segment_bytes
        )
        metrics = report.recorder_metrics
        evicted = sum(
            t["evicted_tokens"] for t in metrics["threads"].values()
        )
        assert report.reproduced, "ring=%d" % ring_bytes
        if recorded.lossy:
            assert evicted > 0
            assert report.synthesis, "lossy run must synthesize"
            assert all(
                t["residual_tokens"] == 0
                for t in report.synthesis.values()
            )
            evicted_reproductions += 1
        rows.append(
            {
                "ring_bytes": ring_bytes,
                "segment_bytes": segment_bytes,
                "lossy": recorded.lossy,
                "evicted_tokens": evicted,
                "bytes_retained": metrics["bytes_retained"],
                "bytes_total": metrics["bytes_total"],
                "synth_blocks": sum(
                    t["synth_blocks"] for t in report.synthesis.values()
                ),
                "reproduced": report.reproduced,
                "offline_seconds": round(seconds, 3),
            }
        )
    _PAYLOAD["eviction"] = {
        "benchmark": "flight",
        "iters": 10,
        "evicted_reproductions": evicted_reproductions,
        "rows": rows,
    }
    assert evicted_reproductions >= 1, (
        "no reproduction from a genuinely evicted log"
    )


def test_recorder_render():
    missing = [
        k for k in ("fast_path", "table1_ring", "eviction") if k not in _PAYLOAD
    ]
    assert not missing, "sections missing (run the whole module): %s" % missing

    fp = _PAYLOAD["fast_path"]
    lines = [
        "Flight recorder: fast-path encoder + ring reproduction",
        "",
        "fast path (hook-tape replay x%d, min of %d rounds)"
        % (fp["replay_repeats"], fp["rounds"]),
        "%-10s %8s %12s %12s %8s"
        % ("program", "events", "classic (ms)", "fast (ms)", "speedup"),
    ]
    for r in fp["rows"]:
        lines.append(
            "%-10s %8d %12.2f %12.2f %7.2fx"
            % (r["name"], r["events"], r["classic_ms"], r["fast_ms"], r["speedup"])
        )
    lines.append(
        "%-10s %8s %12.2f %12.2f %7.2fx  (gate >= %.2fx)"
        % (
            "TOTAL",
            "",
            fp["total_classic_ms"],
            fp["total_fast_ms"],
            fp["speedup"],
            fp["gate_min_speedup"],
        )
    )
    lines += [
        "",
        "table 1 through full-budget ring (lossless)",
        "%-10s %9s %10s %9s  %s"
        % ("program", "segments", "retained", "offl (s)", "repro"),
    ]
    for r in _PAYLOAD["table1_ring"]["rows"]:
        lines.append(
            "%-10s %9d %9dB %9.2f  %s"
            % (
                r["name"],
                r["segments_written"],
                r["bytes_retained"],
                r["offline_seconds"],
                "yes" if r["reproduced"] else "NO",
            )
        )
    lines += [
        "",
        "reproduction from evicted suffix (flight, iters=10)",
        "%9s %8s %8s %10s %7s %7s  %s"
        % ("ring", "evicted", "synth", "retained", "lossy", "offl", "repro"),
    ]
    for r in _PAYLOAD["eviction"]["rows"]:
        ring = (
            "%dB" % r["ring_bytes"]
            if r["ring_bytes"] < 1 << 16
            else "unbounded"
        )
        lines.append(
            "%9s %8d %8d %5d/%-4d %7s %6.2fs  %s"
            % (
                ring,
                r["evicted_tokens"],
                r["synth_blocks"],
                r["bytes_retained"],
                r["bytes_total"],
                "yes" if r["lossy"] else "no",
                r["offline_seconds"],
                "yes" if r["reproduced"] else "NO",
            )
        )
    emit("recorder_bench.txt", "\n".join(lines))

    results_dir = os.path.join(os.path.dirname(__file__), "..", "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, "BENCH_recorder.json")
    with open(path, "w") as fh:
        json.dump(_PAYLOAD, fh, indent=2)
        fh.write("\n")
    print("[saved to %s]" % path)
