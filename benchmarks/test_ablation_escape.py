"""Ablation — static shared-access analysis (paper Section 5).

"Identifying shared data accesses is orthogonal to our approach but
important for reducing the size of the constraints."  This ablation
encodes the same recorded executions twice: with the escape analysis
(only inferred-shared variables become SAPs) and without it (every data
global becomes a SAP, the naive fallback the paper describes), and
compares SAP and constraint counts.
"""

import pytest

from repro.analysis.symexec import execute_recorded_paths
from repro.bench.programs import BenchProgram, get_benchmark
from repro.constraints.encoder import encode
from repro.constraints.stats import compute_stats
from repro.core.clap import ClapConfig, ClapPipeline
from repro.tracing.decoder import decode_log

from conftest import emit

# A program with substantial genuinely-private state: a single collector
# thread with its own scratch table, and main-only configuration — the
# kind of variables Locksmith proves thread-local so CLAP need not encode.
PRIVATE_HEAVY_SRC = """
int results = 0;
int scratch_a[12];
int scratch_b[12];
int config_a = 3;
int config_b = 7;

void collector_a(int rounds) {
    int acc = 0;
    for (int r = 0; r < rounds; r++) {
        for (int i = 0; i < 12; i++) { scratch_a[i] = scratch_a[i] + r + 1; }
        for (int i = 0; i < 12; i++) { acc = acc + scratch_a[i]; }
    }
    int v = results;
    yield;
    results = v + 1;
}

void collector_b(int rounds) {
    int acc = 0;
    for (int r = 0; r < rounds; r++) {
        for (int i = 0; i < 12; i++) { scratch_b[i] = scratch_b[i] + r + 2; }
        for (int i = 0; i < 12; i++) { acc = acc + scratch_b[i]; }
    }
    int v = results;
    yield;
    results = v + 1;
}

int main() {
    int bias = config_a * config_b;
    int t1 = 0;
    int t2 = 0;
    t1 = spawn collector_a(2);
    t2 = spawn collector_b(2);
    join(t1);
    join(t2);
    assert(results == 2);
    return 0;
}
"""


def _cases():
    cases = {name: get_benchmark(name) for name in ("pbzip2", "swarm", "pfscan")}
    cases["private"] = BenchProgram(
        name="private",
        source=PRIVATE_HEAVY_SRC,
        description="private scratch table + main-only config",
        stickiness=0.4,
    )
    return cases


CASES = ["pbzip2", "swarm", "pfscan", "private"]
_RESULTS = {}


def _encode_with(pipeline, recorded, shared):
    summaries = execute_recorded_paths(
        pipeline.program, decode_log(recorded.recorder), shared, bug=recorded.bug
    )
    system = encode(summaries, "sc", pipeline.program.symbols, shared)
    return compute_stats(system)


@pytest.mark.parametrize("name", CASES)
def test_escape_analysis_shrinks_constraints(benchmark, name):
    bench = _cases()[name]
    program = bench.compile()
    all_data = set(program.symbols.data_globals())
    pipeline = ClapPipeline(program, ClapConfig(**bench.config_kwargs()))

    def once():
        # Record with EVERYTHING marked shared so both encodings can reuse
        # the same trace (the recorder itself only logs control flow, but
        # SAP indices must be consistent within each encoding run).
        saved_shared = pipeline.shared
        pipeline.shared = all_data
        recorded = pipeline.record()
        with_all = _encode_with(pipeline, recorded, all_data)
        pipeline.shared = saved_shared
        recorded2 = pipeline.record()
        with_escape = _encode_with(pipeline, recorded2, saved_shared)
        return with_escape, with_all

    with_escape, with_all = benchmark.pedantic(once, rounds=1, iterations=1)
    _RESULTS[name] = (with_escape, with_all)
    assert with_escape.n_saps <= with_all.n_saps
    assert with_escape.n_constraints <= with_all.n_constraints
    if name == "private":
        # The analysis must prune the private scratch table's accesses.
        assert with_escape.n_saps < with_all.n_saps / 2


def test_ablation_render(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        "Ablation: static shared-access (escape) analysis",
        "%-10s %20s %20s" % ("program", "with analysis", "all-globals-shared"),
    ]
    for name, (escape, naive) in _RESULTS.items():
        lines.append(
            "%-10s saps=%-5d constr=%-7d saps=%-5d constr=%-7d"
            % (name, escape.n_saps, escape.n_constraints, naive.n_saps, naive.n_constraints)
        )
    emit("ablation_escape.txt", "\n".join(lines))
