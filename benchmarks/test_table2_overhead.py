"""Table 2 — recording overhead and log size, CLAP vs LEAP.

Regenerates the paper's Table 2 on production-scale workloads: each
program runs natively, with the CLAP path recorder, and with the
LEAP-style access-vector recorder, under the same scheduler seed.

Expected shape (paper): CLAP's runtime overhead is a fraction of LEAP's
everywhere (paper reports 10-93.9% overhead reduction, the largest gaps
where shared accesses dominate, e.g. racey); CLAP's logs are 72-97.7%
smaller.
"""

import pytest

from repro.bench.harness import format_table2
from repro.bench.metrics import measure_overhead
from repro.bench.programs import TABLE2_NAMES, TABLE2_PARAMS, get_benchmark

from conftest import emit

_ROWS = {}


@pytest.mark.parametrize("name", TABLE2_NAMES)
def test_table2_row(benchmark, name):
    bench = get_benchmark(name, **TABLE2_PARAMS.get(name, {}))

    def once():
        return measure_overhead(bench)

    row = benchmark.pedantic(once, rounds=1, iterations=1)
    _ROWS[name] = row
    # CLAP must beat LEAP on recording cost on every program.
    assert row.clap_overhead_pct < row.leap_overhead_pct
    # And its log must be smaller.
    assert row.clap_log_bytes < row.leap_log_bytes


def test_table2_render(benchmark):
    missing = [n for n in TABLE2_NAMES if n not in _ROWS]
    assert not missing, "rows missing (run the whole module): %s" % missing
    rows = [_ROWS[n] for n in TABLE2_NAMES]
    benchmark.pedantic(lambda: format_table2(rows), rounds=1, iterations=1)
    emit("table2.txt", format_table2(rows))
    # Aggregate shape: the paper reports ~45% mean time-overhead reduction
    # and ~88% mean log-size reduction; require the direction with margin.
    mean_time_red = sum(r.time_reduction_pct for r in rows) / len(rows)
    mean_space_red = sum(r.space_reduction_pct for r in rows) / len(rows)
    assert mean_time_red > 45.0
    assert mean_space_red > 60.0
    # racey (shared-access heavy) should show one of the largest gaps.
    racey = _ROWS["racey"]
    assert racey.leap_overhead_pct / max(racey.clap_overhead_pct, 0.1) > 5
