"""Ablation — preemption bounding (paper Section 4.2).

The paper argues that encoding a context-switch bound turns an
exponential schedule search polynomial.  This ablation measures the
generate-and-validate search with and without a useful bound:

* bounded: the incrementing c = 0, 1, 2... loop (the default);
* unbounded: a single round with a very large bound, i.e. the search may
  interleave segments freely.

Expected shape: the bounded search is the *minimality* mechanism — it
always returns the fewest-preemption witness (Section 4.2's incrementing
loop), at the cost of exhausting each bound level first; the unbounded
search may stumble on some witness sooner but with no quality guarantee.
The render step reports both (witness quality and candidates generated).
"""

import pytest

from repro.solver.parallel import solve_generate_validate

from conftest import emit, pipeline_artifacts

CASES = ["sim_race", "aget", "pfscan"]
_RESULTS = {}


@pytest.mark.parametrize("name", CASES)
def test_bounded_vs_unbounded(benchmark, name):
    _, _, _, system = pipeline_artifacts(name)

    def once():
        bounded = solve_generate_validate(system, max_cs=4, max_seconds=60)
        unbounded = solve_generate_validate(
            system,
            max_cs=10**6,  # effectively no bound: one giant round
            probes_per_round=8,
            max_schedules_per_probe=2_000,
            max_steps_per_probe=100_000,
            max_seconds=60,
        )
        return bounded, unbounded

    bounded, unbounded = benchmark.pedantic(once, rounds=1, iterations=1)
    _RESULTS[name] = (bounded, unbounded)
    assert bounded.ok, bounded.reason


def test_ablation_render(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        "Ablation: preemption bounding (Section 4.2)",
        "%-10s %24s %28s" % ("program", "bounded (c=0,1,2,...)", "unbounded"),
    ]
    for name, (bounded, unbounded) in _RESULTS.items():
        lines.append(
            "%-10s ok=%s cs=%d gen=%-8d ok=%s gen=%-8d t=%.1fs/%.1fs"
            % (
                name,
                bounded.ok,
                bounded.context_switches,
                bounded.generated,
                unbounded.ok,
                unbounded.generated,
                bounded.solve_time,
                unbounded.solve_time,
            )
        )
    emit("ablation_cs_bound.txt", "\n".join(lines))
    for name, (bounded, unbounded) in _RESULTS.items():
        if unbounded.ok:
            # With the bound, the same (or better) answer needs fewer
            # generated candidates or at least is never worse in quality.
            assert bounded.context_switches <= unbounded.context_switches
