"""Shared fixtures for the benchmark harness.

Pipeline artifacts (recorded run + constraint system) are cached per
benchmark so the table targets don't re-record for every measurement.
Rendered tables are printed (run pytest with ``-s`` to see them) and
written under ``results/``.
"""

import pytest

from repro.bench.harness import save_result
from repro.bench.programs import get_benchmark
from repro.core.clap import ClapConfig, ClapPipeline

_CACHE = {}


def pipeline_artifacts(name, **params):
    """(bench, pipeline, recorded, system) for one benchmark, cached."""
    key = (name, tuple(sorted(params.items())))
    if key not in _CACHE:
        bench = get_benchmark(name, **params)
        pipeline = ClapPipeline(bench.compile(), ClapConfig(**bench.config_kwargs()))
        recorded = pipeline.record()
        system = pipeline.analyze(recorded)
        _CACHE[key] = (bench, pipeline, recorded, system)
    return _CACHE[key]


@pytest.fixture
def artifacts():
    return pipeline_artifacts


def emit(filename, text):
    """Print a rendered table and persist it under results/."""
    print()
    print(text)
    path = save_result(filename, text)
    print("[saved to %s]" % path)
