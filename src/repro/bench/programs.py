"""The paper's benchmark suite, re-expressed in MiniLang.

Each program preserves the *bug pattern* and sharing/synchronization
structure of the original (Section 6 of the paper); sizes are scaled so a
pure-Python solver stack remains tractable.  Parameters are exposed so the
harness can sweep them (e.g. ``racey`` loop counts).

=============  ===========================================================
sim_race       unprotected racy updates of two shared variables
pbzip2         order violation: main invalidates the queue mutex while
               consumers still use it (the pbzip2-0.9.4 crash)
aget           racy read-modify-write of the shared download progress
bbuf           bounded buffer whose producers update a counter outside
               the critical section (seeded atomicity violation)
swarm          worker publishes "done" before publishing its result
               (order violation)
pfscan         matches counter: read under lock, write outside it
apache         bug #45605: multi-variable atomicity violation on the
               idlers counter between listener threads
racey          the deterministic-replay stress benchmark: dense races on
               an array, reproduced via its output signature
bakery         Lamport's bakery — correct on SC, broken on TSO/PSO
dekker         Dekker's algorithm — correct on SC, broken on TSO/PSO
peterson       Peterson's algorithm — correct on SC, broken on TSO/PSO
figure2        the paper's running example: assert1 fails under an SC
               interleaving, assert2 only under PSO write reordering
=============  ===========================================================
"""

from dataclasses import dataclass, field


@dataclass
class BenchProgram:
    """One benchmark: source plus bug-triggering configuration."""

    name: str
    source: str
    memory_model: str = "sc"
    description: str = ""
    # Scheduler settings that manifest the failure quickly.
    seeds: range = field(default_factory=lambda: range(500))
    stickiness: float = 0.5
    flush_prob: float = 0.25
    max_steps: int = 2_000_000
    # Solver settings.
    max_cs: int = 4
    pin_observed_reads: bool = False
    params: dict = field(default_factory=dict)

    def compile(self):
        from repro.minilang import compile_source

        return compile_source(self.source, name=self.name)

    def config_kwargs(self):
        return dict(
            memory_model=self.memory_model,
            seeds=self.seeds,
            stickiness=self.stickiness,
            flush_prob=self.flush_prob,
            max_steps=self.max_steps,
            max_cs=self.max_cs,
            pin_observed_reads=self.pin_observed_reads,
        )


# --------------------------------------------------------------------------
# sim_race
# --------------------------------------------------------------------------


def sim_race(workers=4, iters=1):
    body = "\n".join(
        "    t%d = spawn racer(%d);" % (i, i + 1) for i in range(workers)
    )
    decls = "\n".join("    int t%d = 0;" % i for i in range(workers))
    joins = "\n".join("    join(t%d);" % i for i in range(workers))
    expected = sum(range(1, workers + 1)) * iters
    source = """
int x = 0;
int y = 0;

void racer(int id) {
    for (int i = 0; i < %d; i++) {
        int a = x;
        x = a + id;
        int b = y;
        y = b + id;
    }
}

int main() {
%s
%s
%s
    assert(x == %d && y == %d);
    return 0;
}
""" % (iters, decls, body, joins, expected, expected)
    return BenchProgram(
        name="sim_race",
        source=source,
        description="unprotected updates of two shared variables",
        stickiness=0.3,
        params={"workers": workers},
    )


# --------------------------------------------------------------------------
# pbzip2 — order violation on the queue mutex's validity
# --------------------------------------------------------------------------


def pbzip2(consumers=2, items=3):
    decls = "\n".join("    int c%d = 0;" % i for i in range(consumers))
    spawns = "\n".join("    c%d = spawn consumer();" % i for i in range(consumers))
    joins = "\n".join("    join(c%d);" % i for i in range(consumers))
    source = """
int slot = 0;
int full = 0;
int allDone = 0;
int mutexValid = 1;
int consumed = 0;
mutex m;
cond notEmpty;
cond notFull;

void consumer() {
    int run = 1;
    while (run == 1) {
        int v = mutexValid;
        assert(v == 1);
        lock(m);
        while (full == 0 && allDone == 0) { wait(notEmpty, m); }
        if (full == 1) {
            int item = slot;
            full = 0;
            consumed = consumed + 1;
            signal(notFull);
        } else {
            run = 0;
        }
        unlock(m);
    }
}

int main() {
%s
%s
    for (int i = 0; i < %d; i++) {
        lock(m);
        while (full == 1) { wait(notFull, m); }
        slot = i + 10;
        full = 1;
        signal(notEmpty);
        unlock(m);
    }
    lock(m);
    allDone = 1;
    broadcast(notEmpty);
    unlock(m);
    mutexValid = 0;
%s
    return 0;
}
""" % (decls, spawns, items, joins)
    return BenchProgram(
        name="pbzip2",
        source=source,
        description="main invalidates the consumer queue mutex too early",
        stickiness=0.4,
        params={"consumers": consumers, "items": items},
    )


# --------------------------------------------------------------------------
# aget — racy download-progress accounting
# --------------------------------------------------------------------------


def aget(workers=3, chunks=4):
    decls = "\n".join("    int t%d = 0;" % i for i in range(workers))
    spawns = "\n".join(
        "    t%d = spawn downloader(%d);" % (i, i) for i in range(workers)
    )
    joins = "\n".join("    join(t%d);" % i for i in range(workers))
    total = workers * chunks * 2
    source = """
int bwritten = 0;
int chunk[%d];
mutex m;

void downloader(int id) {
    for (int i = 0; i < %d; i++) {
        chunk[id] = chunk[id] + 2;
        int b = bwritten;
        bwritten = b + 2;
    }
}

int main() {
%s
%s
%s
    assert(bwritten == %d);
    return 0;
}
""" % (workers, chunks, decls, spawns, joins, total)
    return BenchProgram(
        name="aget",
        source=source,
        description="shared progress counter updated without the lock",
        stickiness=0.3,
        params={"workers": workers, "chunks": chunks},
    )


# --------------------------------------------------------------------------
# bbuf — bounded buffer with a seeded atomicity violation
# --------------------------------------------------------------------------


def bbuf(producers=2, consumers=2, items_each=2):
    total = producers * items_each
    per_consumer = total // consumers
    decls = "\n".join(
        ["    int p%d = 0;" % i for i in range(producers)]
        + ["    int c%d = 0;" % i for i in range(consumers)]
    )
    spawns = "\n".join(
        ["    p%d = spawn producer(%d, %d);" % (i, items_each, (i + 1) * 10) for i in range(producers)]
        + ["    c%d = spawn consumer(%d);" % (i, per_consumer) for i in range(consumers)]
    )
    joins = "\n".join(
        ["    join(p%d);" % i for i in range(producers)]
        + ["    join(c%d);" % i for i in range(consumers)]
    )
    source = """
int slot = 0;
int full = 0;
int produced = 0;
int consumed = 0;
mutex m;
cond notFull;
cond notEmpty;

void producer(int n, int base) {
    for (int i = 0; i < n; i++) {
        lock(m);
        while (full == 1) { wait(notFull, m); }
        slot = base + i;
        full = 1;
        signal(notEmpty);
        unlock(m);
        int p = produced;
        yield;
        produced = p + 1;
    }
}

void consumer(int n) {
    for (int i = 0; i < n; i++) {
        lock(m);
        while (full == 0) { wait(notEmpty, m); }
        int v = slot;
        full = 0;
        consumed = consumed + 1;
        signal(notFull);
        unlock(m);
    }
}

int main() {
%s
%s
%s
    assert(produced == %d);
    return 0;
}
""" % (decls, spawns, joins, total)
    return BenchProgram(
        name="bbuf",
        source=source,
        description="producers bump the produced counter outside the lock",
        stickiness=0.35,
        params={
            "producers": producers,
            "consumers": consumers,
            "items_each": items_each,
        },
    )


# --------------------------------------------------------------------------
# swarm — completion signalled before the result is published
# --------------------------------------------------------------------------


def swarm(cells=8):
    half = cells // 2
    expected = sum(range(1, cells + 1))
    source = """
int arr[%d];
int sum0 = 0;
int sum1 = 0;

void sorter(int id) {
    int s = 0;
    for (int i = 0; i < %d; i++) {
        s = s + arr[id * %d + i];
    }
    if (id == 0) { sum0 = s; } else { sum1 = s; }
}

int main() {
    for (int i = 0; i < %d; i++) { arr[i] = i + 1; }
    int t0 = 0;
    int t1 = 0;
    t0 = spawn sorter(0);
    t1 = spawn sorter(1);
    join(t0);
    int total = sum0 + sum1;
    assert(total == %d);
    join(t1);
    return 0;
}
""" % (cells, half, half, cells, expected)
    return BenchProgram(
        name="swarm",
        source=source,
        description="order violation: main merges after joining only one worker",
        stickiness=0.45,
        params={"cells": cells},
    )


# --------------------------------------------------------------------------
# pfscan — matches counter read under lock, written outside it
# --------------------------------------------------------------------------


def pfscan(workers=2, chunk=6, unroll=1):
    chunk = chunk - chunk % unroll if chunk % unroll else chunk
    cells = workers * chunk
    decls = "\n".join("    int t%d = 0;" % i for i in range(workers))
    spawns = "\n".join(
        "    t%d = spawn scanner(%d);" % (i, i) for i in range(workers)
    )
    joins = "\n".join("    join(t%d);" % i for i in range(workers))
    # text[i] = i % 4; pattern 3 -> one match per 4 cells.
    expected = sum(1 for i in range(cells) if i % 4 == 3)
    source = """
int text[%d];
int matches = 0;
mutex m;

void scanner(int id) {
    int found = 0;
    for (int i = 0; i < %d; i++) {
%s
    }
    lock(m);
    int v = matches;
    unlock(m);
    matches = v + found;
}

int main() {
    for (int i = 0; i < %d; i++) { text[i] = i %% 4; }
%s
%s
%s
    assert(matches == %d);
    return 0;
}
""" % (
        cells,
        chunk // unroll,
        "\n".join(
            "        if (text[id * %d + i * %d + %d] == 3) { found = found + 1; }"
            % (chunk, unroll, u)
            for u in range(unroll)
        ),
        cells,
        decls,
        spawns,
        joins,
        expected,
    )
    return BenchProgram(
        name="pfscan",
        source=source,
        description="matches counter: read under lock, write outside",
        stickiness=0.35,
        params={"workers": workers, "chunk": chunk},
    )


# --------------------------------------------------------------------------
# apache — bug #45605, multi-variable atomicity violation on idlers
# --------------------------------------------------------------------------


def apache(listeners=2, workers=2, requests_each=2):
    capacity = listeners * requests_each
    decls = "\n".join(
        ["    int l%d = 0;" % i for i in range(listeners)]
        + ["    int w%d = 0;" % i for i in range(workers)]
    )
    spawns = "\n".join(
        ["    w%d = spawn worker();" % i for i in range(workers)]
        + ["    l%d = spawn listener(%d);" % (i, requests_each) for i in range(listeners)]
    )
    source = """
int idlers = 0;
int queued = 0;
int handled = 0;
int shutdown = 0;
mutex qm;
cond qcond;

void worker() {
    int run = 1;
    while (run == 1) {
        lock(qm);
        idlers = idlers + 1;
        while (queued == 0 && shutdown == 0) { wait(qcond, qm); }
        if (shutdown == 1) {
            run = 0;
        } else {
            queued = queued - 1;
            handled = handled + 1;
        }
        unlock(qm);
    }
}

void listener(int n) {
    for (int i = 0; i < n; i++) {
        int idle = idlers;
        if (idle > 0) {
            idlers = idlers - 1;
            int chk = idlers;
            assert(chk >= 0);
            lock(qm);
            queued = queued + 1;
            signal(qcond);
            unlock(qm);
        }
    }
}

int main() {
%s
%s
%s
    lock(qm);
    shutdown = 1;
    broadcast(qcond);
    unlock(qm);
%s
    return 0;
}
""" % (
        decls,
        spawns,
        "\n".join("    join(l%d);" % i for i in range(listeners)),
        "\n".join("    join(w%d);" % i for i in range(workers)),
    )
    return BenchProgram(
        name="apache",
        source=source,
        description="bug #45605: idlers checked and decremented non-atomically",
        stickiness=0.4,
        params={
            "listeners": listeners,
            "workers": workers,
            "requests_each": requests_each,
        },
    )


# --------------------------------------------------------------------------
# racey — the replay stress benchmark
# --------------------------------------------------------------------------


def _racey_source(loops, cells, expected):
    return """
int sig[%d];
int out = 0;

void mix(int id) {
    for (int i = 0; i < %d; i++) {
        int j = (id * 7 + i * 3) %% %d;
        int k = (id * 5 + i * 2 + 1) %% %d;
        int a = sig[j];
        int b = sig[k];
        sig[(j + k) %% %d] = a + b + 1;
    }
}

int main() {
    for (int i = 0; i < %d; i++) { sig[i] = i; }
    int t0 = 0;
    int t1 = 0;
    t0 = spawn mix(0);
    t1 = spawn mix(1);
    join(t0);
    join(t1);
    int signature = 0;
    for (int i = 0; i < %d; i++) {
        signature = signature + sig[i] * (i + 1);
    }
    out = signature;
    assert(signature == %s);
    return 0;
}
""" % (cells, loops, cells, cells, cells, cells, cells, expected)


def racey(loops=10, cells=8):
    """racey's bug predicate is its output *signature*: the assertion pins
    the signature of a race-free (serialized) execution, so any racy
    interleaving fails it and CLAP must reconstruct a racy schedule."""
    from repro.minilang import compile_source
    from repro.runtime.interpreter import run_program
    from repro.runtime.scheduler import RoundRobinScheduler

    probe = compile_source(
        _racey_source(loops, cells, "0 - 1"), name="racey-probe"
    )
    serial = run_program(
        probe, "sc", scheduler=RoundRobinScheduler(quantum=10**9)
    )
    expected = serial.final_globals[("out",)]
    source = _racey_source(loops, cells, str(expected))
    return BenchProgram(
        name="racey",
        source=source,
        description="dense array races; reproduced to the exact observed output",
        stickiness=0.2,
        max_cs=8,
        pin_observed_reads=True,
        params={"loops": loops, "cells": cells, "serial_signature": expected},
    )


# --------------------------------------------------------------------------
# Mutual-exclusion trio (relaxed-memory bugs)
# --------------------------------------------------------------------------


def bakery(customers=3, rounds=1, memory_model="tso"):
    expected = customers * rounds
    decls = "\n".join("    int t%d = 0;" % i for i in range(customers))
    spawns = "\n".join(
        "    t%d = spawn customer(%d);" % (i, i) for i in range(customers)
    )
    joins = "\n".join("    join(t%d);" % i for i in range(customers))
    source = """
int number[%d];
int choosing[%d];
int count = 0;

void customer(int id) {
    for (int r = 0; r < %d; r++) {
        choosing[id] = 1;
        int max = 0;
        for (int j = 0; j < %d; j++) {
            int n = number[j];
            if (n > max) { max = n; }
        }
        number[id] = max + 1;
        choosing[id] = 0;
        for (int j = 0; j < %d; j++) {
            if (j != id) {
                while (choosing[j] == 1) { yield; }
                int nj = number[j];
                int ni = number[id];
                while (nj != 0 && (nj < ni || (nj == ni && j < id))) {
                    yield;
                    nj = number[j];
                    ni = number[id];
                }
            }
        }
        int c = count;
        count = c + 1;
        number[id] = 0;
    }
}

int main() {
%s
%s
%s
    assert(count == %d);
    return 0;
}
""" % (
        customers,
        customers,
        rounds,
        customers,
        customers,
        decls,
        spawns,
        joins,
        expected,
    )
    return BenchProgram(
        name="bakery",
        source=source,
        memory_model=memory_model,
        description="Lamport's bakery: safe on SC, broken by store buffering",
        seeds=range(1000),
        stickiness=0.5,
        flush_prob=0.02,
        params={"customers": customers, "rounds": rounds},
    )


def dekker(rounds=2, memory_model="tso"):
    source = """
int flag[2];
int turn = 0;
int count = 0;

void actor(int id) {
    int other = 1 - id;
    for (int k = 0; k < %d; k++) {
        flag[id] = 1;
        while (flag[other] == 1) {
            if (turn != id) {
                flag[id] = 0;
                while (turn != id) { yield; }
                flag[id] = 1;
            }
        }
        int c = count;
        count = c + 1;
        turn = other;
        flag[id] = 0;
    }
}

int main() {
    int t0 = 0;
    int t1 = 0;
    t0 = spawn actor(0);
    t1 = spawn actor(1);
    join(t0);
    join(t1);
    assert(count == %d);
    return 0;
}
""" % (rounds, 2 * rounds)
    return BenchProgram(
        name="dekker",
        source=source,
        memory_model=memory_model,
        description="Dekker's algorithm: safe on SC, broken by store buffering",
        seeds=range(1000),
        stickiness=0.5,
        flush_prob=0.02,
        params={"rounds": rounds},
    )


def peterson(rounds=2, memory_model="tso"):
    source = """
int flag[2];
int turn = 0;
int count = 0;

void actor(int id) {
    int other = 1 - id;
    for (int k = 0; k < %d; k++) {
        flag[id] = 1;
        turn = other;
        while (flag[other] == 1 && turn == other) { yield; }
        int c = count;
        count = c + 1;
        flag[id] = 0;
    }
}

int main() {
    int t0 = 0;
    int t1 = 0;
    t0 = spawn actor(0);
    t1 = spawn actor(1);
    join(t0);
    join(t1);
    assert(count == %d);
    return 0;
}
""" % (rounds, 2 * rounds)
    return BenchProgram(
        name="peterson",
        source=source,
        memory_model=memory_model,
        description="Peterson's algorithm: safe on SC, broken by store buffering",
        seeds=range(1000),
        stickiness=0.5,
        flush_prob=0.02,
        params={"rounds": rounds},
    )


# --------------------------------------------------------------------------
# figure2 — the paper's running example (Figures 2-4)
# --------------------------------------------------------------------------


def figure2(memory_model="sc"):
    """assert1 (in main) fails under an SC-reachable interleaving; assert2
    (in t2) can only fail when t1's two stores drain out of order — PSO."""
    source = """
int x = 0;
int y = 0;
int c = 0;

void t1() {
    int a = c;
    c = a + 1;
    x = 1;
    y = 1;
}

void t2() {
    int b = c;
    c = b + 1;
    int f = y;
    int d = x;
    if (f == 1) {
        assert(d == 1);
    }
}

int main() {
    int h1 = 0;
    int h2 = 0;
    h1 = spawn t1();
    h2 = spawn t2();
    join(h1);
    join(h2);
    assert(c == 2);
    return 0;
}
"""
    return BenchProgram(
        name="figure2",
        source=source,
        memory_model=memory_model,
        description="paper's example: assert1 is an SC race, assert2 is PSO-only",
        stickiness=0.35,
        flush_prob=0.1,
        params={},
    )


# --------------------------------------------------------------------------
# flight — long call-in-loop prelude, race at the very end
# --------------------------------------------------------------------------


def flight(iters=40):
    """Flight-recorder stress benchmark.

    Each worker runs a long loop that *calls* a helper every iteration —
    the ``enter``/``exit`` tokens defeat the encoder's run-length folding,
    so a bounded ring genuinely evicts the loop's prefix (a straight-line
    loop like ``sim_race``'s folds into one REPEAT record and never
    fills a ring).  The racy accesses sit after the loop, in the retained
    suffix; reproducing the failure from a small ring exercises anchored
    suffix decoding plus prefix synthesis end to end.
    """
    source = """
int x = 0;
int y = 0;

void bump(int id) {
    int a = x;
    x = a + id;
}

void worker(int id) {
    for (int i = 0; i < %d; i++) {
        bump(id);
    }
    int b = y;
    bump(id);
    y = b + id;
}

int main() {
    int t0 = 0;
    int t1 = 0;
    t0 = spawn worker(1);
    t1 = spawn worker(2);
    join(t0);
    join(t1);
    assert(y == 3);
    return 0;
}
""" % iters
    return BenchProgram(
        name="flight",
        source=source,
        description="call-heavy loop prelude with an end-of-run race",
        stickiness=0.2,
        params={"iters": iters},
    )


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

_BUILDERS = {
    "sim_race": sim_race,
    "pbzip2": pbzip2,
    "aget": aget,
    "bbuf": bbuf,
    "swarm": swarm,
    "pfscan": pfscan,
    "apache": apache,
    "racey": racey,
    "bakery": bakery,
    "dekker": dekker,
    "peterson": peterson,
    "figure2": figure2,
    "flight": flight,
}

BENCHMARK_NAMES = tuple(_BUILDERS)

# The 11 programs of Table 1 (figure2 is the worked example, not a table row).
TABLE1_NAMES = (
    "sim_race",
    "pbzip2",
    "aget",
    "bbuf",
    "swarm",
    "pfscan",
    "apache",
    "racey",
    "bakery",
    "dekker",
    "peterson",
)

# The 8 programs of Table 2 (runtime/space overhead comparison).
TABLE2_NAMES = (
    "sim_race",
    "bbuf",
    "swarm",
    "pbzip2",
    "aget",
    "pfscan",
    "apache",
    "racey",
)

# Production-scale parameterizations used when measuring recording
# overhead (Table 2).  The bug-reproduction configs above stay small so
# the pure-Python solvers remain tractable; overhead measurement has no
# solver in the loop and wants realistic run lengths and shared-access
# densities (the paper's Table 2 machines ran full workloads too).
TABLE2_PARAMS = {
    "sim_race": {"workers": 4, "iters": 60},
    "bbuf": {"producers": 2, "consumers": 2, "items_each": 25},
    "swarm": {"cells": 64},
    "pbzip2": {"consumers": 2, "items": 40},
    "aget": {"workers": 3, "chunks": 80},
    "pfscan": {"workers": 2, "chunk": 128, "unroll": 4},
    "apache": {"listeners": 2, "workers": 2, "requests_each": 30},
    "racey": {"loops": 150, "cells": 16},
}


def get_benchmark(name, **params):
    """Build one benchmark by name with optional parameter overrides."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            "unknown benchmark %r (have: %s)" % (name, ", ".join(_BUILDERS))
        ) from None
    return builder(**params)


def all_benchmarks(names=BENCHMARK_NAMES):
    """Build the named benchmarks (default: all)."""
    return {name: get_benchmark(name) for name in names}
