"""Experiment harness: regenerates every table of the paper's evaluation.

Each ``run_tableN`` function returns structured rows and
``format_tableN`` renders them as the aligned text the benchmark targets
print (and write under ``results/``).
"""

import os
import time
from dataclasses import dataclass, field

from repro.core.clap import ClapConfig, ClapPipeline
from repro.bench.metrics import measure_overhead, worst_case_schedules_log10
from repro.bench.programs import (
    TABLE1_NAMES,
    TABLE2_NAMES,
    TABLE2_PARAMS,
    get_benchmark,
)
from repro.constraints.stats import compute_stats
from repro.solver.parallel import solve_generate_validate
from repro.solver.smt import solve_constraints

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", "results")


def _loc(source):
    return sum(
        1
        for line in source.splitlines()
        if line.strip() and not line.strip().startswith("//")
    )


# --------------------------------------------------------------------------
# Table 1 — bug-reproduction effectiveness
# --------------------------------------------------------------------------


@dataclass
class Table1Row:
    program: str
    loc: int = 0
    n_threads: int = 0
    n_sv: int = 0
    n_inst: int = 0
    n_br: int = 0
    n_saps: int = 0
    n_constraints: int = 0
    n_variables: int = 0
    time_symbolic: float = 0.0
    time_solve: float = 0.0
    n_cs: int = -1
    success: str = "N"
    memory_model: str = "sc"
    note: str = ""


def run_table1_row(bench, solver="smt", max_cs=None):
    """Run the full pipeline on one benchmark and fill a Table 1 row."""
    row = Table1Row(program=bench.name, loc=_loc(bench.source))
    row.memory_model = bench.memory_model
    config = ClapConfig(solver=solver, **bench.config_kwargs())
    if max_cs is not None:
        config.max_cs = max_cs
    pipeline = ClapPipeline(bench.compile(), config)
    report = pipeline.reproduce()
    row.n_threads = report.n_threads
    row.n_sv = report.n_shared_vars
    row.n_inst = report.n_instructions
    row.n_br = report.n_branches
    row.n_saps = report.n_saps
    row.n_constraints = report.n_constraints
    row.n_variables = report.n_variables
    row.time_symbolic = report.time_symbolic
    row.time_solve = report.time_solve
    row.n_cs = report.context_switches
    row.success = "Y" if report.reproduced else "N"
    row.note = report.failure_reason
    return row


def run_table1(names=TABLE1_NAMES, solver="smt", params=None):
    params = params or {}
    rows = []
    for name in names:
        bench = get_benchmark(name, **params.get(name, {}))
        rows.append(run_table1_row(bench, solver=solver))
    return rows


def format_table1(rows):
    header = (
        "Program",
        "LOC",
        "#Thr",
        "#SV",
        "#Inst",
        "#Br",
        "#SAPs",
        "#Constr",
        "#Vars",
        "T-sym(s)",
        "T-solve(s)",
        "#cs",
        "ok?",
    )
    lines = [_fmt_row(header)]
    lines.append("-" * len(lines[0]))
    for r in rows:
        lines.append(
            _fmt_row(
                (
                    r.program,
                    r.loc,
                    r.n_threads,
                    r.n_sv,
                    r.n_inst,
                    r.n_br,
                    r.n_saps,
                    r.n_constraints,
                    r.n_variables,
                    "%.2f" % r.time_symbolic,
                    "%.2f" % r.time_solve,
                    r.n_cs,
                    r.success,
                )
            )
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Table 2 — runtime and space overhead, CLAP vs LEAP
# --------------------------------------------------------------------------


def run_table2(names=TABLE2_NAMES, params=None):
    params = TABLE2_PARAMS if params is None else params
    rows = []
    for name in names:
        bench = get_benchmark(name, **params.get(name, {}))
        rows.append(measure_overhead(bench))
    return rows


def format_table2(rows):
    header = (
        "Program",
        "Native(u)",
        "LEAP ov%",
        "CLAP ov%",
        "T-red%",
        "LEAP log",
        "CLAP log",
        "S-red%",
    )
    lines = [_fmt_row(header)]
    lines.append("-" * len(lines[0]))
    for r in rows:
        lines.append(
            _fmt_row(
                (
                    r.name,
                    "%.0f" % r.native_units,
                    "%.1f" % r.leap_overhead_pct,
                    "%.1f" % r.clap_overhead_pct,
                    "%.1f" % r.time_reduction_pct,
                    _fmt_bytes(r.leap_log_bytes),
                    _fmt_bytes(r.clap_log_bytes),
                    "%.1f" % r.space_reduction_pct,
                )
            )
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Table 3 — parallel constraint solving
# --------------------------------------------------------------------------


@dataclass
class Table3Row:
    program: str
    worst_log10: float = 0.0  # log10 of worst-case #schedules
    generated: int = 0
    cs_bound: int = 0
    good: int = 0
    time_par: float = 0.0
    time_seq: float = 0.0
    success: str = "N"
    note: str = ""


def run_table3_row(bench, workers=0, max_seconds=120.0, smt_max_seconds=None):
    """Record once, then solve with both the generate-and-validate
    algorithm (parallel column) and the SMT solver (sequential column)."""
    row = Table3Row(program=bench.name)
    config = ClapConfig(**bench.config_kwargs())
    pipeline = ClapPipeline(bench.compile(), config)
    recorded = pipeline.record()
    system = pipeline.analyze(recorded)
    row.worst_log10 = worst_case_schedules_log10(system.summaries)

    gv = solve_generate_validate(
        system, max_cs=config.max_cs, workers=workers, max_seconds=max_seconds
    )
    row.generated = gv.generated
    row.good = gv.good
    row.cs_bound = gv.context_switches if gv.ok else gv.rounds
    row.time_par = gv.solve_time
    row.success = "Y" if gv.ok else "N"
    if not gv.ok:
        row.note = gv.reason

    smt = solve_constraints(system, max_seconds=smt_max_seconds)
    row.time_seq = smt.solve_time
    return row


def run_table3(names=TABLE1_NAMES, workers=0, params=None, max_seconds=120.0):
    params = params or {}
    rows = []
    for name in names:
        bench = get_benchmark(name, **params.get(name, {}))
        rows.append(run_table3_row(bench, workers=workers, max_seconds=max_seconds))
    return rows


def format_table3(rows):
    header = (
        "Program",
        "#worst",
        "#gen(#cs)",
        "#good",
        "Time-par",
        "Time-seq",
        "ok?",
    )
    lines = [_fmt_row(header)]
    lines.append("-" * len(lines[0]))
    for r in rows:
        lines.append(
            _fmt_row(
                (
                    r.program,
                    "> 10^%.0f" % r.worst_log10,
                    "%d(%d)" % (r.generated, r.cs_bound),
                    r.good,
                    "%.2fs" % r.time_par,
                    "%.2fs" % r.time_seq,
                    r.success,
                )
            )
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Formatting / persistence helpers
# --------------------------------------------------------------------------


def _fmt_row(values, width=10):
    parts = []
    for i, value in enumerate(values):
        text = str(value)
        parts.append(text.ljust(14) if i == 0 else text.rjust(width))
    return "  ".join(parts)


def _fmt_bytes(n):
    if n >= 1 << 20:
        return "%.1fM" % (n / (1 << 20))
    if n >= 1 << 10:
        return "%.1fK" % (n / (1 << 10))
    return "%dB" % n


def save_result(name, text):
    """Write a rendered table under results/ (created on demand)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return path
