"""Benchmark programs and the experiment harness for the paper's tables."""

from repro.bench.programs import (
    BenchProgram,
    all_benchmarks,
    get_benchmark,
    BENCHMARK_NAMES,
)

__all__ = [
    "BenchProgram",
    "all_benchmarks",
    "get_benchmark",
    "BENCHMARK_NAMES",
]
