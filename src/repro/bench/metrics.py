"""Recording-overhead metrics (Table 2's measurement substrate).

The paper measures wall-clock slowdown of compiled C programs; a Python
interpreter's wall clock would mostly measure interpreter overhead, so the
primary metric here is a **simulated cost model** over dynamic counts:

* every executed bytecode instruction costs 1 unit (native baseline);
* each Ball-Larus instrumentation action (counter increment, path-id log
  append) costs ``bl_op_cost`` units — a couple of arithmetic instructions
  in a compiled build;
* each LEAP instrumentation action costs ``leap_op_cost`` units — LEAP
  takes a per-variable lock around every shared access (the recorder
  counts acquire/append/release as 3 actions), and a synchronized
  operation is an order of magnitude pricier than an increment.

Log sizes need no model: both recorders serialize their logs and we count
bytes.  Wall-clock times of the hooked interpreter runs are reported as a
secondary column.

The same seed is used for the native/CLAP/LEAP runs, so all three observe
the same interleaving (recorder hooks draw no randomness).
"""

import time
from dataclasses import dataclass

from repro.runtime.interpreter import Interpreter
from repro.runtime.scheduler import RandomScheduler
from repro.tracing.leap import LeapRecorder
from repro.tracing.recorder import PathRecorder


@dataclass
class CostModel:
    instruction_cost: float = 1.0
    bl_op_cost: float = 1.5
    leap_op_cost: float = 8.0  # per action; LEAP does 3 actions per access


@dataclass
class OverheadRow:
    """One Table 2 row."""

    name: str
    native_units: float = 0.0
    clap_units: float = 0.0
    leap_units: float = 0.0
    clap_overhead_pct: float = 0.0
    leap_overhead_pct: float = 0.0
    time_reduction_pct: float = 0.0  # CLAP overhead vs LEAP overhead
    clap_log_bytes: int = 0
    leap_log_bytes: int = 0
    space_reduction_pct: float = 0.0
    native_wall: float = 0.0
    clap_wall: float = 0.0
    leap_wall: float = 0.0


def _run(program, bench, seed, hooks):
    scheduler = RandomScheduler(
        seed, stickiness=bench.stickiness, flush_prob=bench.flush_prob
    )
    interp = Interpreter(
        program,
        memory_model=bench.memory_model,
        scheduler=scheduler,
        shared=None if not hooks else None,
        hooks=hooks,
        max_steps=bench.max_steps,
        collect_events=False,
    )
    t0 = time.perf_counter()
    result = interp.run()
    wall = time.perf_counter() - t0
    return interp, result, wall


def measure_overhead(bench, seed=0, model=None, shared=None):
    """Run one benchmark natively, with the CLAP recorder, and with the
    LEAP recorder; return an :class:`OverheadRow`."""
    cost = model or CostModel()
    program = bench.compile()
    if shared is None:
        from repro.analysis.escape import shared_variables

        shared = shared_variables(program)

    def run_with(hooks):
        scheduler = RandomScheduler(
            seed, stickiness=bench.stickiness, flush_prob=bench.flush_prob
        )
        interp = Interpreter(
            program,
            memory_model=bench.memory_model,
            scheduler=scheduler,
            shared=shared,
            hooks=hooks,
            max_steps=bench.max_steps,
            collect_events=False,
        )
        t0 = time.perf_counter()
        result = interp.run()
        wall = time.perf_counter() - t0
        return interp, result, wall

    _, native_result, native_wall = run_with([])
    clap_rec = PathRecorder(program)
    clap_interp, clap_result, clap_wall = run_with([clap_rec])
    clap_rec.finalize(clap_interp)
    leap_rec = LeapRecorder(program)
    _, leap_result, leap_wall = run_with([leap_rec])

    base = native_result.total_instructions() * cost.instruction_cost
    clap_units = base + clap_rec.instrumentation_ops * cost.bl_op_cost
    leap_units = base + leap_rec.instrumentation_ops * cost.leap_op_cost

    row = OverheadRow(name=bench.name)
    row.native_units = base
    row.clap_units = clap_units
    row.leap_units = leap_units
    row.clap_overhead_pct = 100.0 * (clap_units - base) / base if base else 0.0
    row.leap_overhead_pct = 100.0 * (leap_units - base) / base if base else 0.0
    if row.leap_overhead_pct > 0:
        row.time_reduction_pct = 100.0 * (
            1.0 - row.clap_overhead_pct / row.leap_overhead_pct
        )
    row.clap_log_bytes = clap_rec.log_size_bytes()
    row.leap_log_bytes = leap_rec.log_size_bytes()
    if row.leap_log_bytes:
        row.space_reduction_pct = 100.0 * (
            1.0 - row.clap_log_bytes / row.leap_log_bytes
        )
    row.native_wall = native_wall
    row.clap_wall = clap_wall
    row.leap_wall = leap_wall
    return row


def worst_case_schedules_log10(summaries):
    """log10 of the worst-case number of interleavings of the recorded
    execution: (sum n_i)! / prod(n_i!) over per-thread SAP counts — the
    theoretical bound of [25, 27] used in Table 3, column 2."""
    import math

    counts = [len(s.saps) for s in summaries.values() if s.saps]
    total = sum(counts)
    log10 = math.lgamma(total + 1) / math.log(10)
    for n in counts:
        log10 -= math.lgamma(n + 1) / math.log(10)
    return log10
