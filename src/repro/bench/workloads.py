"""Parameter-sweep workloads: empirical complexity scaling (paper §4.1).

The paper's complexity analysis: the total constraint size is
approximately ``Nbr + Nsap^3`` — linear in the number of conditional
branches and cubic in the number of shared accesses (Frw dominates, with
its ``4·Nr·Nw^2`` worst case on a single hot variable).  This module
measures that empirically: a family of workloads scales the number of
racy accesses to one shared variable, and the sweep records #SAPs,
#constraints and solve time at each size.
"""

from dataclasses import dataclass, field

from repro.core.clap import ClapConfig, ClapPipeline
from repro.constraints.stats import compute_stats
from repro.minilang import compile_source
from repro.solver.smt import solve_constraints

HOT_VAR_TEMPLATE = """
int c = 0;
void worker(int n) {
    for (int i = 0; i < n; i++) {
        int r = c;
        c = r + 1;
    }
}
int main() {
    int t1 = 0;
    int t2 = 0;
    t1 = spawn worker(%d);
    t2 = spawn worker(%d);
    join(t1);
    join(t2);
    assert(c == %d);
    return 0;
}
"""

BRANCHY_TEMPLATE = """
int c = 0;
void worker(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        int r = c;
        if (r %% 2 == 0) { acc = acc + 2; } else { acc = acc - 1; }
        if (r + i > 3) { acc = acc * 2; }
    }
    int w = c;
    c = w + acc;
}
int main() {
    int t1 = 0;
    int t2 = 0;
    t1 = spawn worker(%d);
    t2 = spawn worker(%d);
    join(t1);
    join(t2);
    assert(c == 0);
    return 0;
}
"""


@dataclass
class ScalePoint:
    size: int
    n_saps: int = 0
    n_reads: int = 0
    n_writes: int = 0
    n_constraints: int = 0
    n_branches: int = 0
    solve_time: float = 0.0
    solved: bool = False


def sweep_hot_variable(sizes=(2, 4, 6, 8), solve=True, max_seconds=60.0):
    """Scale racy accesses to one variable: Frw must grow ~cubically."""
    points = []
    for n in sizes:
        src = HOT_VAR_TEMPLATE % (n, n, 2 * n)
        pipeline = ClapPipeline(
            compile_source(src, name="hot%d" % n), ClapConfig(stickiness=0.3)
        )
        recorded = pipeline.record()
        system = pipeline.analyze(recorded)
        stats = compute_stats(system)
        point = ScalePoint(
            size=n,
            n_saps=stats.n_saps,
            n_reads=sum(1 for s in system.saps.values() if s.is_read),
            n_writes=sum(1 for s in system.saps.values() if s.is_write),
            n_constraints=stats.n_constraints,
            n_branches=recorded.result.total_branches(),
        )
        if solve:
            result = solve_constraints(system, max_seconds=max_seconds)
            point.solved = result.ok
            point.solve_time = result.solve_time
        points.append(point)
    return points


def sweep_branches(sizes=(2, 6, 12, 20)):
    """Scale branching on shared reads while keeping writes fixed:
    constraint growth must stay ~linear (each branch adds one path
    condition; Frw grows with Nr but Nw stays constant)."""
    points = []
    for n in sizes:
        src = BRANCHY_TEMPLATE % (n, n)
        pipeline = ClapPipeline(
            compile_source(src, name="branchy%d" % n), ClapConfig(stickiness=0.3)
        )
        recorded = pipeline.record()
        system = pipeline.analyze(recorded)
        stats = compute_stats(system)
        points.append(
            ScalePoint(
                size=n,
                n_saps=stats.n_saps,
                n_constraints=stats.n_constraints
                + stats.n_path_condition_nodes,
                n_branches=recorded.result.total_branches(),
            )
        )
    return points


def fit_power(points, x_attr="n_saps", y_attr="n_constraints"):
    """Least-squares exponent of y ~ x^k over the sweep (log-log fit)."""
    import math

    xs = [math.log(getattr(p, x_attr)) for p in points]
    ys = [math.log(max(getattr(p, y_attr), 1)) for p in points]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den = sum((x - mean_x) ** 2 for x in xs)
    return num / den if den else 0.0


def format_sweep(points, title):
    lines = [title]
    lines.append(
        "%6s %8s %8s %8s %12s %10s"
        % ("size", "#SAPs", "#reads", "#writes", "#constraints", "t-solve")
    )
    for p in points:
        lines.append(
            "%6d %8d %8d %8d %12d %9.2fs"
            % (p.size, p.n_saps, p.n_reads, p.n_writes, p.n_constraints, p.solve_time)
        )
    return "\n".join(lines)
