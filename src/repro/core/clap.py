"""End-to-end CLAP: the paper's three phases as one pipeline.

1. **Record** (:meth:`ClapPipeline.record`): run the program under a seeded
   scheduler with only the thread-local Ball-Larus path recorder attached,
   until a failure manifests.  The recorder's logs are CLAP's entire
   runtime footprint.
2. **Analyze + solve** (:meth:`ClapPipeline.analyze`,
   :meth:`ClapPipeline.solve`): decode the path logs, re-execute each
   thread symbolically, encode ``F = Fpath ∧ Fbug ∧ Fso ∧ Frw ∧ Fmo``, and
   compute a SAP schedule with either the CDCL(T) solver or the
   generate-and-validate algorithm.
3. **Replay** (:meth:`ClapPipeline.replay`): enforce the computed schedule
   deterministically and check the same failure occurs.

:func:`reproduce_bug` is the one-call convenience wrapper used by the
examples and benchmarks.
"""

import time
from dataclasses import dataclass, field

from repro.minilang import compile_source
from repro.minilang.compiler import CompiledProgram
from repro.analysis.escape import shared_variables
from repro.analysis.symexec import execute_recorded_paths, parallel_summaries
from repro.constraints.encoder import encode
from repro.constraints.stats import compute_stats
from repro.runtime.interpreter import Interpreter
from repro.runtime.replay import replay_schedule
from repro.runtime.scheduler import RandomScheduler
from repro.tracing.decoder import decode_log, decode_thread_tokens
from repro.tracing.ball_larus import ProgramPaths
from repro.tracing.recorder import (
    FastPathRecorder,
    PathRecorder,
    RingTraceSink,
)
from repro.solver.parallel import solve_generate_validate
from repro.solver.smt import solve_constraints, solve_constraints_bounded


class ClapError(Exception):
    pass


@dataclass
class ClapConfig:
    """Knobs for the pipeline (defaults follow the paper's setup)."""

    memory_model: str = "sc"
    # Bug-triggering search (the paper's "insert delays, run many times").
    seeds: range = range(500)
    stickiness: float = 0.5
    flush_prob: float = 0.25
    max_steps: int = 2_000_000
    # Solver selection: 'smt' (sequential, Table 1), 'smt-inc' (the
    # incremental bound loop — one SAT instance across the c = 0, 1, 2, …
    # rounds, minimizing context switches best-effort), 'smt-portfolio'
    # (the cube-and-conquer portfolio racing the incremental loop against
    # genval rung probes, rf-prefix cube workers and diversified SAT
    # configurations with learned-clause sharing) or 'genval'
    # (generate-and-validate, Table 3).
    solver: str = "smt"
    # Reproduce the exact observed output: pin the failing thread's read
    # values to those in the "core dump" (the paper's racey methodology —
    # Fbug "could be extracted from the core dump when the program
    # crashed").  Off by default: reproducing the failure site is enough
    # for ordinary bugs, and pinning makes solving much harder.
    pin_observed_reads: bool = False
    record_candidates: int = 4
    max_cs: int = 4
    workers: int = 0
    # Worker processes for --solver smt-portfolio; <= 1 degenerates to
    # the sequential incremental loop (bit-identical to 'smt-inc').
    portfolio_workers: int = 3
    smt_max_seconds: float | None = None
    genval_max_seconds: float | None = None
    genval_max_schedules_per_round: int = 200_000
    genval_max_steps_per_round: int = 4_000_000
    genval_probes_per_round: int = 48
    # Feed the static race analysis (analysis.static_race) into the Frw
    # encoder: candidates proven impossible for race-free site pairs are
    # dropped.  On by default (the pruning is equisatisfiable — see
    # tests/test_properties.py); disable with ``repro reproduce
    # --no-static-prune`` or ClapConfig(static_prune=False).  (The
    # hard-edge happens-before pruning needs no certificate and is
    # always on.)
    static_prune: bool = True
    # Parallel per-thread symbolic execution: >1 fans thread re-execution
    # over a worker pool; traces under symexec_min_blocks decoded basic
    # blocks stay serial regardless (fork overhead dominates below that).
    symexec_workers: int = 0
    symexec_min_blocks: int = 512
    # Flight-recorder mode: bound each thread's retained log to
    # ``ring_bytes`` of encoded trace (None = unbounded classic recording).
    # Sealed ``ring_segment_bytes``-sized segments are evicted oldest-first;
    # each carries a decode anchor so the surviving suffix decodes
    # standalone.  ``prefix_synthesis`` lets the analysis reconstruct the
    # evicted prefix (store/synthesize.py); with it off, a lossy trace is
    # refused rather than silently treated as complete.  ``fast_recorder``
    # selects the batched fast-path token encoder; None = auto (on for
    # ring recording, off otherwise, keeping classic runs byte-stable).
    ring_bytes: int | None = None
    ring_segment_bytes: int = 512
    prefix_synthesis: bool = True
    fast_recorder: bool | None = None


@dataclass
class RecordedExecution:
    """Output of the online phase."""

    seed: int
    result: object  # ExecutionResult
    recorder: PathRecorder
    shared: set
    # Flight-recorder runs: the ring sink's ``info()`` snapshot (budget,
    # per-thread eviction/retention counters, anchors) and the sink itself
    # (for per-segment container serialization).  None for classic runs.
    ring: dict | None = None
    ring_sink: object = None

    @property
    def bug(self):
        return self.result.bug

    @property
    def lossy(self):
        """True when at least one thread's log prefix was evicted."""
        if not self.ring:
            return False
        return any(
            t.get("evicted_tokens", 0) > 0
            for t in self.ring.get("threads", {}).values()
        )

    def log_size_bytes(self):
        return self.recorder.log_size_bytes()


@dataclass
class ClapReport:
    """Everything the experiment harness reports about one reproduction."""

    program_name: str
    memory_model: str
    reproduced: bool = False
    seed: int | None = None
    bug: object = None
    n_threads: int = 0
    n_shared_vars: int = 0
    n_instructions: int = 0
    n_branches: int = 0
    n_saps: int = 0
    n_constraints: int = 0
    n_variables: int = 0
    n_pruned_choice_vars: int = 0
    n_pruned_clauses: int = 0
    context_switches: int = -1
    time_record: float = 0.0
    time_symbolic: float = 0.0
    time_encode: float = 0.0
    time_solve: float = 0.0
    time_replay: float = 0.0
    # Analysis-cache outcome for this run: 'off', 'miss' or 'hit', plus
    # the cache's own counters when one was attached.
    cache_state: str = "off"
    cache_stats: dict = field(default_factory=dict)
    log_bytes: int = 0
    solver: str = ""
    solver_detail: dict = field(default_factory=dict)
    schedule: list = field(default_factory=list)
    failure_reason: str = ""
    # Flight-recorder runs: True when the analyzed trace was a suffix log
    # (some prefix evicted); ``recorder_metrics`` carries the ring sink's
    # counters and ``synthesis`` the prefix-synthesis report per thread.
    lossy: bool = False
    recorder_metrics: dict = field(default_factory=dict)
    synthesis: dict = field(default_factory=dict)


class ClapPipeline:
    def __init__(self, program, config=None):
        if isinstance(program, str):
            program = compile_source(program)
        if not isinstance(program, CompiledProgram):
            raise TypeError("program must be MiniLang source or CompiledProgram")
        self.program = program
        self.config = config or ClapConfig()
        self.shared = shared_variables(program)
        self.paths = ProgramPaths.build(program)
        self.prune_info = None
        if self.config.static_prune:
            from repro.analysis.static_race import compute_prune_info

            self.prune_info = compute_prune_info(program)

    # -- phase 1 ----------------------------------------------------------

    def record_once(self, seed, sink=None):
        """One recorded run under the given scheduler seed.

        ``sink`` (a :class:`repro.tracing.recorder.StreamingTraceSink`)
        streams tokens chunk-by-chunk to durable storage as they are
        recorded; the caller owns closing it.  When the config sets
        ``ring_bytes`` and no sink is given, a
        :class:`~repro.tracing.recorder.RingTraceSink` bounds each
        thread's retained log; the recorder's logs are then the surviving
        *suffix* tokens and the returned execution carries the ring
        metadata the analysis needs.
        """
        cfg = self.config
        if sink is None and cfg.ring_bytes is not None:
            sink = RingTraceSink(
                cfg.ring_bytes, segment_bytes=cfg.ring_segment_bytes
            )
        ring_sink = sink if isinstance(sink, RingTraceSink) else None
        fast = cfg.fast_recorder
        if fast is None:
            fast = ring_sink is not None
        recorder_cls = FastPathRecorder if fast else PathRecorder
        recorder = recorder_cls(
            self.program,
            paths=self.paths,
            sink=sink,
            retain_logs=ring_sink is None,
        )
        scheduler = RandomScheduler(
            seed,
            stickiness=cfg.stickiness,
            flush_prob=cfg.flush_prob,
        )
        interp = Interpreter(
            self.program,
            memory_model=cfg.memory_model,
            scheduler=scheduler,
            shared=self.shared,
            hooks=[recorder],
            max_steps=cfg.max_steps,
        )
        result = interp.run()
        recorder.finalize(interp)
        ring = None
        if ring_sink is not None:
            # The in-memory logs become the *retained suffix*: exactly
            # what a post-mortem reader would decode from the ring.
            recorder.logs = {
                thread: list(ring_sink.suffix_tokens(thread))
                for thread in ring_sink.threads()
            }
            ring = ring_sink.info()
        return RecordedExecution(
            seed=seed,
            result=result,
            recorder=recorder,
            shared=self.shared,
            ring=ring,
            ring_sink=ring_sink,
        )

    def record(self):
        """Retry seeds until a failure manifests (the paper triggers bugs
        with timing delays and repeated runs).  Among the first few failing
        runs, the one with the smallest SAP count is kept — shorter traces
        make the offline phase cheaper without changing the failure."""
        candidates = []
        for seed in self.config.seeds:
            recorded = self.record_once(seed)
            if recorded.bug is not None and recorded.bug.kind == "assertion":
                candidates.append(recorded)
                if len(candidates) >= self.config.record_candidates:
                    break
        if not candidates:
            raise ClapError(
                "no failure manifested in %d seeded runs" % len(self.config.seeds)
            )
        return min(candidates, key=lambda r: r.result.total_saps())

    # -- phase 2 ----------------------------------------------------------

    def _prune_config(self):
        """The Frw prune configuration, as the analysis cache keys it."""
        return {"hb": True, "static": self.prune_info is not None}

    def analyze(self, recorded, cache=None, timings=None):
        """Decode logs, run symbolic execution, encode the constraints.

        ``cache`` (an :class:`repro.store.cache.AnalysisCache`) makes the
        front end content-addressed: a hit deserializes the stored thread
        summaries and constraint system instead of re-running symexec and
        the encoder; a miss stores the fresh result.  ``timings``, when a
        dict, receives the per-phase wall clocks (``symexec``,
        ``encode``) and the cache outcome (``cache``: hit/miss).
        """
        if timings is None:
            timings = {}
        ring = getattr(recorded, "ring", None)
        lossy = bool(getattr(recorded, "lossy", False))
        if lossy and not self.config.prefix_synthesis:
            raise ClapError(
                "trace is a flight-recorder suffix (%s) and prefix "
                "synthesis is disabled; refusing to analyze a lossy log "
                "as if it were complete"
                % ", ".join(
                    "%s: %d tokens evicted" % (t, i.get("evicted_tokens", 0))
                    for t, i in sorted(ring.get("threads", {}).items())
                    if i.get("evicted_tokens", 0)
                )
            )
        material = None
        if cache is not None and lossy:
            # A suffix log's analysis depends on the anchors and the
            # synthesized prefix, which the cache key does not capture;
            # never serve or store a lossy trace from the cache.
            cache = None
            timings["cache"] = "bypass"
        if cache is not None:
            from repro.store.cache import AnalysisCache

            material = AnalysisCache.key_material(
                self.program,
                recorded.recorder,
                self.config.memory_model,
                self._prune_config(),
            )
            t0 = time.monotonic()
            hit = cache.load(material)
            if hit is not None:
                timings["cache"] = "hit"
                timings["symexec"] = 0.0
                timings["encode"] = time.monotonic() - t0
                system = hit["system"]
                if self.config.pin_observed_reads and recorded.bug is not None:
                    self._pin_observed_reads(system, recorded)
                return system
            timings["cache"] = "miss"

        t0 = time.monotonic()
        if ring:
            decoded, synthesis = self._decode_ring(recorded, ring, lossy)
            if synthesis is not None:
                timings["synthesis"] = synthesis.to_json()
        else:
            decoded = decode_log(recorded.recorder)
        timings["lossy"] = lossy
        if self.config.symexec_workers > 1:
            summaries = parallel_summaries(
                self.program,
                decoded,
                self.shared,
                bug=recorded.bug,
                workers=self.config.symexec_workers,
                min_blocks=self.config.symexec_min_blocks,
            )
        else:
            summaries = execute_recorded_paths(
                self.program, decoded, self.shared, bug=recorded.bug
            )
        t1 = time.monotonic()
        timings["symexec"] = t1 - t0
        system = encode(
            summaries,
            self.config.memory_model,
            self.program.symbols,
            self.shared,
            prune=self.prune_info,
        )
        timings["encode"] = time.monotonic() - t1
        if cache is not None:
            from dataclasses import asdict as _asdict

            # Store the pristine system — before pin_observed_reads
            # appends run-specific bug expressions to it.
            cache.store(
                material,
                summaries,
                system,
                stats_dict=_asdict(compute_stats(system)),
            )
        if self.config.pin_observed_reads and recorded.bug is not None:
            self._pin_observed_reads(system, recorded)
        return system

    def _decode_ring(self, recorded, ring, lossy):
        """Anchored suffix decode (+ prefix synthesis when lossy).

        Each thread decodes against its eviction-horizon anchor; threads
        that lost tokens get a synthesized prefix grafted on (refusing —
        via :class:`ClapError` — when the suffix cannot be grounded in
        any legal prefix).  Returns ``(decoded, SynthesisReport | None)``.
        """
        from repro.store.synthesize import (
            PrefixSynthesisError,
            synthesize_prefixes,
        )
        from repro.tracing.logfmt import SegmentAnchor

        recorder = recorded.recorder
        threads = ring.get("threads", {})
        decoded = {}
        for thread_name, tokens in recorder.logs.items():
            info = threads.get(thread_name) or {}
            anchor = info.get("anchor")
            if isinstance(anchor, dict):
                anchor = SegmentAnchor.from_json(anchor)
            if anchor is not None and not anchor.frames:
                anchor = None
            decoded[thread_name] = decode_thread_tokens(
                thread_name,
                tokens,
                recorder.paths,
                recorder.func_names,
                anchor=anchor,
            )
        if not lossy:
            return decoded, None
        try:
            synthesis = synthesize_prefixes(
                self.program, self.paths, decoded, threads
            )
        except PrefixSynthesisError as exc:
            raise ClapError(
                "prefix synthesis failed for the flight-recorder suffix: %s"
                % exc
            ) from exc
        return decoded, synthesis

    def _pin_observed_reads(self, system, recorded):
        """Strengthen Fbug to the exact observed outcome: every read the
        failing thread performed must return the value seen in the crash
        dump.  This is how the paper reproduces racey's *same output*."""
        from repro.analysis.symbolic import mk_binop

        thread = recorded.bug.thread
        observed = recorded.result.saps_by_thread.get(thread, [])
        summary = system.summaries.get(thread)
        if summary is None:
            return
        by_index = {sap.index: sap for sap in observed if sap.kind == "read"}
        for sap in summary.saps:
            if not sap.is_read:
                continue
            runtime = by_index.get(sap.index)
            if runtime is None or runtime.value is None:
                continue
            system.bug_exprs.append(
                mk_binop("==", sap.value, runtime.value)
            )

    @staticmethod
    def _recorder_metrics(recorded):
        """JSON-ready recorder counters for reports (empty for classic)."""
        ring = getattr(recorded, "ring", None)
        if not ring:
            return {}
        threads = {}
        for name, info in sorted(ring.get("threads", {}).items()):
            entry = dict(info)
            anchor = entry.pop("anchor", None)
            if anchor is not None and hasattr(anchor, "to_json"):
                entry["anchor"] = anchor.to_json()
            elif anchor is not None:
                entry["anchor"] = anchor
            threads[name] = entry
        return {
            "ring_bytes": ring.get("ring_bytes"),
            "segment_bytes": ring.get("segment_bytes"),
            "lossy": bool(getattr(recorded, "lossy", False)),
            "segments_written": sum(
                t.get("segments_written", 0) for t in threads.values()
            ),
            "segments_evicted": sum(
                t.get("segments_evicted", 0) for t in threads.values()
            ),
            "bytes_retained": sum(
                t.get("retained_bytes", 0) for t in threads.values()
            ),
            "bytes_total": sum(
                t.get("total_bytes", 0) for t in threads.values()
            ),
            "flushes": sum(t.get("flushes", 0) for t in threads.values()),
            "threads": threads,
        }

    def solve(self, system):
        cfg = self.config
        if cfg.solver == "smt":
            return solve_constraints(system, max_seconds=cfg.smt_max_seconds)
        if cfg.solver == "smt-inc":
            return solve_constraints_bounded(
                system, max_cs=cfg.max_cs, max_seconds=cfg.smt_max_seconds
            )
        if cfg.solver == "smt-portfolio":
            # Imported lazily: the portfolio pulls in the service pool,
            # whose package imports this module.
            from repro.solver.portfolio import solve_constraints_portfolio

            return solve_constraints_portfolio(
                system,
                max_cs=cfg.max_cs,
                workers=cfg.portfolio_workers,
                max_seconds=cfg.smt_max_seconds,
            )
        if cfg.solver == "genval":
            return solve_generate_validate(
                system,
                max_cs=cfg.max_cs,
                workers=cfg.workers,
                max_schedules_per_round=cfg.genval_max_schedules_per_round,
                max_steps_per_round=cfg.genval_max_steps_per_round,
                probes_per_round=cfg.genval_probes_per_round,
                max_seconds=cfg.genval_max_seconds,
            )
        raise ClapError("unknown solver %r" % cfg.solver)

    # -- phase 3 ----------------------------------------------------------

    def replay(self, schedule, expected_bug):
        return replay_schedule(
            self.program,
            schedule,
            memory_model=self.config.memory_model,
            shared=self.shared,
            expected_bug=expected_bug,
        )

    # -- all together -------------------------------------------------------

    def reproduce(self):
        """Run the full pipeline; returns a :class:`ClapReport`."""
        report = ClapReport(
            program_name=self.program.name,
            memory_model=self.config.memory_model,
            solver=self.config.solver,
        )
        t0 = time.monotonic()
        recorded = self.record()
        report.time_record = time.monotonic() - t0
        return self.reproduce_offline(recorded, report=report)

    def reproduce_offline(self, recorded, report=None, cache=None):
        """Phases 2+3 only: reproduce from an already recorded execution.

        ``recorded`` is anything shaped like :class:`RecordedExecution` —
        in particular a :class:`repro.store.corpus.StoredExecution` loaded
        from a ``.clap`` container on disk, which is how the batch service
        reproduces failures long after the recording process is gone.
        ``cache`` (an :class:`repro.store.cache.AnalysisCache`) lets the
        analysis phase skip symexec + encode on content-address hits.

        The recording's memory model is part of its identity: a trace
        validated under TSO only reproduces under TSO semantics, so a
        mismatch with this pipeline's configured model is refused.
        """
        recorded_model = getattr(recorded, "memory_model", None)
        if recorded_model is not None and (
            recorded_model != self.config.memory_model
        ):
            raise ClapError(
                "recording %s was made under memory model %r but this "
                "pipeline is configured for %r; re-open it with a matching "
                "--memory-model (witness schedules are only valid under "
                "the model they were replay-validated on)"
                % (
                    getattr(recorded, "entry_id", "<in-memory>"),
                    recorded_model,
                    self.config.memory_model,
                )
            )
        if report is None:
            report = ClapReport(
                program_name=self.program.name,
                memory_model=self.config.memory_model,
                solver=self.config.solver,
            )
        report.seed = recorded.seed
        report.bug = recorded.bug
        report.log_bytes = recorded.log_size_bytes()
        result = recorded.result
        report.n_threads = len(result.thread_names)
        report.n_shared_vars = len(self.shared)
        report.n_instructions = result.total_instructions()
        report.n_branches = result.total_branches()

        timings = {}
        t0 = time.monotonic()
        system = self.analyze(recorded, cache=cache, timings=timings)
        analyze_total = time.monotonic() - t0
        report.time_symbolic = timings.get("symexec", analyze_total)
        report.time_encode = timings.get("encode", 0.0)
        report.cache_state = timings.get("cache", "off")
        report.lossy = timings.get("lossy", False)
        report.synthesis = timings.get("synthesis", {})
        report.recorder_metrics = self._recorder_metrics(recorded)
        if cache is not None:
            report.cache_stats = cache.stats.as_dict()
        stats = compute_stats(system)
        report.n_saps = stats.n_saps
        report.n_constraints = stats.n_constraints
        report.n_variables = stats.n_variables
        report.n_pruned_choice_vars = stats.n_pruned_choice_vars
        report.n_pruned_clauses = stats.n_pruned_clauses

        t0 = time.monotonic()
        solved = self.solve(system)
        report.time_solve = time.monotonic() - t0
        if not solved.ok:
            report.failure_reason = "solver: " + solved.reason
            return report
        report.schedule = solved.schedule
        report.context_switches = solved.context_switches
        if hasattr(solved, "generated"):
            report.solver_detail = {
                "generated": solved.generated,
                "good": solved.good,
                "rounds": solved.rounds,
            }
        else:
            report.solver_detail = {"iterations": solved.iterations}
            if getattr(solved, "sat_stats", None):
                report.solver_detail["sat_stats"] = solved.sat_stats
            if getattr(solved, "bound", -1) >= 0:
                report.solver_detail["bound"] = solved.bound
            if getattr(solved, "round_stats", None):
                report.solver_detail["round_stats"] = solved.round_stats
            if getattr(solved, "portfolio", None):
                report.solver_detail["portfolio"] = solved.portfolio

        t0 = time.monotonic()
        outcome = self.replay(solved.schedule, recorded.bug)
        report.time_replay = time.monotonic() - t0
        report.reproduced = outcome.reproduced
        if not outcome.reproduced:
            report.failure_reason = "replay did not reproduce the failure"
        return report


def reproduce_bug(program, memory_model="sc", solver="smt", **config_kwargs):
    """One-call CLAP: record a failure of ``program`` and reproduce it.

    ``program`` may be MiniLang source text or a CompiledProgram.
    Returns a :class:`ClapReport`.
    """
    config = ClapConfig(memory_model=memory_model, solver=solver, **config_kwargs)
    return ClapPipeline(program, config).reproduce()
