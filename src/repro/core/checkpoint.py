"""Checkpointed CLAP: solve only the post-checkpoint suffix (paper §6.4).

For long-running programs, the constraint system over the whole execution
becomes intractable; the paper's stated plan is to integrate CLAP with
checkpointing so each segment is solved independently.  This module
implements that plan end to end on our substrate:

* **recording** — the interpreter runs normally with the path recorder
  attached; every ``interval`` steps, at the next *quiescent* point
  (buffers drained as a global fence, no mutex held, nobody parked), the
  full concrete state is snapshotted and the recorder's logs restart with
  ``resume`` tokens (:meth:`PathRecorder.checkpoint`);
* **analysis** — only the suffix after the last checkpoint is decoded;
  threads resume symbolic execution from their snapshotted frames, the
  snapshot memory provides the initial shared values, and threads that
  started/exited before the checkpoint are marked so fork/join
  constraints degrade gracefully;
* **replay** — the deterministic replayer starts from
  :func:`restore_interpreter` and enforces the suffix schedule.

The result: the constraint system's size is bounded by the checkpoint
interval instead of the execution length.
"""

from dataclasses import dataclass, field

from repro.analysis.symexec import execute_recorded_paths
from repro.constraints.encoder import encode
from repro.core.clap import ClapConfig, ClapError, ClapPipeline, RecordedExecution
from repro.runtime.checkpoint import is_quiescent, take_checkpoint
from repro.runtime.interpreter import Interpreter
from repro.runtime.replay import replay_schedule
from repro.runtime.scheduler import RandomScheduler
from repro.tracing.decoder import decode_log
from repro.tracing.recorder import PathRecorder


@dataclass
class CheckpointedRecording:
    """A failing run recorded with periodic checkpoints."""

    seed: int
    result: object  # ExecutionResult
    recorder: PathRecorder  # holds the SUFFIX logs
    checkpoint: object | None  # last Checkpoint (None if none was taken)
    n_checkpoints: int = 0
    prefix_archives: list = field(default_factory=list)

    @property
    def bug(self):
        return self.result.bug


class CheckpointClapPipeline(ClapPipeline):
    """ClapPipeline variant that records with checkpoints and analyzes
    only the suffix after the last one."""

    def __init__(self, program, config=None, interval_steps=400):
        super().__init__(program, config)
        self.interval_steps = interval_steps

    # -- phase 1 ----------------------------------------------------------

    def record_once(self, seed):
        recorder = PathRecorder(self.program, paths=self.paths)
        scheduler = RandomScheduler(
            seed,
            stickiness=self.config.stickiness,
            flush_prob=self.config.flush_prob,
        )
        interp = Interpreter(
            self.program,
            memory_model=self.config.memory_model,
            scheduler=scheduler,
            shared=self.shared,
            hooks=[recorder],
            max_steps=self.config.max_steps,
        )
        state = {"last": 0, "checkpoint": None, "count": 0, "archives": []}

        def maybe_checkpoint(interp):
            if interp.steps - state["last"] < self.interval_steps:
                return
            if interp.bug is not None or not is_quiescent(interp):
                return
            state["checkpoint"] = take_checkpoint(interp)
            state["archives"].append(recorder.checkpoint(interp))
            state["count"] += 1
            state["last"] = interp.steps

        result = interp.run(step_hook=maybe_checkpoint)
        recorder.finalize(interp)
        return CheckpointedRecording(
            seed=seed,
            result=result,
            recorder=recorder,
            checkpoint=state["checkpoint"],
            n_checkpoints=state["count"],
            prefix_archives=state["archives"],
        )

    def record(self):
        candidates = []
        for seed in self.config.seeds:
            recorded = self.record_once(seed)
            if recorded.bug is not None and recorded.bug.kind == "assertion":
                candidates.append(recorded)
                if len(candidates) >= self.config.record_candidates:
                    break
        if not candidates:
            raise ClapError(
                "no failure manifested in %d seeded runs" % len(self.config.seeds)
            )
        return min(candidates, key=lambda r: r.result.total_saps())

    # -- phase 2 ----------------------------------------------------------

    def analyze(self, recorded):
        decoded = decode_log(recorded.recorder)
        checkpoint = recorded.checkpoint
        summaries = execute_recorded_paths(
            self.program,
            decoded,
            self.shared,
            bug=recorded.bug,
            checkpoint=checkpoint,
        )
        preexisting = checkpoint.preexisting() if checkpoint else frozenset()
        preexited = checkpoint.preexited() if checkpoint else frozenset()
        system = encode(
            summaries,
            self.config.memory_model,
            self.program.symbols,
            self.shared,
            preexisting=preexisting,
            preexited=preexited,
        )
        if checkpoint is not None:
            # The snapshot is the suffix's initial memory.
            for addr in list(system.initial_values):
                system.initial_values[addr] = checkpoint.memory[addr]
        if self.config.pin_observed_reads and recorded.bug is not None:
            self._pin_observed_reads(system, recorded)
        return system

    # -- phase 3 ----------------------------------------------------------

    def replay(self, schedule, expected_bug, checkpoint=None):
        return replay_schedule(
            self.program,
            schedule,
            memory_model=self.config.memory_model,
            shared=self.shared,
            expected_bug=expected_bug,
            checkpoint=checkpoint,
        )

    def reproduce(self):
        """Full checkpointed pipeline; returns (report, recording)."""
        recorded = self.record()
        system = self.analyze(recorded)
        solved = self.solve(system)
        if not solved.ok:
            return None, recorded
        outcome = self.replay(
            solved.schedule, recorded.bug, checkpoint=recorded.checkpoint
        )
        return outcome, recorded


def reproduce_with_checkpoints(
    program, memory_model="sc", interval_steps=400, **config_kwargs
):
    """Convenience wrapper mirroring :func:`repro.reproduce_bug`."""
    config = ClapConfig(memory_model=memory_model, **config_kwargs)
    pipeline = CheckpointClapPipeline(program, config, interval_steps=interval_steps)
    return pipeline.reproduce()
