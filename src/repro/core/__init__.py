"""The CLAP pipeline: record, analyze, solve, replay."""

from repro.core.clap import (
    ClapConfig,
    ClapPipeline,
    ClapReport,
    RecordedExecution,
    reproduce_bug,
)

__all__ = [
    "ClapConfig",
    "ClapPipeline",
    "ClapReport",
    "RecordedExecution",
    "reproduce_bug",
]
