"""Witness search without a recorded failure (``repro explore``).

CLAP proper starts from a *failing* recorded run: the log fixes control
flow and the observed assertion failure becomes Fbug.  Explore inverts
the pipeline.  The static bug-pattern pass (SR301/302/303 in
``analysis.static_race.patterns``) proposes *violation predicates* —
line-level descriptions of a suspicious interleaving.  We then:

1. record *passing* runs until one covers the predicate's sites (its
   per-thread paths visit the span/read/wait lines in question),
2. re-run the per-thread symbolic execution with no bug, retarget one
   assert as the bug (``bug_expr = ¬cond``, exactly the surgery
   ``SymbolicExecutor._finalize_bug`` performs on a failing run),
3. encode the usual constraint system and append the predicate as
   *goal clauses* — unit clauses over order (``OLt``) or signal-wait
   (``SWChoice``) atoms that force the suspicious interleaving,
4. search with variable-and-thread bounding (rung 0 pins every read
   that cannot feed the target to its observed concrete value; rung 1
   lifts the pins) stacked on the solver's context-switch bound ladder,
5. validate every model by deterministic replay and store the witness
   (a self-contained failing recording) in the corpus.

The recorded control flow is preserved by construction — only the
assert outcome flips — so a witness is a genuine schedule of the
*observed* paths that drives the program into the asserted failure.
"""

import copy
import dataclasses
import time
from dataclasses import dataclass, field

from repro.minilang import compile_source
from repro.minilang.compiler import CompiledProgram
from repro.analysis.static_race import find_bug_patterns, robustness_patterns
from repro.analysis.symbolic import free_syms, mk_binop, mk_not
from repro.analysis.symexec import execute_recorded_paths
from repro.constraints.encoder import assign_atom_numbering, encode
from repro.constraints.model import Clause, Lit, OLt, SWChoice
from repro.core.clap import ClapConfig, ClapPipeline
from repro.runtime import events as ev
from repro.runtime.memory import MEMORY_MODELS, PSO, SC, TSO
from repro.runtime.replay import ReplayError, replay_schedule
from repro.solver.smt import solve_constraints_bounded
from repro.tracing.decoder import decode_log
from repro.tracing.recorder import PathRecorder

# Version of the `repro explore --json` payload (golden-file tested).
EXPLORE_SCHEMA_VERSION = 1

# Predicates the driver knows how to compile into goal clauses.
_EXPLORABLE = ("SR301", "SR302", "SR303", "SR401", "SR402")

# The weakest memory model under which each predicate's interleaving can
# exist at all: SR3xx witnesses are schedule bugs (searchable under SC);
# SR401 needs a store buffer (TSO); SR402 needs per-address buffers (PSO).
_MIN_MODEL = {
    "SR301": SC,
    "SR302": SC,
    "SR303": SC,
    "SR401": TSO,
    "SR402": PSO,
}

_MODEL_RANK = {model: rank for rank, model in enumerate(MEMORY_MODELS)}


class ExploreError(Exception):
    pass


@dataclass
class ExploreConfig:
    """Knobs for the witness search."""

    memory_model: str = "sc"
    # Passing-run scan: seeds tried while looking for recordings that
    # cover a predicate's sites.
    max_seeds: int = 64
    stickiness: float = 0.5
    flush_prob: float = 0.25
    max_steps: int = 2_000_000
    # Context-switch bound ladder (forwarded to solve_constraints_bounded).
    max_cs: int = 6
    smt_max_seconds: float | None = None
    # Thread bounding: cap on (span instance x remote site) combinations
    # tried per predicate, and on retargetable asserts per combination.
    max_combos: int = 16
    max_asserts: int = 3
    # Static Frw pruning for the encoded system (same switch as
    # ``repro reproduce --static-prune``).
    static_prune: bool = True
    # Restrict the search to these predicate codes (empty: all known).
    codes: tuple = ()

    def clap_config(self):
        return ClapConfig(
            memory_model=self.memory_model,
            stickiness=self.stickiness,
            flush_prob=self.flush_prob,
            max_steps=self.max_steps,
            max_cs=self.max_cs,
            smt_max_seconds=self.smt_max_seconds,
            static_prune=self.static_prune,
        )


@dataclass
class TargetOutcome:
    """Search result for one violation predicate."""

    code: str
    var: str
    func: str
    description: str
    # 'witness' | 'no-witness' | 'no-run' | 'no-assert' | 'model-gated'
    status: str = "no-run"
    # Model the winning attempt was encoded, solved and replayed under
    # (the search ladders from the predicate's weakest viable model up
    # to the configured target); empty until a witness is found.
    memory_model: str = ""
    seed: int = -1  # passing seed whose paths backed the witness search
    assert_thread: str = ""
    assert_line: int = 0
    schedule: list = field(default_factory=list)  # ["t#i", ...]
    entry_id: str = ""  # corpus entry, when stored
    replay_validated: bool = False
    rung: int = -1  # variable-bounding rung of the winning attempt
    attempts: int = 0
    schedules_enumerated: int = 0  # solver iterations across attempts
    bound: int = -1  # context-switch bound of the winning attempt
    time_search: float = 0.0

    @property
    def found(self):
        return self.status == "witness"

    def to_json(self):
        return {
            "code": self.code,
            "var": self.var,
            "func": self.func,
            "description": self.description,
            "status": self.status,
            "memory_model": self.memory_model,
            "seed": self.seed,
            "assert_thread": self.assert_thread,
            "assert_line": self.assert_line,
            "schedule": list(self.schedule),
            "entry_id": self.entry_id,
            "replay_validated": self.replay_validated,
            "rung": self.rung,
            "attempts": self.attempts,
            "schedules_enumerated": self.schedules_enumerated,
            "bound": self.bound,
            "time_search": round(self.time_search, 6),
        }


@dataclass
class ExploreReport:
    """Output of :func:`explore_program`."""

    program: str
    memory_model: str
    seeds_scanned: int = 0
    passing_runs: int = 0
    targets: list = field(default_factory=list)
    time_total: float = 0.0

    @property
    def n_witnesses(self):
        return sum(1 for t in self.targets if t.found)

    def to_json(self):
        # Versioned and deterministically ordered: targets sort by
        # (code, func, var, description); consumers key off
        # ``schema_version``, which bumps whenever a key is added,
        # removed, or the sort order changes.
        targets = sorted(
            self.targets, key=lambda t: (t.code, t.func, t.var, t.description)
        )
        return {
            "schema_version": EXPLORE_SCHEMA_VERSION,
            "program": self.program,
            "memory_model": self.memory_model,
            "seeds_scanned": self.seeds_scanned,
            "passing_runs": self.passing_runs,
            "n_targets": len(self.targets),
            "n_witnesses": self.n_witnesses,
            "targets": [t.to_json() for t in targets],
            "time_total": round(self.time_total, 6),
        }


@dataclass
class _PassingRun:
    seed: int
    recorded: object  # RecordedExecution
    summaries: dict  # thread -> ThreadSummary (bug=None)


def _addr_var(addr):
    """The variable name behind a SAP address (scalar or element)."""
    if isinstance(addr, tuple):
        return addr[0]
    return addr


class ExploreDriver:
    """Drives the predicate -> passing run -> goal encode -> ladder ->
    replay-validate -> corpus loop for one program."""

    def __init__(self, program, config=None, patterns=None, name=None):
        self.config = config or ExploreConfig()
        self.source = program if isinstance(program, str) else None
        if isinstance(program, str):
            program = compile_source(program, name=name)
        if not isinstance(program, CompiledProgram):
            raise TypeError("program must be MiniLang source or CompiledProgram")
        self.pipeline = ClapPipeline(program, self.config.clap_config())
        self.program = self.pipeline.program
        if patterns is None:
            patterns = find_bug_patterns(self.program)
            # Weak-memory robustness findings are explorable too: each
            # SR401/SR402 cycle compiles into a reordering goal.
            weak = robustness_patterns(self.program, self.config.memory_model)
            for diag, pred in zip(weak.diagnostics, weak.predicates):
                patterns.add(diag, pred)
        self.patterns = patterns
        self._runs = []  # materialized passing runs, in seed order
        self._seed_iter = iter(range(self.config.max_seeds))
        self.seeds_scanned = 0

    # -- passing-run scan --------------------------------------------------

    def _iter_runs(self):
        """Yield passing runs, recording new seeds lazily on demand."""
        for run in self._runs:
            yield run
        for seed in self._seed_iter:
            self.seeds_scanned += 1
            recorded = self.pipeline.record_once(seed)
            if recorded.result.bug is not None:
                continue  # a failing run: plain CLAP handles those
            decoded = decode_log(recorded.recorder)
            summaries = execute_recorded_paths(
                self.program, decoded, self.pipeline.shared, bug=None
            )
            run = _PassingRun(seed=seed, recorded=recorded, summaries=summaries)
            self._runs.append(run)
            yield run

    # -- goal compilation --------------------------------------------------

    def _goal_combos(self, pred, summaries):
        """Compile ``pred`` against one run's SAPs: a list of goal-atom
        tuples, each a conjunction forcing the suspicious interleaving.
        Empty when the run's recorded paths never visit the sites."""
        saps = [s for summ in summaries.values() for s in summ.saps]
        if pred.code == "SR301":
            return self._combos_atomicity(pred, saps)
        if pred.code == "SR302":
            return self._combos_order(pred, saps)
        if pred.code == "SR303":
            return self._combos_lost_notify(pred, saps)
        if pred.code in ("SR401", "SR402"):
            return self._combos_reorder(pred, summaries)
        return []

    def _combos_atomicity(self, pred, saps):
        reads = [
            s
            for s in saps
            if s.is_read
            and s.line == pred.read_line
            and _addr_var(s.addr) == pred.var
        ]
        writes = [
            s
            for s in saps
            if s.is_write
            and s.line == pred.write_line
            and _addr_var(s.addr) == pred.var
        ]
        remotes = [
            s
            for s in saps
            if s.is_write
            and s.line in pred.remote_write_lines
            and _addr_var(s.addr) == pred.var
        ]
        combos = []
        for r in reads:
            # Nearest following same-thread write: the span instance.
            after = [
                w for w in writes if w.thread == r.thread and w.index > r.index
            ]
            if not after:
                continue
            w = min(after, key=lambda s: s.index)
            for w2 in remotes:
                if w2.thread == r.thread:
                    continue
                # w' lands strictly inside the span: r < w' < w.
                combos.append((OLt(r.uid, w2.uid), OLt(w2.uid, w.uid)))
        return combos[: self.config.max_combos]

    def _combos_order(self, pred, saps):
        reads = [
            s
            for s in saps
            if s.is_read
            and s.line == pred.read_line
            and _addr_var(s.addr) == pred.var
        ]
        inits = [
            s
            for s in saps
            if s.is_write
            and s.line in pred.init_write_lines
            and _addr_var(s.addr) == pred.var
        ]
        combos = []
        for r in reads:
            for w in inits:
                if w.thread == r.thread:
                    continue
                # The consumer reads before the initializing write lands.
                combos.append((OLt(r.uid, w.uid),))
        return combos[: self.config.max_combos]

    def _combos_lost_notify(self, pred, saps):
        waits = [
            s
            for s in saps
            if s.kind == ev.WAIT
            and s.line == pred.wait_line
            and s.addr == pred.condvar
        ]
        signals = [
            s
            for s in saps
            if s.kind in (ev.SIGNAL, ev.BROADCAST)
            and s.line in pred.signal_lines
            and s.addr == pred.condvar
        ]
        combos = []
        for w in waits:
            for sig in signals:
                if sig.thread == w.thread:
                    continue
                # The wait is woken by the unprotected signal.
                combos.append((SWChoice(sig.uid, w.uid),))
        return combos[: self.config.max_combos]

    def _combos_reorder(self, pred, summaries):
        """SR401/SR402 goals: pin the critical cycle's delayed edge by
        committing a po-later access *before* the delayed store in
        memory order — UNSAT under SC (Fmo chains the whole program
        order), satisfiable exactly when the target model's store
        buffers may delay the store."""
        want_read = pred.code == "SR401"
        lines = pred.reorder_read_lines if want_read else pred.reorder_write_lines
        combos = []
        for thread in sorted(summaries):
            seq = summaries[thread].saps
            for i, w in enumerate(seq):
                if not (
                    w.is_write
                    and w.line == pred.write_line
                    and _addr_var(w.addr) == pred.var
                ):
                    continue
                for later in seq[i + 1 :]:
                    if not later.is_data:
                        if later.kind == ev.YIELD:
                            continue  # yield is not a fence
                        break  # sync SAP: the buffers drain here
                    if later.addr == w.addr:
                        continue  # same address: FIFO/forwarding pins it
                    if later.line not in lines:
                        continue
                    if later.is_read is want_read:
                        combos.append((OLt(later.uid, w.uid),))
        return combos[: self.config.max_combos]

    # -- assert retargeting ------------------------------------------------

    def _candidate_asserts(self, pred, summaries):
        """(thread, assert-index) pairs worth retargeting, best first:
        asserts whose condition reads a focus variable, then the rest."""
        focus = set(pred.focus_vars) | {pred.var}
        scored = []
        for thread, summary in summaries.items():
            for idx, (cond, _line, _ci) in enumerate(summary.asserts):
                syms = free_syms(cond)
                vars_read = {
                    _addr_var(summary.reads[name].addr)
                    for name in syms
                    if name in summary.reads
                }
                scored.append((0 if vars_read & focus else 1, thread, idx))
        scored.sort()
        return [(t, i) for _, t, i in scored[: self.config.max_asserts]]

    def _retarget(self, summaries, thread, assert_idx):
        """Flip assert #assert_idx of ``thread`` into the bug predicate —
        the same surgery ``_finalize_bug`` performs on a failing run.
        Mutates (deep-copied) ``summaries``; returns (cond, line)."""
        summary = summaries[thread]
        cond, line, _ci = summary.asserts[assert_idx]
        summary.bug_expr = mk_not(cond)
        summary.bug_line = line
        for i in range(len(summary.conditions) - 1, -1, -1):
            c = summary.conditions[i]
            if c.line == line and c.expr == cond:
                del summary.conditions[i]
                break
        return cond, line

    # -- variable bounding -------------------------------------------------

    def _pin_reads(self, system, run, pred, bug_cond):
        """Rung 0 of variable bounding: pin every read that cannot feed
        the goal — not of a focus variable and not read by the target
        assert — to the concrete value the passing run observed.  Returns
        the number of pins added."""
        focus = set(pred.focus_vars) | {pred.var}
        protected = free_syms(bug_cond)
        pinned = 0
        for thread, summary in system.summaries.items():
            observed = {
                sap.index: sap
                for sap in run.recorded.result.saps_by_thread.get(thread, [])
                if sap.kind == ev.READ
            }
            for sap in summary.saps:
                if not sap.is_read:
                    continue
                if _addr_var(sap.addr) in focus:
                    continue
                name = getattr(sap.value, "name", None)
                if name is not None and name in protected:
                    continue
                runtime = observed.get(sap.index)
                if runtime is None or runtime.value is None:
                    continue
                system.bug_exprs.append(mk_binop("==", sap.value, runtime.value))
                pinned += 1
        return pinned

    # -- one solve attempt -------------------------------------------------

    def _encode_goal(self, run, pred, thread, assert_idx, goal_atoms, model):
        """Build the constraint system for one (assert, combo) attempt
        under ``model``.  Returns (system, cond, line) or None when a
        SWChoice goal names a pair the encoder does not consider a
        signal-wait candidate."""
        summaries = copy.deepcopy(run.summaries)
        cond, line = self._retarget(summaries, thread, assert_idx)
        system = encode(
            summaries,
            model,
            self.program.symbols,
            self.pipeline.shared,
            prune=self.pipeline.prune_info,
        )
        for atom in goal_atoms:
            if isinstance(atom, SWChoice):
                candidates = set(system.sw_candidates.get(atom.wait, ()))
                if atom.signal not in candidates:
                    return None
            system.clauses.append(Clause([Lit(atom)], origin="explore-goal"))
        # Goal atoms may be new to the system; renumber so the solver sees
        # them (OLt atoms are canonicalized by the numbering pass).
        assign_atom_numbering(system)
        return system, cond, line

    def _attempt(self, run, pred, thread, assert_idx, goal_atoms, rung, model, out):
        built = self._encode_goal(run, pred, thread, assert_idx, goal_atoms, model)
        if built is None:
            return None
        system, cond, line = built
        if rung == 0:
            if self._pin_reads(system, run, pred, cond) == 0:
                return None  # identical to rung 1; skip
        out.attempts += 1
        res = solve_constraints_bounded(
            system,
            max_cs=self.config.max_cs,
            max_seconds=self.config.smt_max_seconds,
        )
        out.schedules_enumerated += res.iterations
        if not res.ok:
            return None
        return res, line, thread

    # -- replay validation + storage --------------------------------------

    def _validate(self, res, pred, thread, line, corpus, model, out):
        """Replay the model's schedule under ``model``; accept only when
        the retargeted assert actually fails.  Stores the witness
        recording on success, stamped with the validating model."""
        recorder = PathRecorder(self.program, paths=self.pipeline.paths)
        try:
            outcome = replay_schedule(
                self.program,
                res.schedule,
                memory_model=model,
                shared=self.pipeline.shared,
                expected_bug=None,
                hooks=[recorder],
            )
        except ReplayError:
            return False
        bug = outcome.result.bug
        if bug is None or bug.kind != "assertion" or bug.line != line:
            return False
        out.status = "witness"
        out.memory_model = model
        out.assert_thread = bug.thread
        out.assert_line = line
        out.schedule = ["%s#%d" % uid for uid in res.schedule]
        out.replay_validated = True
        out.bound = res.bound
        if corpus is not None and self.source is not None:
            entry = corpus.add_recorded(
                self.source,
                recorder,
                outcome.result,
                name=self.program.name,
                config=dataclasses.replace(
                    self.pipeline.config, memory_model=model
                ),
                tag=pred.code.lower(),
                provenance={
                    "mode": "explore",
                    "code": pred.code,
                    "var": pred.var,
                    "func": pred.func,
                    "description": pred.description,
                    "memory_model": model,
                    "seed": out.seed,
                    "rung": out.rung,
                    "bound": res.bound,
                },
            )
            out.entry_id = entry.entry_id
        return True

    # -- per-predicate search ----------------------------------------------

    def _model_ladder(self, pred):
        """Memory models to attempt for ``pred``, strongest first: from
        the weakest model that can exhibit the predicate's interleaving
        up to the configured target.  SAT is monotone down the ladder
        (weaker models drop Fmo constraints), so the search stops at the
        first witness and records the strongest model that admits it."""
        lo = _MODEL_RANK[_MIN_MODEL[pred.code]]
        hi = _MODEL_RANK[self.config.memory_model]
        return [m for m in MEMORY_MODELS if lo <= _MODEL_RANK[m] <= hi]

    def _search(self, diag, pred, corpus):
        out = TargetOutcome(
            code=pred.code,
            var=pred.var,
            func=pred.func,
            description=pred.description,
        )
        t0 = time.monotonic()
        ladder = self._model_ladder(pred)
        if not ladder:
            # The predicate needs a weaker model than the search target
            # (e.g. an SR401 finding under --memory-model sc).
            out.status = "model-gated"
            out.time_search = time.monotonic() - t0
            return out
        for run in self._iter_runs():
            combos = self._goal_combos(pred, run.summaries)
            if not combos:
                continue  # this run's paths never visit the sites
            asserts = self._candidate_asserts(pred, run.summaries)
            if not asserts:
                if out.status == "no-run":
                    out.status = "no-assert"
                continue
            out.seed = run.seed
            out.status = "no-witness"
            done = False
            for model in ladder:
                for thread, assert_idx in asserts:
                    for goal_atoms in combos:
                        for rung in (0, 1):  # pinned reads, then unpinned
                            hit = self._attempt(
                                run,
                                pred,
                                thread,
                                assert_idx,
                                goal_atoms,
                                rung,
                                model,
                                out,
                            )
                            if hit is None:
                                continue
                            res, line, _t = hit
                            out.rung = rung
                            if self._validate(
                                res, pred, thread, line, corpus, model, out
                            ):
                                done = True
                                break
                        if done:
                            break
                    if done:
                        break
                if done:
                    break
            if done:
                break
        out.time_search = time.monotonic() - t0
        return out

    def run(self, corpus=None):
        t0 = time.monotonic()
        report = ExploreReport(
            program=self.program.name, memory_model=self.config.memory_model
        )
        for diag, pred in zip(self.patterns.diagnostics, self.patterns.predicates):
            if pred.code not in _EXPLORABLE:
                continue
            if self.config.codes and pred.code not in self.config.codes:
                continue
            report.targets.append(self._search(diag, pred, corpus))
        report.seeds_scanned = self.seeds_scanned
        report.passing_runs = len(self._runs)
        report.time_total = time.monotonic() - t0
        return report


def explore_program(program, config=None, corpus=None, patterns=None, name=None):
    """Static-analysis-guided witness search: one call does the whole
    analyze -> record-passing -> encode-goal -> solve -> replay -> store
    loop and returns an :class:`ExploreReport`."""
    driver = ExploreDriver(program, config=config, patterns=patterns, name=name)
    return driver.run(corpus=corpus)
