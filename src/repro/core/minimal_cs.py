"""Minimal-context-switch schedule search (paper Section 4.2).

"We can start from the constraint with zero thread context switch, and
increment the context switch number when the solver fails to return a
solution.  We repeat this process until a solution is found.  In this way,
we can always produce a schedule with the fewest thread context switches
among all the bug-reproducing schedules."

The generate-and-validate engine already implements the incrementing loop;
this module packages it as the post-pass the pipeline uses to tighten a
schedule computed by the monolithic CDCL(T) solver, whose greedy
linearization is only heuristically frugal with switches.
"""

from dataclasses import dataclass

from repro.constraints.context_switch import count_context_switches
from repro.solver.parallel import solve_generate_validate


@dataclass
class MinimizeResult:
    schedule: list
    context_switches: int
    improved: bool
    searched_rounds: int


def minimize_context_switches(
    system,
    baseline_schedule,
    max_seconds=30.0,
    probes_per_round=16,
    workers=0,
):
    """Try to beat ``baseline_schedule``'s switch count.

    Runs the incrementing-bound search up to one switch *below* the
    baseline; returns the better schedule if one exists within budget,
    otherwise the baseline unchanged.
    """
    baseline_cs = count_context_switches(baseline_schedule, system.summaries)
    if baseline_cs <= 0:
        return MinimizeResult(baseline_schedule, baseline_cs, False, 0)
    result = solve_generate_validate(
        system,
        max_cs=baseline_cs - 1,
        probes_per_round=probes_per_round,
        workers=workers,
        max_seconds=max_seconds,
    )
    if result.ok and result.context_switches < baseline_cs:
        return MinimizeResult(
            result.schedule, result.context_switches, True, result.rounds
        )
    return MinimizeResult(baseline_schedule, baseline_cs, False, result.rounds)
