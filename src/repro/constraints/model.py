"""Constraint-system data model.

Atoms
-----
``OLt(a, b)``
    The order variable of SAP ``a`` is less than that of SAP ``b``
    (``a``/``b`` are SAP uids).  Because the schedule is a *total* order of
    distinct SAPs, the negation of ``OLt(a, b)`` is ``OLt(b, a)`` — the
    order theory exploits this.
``RFChoice(read, source)``
    Read SAP ``read`` returns the value of write SAP ``source``
    (or the initial memory value when ``source`` is :data:`INIT`).
``SWChoice(signal, wait)``
    Signal SAP ``signal`` is the one that wakes wait SAP ``wait``
    (the paper's binary ``b`` variables).

A :class:`Clause` is a disjunction of literals over these atoms.  Value
constraints (``Fpath``/``Fbug``) stay as symbolic expressions; the lazy
value theory evaluates them once reads-from choices fix every read's value.
"""

from dataclasses import dataclass, field

INIT = "<init>"


def addr_key(addr):
    """Structured sort key for a SAP address tuple.

    Addresses are ``(name,)`` for scalars and ``(name, index)`` for array
    elements.  Sorting by the name first and the raw index tail second
    keeps the encoder's iteration order deterministic without depending
    on ``repr`` formatting (which would put ``('a', 10)`` before
    ``('a', 2)`` and change with any repr tweak).
    """
    return (addr[0], addr[1:])


@dataclass(frozen=True)
class OLt:
    a: tuple
    b: tuple

    def __repr__(self):
        return "O%r < O%r" % (self.a, self.b)

    def negated(self):
        return OLt(self.b, self.a)


@dataclass(frozen=True)
class RFChoice:
    read: tuple
    source: object  # write uid or INIT

    def __repr__(self):
        return "rf(%r <- %r)" % (self.read, self.source)


@dataclass(frozen=True)
class SWChoice:
    signal: tuple
    wait: tuple

    def __repr__(self):
        return "sw(%r ~> %r)" % (self.signal, self.wait)


@dataclass(frozen=True)
class Lit:
    """A literal: an atom with a polarity."""

    atom: object
    positive: bool = True

    def negate(self):
        return Lit(self.atom, not self.positive)

    def __repr__(self):
        return repr(self.atom) if self.positive else "!(%r)" % (self.atom,)


@dataclass
class Clause:
    """Disjunction of literals, tagged with its origin for diagnostics."""

    lits: list
    origin: str = ""

    def __repr__(self):
        return "(%s)" % " | ".join(repr(l) for l in self.lits)


@dataclass
class ExactlyOne:
    """Exactly one of ``lits`` holds (used for reads-from candidates)."""

    lits: list
    origin: str = ""


@dataclass
class AtMostOne:
    """At most one of ``lits`` holds (a signal wakes at most one wait)."""

    lits: list
    origin: str = ""


@dataclass
class ConstraintSystem:
    """Everything the solvers need about one recorded execution."""

    memory_model: str
    # uid -> SymSAP, for every SAP of every thread.
    saps: dict = field(default_factory=dict)
    # {thread: ThreadSummary}
    summaries: dict = field(default_factory=dict)
    # Unconditional order facts (Fmo + fixed parts of Fso): list of OLt.
    hard_edges: list = field(default_factory=list)
    # Conditional structure (Frw, locking, signal/wait): CNF-ish.
    clauses: list = field(default_factory=list)
    exactly_one: list = field(default_factory=list)
    at_most_one: list = field(default_factory=list)
    # read uid -> candidate sources (write uids and/or INIT).
    rf_candidates: dict = field(default_factory=dict)
    # wait uid -> candidate signal uids.
    sw_candidates: dict = field(default_factory=dict)
    # addr -> initial concrete value.
    initial_values: dict = field(default_factory=dict)
    # Value-level constraints: all threads' path conditions, plus the bug.
    conditions: list = field(default_factory=list)  # PathCondition list
    bug_exprs: list = field(default_factory=list)  # SymExpr list (conjoined)
    # Per-thread intra-thread order edges (the SAP-"tree" of Section 4.3),
    # {thread: list[(uid, uid)]}; used by the schedule generators.
    thread_order: dict = field(default_factory=dict)
    # Checkpointed suffix solving: threads that started before the
    # checkpoint (their suffix has a synthetic resume-start but no fork),
    # and threads that already exited (joins on them are pre-satisfied).
    preexisting: frozenset = frozenset()
    preexited: frozenset = frozenset()
    # PruneStats from the Frw pruner: the always-on HB must-order layer
    # (constraints.hb), plus the static critical-section rules when
    # --static-prune supplied a certificate.  None only for hb=False raw
    # encodings.
    prune_stats: object = None
    # Eviction-horizon relaxation counters (flight-recorder logs only):
    # {"synth_saps", "dropped_conditions", "relaxed_reads",
    #  "pinned_synth_reads"}.  None for complete logs.
    horizon_stats: dict | None = None
    # The HBClosure of the hard edges computed during encoding; the SMT
    # solver reuses it for fixed-order reachability instead of rebuilding
    # its own transitive closure.  None for hb=False encodings.
    hb_closure: object = None
    # Canonical atom-key -> SAT-variable id, assigned deterministically by
    # ``encoder.assign_atom_numbering``.  Every SAT instance built from
    # this system adopts it, so variable ids are stable across bound
    # rounds and across fresh/incremental solver builds — the invariant
    # that makes learned-clause reuse sound and runs comparable.
    atom_numbering: dict = field(default_factory=dict)

    # -- convenience -----------------------------------------------------

    def sap(self, uid):
        return self.saps[uid]

    def all_uids(self):
        return list(self.saps)

    def reads(self):
        return [s for s in self.saps.values() if s.is_read]

    def writes(self):
        return [s for s in self.saps.values() if s.is_write]

    def threads(self):
        return list(self.summaries)

    def num_order_vars(self):
        return len(self.saps)

    def num_value_vars(self):
        return sum(1 for s in self.saps.values() if s.is_read)

    def read_of_sym(self, sym_name):
        for summary in self.summaries.values():
            sap = summary.reads.get(sym_name)
            if sap is not None:
                return sap
        raise KeyError(sym_name)
