"""Constraint encoding of one recorded execution (paper Section 3).

The full formula is ``F = Fpath ∧ Fbug ∧ Fso ∧ Frw ∧ Fmo`` over two kinds
of unknowns: an order variable ``O_s`` per SAP and a value variable per
read.  :func:`encode` builds a :class:`ConstraintSystem` from the per-thread
symbolic summaries; the solvers in :mod:`repro.solver` consume it.
"""

from repro.constraints.model import (
    Clause,
    ConstraintSystem,
    Lit,
    OLt,
    RFChoice,
    SWChoice,
    INIT,
)
from repro.constraints.encoder import encode
from repro.constraints.context_switch import (
    count_context_switches,
    thread_segments,
)
from repro.constraints.stats import ConstraintStats

__all__ = [
    "Clause",
    "ConstraintSystem",
    "Lit",
    "OLt",
    "RFChoice",
    "SWChoice",
    "INIT",
    "encode",
    "count_context_switches",
    "thread_segments",
    "ConstraintStats",
]
