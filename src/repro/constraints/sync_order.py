"""Synchronization-order constraints Fso (paper Section 3.2, Figure 5).

Two families:

Partial-order constraints
    ``fork < start`` and ``exit < join`` are single fixed edges (a fork
    maps to exactly one start, a join to exactly one exit).  Wait/signal is
    a *choice*: a wait maps to one of the candidate signals on the same
    condvar from another thread, each signal wakes at most one wait (the
    paper's binary ``b`` variables).  We additionally require the mapped
    signal to come after the wait's own mutex-release (the unlock SAP the
    runtime commits when entering ``wait()``): a signal that fires before
    the waiter is parked is lost under pthread semantics, and a schedule
    violating this cannot be replayed.

Locking constraints
    Lock/unlock pairs on the same mutex form *regions* (program-order
    pairing per thread; a region may be open if the failure stopped the
    thread while holding the lock).  Two regions must not overlap:
    ``O_u1 < O_l2  ∨  O_u2 < O_l1``.  This pairwise non-overlap encoding is
    feasibility-equivalent to the paper's acquire-chain formula and has the
    same quadratic size.
"""

from repro.runtime import events as ev
from repro.constraints.model import AtMostOne, Clause, Lit, OLt, SWChoice


class SyncEncodingError(Exception):
    pass


def encode_sync_order(summaries, preexited=frozenset()):
    """Build Fso.  Returns (hard_edges, clauses, at_most_one, sw_candidates).

    ``preexited``: threads that exited before a checkpoint — joins on them
    are already satisfied and contribute no constraint."""
    hard = []
    clauses = []
    at_most_one = []
    sw_candidates = {}

    by_kind = {}
    for summary in summaries.values():
        for sap in summary.saps:
            by_kind.setdefault(sap.kind, []).append(sap)

    _encode_fork_join(summaries, by_kind, hard, preexited)
    _encode_wait_signal(summaries, by_kind, hard, clauses, at_most_one, sw_candidates)
    _encode_locks(summaries, by_kind, clauses, hard)
    return hard, clauses, at_most_one, sw_candidates


def _find_start_exit(summaries):
    starts = {}
    exits = {}
    for thread, summary in summaries.items():
        for sap in summary.saps:
            if sap.kind == ev.START:
                starts[thread] = sap
            elif sap.kind == ev.EXIT:
                exits[thread] = sap
    return starts, exits


def _encode_fork_join(summaries, by_kind, hard, preexited=frozenset()):
    starts, exits = _find_start_exit(summaries)
    for sap in by_kind.get(ev.FORK, ()):
        child = sap.addr
        start = starts.get(child)
        if start is None:
            # The child never ran (or its log is absent): nothing to order.
            continue
        hard.append(OLt(sap.uid, start.uid))
    for sap in by_kind.get(ev.JOIN, ()):
        child = sap.addr
        exit_sap = exits.get(child)
        if exit_sap is None:
            if child in preexited:
                continue  # exited before the checkpoint: join pre-satisfied
            raise SyncEncodingError(
                "join on thread %s whose exit is not in the recorded paths" % child
            )
        hard.append(OLt(exit_sap.uid, sap.uid))


def _wait_release_unlock(summary, wait_sap):
    """The unlock SAP the runtime commits immediately before a wait SAP."""
    index = wait_sap.index
    if index == 0:
        raise SyncEncodingError("wait SAP with no preceding unlock")
    prev = summary.saps[index - 1]
    if prev.kind != ev.UNLOCK:
        raise SyncEncodingError(
            "wait SAP %r not preceded by its release unlock" % (wait_sap,)
        )
    return prev


def _encode_wait_signal(summaries, by_kind, hard, clauses, at_most_one, sw_candidates):
    signals = by_kind.get(ev.SIGNAL, [])
    broadcasts = by_kind.get(ev.BROADCAST, [])
    waits = by_kind.get(ev.WAIT, [])
    for wait in waits:
        release = _wait_release_unlock(summaries[wait.thread], wait)
        candidates = [
            s
            for s in signals + broadcasts
            if s.addr == wait.addr and s.thread != wait.thread
        ]
        if not candidates:
            raise SyncEncodingError(
                "wait on %r by %s has no candidate signal" % (wait.addr, wait.thread)
            )
        sw_candidates[wait.uid] = [s.uid for s in candidates]
        choice_lits = []
        for sig in candidates:
            choice = SWChoice(sig.uid, wait.uid)
            choice_lits.append(Lit(choice))
            # choice -> release < signal < wait.
            clauses.append(
                Clause(
                    [Lit(choice, False), Lit(OLt(release.uid, sig.uid))],
                    origin="sw-release",
                )
            )
            clauses.append(
                Clause(
                    [Lit(choice, False), Lit(OLt(sig.uid, wait.uid))],
                    origin="sw-order",
                )
            )
        clauses.append(Clause(choice_lits, origin="sw-some"))
    # Each plain signal wakes at most one wait; broadcasts wake any number.
    signal_waits = {}
    for wait_uid, sigs in sw_candidates.items():
        for sig_uid in sigs:
            signal_waits.setdefault(sig_uid, []).append(wait_uid)
    broadcast_uids = {b.uid for b in by_kind.get(ev.BROADCAST, [])}
    for sig_uid, wait_uids in signal_waits.items():
        if sig_uid in broadcast_uids or len(wait_uids) < 2:
            continue
        at_most_one.append(
            AtMostOne(
                [Lit(SWChoice(sig_uid, w)) for w in wait_uids], origin="sw-once"
            )
        )


def _lock_regions(summary):
    """Pair lock/unlock SAPs per mutex, program order.  Returns
    {mutex: [(lock_uid, unlock_uid-or-None)]}."""
    regions = {}
    open_locks = {}
    for sap in summary.saps:
        if sap.kind == ev.LOCK:
            if sap.addr in open_locks:
                raise SyncEncodingError(
                    "thread %s re-locks %r it already holds" % (sap.thread, sap.addr)
                )
            open_locks[sap.addr] = sap
        elif sap.kind == ev.UNLOCK:
            lock = open_locks.pop(sap.addr, None)
            if lock is None:
                # An unlock whose lock predates the trace cannot happen in
                # MiniLang (threads start lock-free).
                raise SyncEncodingError(
                    "thread %s unlocks %r it does not hold" % (sap.thread, sap.addr)
                )
            regions.setdefault(sap.addr, []).append((lock.uid, sap.uid))
    for addr, lock in open_locks.items():
        regions.setdefault(addr, []).append((lock.uid, None))
    return regions


def _encode_locks(summaries, by_kind, clauses, hard):
    all_regions = {}
    for summary in summaries.values():
        for mutex, regions in _lock_regions(summary).items():
            all_regions.setdefault(mutex, []).extend(regions)
    for mutex, regions in sorted(all_regions.items()):
        open_regions = [r for r in regions if r[1] is None]
        if len(open_regions) > 1:
            raise SyncEncodingError(
                "two threads hold %r at the end of the trace" % mutex
            )
        for i, (l1, u1) in enumerate(regions):
            for (l2, u2) in regions[i + 1 :]:
                if l1[0] == l2[0]:
                    continue  # same thread: program order already serializes
                if u1 is None:
                    hard.append(OLt(u2, l1))
                elif u2 is None:
                    hard.append(OLt(u1, l2))
                else:
                    clauses.append(
                        Clause(
                            [Lit(OLt(u1, l2)), Lit(OLt(u2, l1))],
                            origin="lock-excl",
                        )
                    )
