"""Static-analysis-driven Frw pruning (off by default, ``--static-prune``).

Every rule here removes only reads-from candidates (or clauses) that are
*false in every model* of the remaining system, so the pruned encoding is
equisatisfiable with the full one and yields the same schedules — the
property test in ``tests/test_properties.py`` checks exactly that.

Two sources of "false in every model":

**Must-order** — the transitive closure of the system's hard edges
(Fmo per-model program order plus Fso's fork/start/exit/join edges).
A hard edge holds in every model by construction, so:

* R1: ``rf(r <- w)`` is impossible when ``must(r -> w)`` (a read cannot
  return a write that is forced after it);
* R2: ``w`` is *shadowed* when some other candidate ``w'`` satisfies
  ``must(w -> w') ∧ must(w' -> r)`` — ``w'`` always sits in between, so
  the rf-nomid clause for ``w`` can never hold;
* R3: the INIT option is impossible when some candidate satisfies
  ``must(w -> r)`` (a write always precedes the read).

**Critical sections** — for a variable the static lockset pass proved
*consistently protected* by mutex ``m`` (every static access site holds
``m``), Fso's region-exclusion clauses order whole critical sections
atomically, hence in every model:

* R4: a read with a same-thread earlier write ``w0`` in its *own*
  dynamic region of ``m`` must read (its region's latest) ``w0`` —
  any other thread's candidate sits in a region wholly before the
  read's region (then ``w0`` is in between) or wholly after (then it
  follows the read);
* R5: an other-thread candidate ``w`` that is *not* the last write to
  the address in its own region cannot be read outside that region —
  its region-successor write is always in between.

The must-order rules additionally require the static analyzer to have
proven the (read, write) site pair race-free — strictly a restriction
(the prunes are logically valid regardless), but it keeps every pruned
pair inside the statically-certified set, which is the contract the
encoder advertises.  Same-thread pairs are trivially race-free (program
order), and SAPs whose ``(var, line, kind)`` key the analyzer never saw
are never pruned.
"""

from dataclasses import dataclass, field

from repro.runtime import events as ev


@dataclass
class PruneStats:
    """Counters surfaced through ``constraints.stats.ConstraintStats``."""

    candidates_pruned: int = 0  # write candidates removed (R1/R2/R4/R5)
    init_pruned: int = 0  # INIT options removed (R3/R4)
    forced_reads: int = 0  # reads pinned to a single source (R4)
    clauses_pruned: int = 0  # rf clauses skipped as hard-edge implied
    pairs_considered: int = 0  # (read, candidate) pairs examined

    @property
    def choice_vars_pruned(self):
        """Reduction in n_choice_vars vs. the unpruned encoding."""
        return self.candidates_pruned + self.init_pruned


class RWPruner:
    """Decides, per read, which rf candidates survive.

    ``hard_edges`` is the system's accumulated list of
    :class:`~repro.constraints.model.OLt` facts — Fmo and Fso hard parts
    must already be encoded when the pruner is built (the encoder
    guarantees the ordering).
    """

    def __init__(self, summaries, hard_edges, static_info):
        self.static_info = static_info
        self.stats = PruneStats()
        self._descendants = _must_order_closure(hard_edges)
        self._regions, self._region_writes = _dynamic_regions(summaries)

    # -- must-order ------------------------------------------------------

    def must_before(self, uid_a, uid_b):
        desc = self._descendants.get(uid_a)
        return desc is not None and uid_b in desc

    # -- static verdicts -------------------------------------------------

    @staticmethod
    def _key(sap):
        return (sap.addr[0], sap.line, sap.kind)

    def race_free(self, sap_a, sap_b):
        if sap_a.thread == sap_b.thread:
            return True  # program order: never a race dynamically
        return self.static_info.race_free(self._key(sap_a), self._key(sap_b))

    def _consistent_mutexes(self, sap):
        """Mutexes statically held at EVERY site of sap's variable, but only
        when this SAP's own site is known to the analyzer."""
        if self._key(sap) not in self.static_info.known_keys:
            return frozenset()
        return self.static_info.protecting_locks(sap.addr[0])

    def _region_of(self, sap, mutex):
        """This SAP's dynamic critical region of ``mutex`` (None if not
        held at the time of the access)."""
        return self._regions.get(sap.uid, {}).get(mutex)

    # -- the filter ------------------------------------------------------

    def filter_candidates(self, read, candidates):
        """Return (kept_candidates, include_init, forced_candidate)."""
        self.stats.pairs_considered += len(candidates) + 1

        forced = self._region_forced_source(read, candidates)
        if forced is not None:
            self.stats.forced_reads += 1
            self.stats.candidates_pruned += sum(
                1 for w in candidates if w.uid != forced.uid
            )
            self.stats.init_pruned += 1
            return [forced], False, forced

        kept = []
        for w in candidates:
            if self.race_free(read, w) and self._candidate_impossible(
                read, w, candidates
            ):
                self.stats.candidates_pruned += 1
            else:
                kept.append(w)

        include_init = True
        if any(
            self.must_before(w.uid, read.uid) and self.race_free(read, w)
            for w in kept
        ):
            include_init = False  # R3: some write always precedes the read
            self.stats.init_pruned += 1
        if not kept and not include_init:
            include_init = True  # defensive: never leave a read sourceless
            self.stats.init_pruned -= 1
        return kept, include_init, None

    def _candidate_impossible(self, read, w, candidates):
        if self.must_before(read.uid, w.uid):
            return True  # R1
        for other in candidates:
            if other is w:
                continue
            if self.must_before(w.uid, other.uid) and self.must_before(
                other.uid, read.uid
            ):
                return True  # R2: shadowed
        return self._dead_region_write(read, w)

    def _region_forced_source(self, read, candidates):
        """R4: reads with a same-thread earlier write in their own critical
        region of a consistently-protecting mutex are pinned to it."""
        for mutex in sorted(self._consistent_mutexes(read)):
            region = self._region_of(read, mutex)
            if region is None:
                continue
            best = None
            for w in candidates:
                if w.thread != read.thread or w.index > read.index:
                    continue
                if self._region_of(w, mutex) != region:
                    continue
                if best is None or w.index > best.index:
                    best = w
            if best is None:
                continue
            # Every other-thread candidate must provably hold the mutex too
            # (true whenever its site is known, since the lock consistently
            # protects the variable) — otherwise forcing is unsound.
            if all(
                w.thread == read.thread
                or mutex in self._consistent_mutexes(w)
                for w in candidates
            ):
                return best
        return None

    def _dead_region_write(self, read, w):
        """R5: an other-thread candidate shadowed inside its own region."""
        if w.thread == read.thread:
            return False
        for mutex in sorted(self._consistent_mutexes(read)):
            if self._region_of(read, mutex) is None:
                continue
            if mutex not in self._consistent_mutexes(w):
                continue
            region = self._region_of(w, mutex)
            if region is None:
                continue
            later = self._region_writes.get((region, w.addr), ())
            if any(index > w.index for index in later):
                return True
        return False

    # -- clause-level skips (redundant, not just impossible) -------------

    def nomid_clause_redundant(self, read, w, other):
        """rf-nomid(read<-w vs other) holds in every model?"""
        if self.must_before(other.uid, w.uid) or self.must_before(
            read.uid, other.uid
        ):
            self.stats.clauses_pruned += 1
            return True
        return False

    def before_clause_redundant(self, read, w):
        """rf-before(read<-w) holds in every model?"""
        if self.must_before(w.uid, read.uid):
            self.stats.clauses_pruned += 1
            return True
        return False

    def init_clause_redundant(self, read, w):
        """rf-init's OLt(read, w) disjunct holds in every model?"""
        if self.must_before(read.uid, w.uid):
            self.stats.clauses_pruned += 1
            return True
        return False


def _must_order_closure(hard_edges):
    """{uid: set of uids provably after it} from the hard-edge DAG.

    Falls back to an empty closure (no pruning) if the edges are somehow
    cyclic — they never should be, since the recorded schedule satisfies
    all of them, but a pruner must fail safe.
    """
    unique = {(edge.a, edge.b) for edge in hard_edges}
    succs = {}
    indegree = {}
    for a, b in unique:
        succs.setdefault(a, set()).add(b)
        indegree.setdefault(a, indegree.get(a, 0))
        indegree[b] = indegree.get(b, 0) + 1
    nodes = set(indegree)
    # Kahn topological order.
    order = []
    ready = sorted((n for n in nodes if indegree[n] == 0), reverse=True)
    degree = dict(indegree)
    while ready:
        node = ready.pop()
        order.append(node)
        for succ in succs.get(node, ()):
            degree[succ] -= 1
            if degree[succ] == 0:
                ready.append(succ)
    if len(order) != len(nodes):
        return {}  # cycle: refuse to prune anything
    descendants = {}
    for node in reversed(order):
        acc = set()
        for succ in succs.get(node, ()):
            acc.add(succ)
            acc |= descendants.get(succ, set())
        if acc:
            descendants[node] = acc
    return descendants


def _dynamic_regions(summaries):
    """Per-SAP held critical regions, from the recorded lock/unlock SAPs.

    Returns ``(regions, region_writes)`` where ``regions`` maps a SAP uid
    to ``{mutex: region_id}`` for each mutex held when it executed, and
    ``region_writes`` maps ``(region_id, addr)`` to the indices of writes
    to ``addr`` inside that region.  Region ids are unique per dynamic
    acquisition, so two SAPs share one iff no release of the mutex
    happened between them — ``wait`` splits regions naturally because
    symbolic execution desugars it into unlock/wait/lock SAPs.
    """
    regions = {}
    region_writes = {}
    counter = 0
    for thread, summary in summaries.items():
        held = {}
        for sap in summary.saps:
            if sap.kind == ev.LOCK:
                counter += 1
                held[sap.addr] = (thread, sap.addr, counter)
            elif sap.kind == ev.UNLOCK:
                held.pop(sap.addr, None)
            elif sap.kind in (ev.READ, ev.WRITE) and held:
                regions[sap.uid] = dict(held)
                if sap.kind == ev.WRITE:
                    for region in held.values():
                        region_writes.setdefault(
                            (region, sap.addr), []
                        ).append(sap.index)
    return regions, region_writes
