"""Static-analysis-driven Frw pruning (the ``--static-prune`` layer).

The *must-order* rules R1/R2/R3 — pruning reads-from candidates the
hard-edge transitive closure already decides — live in
:class:`repro.constraints.hb.HBPruner` and run on every encoding, no
static analysis required.  This module layers the **critical-section**
rules on top, which do need the static lockset pass: for a variable it
proved *consistently protected* by mutex ``m`` (every static access site
holds ``m``), Fso's region-exclusion clauses order whole critical
sections atomically, hence in every model:

* R4: a read with a same-thread earlier write ``w0`` in its *own*
  dynamic region of ``m`` must read (its region's latest) ``w0`` —
  any other thread's candidate sits in a region wholly before the
  read's region (then ``w0`` is in between) or wholly after (then it
  follows the read);
* R5: an other-thread candidate ``w`` that is *not* the last write to
  the address in its own region cannot be read outside that region —
  its region-successor write is always in between.

Every rule removes only candidates (or clauses) that are false in every
model of the remaining system, so the pruned encoding stays
equisatisfiable with the full one and yields the same schedules — the
property test in ``tests/test_properties.py`` checks exactly that.
"""

from repro.constraints.hb import HBClosure, HBPruner, PruneStats  # noqa: F401
from repro.runtime import events as ev


class RWPruner(HBPruner):
    """The HB must-order rules plus the static critical-section rules.

    Built by the encoder when ``--static-prune`` supplies a
    ``StaticPruneInfo``; shares the encoding's :class:`HBClosure` (pass
    ``closure=``), or builds one from ``hard_edges`` — Fmo and Fso hard
    parts must already be encoded when the pruner is built (the encoder
    guarantees the ordering).
    """

    def __init__(self, summaries, hard_edges=None, static_info=None, closure=None):
        if closure is None:
            uids = [
                sap.uid
                for summary in summaries.values()
                for sap in summary.saps
            ]
            closure = HBClosure(uids, hard_edges or ())
        super().__init__(closure)
        self.static_info = static_info
        self._regions, self._region_writes = _dynamic_regions(summaries)

    # -- static verdicts -------------------------------------------------

    @staticmethod
    def _key(sap):
        return (sap.addr[0], sap.line, sap.kind)

    def race_free(self, sap_a, sap_b):
        if sap_a.thread == sap_b.thread:
            return True  # program order: never a race dynamically
        return self.static_info.race_free(self._key(sap_a), self._key(sap_b))

    def _consistent_mutexes(self, sap):
        """Mutexes statically held at EVERY site of sap's variable, but only
        when this SAP's own site is known to the analyzer."""
        if self._key(sap) not in self.static_info.known_keys:
            return frozenset()
        return self.static_info.protecting_locks(sap.addr[0])

    def _region_of(self, sap, mutex):
        """This SAP's dynamic critical region of ``mutex`` (None if not
        held at the time of the access)."""
        return self._regions.get(sap.uid, {}).get(mutex)

    # -- the region hooks HBPruner.filter_candidates calls ---------------

    def _region_forced_source(self, read, candidates):
        """R4: reads with a same-thread earlier write in their own critical
        region of a consistently-protecting mutex are pinned to it."""
        for mutex in sorted(self._consistent_mutexes(read)):
            region = self._region_of(read, mutex)
            if region is None:
                continue
            best = None
            for w in candidates:
                if w.thread != read.thread or w.index > read.index:
                    continue
                if self._region_of(w, mutex) != region:
                    continue
                if best is None or w.index > best.index:
                    best = w
            if best is None:
                continue
            # Every other-thread candidate must provably hold the mutex too
            # (true whenever its site is known, since the lock consistently
            # protects the variable) — otherwise forcing is unsound.
            if all(
                w.thread == read.thread
                or mutex in self._consistent_mutexes(w)
                for w in candidates
            ):
                return best
        return None

    def _dead_region_write(self, read, w):
        """R5: an other-thread candidate shadowed inside its own region."""
        if w.thread == read.thread:
            return False
        for mutex in sorted(self._consistent_mutexes(read)):
            if self._region_of(read, mutex) is None:
                continue
            if mutex not in self._consistent_mutexes(w):
                continue
            region = self._region_of(w, mutex)
            if region is None:
                continue
            later = self._region_writes.get((region, w.addr), ())
            if any(index > w.index for index in later):
                return True
        return False


def _must_order_closure(hard_edges):
    """{uid: set of uids provably after it} from the hard-edge DAG.

    The set-based reference implementation of the transitive closure —
    :class:`repro.constraints.hb.HBClosure` replaces it on the encoding
    hot path, and the differential tests check the two agree edge for
    edge.  Falls back to an empty closure (no pruning) if the edges are
    somehow cyclic.
    """
    unique = {(edge.a, edge.b) for edge in hard_edges}
    succs = {}
    indegree = {}
    for a, b in unique:
        succs.setdefault(a, set()).add(b)
        indegree.setdefault(a, indegree.get(a, 0))
        indegree[b] = indegree.get(b, 0) + 1
    nodes = set(indegree)
    # Kahn topological order.
    order = []
    ready = sorted((n for n in nodes if indegree[n] == 0), reverse=True)
    degree = dict(indegree)
    while ready:
        node = ready.pop()
        order.append(node)
        for succ in succs.get(node, ()):
            degree[succ] -= 1
            if degree[succ] == 0:
                ready.append(succ)
    if len(order) != len(nodes):
        return {}  # cycle: refuse to prune anything
    descendants = {}
    for node in reversed(order):
        acc = set()
        for succ in succs.get(node, ()):
            acc.add(succ)
            acc |= descendants.get(succ, set())
        if acc:
            descendants[node] = acc
    return descendants


def _dynamic_regions(summaries):
    """Per-SAP held critical regions, from the recorded lock/unlock SAPs.

    Returns ``(regions, region_writes)`` where ``regions`` maps a SAP uid
    to ``{mutex: region_id}`` for each mutex held when it executed, and
    ``region_writes`` maps ``(region_id, addr)`` to the indices of writes
    to ``addr`` inside that region.  Region ids are unique per dynamic
    acquisition, so two SAPs share one iff no release of the mutex
    happened between them — ``wait`` splits regions naturally because
    symbolic execution desugars it into unlock/wait/lock SAPs.
    """
    regions = {}
    region_writes = {}
    counter = 0
    for thread, summary in summaries.items():
        held = {}
        for sap in summary.saps:
            if sap.kind == ev.LOCK:
                counter += 1
                held[sap.addr] = (thread, sap.addr, counter)
            elif sap.kind == ev.UNLOCK:
                held.pop(sap.addr, None)
            elif sap.kind in (ev.READ, ev.WRITE) and held:
                regions[sap.uid] = dict(held)
                if sap.kind == ev.WRITE:
                    for region in held.values():
                        region_writes.setdefault(
                            (region, sap.addr), []
                        ).append(sap.index)
    return regions, region_writes
