"""Happens-before closure of the hard order edges, with O(1) queries.

The encoder accumulates *hard* edges — Fmo's per-model program order plus
Fso's fork/start/exit/join must-edges — before Frw is built.  Those edges
hold in **every** model of the system, so their transitive closure is a
certificate usable for pruning: any reads-from candidate or clause the
closure already decides can be dropped from the encoding without changing
satisfiability (see :class:`HBPruner`).

The closure is computed once per encoding as a *chain decomposition with
per-node chain clocks*, the vector-clock generalization that stays exact
on partial per-thread orders:

1. Topologically sort the hard-edge DAG (Kahn).
2. Greedily decompose it into chains (vertex-disjoint paths): each node
   extends a chain whose current tail is one of its predecessors, else it
   starts a new chain.  Under SC the chains are essentially the threads;
   under TSO/PSO — where one thread's hard order splits into read and
   per-address write chains — the decomposition follows those sub-chains
   automatically.  This matters for soundness: a plain per-thread
   ``(thread, index)`` interval comparison would claim orderings TSO/PSO
   do not guarantee.
3. For every node ``b`` keep a clock: ``clock[b][c]`` = the maximum chain
   position among chain-``c`` nodes that provably happen before ``b``.

``must_before(a, b)`` is then one array lookup: ``a`` happens before
``b`` iff ``clock[b][chain(a)] >= pos(a)`` — exact in both directions
because every chain is a real path of hard edges.  Construction is
O((V + E) · chains); queries are O(1).

A cyclic hard-edge set means the recording itself is inconsistent; the
closure fails safe (``cyclic`` set, no ordering claims) and the solver's
own reachability pass still reports the contradiction as unsat.
"""

from dataclasses import dataclass


@dataclass
class PruneStats:
    """Counters surfaced through ``constraints.stats.ConstraintStats``.

    All counts are relative to the *raw* (completely unpruned) encoding,
    whichever pruner produced them — the always-on HB layer alone, or the
    HB layer plus the static critical-section rules.
    """

    candidates_pruned: int = 0  # write candidates removed (R1/R2/R4/R5)
    init_pruned: int = 0  # INIT options removed (R3/R4)
    forced_reads: int = 0  # reads pinned to a single source (R4)
    clauses_pruned: int = 0  # rf clauses skipped as hard-edge implied
    pairs_considered: int = 0  # (read, candidate) pairs examined
    # Share of candidates_pruned owed to the static region rules (R4/R5)
    # rather than the unconditional must-order rules.
    region_candidates_pruned: int = 0

    @property
    def choice_vars_pruned(self):
        """Reduction in n_choice_vars vs. the unpruned encoding."""
        return self.candidates_pruned + self.init_pruned


class HBClosure:
    """Transitive closure of the hard edges via chain clocks."""

    def __init__(self, uids, hard_edges):
        index = {}
        for uid in uids:
            if uid not in index:
                index[uid] = len(index)
        # Hard edges may mention uids the caller did not list (defensive);
        # include them so closure queries never KeyError.
        pairs = set()
        for edge in hard_edges:
            a, b = (edge.a, edge.b) if hasattr(edge, "a") else edge
            if a not in index:
                index[a] = len(index)
            if b not in index:
                index[b] = len(index)
            pairs.add((index[a], index[b]))
        n = len(index)
        self._index = index
        self.n_nodes = n
        succ = [[] for _ in range(n)]
        preds = [[] for _ in range(n)]
        indeg = [0] * n
        for ia, ib in pairs:
            succ[ia].append(ib)
            preds[ib].append(ia)
            indeg[ib] += 1

        # Kahn topological order.  FIFO over node creation order keeps the
        # traversal deterministic and roughly program-ordered, which keeps
        # the greedy chain count near the per-thread minimum.
        order = [i for i in range(n) if indeg[i] == 0]
        head = 0
        degree = list(indeg)
        while head < len(order):
            node = order[head]
            head += 1
            for nxt in succ[node]:
                degree[nxt] -= 1
                if degree[nxt] == 0:
                    order.append(nxt)
        self.cyclic = len(order) != n
        if self.cyclic:
            # Fail safe: claim nothing.  The solver's reachability pass
            # independently detects the cycle and reports unsat.
            self._chain = self._pos = self._clock = None
            self.n_chains = 0
            return

        # Greedy chain decomposition in topological order.
        chain = [-1] * n
        pos = [0] * n
        tails = []  # chain id -> current tail node
        for node in order:
            best = -1
            for p in preds[node]:
                if tails[chain[p]] == p and (best < 0 or pos[p] > pos[best]):
                    best = p
            if best >= 0:
                chain[node] = chain[best]
                pos[node] = pos[best] + 1
                tails[chain[best]] = node
            else:
                chain[node] = len(tails)
                tails.append(node)
        k = len(tails)
        self._chain = chain
        self._pos = pos
        self.n_chains = k

        # Clock propagation: clock[b][c] = max position of a chain-c node
        # that strictly happens before b (-1 when none does).
        clock = [None] * n
        for node in order:
            row = [-1] * k
            for p in preds[node]:
                prow = clock[p]
                for c in range(k):
                    if prow[c] > row[c]:
                        row[c] = prow[c]
                if pos[p] > row[chain[p]]:
                    row[chain[p]] = pos[p]
            clock[node] = row
        self._clock = clock

    def must_before(self, a, b):
        """True iff hard edges force SAP ``a`` strictly before ``b``."""
        if self.cyclic:
            return False
        ia = self._index.get(a)
        ib = self._index.get(b)
        if ia is None or ib is None or ia == ib:
            return False
        return self._clock[ib][self._chain[ia]] >= self._pos[ia]

    # The SMT solver's fixed-order reachability interface.
    reaches = must_before


class HBPruner:
    """Always-on Frw pruning from the hard-edge must-order alone.

    Every rule removes only reads-from candidates (or clauses) that are
    *false in every model* (or true in every model) of the remaining
    system, so the pruned encoding is equisatisfiable with the full one
    and yields the same schedules — no static race-freeness certificate
    is needed, because hard edges hold unconditionally:

    * R1: ``rf(r <- w)`` is impossible when ``must(r -> w)`` (a read
      cannot return a write that is forced after it);
    * R2: ``w`` is *shadowed* when some other candidate ``w'`` satisfies
      ``must(w -> w') ∧ must(w' -> r)`` — ``w'`` always sits in between,
      so the rf-nomid clause for ``w`` can never hold;
    * R3: the INIT option is impossible when some candidate satisfies
      ``must(w -> r)`` (a write always precedes the read).

    Dropping a shadowed candidate also drops the rf-nomid clauses in
    which it appears as the *middle* write; those remain implied because
    for any kept choice the shadowing chain ends in a kept candidate
    whose own nomid clause subsumes them.

    :class:`repro.constraints.prune.RWPruner` layers the static
    critical-section rules (R4/R5) on top by overriding the two region
    hooks; the shared closure is computed once by the encoder.
    """

    def __init__(self, closure):
        self.hb = closure
        self.stats = PruneStats()

    def must_before(self, uid_a, uid_b):
        return self.hb.must_before(uid_a, uid_b)

    # -- static-analysis hooks (no-ops without a certificate) ------------

    def _region_forced_source(self, read, candidates):
        return None

    def _dead_region_write(self, read, w):
        return False

    # -- the filter ------------------------------------------------------

    def filter_candidates(self, read, candidates):
        """Return (kept_candidates, include_init, forced_candidate)."""
        self.stats.pairs_considered += len(candidates) + 1

        forced = self._region_forced_source(read, candidates)
        if forced is not None:
            self.stats.forced_reads += 1
            removed = sum(1 for w in candidates if w.uid != forced.uid)
            self.stats.candidates_pruned += removed
            self.stats.region_candidates_pruned += removed
            self.stats.init_pruned += 1
            return [forced], False, forced

        kept = []
        for w in candidates:
            if self._candidate_impossible(read, w, candidates):
                self.stats.candidates_pruned += 1
            else:
                kept.append(w)

        include_init = True
        if any(self.must_before(w.uid, read.uid) for w in kept):
            include_init = False  # R3: some write always precedes the read
            self.stats.init_pruned += 1
        if not kept and not include_init:
            include_init = True  # defensive: never leave a read sourceless
            self.stats.init_pruned -= 1
        return kept, include_init, None

    def _candidate_impossible(self, read, w, candidates):
        if self.must_before(read.uid, w.uid):
            return True  # R1
        for other in candidates:
            if other is w:
                continue
            if self.must_before(w.uid, other.uid) and self.must_before(
                other.uid, read.uid
            ):
                return True  # R2: shadowed
        if self._dead_region_write(read, w):
            self.stats.region_candidates_pruned += 1
            return True
        return False

    # -- clause-level skips (redundant, not just impossible) -------------

    def nomid_clause_redundant(self, read, w, other):
        """rf-nomid(read<-w vs other) holds in every model?"""
        if self.must_before(other.uid, w.uid) or self.must_before(
            read.uid, other.uid
        ):
            self.stats.clauses_pruned += 1
            return True
        return False

    def before_clause_redundant(self, read, w):
        """rf-before(read<-w) holds in every model?"""
        if self.must_before(w.uid, read.uid):
            self.stats.clauses_pruned += 1
            return True
        return False

    def init_clause_redundant(self, read, w):
        """rf-init's OLt(read, w) disjunct holds in every model?"""
        if self.must_before(read.uid, w.uid):
            self.stats.clauses_pruned += 1
            return True
        return False
