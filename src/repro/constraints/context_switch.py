"""Thread context-switch accounting (paper Section 4.2).

The paper bounds and minimizes *preemptive* context switches by grouping
each thread's SAPs into segments delimited by must-interleave operations
(wait, join, exit — operations after/before which a switch is forced, not
preemptive) and counting the segments that end up interleaved in the
schedule.

``count_context_switches(schedule, summaries)`` implements exactly that
formula: the number of segments whose SAPs are not contiguous in the
schedule.  It is used both to report the ``#cs`` column of Table 1 and as
the bound check during preemption-bounded schedule generation.
"""

from repro.runtime import events as ev

# Kinds that delimit segments: switching at these points is forced.
_MUST_INTERLEAVE = ev.MUST_INTERLEAVE_KINDS


def thread_segments(saps):
    """Split one thread's program-order SAP list into segments.

    Each must-interleave SAP closes the current segment (it becomes the
    segment's last element); the next SAP opens a new one.  Fork is
    included because the child's start makes a switch after it
    non-preemptive; start delimits trivially as the first SAP.
    """
    segments = []
    current = []
    for sap in saps:
        current.append(sap.uid)
        if sap.kind in _MUST_INTERLEAVE:
            segments.append(current)
            current = []
    if current:
        segments.append(current)
    return segments


def count_context_switches(schedule, summaries):
    """Number of interleaved segments == preemptive context switches.

    ``schedule`` is a SAP-uid sequence; a segment is *interleaved* when, in
    the schedule, some other thread's SAP falls between its first and last
    SAPs.
    """
    position = {uid: i for i, uid in enumerate(schedule)}
    switches = 0
    for thread, summary in summaries.items():
        for segment in thread_segments(summary.saps):
            inside = [position[uid] for uid in segment if uid in position]
            if len(inside) <= 1:
                continue
            lo, hi = min(inside), max(inside)
            if hi - lo > len(inside) - 1:
                switches += 1
    return switches
