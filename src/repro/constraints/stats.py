"""Constraint-size statistics — the ``#Constraints``/``#Variables`` columns
of Table 1."""

from dataclasses import dataclass

from repro.analysis.symbolic import expr_size


@dataclass
class ConstraintStats:
    n_saps: int = 0
    n_order_vars: int = 0
    n_value_vars: int = 0
    n_choice_vars: int = 0
    n_hard_edges: int = 0
    n_clauses: int = 0
    n_clause_lits: int = 0
    n_path_conditions: int = 0
    n_path_condition_nodes: int = 0
    # Static-prune accounting (zero when pruning was off).
    n_pruned_choice_vars: int = 0
    n_pruned_clauses: int = 0
    n_forced_reads: int = 0

    @property
    def n_constraints(self):
        """Total clause count, the analogue of the paper's '#Constraints'."""
        return self.n_hard_edges + self.n_clauses + self.n_path_conditions

    @property
    def n_variables(self):
        return self.n_order_vars + self.n_value_vars + self.n_choice_vars


def compute_stats(system):
    """Measure a :class:`~repro.constraints.model.ConstraintSystem`."""
    stats = ConstraintStats()
    stats.n_saps = len(system.saps)
    stats.n_order_vars = system.num_order_vars()
    stats.n_value_vars = system.num_value_vars()
    stats.n_choice_vars = sum(len(c) for c in system.rf_candidates.values()) + sum(
        len(c) for c in system.sw_candidates.values()
    )
    stats.n_hard_edges = len(system.hard_edges)
    groups = (
        system.clauses
        + [c for c in system.exactly_one]
        + [c for c in system.at_most_one]
    )
    stats.n_clauses = len(groups)
    stats.n_clause_lits = sum(len(c.lits) for c in groups)
    stats.n_path_conditions = len(system.conditions) + len(system.bug_exprs)
    stats.n_path_condition_nodes = sum(
        expr_size(c.expr) for c in system.conditions
    ) + sum(expr_size(e) for e in system.bug_exprs)
    prune = getattr(system, "prune_stats", None)
    if prune is not None:
        stats.n_pruned_choice_vars = prune.choice_vars_pruned
        stats.n_pruned_clauses = prune.clauses_pruned
        stats.n_forced_reads = prune.forced_reads
    return stats
