"""Constraint-size statistics — the ``#Constraints``/``#Variables`` columns
of Table 1 — plus the solver-phase counters the incremental CDCL core
reports (propagations, conflicts, restarts, learned-clause reuse)."""

from dataclasses import dataclass

from repro.analysis.symbolic import expr_size


@dataclass
class SolverPhaseStats:
    """Counters one :class:`~repro.solver.cdcl.CDCLSolver` accumulates.

    The counters are cumulative over the solver's lifetime, which for the
    incremental bound loop spans every ``c = 0, 1, 2, …`` round — so
    ``reuse_hits`` (propagations whose reason is a clause learned in an
    *earlier* ``solve()`` call) directly measures how much work the
    assumption-reuse path saved versus re-encoding per round.
    """

    solve_calls: int = 0
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned: int = 0
    learned_literals: int = 0
    reuse_hits: int = 0

    def as_dict(self):
        return {
            "solve_calls": self.solve_calls,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "restarts": self.restarts,
            "learned": self.learned,
            "learned_literals": self.learned_literals,
            "reuse_hits": self.reuse_hits,
        }

    def snapshot(self):
        """A copy, for per-round deltas."""
        return SolverPhaseStats(**self.as_dict())

    def delta(self, earlier):
        """Counter-wise ``self - earlier`` as a plain dict."""
        mine, theirs = self.as_dict(), earlier.as_dict()
        return {key: mine[key] - theirs[key] for key in mine}


@dataclass
class CacheStats:
    """Analysis-cache counters (:class:`repro.store.cache.AnalysisCache`).

    ``stale`` counts entries rejected — and deleted — because their
    stored schema version or prune configuration no longer matched; a
    stale entry also counts as a miss, so ``hits + misses`` is the total
    number of lookups.  ``evictions`` counts entries removed to stay
    inside a :class:`repro.store.cache.SharedAnalysisCache` size budget.
    """

    hits: int = 0
    misses: int = 0
    stale: int = 0
    evictions: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def as_dict(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "evictions": self.evictions,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }


@dataclass
class PortfolioStats:
    """Per-run counters of the cube-and-conquer portfolio driver
    (:mod:`repro.solver.portfolio`).

    ``winner`` names the task whose solution the driver adopted;
    ``winner_kind`` is its strategy family (``seq``, ``div``, ``cube``,
    ``genval``).  Clause traffic is counted at the driver (exported =
    published batches' clauses, imported = clauses accepted into at
    least one other worker via the relay), cubes by their terminal
    status.  ``rungs_resolved`` counts context-switch bounds settled by
    exhaustion proofs or the sequential replica's budget evidence before
    the verdict was reached; ``cancelled`` is how many still-running
    tasks the driver killed once the verdict was in.
    """

    workers: int = 0
    tasks: int = 0
    cubes: int = 0
    cubes_solved: int = 0
    clauses_exported: int = 0
    clauses_imported: int = 0
    rungs_resolved: int = 0
    cancelled: int = 0
    respawns: int = 0
    winner: str = ""
    winner_kind: str = ""

    def as_dict(self):
        return {
            "workers": self.workers,
            "tasks": self.tasks,
            "cubes": self.cubes,
            "cubes_solved": self.cubes_solved,
            "clauses_exported": self.clauses_exported,
            "clauses_imported": self.clauses_imported,
            "rungs_resolved": self.rungs_resolved,
            "cancelled": self.cancelled,
            "respawns": self.respawns,
            "winner": self.winner,
            "winner_kind": self.winner_kind,
        }


def merge_sat_stats(stat_dicts):
    """Counter-wise sum of counter dicts (SAT or cache counters alike).

    The batch service uses this to aggregate per-job SAT and cache
    counters into its summary table.  ``None``/empty entries are skipped
    and non-numeric values ignored, so partially populated job results (a
    genval run has no CDCL counters) merge cleanly.
    """
    total = {}
    for stats in stat_dicts:
        if not stats:
            continue
        for key, value in stats.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                total[key] = total.get(key, 0) + value
    return total


@dataclass
class ConstraintStats:
    n_saps: int = 0
    n_order_vars: int = 0
    n_value_vars: int = 0
    n_choice_vars: int = 0
    n_hard_edges: int = 0
    n_clauses: int = 0
    n_clause_lits: int = 0
    n_path_conditions: int = 0
    n_path_condition_nodes: int = 0
    # Frw prune accounting, always relative to the raw (hb=False)
    # encoding: the always-on happens-before layer plus, when
    # --static-prune was given, the static critical-section rules.
    n_pruned_choice_vars: int = 0
    n_pruned_clauses: int = 0
    n_forced_reads: int = 0
    # The share of pruned candidates owed to the static region rules
    # (zero when static pruning was off).
    n_region_pruned_choice_vars: int = 0

    @property
    def n_constraints(self):
        """Total clause count, the analogue of the paper's '#Constraints'."""
        return self.n_hard_edges + self.n_clauses + self.n_path_conditions

    @property
    def n_variables(self):
        return self.n_order_vars + self.n_value_vars + self.n_choice_vars


def compute_stats(system):
    """Measure a :class:`~repro.constraints.model.ConstraintSystem`."""
    stats = ConstraintStats()
    stats.n_saps = len(system.saps)
    stats.n_order_vars = system.num_order_vars()
    stats.n_value_vars = system.num_value_vars()
    stats.n_choice_vars = sum(len(c) for c in system.rf_candidates.values()) + sum(
        len(c) for c in system.sw_candidates.values()
    )
    stats.n_hard_edges = len(system.hard_edges)
    groups = (
        system.clauses
        + [c for c in system.exactly_one]
        + [c for c in system.at_most_one]
    )
    stats.n_clauses = len(groups)
    stats.n_clause_lits = sum(len(c.lits) for c in groups)
    stats.n_path_conditions = len(system.conditions) + len(system.bug_exprs)
    stats.n_path_condition_nodes = sum(
        expr_size(c.expr) for c in system.conditions
    ) + sum(expr_size(e) for e in system.bug_exprs)
    prune = getattr(system, "prune_stats", None)
    if prune is not None:
        stats.n_pruned_choice_vars = prune.choice_vars_pruned
        stats.n_pruned_clauses = prune.clauses_pruned
        stats.n_forced_reads = prune.forced_reads
        stats.n_region_pruned_choice_vars = getattr(
            prune, "region_candidates_pruned", 0
        )
    return stats
