"""Read-write constraints Frw (paper Section 3.2).

For every read ``r`` on address ``A`` with writes ``W = {w1..wn}`` on ``A``:

* ``r`` reads from exactly one source — some ``wi`` or the initial value;
* choosing ``wi`` requires ``O_wi < O_r`` and, for every other ``wj``,
  ``O_wj < O_wi ∨ O_r < O_wj`` (no write in between);
* choosing the initial value requires ``O_r < O_wj`` for every write
  (the paper's first case: the read precedes all writes).

Same-thread candidates are pruned when program order already contradicts
them (a read can never return a same-thread write that program-order
follows it, under any of SC/TSO/PSO — R->W order is preserved by all
three).  The worst-case size is 4·Nr·Nw², cubic in the number of SAPs,
which is the paper's complexity analysis.
"""

from repro.constraints.model import (
    INIT,
    Clause,
    ExactlyOne,
    Lit,
    OLt,
    RFChoice,
    addr_key,
)


def encode_read_write(summaries, pruner=None):
    """Build Frw.  Returns (clauses, exactly_one, rf_candidates).

    ``pruner``, when given (an :class:`repro.constraints.hb.HBPruner` —
    normally the encoder's always-on instance, or the static-analysis
    :class:`repro.constraints.prune.RWPruner` subclass), drops reads-from
    candidates and clauses the hard-edge must-order (plus any static
    certificates) proves impossible or redundant; the result is
    equisatisfiable with the unpruned encoding.
    """
    clauses = []
    exactly_one = []
    rf_candidates = {}

    reads_by_addr = {}
    writes_by_addr = {}
    for summary in summaries.values():
        for sap in summary.saps:
            if sap.is_read:
                reads_by_addr.setdefault(sap.addr, []).append(sap)
            elif sap.is_write:
                writes_by_addr.setdefault(sap.addr, []).append(sap)

    for addr, reads in sorted(reads_by_addr.items(), key=lambda kv: addr_key(kv[0])):
        writes = writes_by_addr.get(addr, [])
        for read in reads:
            candidates = [
                w
                for w in writes
                if not (w.thread == read.thread and w.index > read.index)
            ]
            include_init = True
            if pruner is not None:
                candidates, include_init, _forced = pruner.filter_candidates(
                    read, candidates
                )
            sources = [w.uid for w in candidates]
            if include_init:
                sources.append(INIT)
            rf_candidates[read.uid] = sources
            lits = []
            for w in candidates:
                choice = RFChoice(read.uid, w.uid)
                lits.append(Lit(choice))
                if pruner is None or not pruner.before_clause_redundant(read, w):
                    clauses.append(
                        Clause(
                            [Lit(choice, False), Lit(OLt(w.uid, read.uid))],
                            origin="rf-before",
                        )
                    )
                for other in candidates:
                    if other is w:
                        continue
                    if pruner is not None and pruner.nomid_clause_redundant(
                        read, w, other
                    ):
                        continue
                    clauses.append(
                        Clause(
                            [
                                Lit(choice, False),
                                Lit(OLt(other.uid, w.uid)),
                                Lit(OLt(read.uid, other.uid)),
                            ],
                            origin="rf-nomid",
                        )
                    )
            if include_init:
                init_choice = RFChoice(read.uid, INIT)
                lits.append(Lit(init_choice))
                for w in candidates:
                    if pruner is not None and pruner.init_clause_redundant(
                        read, w
                    ):
                        continue
                    clauses.append(
                        Clause(
                            [Lit(init_choice, False), Lit(OLt(read.uid, w.uid))],
                            origin="rf-init",
                        )
                    )
            exactly_one.append(ExactlyOne(lits, origin="rf-one"))
    return clauses, exactly_one, rf_candidates
