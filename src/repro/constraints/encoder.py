"""Top-level constraint encoder: F = Fpath ∧ Fbug ∧ Fso ∧ Frw ∧ Fmo."""

from repro.constraints.hb import HBClosure, HBPruner
from repro.constraints.memory_order import encode_memory_order
from repro.constraints.model import ConstraintSystem, OLt
from repro.constraints.prune import RWPruner
from repro.constraints.rw import encode_read_write
from repro.constraints.sync_order import encode_sync_order


class EncodingError(Exception):
    pass


def assign_atom_numbering(system):
    """Assign a stable SAT-variable numbering to the system's atoms.

    Atoms are numbered 1..n in deterministic first-appearance order over
    the encoded clause groups (the same traversal every SAT build
    performs), with order atoms canonicalized to their ``lo < hi`` key —
    one variable serves both directions of ``O_a < O_b``.  Because the
    numbering is a function of the encoded system alone, every solver
    instantiated from it — the incremental bound loop's single instance
    or a fresh solver per round — speaks the same variable language.
    That is the invariant that makes reusing learned clauses across
    ``c = 0, 1, 2, …`` rounds sound (a learned clause is implied by the
    clause database, which only ever grows) and makes fresh-vs-reuse runs
    directly comparable.  Stored on ``system.atom_numbering``.
    """
    numbering = {}

    def note(atom):
        if isinstance(atom, OLt):
            if atom.a == atom.b:
                return
            lo, hi = (atom.a, atom.b) if atom.a < atom.b else (atom.b, atom.a)
            key = ("O", lo, hi)
        else:
            key = atom
        if key not in numbering:
            numbering[key] = len(numbering) + 1

    for group in (system.clauses, system.exactly_one, system.at_most_one):
        for clause in group:
            for lit in clause.lits:
                note(lit.atom)
    system.atom_numbering = numbering
    return numbering


def encode(
    summaries,
    memory_model,
    symbols,
    shared,
    preexisting=frozenset(),
    preexited=frozenset(),
    prune=None,
    hb=True,
):
    """Encode one recorded execution into a :class:`ConstraintSystem`.

    Parameters
    ----------
    summaries : {thread: ThreadSummary}
        Output of the symbolic execution phase.
    memory_model : 'sc' | 'tso' | 'pso'
        Model under which the buggy execution happened — Fmo's parameter.
    symbols : SymbolTable
        For initial memory values.
    shared : set of shared global names (for initial values of SAP addrs).
    preexisting / preexited : thread names that started / exited before a
        checkpoint, when encoding a checkpointed suffix (the initial
        values should then come from the snapshot — the caller overwrites
        ``system.initial_values`` accordingly).
    prune : StaticPruneInfo, optional
        Proven-race-free site pairs from ``analysis.static_race``; when
        given, Frw additionally drops candidates/clauses the static
        critical-section rules show impossible, equisatisfiably.
    hb : bool
        When True (the default), compute the happens-before closure of
        the hard edges once and prune Frw with it unconditionally — the
        closure decides candidates and clauses that are fixed in every
        model, so the result is equisatisfiable with the raw encoding.
        ``hb=False`` produces the raw, completely unpruned Frw (used by
        the differential tests and the old-vs-new benchmarks).
    """
    system = ConstraintSystem(
        memory_model=memory_model,
        summaries=summaries,
        preexisting=frozenset(preexisting),
        preexited=frozenset(preexited),
    )

    for summary in summaries.values():
        for sap in summary.saps:
            system.saps[sap.uid] = sap
        system.conditions.extend(summary.conditions)
        if summary.bug_expr is not None:
            system.bug_exprs.append(summary.bug_expr)
    if not system.bug_exprs:
        raise EncodingError(
            "no bug predicate: the failure was not found on any recorded path"
        )

    # Initial memory values for every shared address.
    for info in symbols.globals.values():
        if not info.is_data or info.name not in shared:
            continue
        if info.is_array:
            for i in range(info.size):
                system.initial_values[(info.name, i)] = 0
        else:
            system.initial_values[(info.name,)] = info.init

    # Fmo.
    mo_edges, per_thread = encode_memory_order(summaries, memory_model)
    system.hard_edges.extend(mo_edges)
    system.thread_order = per_thread

    # Fso.
    so_hard, so_clauses, so_amo, sw_candidates = encode_sync_order(
        summaries, preexited=system.preexited
    )
    system.hard_edges.extend(so_hard)
    system.clauses.extend(so_clauses)
    system.at_most_one.extend(so_amo)
    system.sw_candidates = sw_candidates

    # Frw — pruned with the happens-before closure of the hard edges
    # accumulated above (Fmo and Fso must be encoded first; the pruner's
    # soundness argument depends on it), plus the static critical-section
    # rules when a StaticPruneInfo certificate is supplied.
    closure = None
    pruner = None
    if hb:
        closure = HBClosure(list(system.saps), system.hard_edges)
        if prune is not None:
            pruner = RWPruner(summaries, static_info=prune, closure=closure)
        else:
            pruner = HBPruner(closure)
    elif prune is not None:
        pruner = RWPruner(
            summaries, hard_edges=system.hard_edges, static_info=prune
        )
    rw_clauses, rw_eo, rf_candidates = encode_read_write(summaries, pruner=pruner)
    system.clauses.extend(rw_clauses)
    system.exactly_one.extend(rw_eo)
    system.rf_candidates = rf_candidates
    system.hb_closure = closure
    if pruner is not None:
        system.prune_stats = pruner.stats

    # Stable variable numbering for every SAT instance built from this
    # system (incremental bound rounds and fresh baselines alike).
    assign_atom_numbering(system)

    return system
