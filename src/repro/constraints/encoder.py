"""Top-level constraint encoder: F = Fpath ∧ Fbug ∧ Fso ∧ Frw ∧ Fmo."""

from repro.analysis.symbolic import free_syms
from repro.constraints.hb import HBClosure, HBPruner
from repro.constraints.memory_order import encode_memory_order
from repro.constraints.model import AtMostOne, ConstraintSystem, OLt
from repro.constraints.prune import RWPruner
from repro.constraints.rw import encode_read_write
from repro.constraints.sync_order import encode_sync_order


class EncodingError(Exception):
    pass


def assign_atom_numbering(system):
    """Assign a stable SAT-variable numbering to the system's atoms.

    Atoms are numbered 1..n in deterministic first-appearance order over
    the encoded clause groups (the same traversal every SAT build
    performs), with order atoms canonicalized to their ``lo < hi`` key —
    one variable serves both directions of ``O_a < O_b``.  Because the
    numbering is a function of the encoded system alone, every solver
    instantiated from it — the incremental bound loop's single instance
    or a fresh solver per round — speaks the same variable language.
    That is the invariant that makes reusing learned clauses across
    ``c = 0, 1, 2, …`` rounds sound (a learned clause is implied by the
    clause database, which only ever grows) and makes fresh-vs-reuse runs
    directly comparable.  Stored on ``system.atom_numbering``.
    """
    numbering = {}

    def note(atom):
        if isinstance(atom, OLt):
            if atom.a == atom.b:
                return
            lo, hi = (atom.a, atom.b) if atom.a < atom.b else (atom.b, atom.a)
            key = ("O", lo, hi)
        else:
            key = atom
        if key not in numbering:
            numbering[key] = len(numbering) + 1

    for group in (system.clauses, system.exactly_one, system.at_most_one):
        for clause in group:
            for lit in clause.lits:
                note(lit.atom)
    system.atom_numbering = numbering
    return numbering


def _consumable_syms(system):
    """Read-symbol names the lazy value theory may ever need to resolve.

    Seeds with the free syms of every retained path condition and bug
    predicate, then closes over reads-from resolution: if read R's sym can
    be consulted, any same-address write's value expression can be
    evaluated to produce it, pulling that expression's syms in too.
    """
    sym_read = {}
    for summary in system.summaries.values():
        for name, sap in summary.reads.items():
            sym_read[name] = sap
    write_exprs = {}
    for sap in system.saps.values():
        if sap.is_write and sap.value is not None:
            write_exprs.setdefault(sap.addr, []).append(sap.value)
    used = set()
    for cond in system.conditions:
        used |= free_syms(cond.expr)
    for expr in system.bug_exprs:
        used |= free_syms(expr)
    frontier = list(used)
    while frontier:
        sym = frontier.pop()
        sap = sym_read.get(sym)
        if sap is None:
            continue
        for expr in write_exprs.get(sap.addr, ()):
            for name in free_syms(expr):
                if name not in used:
                    used.add(name)
                    frontier.append(name)
    return used


def encode(
    summaries,
    memory_model,
    symbols,
    shared,
    preexisting=frozenset(),
    preexited=frozenset(),
    prune=None,
    hb=True,
    relax_synth=True,
):
    """Encode one recorded execution into a :class:`ConstraintSystem`.

    Parameters
    ----------
    summaries : {thread: ThreadSummary}
        Output of the symbolic execution phase.
    memory_model : 'sc' | 'tso' | 'pso'
        Model under which the buggy execution happened — Fmo's parameter.
    symbols : SymbolTable
        For initial memory values.
    shared : set of shared global names (for initial values of SAP addrs).
    preexisting / preexited : thread names that started / exited before a
        checkpoint, when encoding a checkpointed suffix (the initial
        values should then come from the snapshot — the caller overwrites
        ``system.initial_values`` accordingly).
    prune : StaticPruneInfo, optional
        Proven-race-free site pairs from ``analysis.static_race``; when
        given, Frw additionally drops candidates/clauses the static
        critical-section rules show impossible, equisatisfiably.
    hb : bool
        When True (the default), compute the happens-before closure of
        the hard edges once and prune Frw with it unconditionally — the
        closure decides candidates and clauses that are fixed in every
        model, so the result is equisatisfiable with the raw encoding.
        ``hb=False`` produces the raw, completely unpruned Frw (used by
        the differential tests and the old-vs-new benchmarks).
    relax_synth : bool
        Eviction-horizon relaxation for flight-recorder logs (a no-op on
        complete logs): path conditions whose branches fall inside a
        synthesized prefix are dropped, and a synthesized read whose value
        can never be consulted by a retained condition or write has its
        reads-from ExactlyOne weakened to AtMostOne — the read's value is
        the "unknown entry state" and the solver need not ground it.
        Program-order and structural sync edges stay hard: they are
        implied by the surviving suffix and its anchors.
    """
    system = ConstraintSystem(
        memory_model=memory_model,
        summaries=summaries,
        preexisting=frozenset(preexisting),
        preexited=frozenset(preexited),
    )

    horizon = {
        "synth_saps": 0,
        "dropped_conditions": 0,
        "relaxed_reads": 0,
        "pinned_synth_reads": 0,
    }
    any_synth = False
    for summary in summaries.values():
        for sap in summary.saps:
            system.saps[sap.uid] = sap
            if getattr(sap, "synth", False):
                any_synth = True
                horizon["synth_saps"] += 1
        for cond in summary.conditions:
            if relax_synth and getattr(cond, "synth", False):
                horizon["dropped_conditions"] += 1
                continue
            system.conditions.append(cond)
        if summary.bug_expr is not None:
            system.bug_exprs.append(summary.bug_expr)
    if not system.bug_exprs:
        raise EncodingError(
            "no bug predicate: the failure was not found on any recorded path"
        )

    # Initial memory values for every shared address.
    for info in symbols.globals.values():
        if not info.is_data or info.name not in shared:
            continue
        if info.is_array:
            for i in range(info.size):
                system.initial_values[(info.name, i)] = 0
        else:
            system.initial_values[(info.name,)] = info.init

    # Fmo.
    mo_edges, per_thread = encode_memory_order(summaries, memory_model)
    system.hard_edges.extend(mo_edges)
    system.thread_order = per_thread

    # Fso.
    so_hard, so_clauses, so_amo, sw_candidates = encode_sync_order(
        summaries, preexited=system.preexited
    )
    system.hard_edges.extend(so_hard)
    system.clauses.extend(so_clauses)
    system.at_most_one.extend(so_amo)
    system.sw_candidates = sw_candidates

    # Frw — pruned with the happens-before closure of the hard edges
    # accumulated above (Fmo and Fso must be encoded first; the pruner's
    # soundness argument depends on it), plus the static critical-section
    # rules when a StaticPruneInfo certificate is supplied.
    closure = None
    pruner = None
    if hb:
        closure = HBClosure(list(system.saps), system.hard_edges)
        if prune is not None:
            pruner = RWPruner(summaries, static_info=prune, closure=closure)
        else:
            pruner = HBPruner(closure)
    elif prune is not None:
        pruner = RWPruner(
            summaries, hard_edges=system.hard_edges, static_info=prune
        )
    rw_clauses, rw_eo, rf_candidates = encode_read_write(summaries, pruner=pruner)
    system.clauses.extend(rw_clauses)
    if relax_synth and any_synth:
        # Eviction-horizon relaxation: a synthesized read must still pick
        # at most one coherent source (the rf-before/rf-nomid clauses keep
        # applying to whichever choice is made), but it is not *forced* to
        # pick one unless some retained expression could consult its value
        # — in that case leaving it unresolved would make the value theory
        # partial, so it stays exactly-one.
        consumable = _consumable_syms(system)
        kept = []
        for group in rw_eo:
            read_uid = group.lits[0].atom.read if group.lits else None
            sap = system.saps.get(read_uid)
            if sap is None or not getattr(sap, "synth", False):
                kept.append(group)
                continue
            sym_name = getattr(sap.value, "name", None)
            if sym_name is not None and sym_name not in consumable:
                system.at_most_one.append(
                    AtMostOne(list(group.lits), origin="rf-horizon")
                )
                horizon["relaxed_reads"] += 1
            else:
                horizon["pinned_synth_reads"] += 1
                kept.append(group)
        rw_eo = kept
    system.exactly_one.extend(rw_eo)
    system.rf_candidates = rf_candidates
    system.hb_closure = closure
    if pruner is not None:
        system.prune_stats = pruner.stats
    if any_synth:
        system.horizon_stats = horizon

    # Stable variable numbering for every SAT instance built from this
    # system (incremental bound rounds and fresh baselines alike).
    assign_atom_numbering(system)

    return system
