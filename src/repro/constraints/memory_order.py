"""Memory-order constraints Fmo for SC, TSO and PSO (paper Section 3.2).

Per thread, Fmo is a set of unconditional edges ``O_a < O_b`` over that
thread's SAPs:

SC
    the full program-order chain (adjacent SAP pairs).

TSO
    store->load order is relaxed; everything else is preserved:

    * the chain over [reads + syncs]               (R->R, and fencing),
    * the chain over [writes + syncs]              (W->W, and fencing),
    * an edge from the nearest preceding read/sync to each write (R->W),
    * for each read, an edge from the nearest preceding same-address write
      and to the nearest following same-address write (the paper's
      same-address treatment, which also pins store-forwarding pairs).

PSO
    additionally relaxes store->store to *different* addresses: the write
    chain becomes one chain per address (still threaded through syncs).

Note: the paper's prose says PSO also removes the order "between Reads on
different addresses"; SPARC PSO (and our store-buffer runtime) preserve
load-load order, so we keep the read chain for PSO — this is the sound
choice for replayability on our substrate (documented in DESIGN.md).

Synchronization SAPs appear in every chain, which makes them full fences
transitively — matching the runtime, where sync operations drain the store
buffer.
"""

from repro.runtime import events as ev
from repro.runtime.memory import PSO, SC, TSO
from repro.constraints.model import OLt, addr_key


def _chain(uids):
    return [OLt(a, b) for a, b in zip(uids, uids[1:])]


def thread_memory_order(saps, memory_model):
    """Fmo edges for one thread's program-order SAP list."""
    if memory_model == SC:
        return _chain([s.uid for s in saps])
    if memory_model == TSO:
        return _relaxed_order(saps, per_address_writes=False)
    if memory_model == PSO:
        return _relaxed_order(saps, per_address_writes=True)
    raise ValueError("unknown memory model %r" % memory_model)


def _relaxed_order(saps, per_address_writes):
    edges = []
    seen = set()

    def add(a, b):
        if (a, b) not in seen:
            seen.add((a, b))
            edges.append(OLt(a, b))

    # Chain over reads + syncs.
    rs = [s for s in saps if s.is_read or not s.is_data]
    for a, b in zip(rs, rs[1:]):
        add(a.uid, b.uid)

    # Write chains (global for TSO; per address for PSO), threaded through
    # syncs so they act as fences.  yield is NOT a fence (sched_yield has no
    # barrier semantics): buffered stores may drain past it.
    def fences(s):
        return not s.is_data and s.kind != ev.YIELD

    if per_address_writes:
        addrs = sorted({s.addr for s in saps if s.is_write}, key=addr_key)
        for addr in addrs:
            ws = [s for s in saps if (s.is_write and s.addr == addr) or fences(s)]
            for a, b in zip(ws, ws[1:]):
                add(a.uid, b.uid)
    else:
        ws = [s for s in saps if s.is_write or fences(s)]
        for a, b in zip(ws, ws[1:]):
            add(a.uid, b.uid)

    # R->W: each write is ordered after the nearest preceding read or fence
    # (stores are not speculative; yields do not constrain them).
    last_rs = None
    for sap in saps:
        if sap.is_write:
            if last_rs is not None:
                add(last_rs.uid, sap.uid)
        elif sap.is_read or fences(sap):
            last_rs = sap

    # Same-address read/write adjacency (paper: "find the two Writes that
    # access the same address ... immediately before and after the Read").
    last_write_at = {}
    for sap in saps:
        if sap.is_read:
            prev = last_write_at.get(sap.addr)
            if prev is not None:
                add(prev.uid, sap.uid)
        elif sap.is_write:
            last_write_at[sap.addr] = sap
    next_write_at = {}
    for sap in reversed(saps):
        if sap.is_read:
            nxt = next_write_at.get(sap.addr)
            if nxt is not None:
                add(sap.uid, nxt.uid)
        elif sap.is_write:
            next_write_at[sap.addr] = sap

    return edges


def encode_memory_order(summaries, memory_model):
    """Fmo for the whole execution; also returns the per-thread edge map
    used by the schedule generators (the "SAP-tree" of Section 4.3)."""
    all_edges = []
    per_thread = {}
    for thread, summary in summaries.items():
        edges = thread_memory_order(summary.saps, memory_model)
        per_thread[thread] = [(e.a, e.b) for e in edges]
        all_edges.extend(edges)
    return all_edges, per_thread
