"""AST pretty-printer: render a parsed Program back to MiniLang source.

``parse(pretty(parse(src)))`` is the identity on ASTs (modulo source
positions), which the property tests exercise; the printer is also used
by debugging tools to show desugared programs (compound assignments and
``for`` loops print in their lowered forms).
"""

from repro.minilang import ast_nodes as ast

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


def pretty_expr(expr, parent_prec=0):
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.Name):
        return expr.name
    if isinstance(expr, ast.Index):
        return "%s[%s]" % (expr.name, pretty_expr(expr.index))
    if isinstance(expr, ast.Unary):
        inner = pretty_expr(expr.operand, parent_prec=7)
        return "%s%s" % (expr.op, inner)
    if isinstance(expr, ast.Binary):
        prec = _PRECEDENCE[expr.op]
        left = pretty_expr(expr.left, parent_prec=prec)
        # Right operand gets prec+1: our operators are left-associative.
        right = pretty_expr(expr.right, parent_prec=prec + 1)
        text = "%s %s %s" % (left, expr.op, right)
        if prec < parent_prec:
            return "(%s)" % text
        return text
    if isinstance(expr, ast.Call):
        args = ", ".join(pretty_expr(a) for a in expr.args)
        return "%s(%s)" % (expr.func, args)
    raise TypeError("cannot print expression %r" % (expr,))


class _Printer:
    def __init__(self, indent="    "):
        self.indent = indent
        self.lines = []
        self.depth = 0

    def emit(self, text):
        self.lines.append(self.indent * self.depth + text)

    # -- statements ----------------------------------------------------------

    def stmt(self, node):
        method = getattr(self, "stmt_" + type(node).__name__, None)
        if method is None:
            raise TypeError("cannot print statement %r" % (node,))
        method(node)

    def block(self, block, header):
        self.emit(header + " {")
        self.depth += 1
        for stmt in block.stmts:
            self.stmt(stmt)
        self.depth -= 1
        self.emit("}")

    def stmt_Block(self, node):
        self.block(node, "")

    def stmt_LocalDecl(self, node):
        if node.init is not None:
            self.emit("%s %s = %s;" % (node.type, node.name, pretty_expr(node.init)))
        else:
            self.emit("%s %s;" % (node.type, node.name))

    def stmt_Assign(self, node):
        self.emit("%s = %s;" % (pretty_expr(node.target), pretty_expr(node.value)))

    def stmt_If(self, node):
        self.block(node.then, "if (%s)" % pretty_expr(node.cond))
        if node.els is not None:
            # Re-render the closing brace with the else clause attached.
            self.lines[-1] = self.indent * self.depth + "} else {"
            self.depth += 1
            for stmt in node.els.stmts:
                self.stmt(stmt)
            self.depth -= 1
            self.emit("}")

    def stmt_While(self, node):
        self.block(node.body, "while (%s)" % pretty_expr(node.cond))

    def stmt_Return(self, node):
        if node.value is not None:
            self.emit("return %s;" % pretty_expr(node.value))
        else:
            self.emit("return;")

    def stmt_ExprStmt(self, node):
        self.emit("%s;" % pretty_expr(node.expr))

    def stmt_Spawn(self, node):
        args = ", ".join(pretty_expr(a) for a in node.args)
        call = "spawn %s(%s);" % (node.func, args)
        if node.target is not None:
            call = "%s = %s" % (node.target, call)
        self.emit(call)

    def stmt_Join(self, node):
        self.emit("join(%s);" % pretty_expr(node.handle))

    def stmt_LockStmt(self, node):
        self.emit("lock(%s);" % node.name)

    def stmt_UnlockStmt(self, node):
        self.emit("unlock(%s);" % node.name)

    def stmt_WaitStmt(self, node):
        self.emit("wait(%s, %s);" % (node.cond, node.mutex))

    def stmt_SignalStmt(self, node):
        self.emit("signal(%s);" % node.cond)

    def stmt_BroadcastStmt(self, node):
        self.emit("broadcast(%s);" % node.cond)

    def stmt_AssertStmt(self, node):
        self.emit("assert(%s);" % pretty_expr(node.cond))

    def stmt_AssumeStmt(self, node):
        self.emit("assume(%s);" % pretty_expr(node.cond))

    def stmt_YieldStmt(self, node):
        self.emit("yield;")

    def stmt_FenceStmt(self, node):
        self.emit("fence;")

    def stmt_PrintStmt(self, node):
        self.emit("print(%s);" % ", ".join(pretty_expr(a) for a in node.args))

    # -- declarations ----------------------------------------------------------

    def global_decl(self, decl):
        prefix = "" if decl.sharing == "auto" else decl.sharing + " "
        if decl.type in ("mutex", "cond"):
            self.emit("%s%s %s;" % (prefix, decl.type, decl.name))
            return
        suffix = "[%d]" % decl.size if decl.is_array else ""
        init = " = %s" % pretty_expr(decl.init) if decl.init is not None else ""
        self.emit("%s%s %s%s%s;" % (prefix, decl.type, decl.name, suffix, init))

    def func(self, func):
        params = ", ".join("%s %s" % (p.type, p.name) for p in func.params)
        self.block(func.body, "%s %s(%s)" % (func.ret_type, func.name, params))


def pretty_program(program, indent="    "):
    """Render a Program AST back to MiniLang source text."""
    printer = _Printer(indent=indent)
    for decl in program.globals:
        printer.global_decl(decl)
    if program.globals:
        printer.emit("")
    for i, func in enumerate(program.functions):
        printer.func(func)
        if i + 1 < len(program.functions):
            printer.emit("")
    return "\n".join(printer.lines) + "\n"
