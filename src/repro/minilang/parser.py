"""Recursive-descent parser for MiniLang.

Grammar (informal)::

    program     := (global_decl | func_def)*
    global_decl := ['shared'|'local'] type IDENT ['[' INT ']'] ['=' expr] ';'
                 | 'mutex' IDENT ';'
                 | 'cond' IDENT ';'
    func_def    := ('int'|'bool'|'void') IDENT '(' params ')' block
    block       := '{' stmt* '}'
    stmt        := local_decl | assign | if | while | for | return | spawn
                 | join | lock | unlock | wait | signal | broadcast
                 | assert | assume | yield | print | expr ';'
    expr        := or_expr, with C-style precedence:
                   || < && < ==/!= < relational < additive < multiplicative
                   < unary < primary

Compound assignments (``x += e``) and increments (``x++``) are desugared
into plain assignments so the rest of the pipeline only sees ``Assign``.
"""

from repro.minilang import ast_nodes as ast
from repro.minilang.errors import ParseError
from repro.minilang.lexer import tokenize
from repro.minilang.tokens import EOF, IDENT, INT

_COMPOUND_OPS = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%"}


class _Parser:
    def __init__(self, tokens, name):
        self.tokens = tokens
        self.name = name
        self.pos = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def cur(self):
        return self.tokens[self.pos]

    def peek(self, offset=1):
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self):
        tok = self.cur
        if tok.kind != EOF:
            self.pos += 1
        return tok

    def check(self, kind):
        return self.cur.kind == kind

    def accept(self, kind):
        if self.check(kind):
            return self.advance()
        return None

    def expect(self, kind, what=None):
        if self.check(kind):
            return self.advance()
        found = self.cur.value if self.cur.kind != EOF else "end of input"
        msg = "expected %s, found %r" % (what or repr(kind), found)
        self.error(msg)

    def error(self, message, token=None):
        tok = token or self.cur
        raise ParseError(message, line=tok.line, column=tok.column, filename=self.name)

    def pos_of(self, tok):
        return {"line": tok.line, "column": tok.column}

    # -- top level ----------------------------------------------------------

    def parse_program(self):
        globals_ = []
        functions = []
        while not self.check(EOF):
            if self.cur.kind in ("shared", "local", "mutex", "cond"):
                globals_.append(self.parse_global())
            elif self.cur.kind in ("int", "bool", "void"):
                # Distinguish function definition from global declaration by
                # looking for '(' after the identifier.
                if self.peek(2).kind == "(":
                    functions.append(self.parse_func())
                else:
                    globals_.append(self.parse_global())
            else:
                self.error("expected declaration or function definition")
        return ast.Program(name=self.name, globals=globals_, functions=functions)

    def parse_global(self):
        start = self.cur
        sharing = "auto"
        if self.cur.kind in ("shared", "local"):
            sharing = self.advance().kind
        if self.cur.kind in ("mutex", "cond"):
            type_ = self.advance().kind
            name = self.expect(IDENT, "a name").value
            self.expect(";")
            return ast.GlobalDecl(type=type_, name=name, sharing=sharing, **self.pos_of(start))
        if self.cur.kind not in ("int", "bool"):
            self.error("expected a type")
        type_ = self.advance().kind
        name = self.expect(IDENT, "a name").value
        size = None
        init = None
        if self.accept("["):
            size = self.expect(INT, "array size").value
            self.expect("]")
        if self.accept("="):
            init = self.parse_expr()
        self.expect(";")
        return ast.GlobalDecl(
            type=type_, name=name, size=size, init=init, sharing=sharing, **self.pos_of(start)
        )

    def parse_func(self):
        start = self.cur
        ret_type = self.advance().kind
        name = self.expect(IDENT, "function name").value
        self.expect("(")
        params = []
        if not self.check(")"):
            while True:
                ptok = self.cur
                if self.cur.kind not in ("int", "bool"):
                    self.error("expected parameter type")
                ptype = self.advance().kind
                pname = self.expect(IDENT, "parameter name").value
                params.append(ast.Param(type=ptype, name=pname, **self.pos_of(ptok)))
                if not self.accept(","):
                    break
        self.expect(")")
        body = self.parse_block()
        return ast.FuncDef(
            name=name, params=params, ret_type=ret_type, body=body, **self.pos_of(start)
        )

    # -- statements ----------------------------------------------------------

    def parse_block(self):
        start = self.expect("{")
        stmts = []
        while not self.check("}"):
            if self.check(EOF):
                self.error("unterminated block (missing '}')")
            stmts.append(self.parse_stmt())
        self.expect("}")
        return ast.Block(stmts=stmts, **self.pos_of(start))

    def parse_stmt(self):
        kind = self.cur.kind
        handler = {
            "{": self.parse_block,
            "int": self.parse_local_decl,
            "bool": self.parse_local_decl,
            "if": self.parse_if,
            "while": self.parse_while,
            "for": self.parse_for,
            "return": self.parse_return,
            "spawn": self.parse_spawn_stmt,
            "join": self.parse_join,
            "lock": self.parse_lock,
            "unlock": self.parse_unlock,
            "wait": self.parse_wait,
            "signal": self.parse_signal,
            "broadcast": self.parse_broadcast,
            "assert": self.parse_assert,
            "assume": self.parse_assume,
            "yield": self.parse_yield,
            "fence": self.parse_fence,
            "print": self.parse_print,
        }.get(kind)
        if handler is not None:
            return handler()
        return self.parse_simple_stmt()

    def parse_local_decl(self):
        start = self.cur
        type_ = self.advance().kind
        name = self.expect(IDENT, "variable name").value
        init = None
        if self.accept("="):
            init = self.parse_assign_rhs(name, start)
        self.expect(";")
        return ast.LocalDecl(type=type_, name=name, init=init, **self.pos_of(start))

    def parse_assign_rhs(self, target_name, start):
        # 'x = spawn f(...)' is handled by parse_simple_stmt; local decls may
        # not initialize from spawn to keep the grammar simple.
        if self.check("spawn"):
            self.error("spawn may not initialize a declaration; assign it separately")
        return self.parse_expr()

    def parse_if(self):
        start = self.advance()
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then = self.parse_block_or_stmt()
        els = None
        if self.accept("else"):
            els = self.parse_block_or_stmt()
        return ast.If(cond=cond, then=then, els=els, **self.pos_of(start))

    def parse_block_or_stmt(self):
        if self.check("{"):
            return self.parse_block()
        stmt = self.parse_stmt()
        return ast.Block(stmts=[stmt], line=stmt.line, column=stmt.column)

    def parse_while(self):
        start = self.advance()
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        body = self.parse_block_or_stmt()
        return ast.While(cond=cond, body=body, **self.pos_of(start))

    def parse_for(self):
        # Desugar: for (init; cond; update) body  =>  { init; while (cond) { body; update; } }
        start = self.advance()
        self.expect("(")
        init = None
        if not self.check(";"):
            if self.cur.kind in ("int", "bool"):
                init = self.parse_local_decl()
            else:
                init = self.parse_simple_stmt()
        else:
            self.expect(";")
        if isinstance(init, ast.LocalDecl) or isinstance(init, ast.Stmt):
            pass  # the ';' was consumed by the sub-parser
        cond = ast.BoolLit(value=True, **self.pos_of(start))
        if not self.check(";"):
            cond = self.parse_expr()
        self.expect(";")
        update = None
        if not self.check(")"):
            update = self.parse_assign_no_semi()
        self.expect(")")
        body = self.parse_block_or_stmt()
        loop_body = list(body.stmts)
        if update is not None:
            loop_body.append(update)
        loop = ast.While(
            cond=cond,
            body=ast.Block(stmts=loop_body, line=body.line, column=body.column),
            **self.pos_of(start),
        )
        outer = [init, loop] if init is not None else [loop]
        return ast.Block(stmts=outer, **self.pos_of(start))

    def parse_return(self):
        start = self.advance()
        value = None
        if not self.check(";"):
            value = self.parse_expr()
        self.expect(";")
        return ast.Return(value=value, **self.pos_of(start))

    def parse_spawn_stmt(self):
        start = self.cur
        spawn = self.parse_spawn_expr()
        self.expect(";")
        return spawn

    def parse_spawn_expr(self, target=None):
        start = self.expect("spawn")
        func = self.expect(IDENT, "function name").value
        self.expect("(")
        args = []
        if not self.check(")"):
            while True:
                args.append(self.parse_expr())
                if not self.accept(","):
                    break
        self.expect(")")
        return ast.Spawn(target=target, func=func, args=args, **self.pos_of(start))

    def parse_join(self):
        start = self.advance()
        self.expect("(")
        handle = self.parse_expr()
        self.expect(")")
        self.expect(";")
        return ast.Join(handle=handle, **self.pos_of(start))

    def _parse_name_call(self, node_cls):
        start = self.advance()
        self.expect("(")
        name = self.expect(IDENT, "a name").value
        self.expect(")")
        self.expect(";")
        return node_cls(name, **self.pos_of(start))

    def parse_lock(self):
        return self._parse_name_call(lambda n, **kw: ast.LockStmt(name=n, **kw))

    def parse_unlock(self):
        return self._parse_name_call(lambda n, **kw: ast.UnlockStmt(name=n, **kw))

    def parse_wait(self):
        start = self.advance()
        self.expect("(")
        cond = self.expect(IDENT, "condition variable").value
        self.expect(",")
        mutex = self.expect(IDENT, "mutex").value
        self.expect(")")
        self.expect(";")
        return ast.WaitStmt(cond=cond, mutex=mutex, **self.pos_of(start))

    def parse_signal(self):
        return self._parse_name_call(lambda n, **kw: ast.SignalStmt(cond=n, **kw))

    def parse_broadcast(self):
        return self._parse_name_call(lambda n, **kw: ast.BroadcastStmt(cond=n, **kw))

    def parse_assert(self):
        start = self.advance()
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        self.expect(";")
        message = "assert at %s:%d" % (self.name, start.line)
        return ast.AssertStmt(cond=cond, message=message, **self.pos_of(start))

    def parse_assume(self):
        start = self.advance()
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        self.expect(";")
        return ast.AssumeStmt(cond=cond, **self.pos_of(start))

    def parse_yield(self):
        start = self.advance()
        self.expect(";")
        return ast.YieldStmt(**self.pos_of(start))

    def parse_fence(self):
        start = self.advance()
        self.expect(";")
        return ast.FenceStmt(**self.pos_of(start))

    def parse_print(self):
        start = self.advance()
        self.expect("(")
        args = []
        if not self.check(")"):
            while True:
                args.append(self.parse_expr())
                if not self.accept(","):
                    break
        self.expect(")")
        self.expect(";")
        return ast.PrintStmt(args=args, **self.pos_of(start))

    def parse_simple_stmt(self):
        stmt = self.parse_assign_no_semi()
        self.expect(";")
        return stmt

    def parse_assign_no_semi(self):
        """Parse an assignment, compound assignment, ++/--, spawn-assign, or
        a bare expression (without the trailing ';')."""
        start = self.cur
        # 'x = spawn f(...)'
        if (
            self.check(IDENT)
            and self.peek().kind == "="
            and self.peek(2).kind == "spawn"
        ):
            target = self.advance().value
            self.expect("=")
            return self.parse_spawn_expr(target=target)
        expr = self.parse_expr()
        if self.cur.kind == "=":
            self.advance()
            value = self.parse_expr()
            self._check_lvalue(expr, start)
            return ast.Assign(target=expr, value=value, **self.pos_of(start))
        if self.cur.kind in _COMPOUND_OPS:
            op = _COMPOUND_OPS[self.advance().kind]
            value = self.parse_expr()
            self._check_lvalue(expr, start)
            rhs = ast.Binary(op=op, left=expr, right=value, **self.pos_of(start))
            return ast.Assign(target=expr, value=rhs, **self.pos_of(start))
        if self.cur.kind in ("++", "--"):
            op = "+" if self.advance().kind == "++" else "-"
            self._check_lvalue(expr, start)
            one = ast.IntLit(value=1, **self.pos_of(start))
            rhs = ast.Binary(op=op, left=expr, right=one, **self.pos_of(start))
            return ast.Assign(target=expr, value=rhs, **self.pos_of(start))
        return ast.ExprStmt(expr=expr, **self.pos_of(start))

    def _check_lvalue(self, expr, tok):
        if not isinstance(expr, (ast.Name, ast.Index)):
            self.error("assignment target must be a variable or array element", tok)

    # -- expressions ----------------------------------------------------------

    def parse_expr(self):
        return self.parse_or()

    def _parse_binop_level(self, sub, ops):
        left = sub()
        while self.cur.kind in ops:
            tok = self.advance()
            right = sub()
            left = ast.Binary(op=tok.kind, left=left, right=right, **self.pos_of(tok))
        return left

    def parse_or(self):
        return self._parse_binop_level(self.parse_and, ("||",))

    def parse_and(self):
        return self._parse_binop_level(self.parse_equality, ("&&",))

    def parse_equality(self):
        return self._parse_binop_level(self.parse_relational, ("==", "!="))

    def parse_relational(self):
        return self._parse_binop_level(self.parse_additive, ("<", "<=", ">", ">="))

    def parse_additive(self):
        return self._parse_binop_level(self.parse_multiplicative, ("+", "-"))

    def parse_multiplicative(self):
        return self._parse_binop_level(self.parse_unary, ("*", "/", "%"))

    def parse_unary(self):
        if self.cur.kind in ("-", "!"):
            tok = self.advance()
            operand = self.parse_unary()
            return ast.Unary(op=tok.kind, operand=operand, **self.pos_of(tok))
        return self.parse_primary()

    def parse_primary(self):
        tok = self.cur
        if tok.kind == INT:
            self.advance()
            return ast.IntLit(value=tok.value, **self.pos_of(tok))
        if tok.kind in ("true", "false"):
            self.advance()
            return ast.BoolLit(value=tok.kind == "true", **self.pos_of(tok))
        if tok.kind == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if tok.kind == IDENT:
            self.advance()
            if self.check("("):
                self.advance()
                args = []
                if not self.check(")"):
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept(","):
                            break
                self.expect(")")
                return ast.Call(func=tok.value, args=args, **self.pos_of(tok))
            if self.check("["):
                self.advance()
                index = self.parse_expr()
                self.expect("]")
                return ast.Index(name=tok.value, index=index, **self.pos_of(tok))
            return ast.Name(name=tok.value, **self.pos_of(tok))
        self.error("expected an expression")


def parse_program(source, name="<minilang>"):
    """Parse MiniLang ``source`` text into a :class:`~ast_nodes.Program`."""
    return _Parser(tokenize(source, name=name), name).parse_program()
