"""Token definitions for the MiniLang lexer."""

from dataclasses import dataclass

# Token kinds.  Keywords get their own kind so the parser can match on kind
# alone; punctuation/operator tokens use their literal spelling as the kind.
IDENT = "IDENT"
INT = "INT"
EOF = "EOF"

KEYWORDS = frozenset(
    {
        "int",
        "bool",
        "void",
        "true",
        "false",
        "if",
        "else",
        "while",
        "for",
        "return",
        "shared",
        "local",
        "mutex",
        "cond",
        "thread",
        "spawn",
        "join",
        "lock",
        "unlock",
        "wait",
        "signal",
        "broadcast",
        "assert",
        "assume",
        "yield",
        "fence",
        "print",
        "atomic_input",
        "nondet",
    }
)

# Multi-character operators must come before their single-char prefixes so the
# lexer can do maximal-munch by trying them in order.
OPERATORS = (
    "&&",
    "||",
    "==",
    "!=",
    "<=",
    ">=",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "++",
    "--",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
)


@dataclass(frozen=True)
class Token:
    """A single lexed token with its source position.

    ``kind`` is one of ``IDENT``, ``INT``, ``EOF``, a keyword spelling, or an
    operator spelling.  ``value`` is the identifier text or the integer value;
    for keywords and operators it equals the spelling.
    """

    kind: str
    value: object
    line: int
    column: int

    def __repr__(self):
        return "Token(%s, %r, %d:%d)" % (self.kind, self.value, self.line, self.column)
