"""Error types shared by the MiniLang front end."""


class MiniLangError(Exception):
    """Base class for all MiniLang front-end errors."""

    def __init__(self, message, line=None, column=None, filename=None):
        self.message = message
        self.line = line
        self.column = column
        self.filename = filename
        super().__init__(self._format())

    def _format(self):
        where = ""
        if self.filename is not None:
            where = self.filename
        if self.line is not None:
            where += ":%d" % self.line
            if self.column is not None:
                where += ":%d" % self.column
        if where:
            return "%s: %s" % (where, self.message)
        return self.message


class LexError(MiniLangError):
    """Raised when the lexer meets an unexpected character."""


class ParseError(MiniLangError):
    """Raised when the parser meets an unexpected token."""


class CompileError(MiniLangError):
    """Raised by semantic analysis or bytecode generation."""
