"""Bytecode and CFG structures for compiled MiniLang.

A compiled function is a control-flow graph of :class:`BasicBlock` objects.
Each block holds straight-line :class:`Instr` instructions and ends with a
terminator (``JUMP``, ``BRANCH`` or ``RET``).  The explicit CFG is what the
Ball-Larus path profiler (:mod:`repro.tracing.ball_larus`) instruments and
what the symbolic executor walks.

The machine is a per-frame operand stack machine.  Stack effects:

====================  =======================================================
op                    effect
====================  =======================================================
CONST v               push v
LOAD_LOCAL n          push frame.locals[n]
STORE_LOCAL n         pop -> frame.locals[n]
LOAD_GLOBAL n         push global n                   (shared-read SAP)
STORE_GLOBAL n        pop -> global n                 (shared-write SAP)
LOAD_ELEM n           pop i; push global n[i]         (shared-read SAP)
STORE_ELEM n          pop v; pop i; global n[i] = v   (shared-write SAP)
BINOP op              pop r; pop l; push l op r
UNOP op               pop v; push op v
POP                   pop
JUMP b                goto block b
BRANCH bt bf          pop c; goto bt if c else bf
CALL f k              pop k args; push return value
RET                   pop return value; return to caller
SPAWN f k             pop k args; push thread handle  (sync SAP)
JOIN                  pop handle; block until exit    (sync SAP)
LOCK m / UNLOCK m     mutex ops                       (sync SAPs)
WAIT c m              condvar wait                    (sync SAP)
SIGNAL c/BROADCAST c  condvar ops                     (sync SAPs)
ASSERT msg            pop c; record bug if !c
ASSUME                pop c; abandon execution if !c
YIELD                 scheduling hint
FENCE                 drain this thread's store buffers (sync SAP)
PRINT k               pop k values; emit output event
====================  =======================================================
"""

from dataclasses import dataclass, field

# Opcode name constants (spelled once, referenced everywhere).
CONST = "CONST"
LOAD_LOCAL = "LOAD_LOCAL"
STORE_LOCAL = "STORE_LOCAL"
LOAD_GLOBAL = "LOAD_GLOBAL"
STORE_GLOBAL = "STORE_GLOBAL"
LOAD_ELEM = "LOAD_ELEM"
STORE_ELEM = "STORE_ELEM"
BINOP = "BINOP"
UNOP = "UNOP"
POP = "POP"
JUMP = "JUMP"
BRANCH = "BRANCH"
CALL = "CALL"
RET = "RET"
SPAWN = "SPAWN"
JOIN = "JOIN"
LOCK = "LOCK"
UNLOCK = "UNLOCK"
WAIT = "WAIT"
SIGNAL = "SIGNAL"
BROADCAST = "BROADCAST"
ASSERT = "ASSERT"
ASSUME = "ASSUME"
YIELD = "YIELD"
FENCE = "FENCE"
PRINT = "PRINT"

TERMINATORS = frozenset({JUMP, BRANCH, RET})

# Opcodes that access a global memory location (candidate SAPs).
GLOBAL_READS = frozenset({LOAD_GLOBAL, LOAD_ELEM})
GLOBAL_WRITES = frozenset({STORE_GLOBAL, STORE_ELEM})

# Synchronization opcodes (always SAPs when they touch shared sync objects).
SYNC_OPS = frozenset({SPAWN, JOIN, LOCK, UNLOCK, WAIT, SIGNAL, BROADCAST})


@dataclass
class Instr:
    """One bytecode instruction.

    ``arg``/``arg2`` meaning depends on ``op`` (see module docstring);
    ``line`` is the source line for diagnostics.
    """

    op: str
    arg: object = None
    arg2: object = None
    line: int = 0

    def __repr__(self):
        parts = [self.op]
        if self.arg is not None:
            parts.append(repr(self.arg))
        if self.arg2 is not None:
            parts.append(repr(self.arg2))
        return " ".join(parts)


@dataclass
class BasicBlock:
    """A straight-line run of instructions ending in a terminator."""

    id: int
    instrs: list = field(default_factory=list)

    @property
    def terminator(self):
        return self.instrs[-1] if self.instrs else None

    def successors(self):
        """Block ids this block can transfer control to."""
        term = self.terminator
        if term is None:
            return []
        if term.op == JUMP:
            return [term.arg]
        if term.op == BRANCH:
            return [term.arg, term.arg2]
        return []

    def __repr__(self):
        return "BasicBlock(%d, %d instrs)" % (self.id, len(self.instrs))


@dataclass
class CompiledFunction:
    """A function lowered to a CFG of basic blocks (entry is block 0)."""

    name: str
    params: list  # parameter names in order
    locals: list  # all local names (including params)
    blocks: list  # list of BasicBlock, indexed by id
    ret_type: str = "void"
    line: int = 0

    def block(self, block_id):
        return self.blocks[block_id]

    @property
    def entry(self):
        return self.blocks[0]

    def edges(self):
        """All CFG edges as (src_block_id, dst_block_id) pairs."""
        result = []
        for block in self.blocks:
            for succ in block.successors():
                result.append((block.id, succ))
        return result

    def instruction_count(self):
        return sum(len(b.instrs) for b in self.blocks)

    def dump(self):
        """Human-readable disassembly (used by tests and debugging)."""
        lines = ["func %s(%s):" % (self.name, ", ".join(self.params))]
        for block in self.blocks:
            lines.append("  block %d:" % block.id)
            for instr in block.instrs:
                lines.append("    %r" % instr)
        return "\n".join(lines)
