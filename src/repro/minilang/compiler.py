"""AST -> bytecode/CFG compiler for MiniLang.

The compiler performs light semantic analysis (name resolution, arity
checks, array/scalar usage checks) and lowers each function to a CFG of
basic blocks (:class:`repro.minilang.bytecode.BasicBlock`).  Loops produce
the canonical ``header -> body -> header`` shape with a single back edge so
the Ball-Larus instrumenter can find loop re-entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minilang import ast_nodes as ast
from repro.minilang import bytecode as bc
from repro.minilang.errors import CompileError
from repro.minilang.symbols import GlobalInfo, SymbolTable


@dataclass
class CompiledProgram:
    """The unit of execution: symbol table plus compiled functions."""

    name: str
    symbols: SymbolTable
    functions: dict  # name -> CompiledFunction
    ast: ast.Program = None

    def function(self, name):
        return self.functions[name]

    @property
    def main(self):
        return self.functions["main"]

    def instruction_count(self):
        return sum(f.instruction_count() for f in self.functions.values())


class _FunctionCompiler:
    """Compiles a single function body into basic blocks."""

    def __init__(self, program_compiler, func):
        self.pc = program_compiler
        self.func = func
        self.blocks = [bc.BasicBlock(0)]
        self.current = self.blocks[0]
        self.locals = [p.name for p in func.params]
        self.sealed = False  # current block already has a terminator

    # -- block plumbing ------------------------------------------------------

    def new_block(self):
        block = bc.BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def switch_to(self, block):
        self.current = block
        self.sealed = False

    def emit(self, op, arg=None, arg2=None, line=0):
        if self.sealed:
            # Unreachable code after return/jump: drop it silently but keep
            # compiling so later errors still surface.
            return None
        instr = bc.Instr(op, arg, arg2, line=line)
        self.current.instrs.append(instr)
        if op in bc.TERMINATORS:
            self.sealed = True
        return instr

    def error(self, message, node):
        raise CompileError(
            message, line=node.line, column=node.column, filename=self.pc.program.name
        )

    # -- names -----------------------------------------------------------------

    def declare_local(self, name, node):
        if name in self.pc.symbols.globals:
            self.error("local %r shadows a global" % name, node)
        if name not in self.locals:
            # Locals are function-scoped; re-declaring one (e.g. two
            # ``for (int i ...)`` loops) just re-initializes it.
            self.locals.append(name)

    def resolve(self, name, node):
        """Return 'local' or 'global' for ``name``."""
        if name in self.locals:
            return "local"
        if name in self.pc.symbols.globals:
            return "global"
        self.error("undefined variable %r" % name, node)

    def data_global(self, name, node):
        info = self.pc.symbols.globals.get(name)
        if info is None or not info.is_data:
            self.error("%r is not a data global" % name, node)
        return info

    # -- statements ----------------------------------------------------------

    def compile_body(self, block_node):
        self.compile_block(block_node)
        # Implicit return (void functions and fallthrough paths).
        self.emit(bc.CONST, 0)
        self.emit(bc.RET, line=self.func.line)
        return bc.CompiledFunction(
            name=self.func.name,
            params=[p.name for p in self.func.params],
            locals=list(self.locals),
            blocks=self.blocks,
            ret_type=self.func.ret_type,
            line=self.func.line,
        )

    def compile_block(self, block_node):
        for stmt in block_node.stmts:
            self.compile_stmt(stmt)

    def compile_stmt(self, stmt):
        method = getattr(self, "stmt_" + type(stmt).__name__, None)
        if method is None:
            self.error("cannot compile statement %s" % type(stmt).__name__, stmt)
        method(stmt)

    def stmt_Block(self, stmt):
        self.compile_block(stmt)

    def stmt_LocalDecl(self, stmt):
        self.declare_local(stmt.name, stmt)
        if stmt.init is not None:
            self.compile_expr(stmt.init)
        else:
            self.emit(bc.CONST, 0, line=stmt.line)
        self.emit(bc.STORE_LOCAL, stmt.name, line=stmt.line)

    def stmt_Assign(self, stmt):
        target = stmt.target
        if isinstance(target, ast.Name):
            kind = self.resolve(target.name, target)
            self.compile_expr(stmt.value)
            if kind == "local":
                self.emit(bc.STORE_LOCAL, target.name, line=stmt.line)
            else:
                info = self.data_global(target.name, target)
                if info.is_array:
                    self.error(
                        "array %r assigned without an index" % target.name, target
                    )
                self.emit(bc.STORE_GLOBAL, target.name, line=stmt.line)
        elif isinstance(target, ast.Index):
            info = self.data_global(target.name, target)
            if not info.is_array:
                self.error("%r is not an array" % target.name, target)
            self.compile_expr(target.index)
            self.compile_expr(stmt.value)
            self.emit(bc.STORE_ELEM, target.name, line=stmt.line)
        else:  # pragma: no cover - parser guarantees lvalues
            self.error("bad assignment target", stmt)

    def stmt_If(self, stmt):
        self.compile_expr(stmt.cond)
        then_block = self.new_block()
        else_block = self.new_block() if stmt.els is not None else None
        exit_block = self.new_block()
        self.emit(
            bc.BRANCH,
            then_block.id,
            else_block.id if else_block is not None else exit_block.id,
            line=stmt.line,
        )
        self.switch_to(then_block)
        self.compile_block(stmt.then)
        self.emit(bc.JUMP, exit_block.id, line=stmt.line)
        if else_block is not None:
            self.switch_to(else_block)
            self.compile_block(stmt.els)
            self.emit(bc.JUMP, exit_block.id, line=stmt.line)
        self.switch_to(exit_block)

    def stmt_While(self, stmt):
        header = self.new_block()
        body = self.new_block()
        exit_block = self.new_block()
        self.emit(bc.JUMP, header.id, line=stmt.line)
        self.switch_to(header)
        self.compile_expr(stmt.cond)
        self.emit(bc.BRANCH, body.id, exit_block.id, line=stmt.line)
        self.switch_to(body)
        self.compile_block(stmt.body)
        self.emit(bc.JUMP, header.id, line=stmt.line)  # the back edge
        self.switch_to(exit_block)

    def stmt_Return(self, stmt):
        if stmt.value is not None:
            self.compile_expr(stmt.value)
        else:
            self.emit(bc.CONST, 0, line=stmt.line)
        self.emit(bc.RET, line=stmt.line)
        # Continue compiling any (unreachable) trailing code in a fresh block
        # so that jump targets created later stay well formed.
        self.switch_to(self.new_block())

    def stmt_ExprStmt(self, stmt):
        self.compile_expr(stmt.expr)
        self.emit(bc.POP, line=stmt.line)

    def stmt_Spawn(self, stmt):
        func = self.pc.functions_ast.get(stmt.func)
        if func is None:
            self.error("spawn of undefined function %r" % stmt.func, stmt)
        if len(func.params) != len(stmt.args):
            self.error(
                "spawn %s expects %d args, got %d"
                % (stmt.func, len(func.params), len(stmt.args)),
                stmt,
            )
        for arg in stmt.args:
            self.compile_expr(arg)
        self.emit(bc.SPAWN, stmt.func, len(stmt.args), line=stmt.line)
        if stmt.target is not None:
            if self.resolve(stmt.target, stmt) == "local":
                self.emit(bc.STORE_LOCAL, stmt.target, line=stmt.line)
            else:
                self.data_global(stmt.target, stmt)
                self.emit(bc.STORE_GLOBAL, stmt.target, line=stmt.line)
        else:
            self.emit(bc.POP, line=stmt.line)

    def stmt_Join(self, stmt):
        self.compile_expr(stmt.handle)
        self.emit(bc.JOIN, line=stmt.line)

    def _sync_object(self, name, expected_type, node):
        info = self.pc.symbols.globals.get(name)
        if info is None or info.type != expected_type:
            self.error("%r is not a %s" % (name, expected_type), node)

    def stmt_LockStmt(self, stmt):
        self._sync_object(stmt.name, "mutex", stmt)
        self.emit(bc.LOCK, stmt.name, line=stmt.line)

    def stmt_UnlockStmt(self, stmt):
        self._sync_object(stmt.name, "mutex", stmt)
        self.emit(bc.UNLOCK, stmt.name, line=stmt.line)

    def stmt_WaitStmt(self, stmt):
        self._sync_object(stmt.cond, "cond", stmt)
        self._sync_object(stmt.mutex, "mutex", stmt)
        self.emit(bc.WAIT, stmt.cond, stmt.mutex, line=stmt.line)

    def stmt_SignalStmt(self, stmt):
        self._sync_object(stmt.cond, "cond", stmt)
        self.emit(bc.SIGNAL, stmt.cond, line=stmt.line)

    def stmt_BroadcastStmt(self, stmt):
        self._sync_object(stmt.cond, "cond", stmt)
        self.emit(bc.BROADCAST, stmt.cond, line=stmt.line)

    def stmt_AssertStmt(self, stmt):
        self.compile_expr(stmt.cond)
        self.emit(bc.ASSERT, stmt.message, line=stmt.line)

    def stmt_AssumeStmt(self, stmt):
        self.compile_expr(stmt.cond)
        self.emit(bc.ASSUME, line=stmt.line)

    def stmt_YieldStmt(self, stmt):
        self.emit(bc.YIELD, line=stmt.line)

    def stmt_FenceStmt(self, stmt):
        self.emit(bc.FENCE, line=stmt.line)

    def stmt_PrintStmt(self, stmt):
        for arg in stmt.args:
            self.compile_expr(arg)
        self.emit(bc.PRINT, len(stmt.args), line=stmt.line)

    # -- expressions ----------------------------------------------------------

    def compile_expr(self, expr):
        method = getattr(self, "expr_" + type(expr).__name__, None)
        if method is None:
            self.error("cannot compile expression %s" % type(expr).__name__, expr)
        method(expr)

    def expr_IntLit(self, expr):
        self.emit(bc.CONST, expr.value, line=expr.line)

    def expr_BoolLit(self, expr):
        self.emit(bc.CONST, 1 if expr.value else 0, line=expr.line)

    def expr_Name(self, expr):
        kind = self.resolve(expr.name, expr)
        if kind == "local":
            self.emit(bc.LOAD_LOCAL, expr.name, line=expr.line)
        else:
            info = self.data_global(expr.name, expr)
            if info.is_array:
                self.error("array %r used without an index" % expr.name, expr)
            self.emit(bc.LOAD_GLOBAL, expr.name, line=expr.line)

    def expr_Index(self, expr):
        info = self.data_global(expr.name, expr)
        if not info.is_array:
            self.error("%r is not an array" % expr.name, expr)
        self.compile_expr(expr.index)
        self.emit(bc.LOAD_ELEM, expr.name, line=expr.line)

    def expr_Unary(self, expr):
        self.compile_expr(expr.operand)
        self.emit(bc.UNOP, expr.op, line=expr.line)

    def expr_Binary(self, expr):
        self.compile_expr(expr.left)
        self.compile_expr(expr.right)
        self.emit(bc.BINOP, expr.op, line=expr.line)

    def expr_Call(self, expr):
        func = self.pc.functions_ast.get(expr.func)
        if func is None:
            self.error("call to undefined function %r" % expr.func, expr)
        if len(func.params) != len(expr.args):
            self.error(
                "%s expects %d args, got %d"
                % (expr.func, len(func.params), len(expr.args)),
                expr,
            )
        for arg in expr.args:
            self.compile_expr(arg)
        self.emit(bc.CALL, expr.func, len(expr.args), line=expr.line)


class _ProgramCompiler:
    def __init__(self, program):
        self.program = program
        self.symbols = SymbolTable()
        self.functions_ast = {f.name: f for f in program.functions}

    def compile(self):
        if "main" not in self.functions_ast:
            raise CompileError("program has no 'main' function", filename=self.program.name)
        for decl in self.program.globals:
            self._add_global(decl)
        for func in self.program.functions:
            self.symbols.functions[func.name] = (
                [p.name for p in func.params],
                func.ret_type,
            )
        compiled = {}
        for func in self.program.functions:
            compiled[func.name] = _FunctionCompiler(self, func).compile_body(func.body)
        return CompiledProgram(
            name=self.program.name,
            symbols=self.symbols,
            functions=compiled,
            ast=self.program,
        )

    def _add_global(self, decl):
        if decl.name in self.symbols.globals:
            raise CompileError(
                "duplicate global %r" % decl.name,
                line=decl.line,
                filename=self.program.name,
            )
        init = 0
        if decl.init is not None:
            init = _const_eval(decl.init, self.program.name)
        self.symbols.globals[decl.name] = GlobalInfo(
            name=decl.name,
            type=decl.type,
            size=decl.size,
            init=init,
            sharing=decl.sharing,
        )


def _const_eval(expr, filename):
    """Evaluate a global initializer, which must be a constant expression."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.BoolLit):
        return 1 if expr.value else 0
    if isinstance(expr, ast.Unary) and expr.op == "-":
        return -_const_eval(expr.operand, filename)
    if isinstance(expr, ast.Binary):
        left = _const_eval(expr.left, filename)
        right = _const_eval(expr.right, filename)
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
        }
        if expr.op in ops:
            return ops[expr.op](left, right)
    raise CompileError(
        "global initializer must be a constant expression",
        line=expr.line,
        filename=filename,
    )


def compile_program(program):
    """Compile a parsed :class:`Program` into a :class:`CompiledProgram`."""
    return _ProgramCompiler(program).compile()
