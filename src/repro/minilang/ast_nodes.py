"""AST node definitions for MiniLang.

All nodes are plain dataclasses carrying a source position (``line``,
``column``) so later phases (semantic analysis, symbolic execution, bug
reporting) can point back at source locations.

Notes on semantics:

* ``&&`` and ``||`` are *strict* (non-short-circuit) boolean operators.  This
  keeps one source-level condition as one CFG branch, which keeps Ball-Larus
  path profiles and path constraints aligned with the source.
* ``spawn f(args)`` starts a new thread running ``f`` and evaluates to an
  integer thread handle; ``join e`` blocks until the thread named by handle
  ``e`` exits.
* Global declarations may be prefixed with ``shared`` or ``local`` to force
  the classification used by the static escape analysis; unprefixed globals
  are classified by the analysis itself.
"""

from dataclasses import dataclass, field


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)
    column: int = field(default=0, kw_only=True)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class Name(Expr):
    name: str


@dataclass
class Index(Expr):
    """Array subscript ``name[index]``."""

    name: str
    index: Expr


@dataclass
class Unary(Expr):
    op: str  # '-' or '!'
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # + - * / % < <= > >= == != && ||
    left: Expr
    right: Expr


@dataclass
class Call(Expr):
    func: str
    args: list


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    stmts: list


@dataclass
class LocalDecl(Stmt):
    type: str  # 'int' or 'bool'
    name: str
    init: Expr | None


@dataclass
class Assign(Stmt):
    """``target = value`` where target is a Name or Index.

    Compound assignments (``+=`` etc.) and ``++``/``--`` are desugared by the
    parser into plain assignments, so ``op`` is always ``'='`` here.
    """

    target: Expr
    value: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then: Block
    els: Block | None


@dataclass
class While(Stmt):
    cond: Expr
    body: Block


@dataclass
class Return(Stmt):
    value: Expr | None


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class Spawn(Stmt):
    """``target = spawn f(args);`` or ``spawn f(args);``"""

    target: str | None
    func: str
    args: list


@dataclass
class Join(Stmt):
    handle: Expr


@dataclass
class LockStmt(Stmt):
    name: str


@dataclass
class UnlockStmt(Stmt):
    name: str


@dataclass
class WaitStmt(Stmt):
    cond: str
    mutex: str


@dataclass
class SignalStmt(Stmt):
    cond: str


@dataclass
class BroadcastStmt(Stmt):
    cond: str


@dataclass
class AssertStmt(Stmt):
    cond: Expr
    message: str = ""


@dataclass
class AssumeStmt(Stmt):
    cond: Expr


@dataclass
class YieldStmt(Stmt):
    pass


@dataclass
class FenceStmt(Stmt):
    pass


@dataclass
class PrintStmt(Stmt):
    args: list


# --------------------------------------------------------------------------
# Declarations
# --------------------------------------------------------------------------


@dataclass
class GlobalDecl(Node):
    """A global variable, mutex, or condition variable declaration."""

    type: str  # 'int', 'bool', 'mutex', 'cond'
    name: str
    size: int | None = None  # array length for 'int'/'bool' arrays
    init: Expr | None = None
    sharing: str = "auto"  # 'auto', 'shared', or 'local'

    @property
    def is_array(self):
        return self.size is not None


@dataclass
class Param(Node):
    type: str  # 'int' or 'bool'
    name: str


@dataclass
class FuncDef(Node):
    name: str
    params: list
    ret_type: str  # 'int', 'bool', or 'void'
    body: Block = None


@dataclass
class Program(Node):
    name: str
    globals: list
    functions: list

    def function(self, name):
        """Return the FuncDef named ``name`` or raise KeyError."""
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(name)

    def global_decl(self, name):
        """Return the GlobalDecl named ``name`` or raise KeyError."""
        for g in self.globals:
            if g.name == name:
                return g
        raise KeyError(name)
