"""Symbol information for compiled MiniLang programs."""

from dataclasses import dataclass, field


@dataclass
class GlobalInfo:
    """Compile-time information about one global declaration."""

    name: str
    type: str  # 'int', 'bool', 'mutex', 'cond'
    size: int | None = None  # array length, or None for scalars
    init: object = 0  # concrete initial value (int/bool); arrays start zeroed
    sharing: str = "auto"  # declared sharing class ('auto'/'shared'/'local')

    @property
    def is_array(self):
        return self.size is not None

    @property
    def is_sync(self):
        return self.type in ("mutex", "cond")

    @property
    def is_data(self):
        return self.type in ("int", "bool")


@dataclass
class SymbolTable:
    """Program-wide symbol table: globals by name and function signatures."""

    globals: dict = field(default_factory=dict)  # name -> GlobalInfo
    functions: dict = field(default_factory=dict)  # name -> (params, ret_type)

    def data_globals(self):
        """Names of int/bool globals (the candidate shared data)."""
        return [g.name for g in self.globals.values() if g.is_data]

    def mutexes(self):
        return [g.name for g in self.globals.values() if g.type == "mutex"]

    def condvars(self):
        return [g.name for g in self.globals.values() if g.type == "cond"]
