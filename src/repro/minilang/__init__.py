"""MiniLang: a small concurrent imperative language.

MiniLang is the program substrate for this CLAP reproduction.  The paper's
prototype instruments C/C++ programs through LLVM; here, benchmark programs
are written in MiniLang, compiled to a CFG-structured bytecode, and executed
by a scheduler-controlled interpreter (see :mod:`repro.runtime`).

The language offers exactly the features the CLAP constraint theory cares
about: global (potentially shared) scalar and array variables, functions,
structured control flow, thread spawn/join, mutexes, condition variables,
and assertions.
"""

from repro.minilang.ast_nodes import Program
from repro.minilang.compiler import CompiledProgram, compile_program
from repro.minilang.errors import (
    MiniLangError,
    ParseError,
    LexError,
    CompileError,
)
from repro.minilang.lexer import tokenize
from repro.minilang.parser import parse_program

__all__ = [
    "Program",
    "CompiledProgram",
    "compile_program",
    "compile_source",
    "MiniLangError",
    "ParseError",
    "LexError",
    "CompileError",
    "tokenize",
    "parse_program",
]


def compile_source(source, name="<minilang>"):
    """Parse and compile MiniLang ``source`` into a :class:`CompiledProgram`."""
    return compile_program(parse_program(source, name=name))
