"""Hand-written lexer for MiniLang.

The lexer produces a flat list of :class:`~repro.minilang.tokens.Token`
objects.  It supports ``//`` line comments and ``/* ... */`` block comments,
decimal integer literals, identifiers, keywords, and the operator set in
:data:`repro.minilang.tokens.OPERATORS`.
"""

from repro.minilang.errors import LexError
from repro.minilang.tokens import EOF, IDENT, INT, KEYWORDS, OPERATORS, Token


def tokenize(source, name="<minilang>"):
    """Tokenize ``source`` and return a list of tokens ending with EOF."""
    tokens = []
    pos = 0
    line = 1
    col = 1
    n = len(source)

    def error(message):
        raise LexError(message, line=line, column=col, filename=name)

    while pos < n:
        ch = source[pos]
        # Whitespace.
        if ch == "\n":
            pos += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            pos += 1
            col += 1
            continue
        # Comments.
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            if end < 0:
                pos = n
            else:
                pos = end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                error("unterminated block comment")
            skipped = source[pos : end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            pos = end + 2
            continue
        # Integer literals.
        if ch.isdigit():
            start = pos
            while pos < n and source[pos].isdigit():
                pos += 1
            text = source[start:pos]
            tokens.append(Token(INT, int(text), line, col))
            col += len(text)
            continue
        # Identifiers and keywords.
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < n and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = text if text in KEYWORDS else IDENT
            tokens.append(Token(kind, text, line, col))
            col += len(text)
            continue
        # Operators and punctuation (maximal munch).
        for op in OPERATORS:
            if source.startswith(op, pos):
                tokens.append(Token(op, op, line, col))
                pos += len(op)
                col += len(op)
                break
        else:
            error("unexpected character %r" % ch)

    tokens.append(Token(EOF, None, line, col))
    return tokens
