"""The fleet dispatcher: durable queue → worker pool → cluster fan-out.

One solve job per *cluster*, not per report — that is the fleet's whole
economy.  The dispatcher claims pending solve jobs from the fleet's
:class:`~repro.fleet.queue.DurableJobQueue` (FIFO, with a per-shard
concurrency cap so one hot shard cannot starve the rest), runs each
through the ordinary batch executor
(:func:`repro.service.batch.run_repro_job` on a
:class:`~repro.service.pool.WorkerPool`, pointed at the fleet's shared
analysis cache tier), and records the outcome in the cluster registry.

After a cluster's representative solves, :meth:`FleetDispatcher.fanout`
replays the solved schedule against every other member's stored trace —
the dedup invariant (identical whole-path profiles ⇒ identical
constraint system) says it must reproduce their failure too, and fan-out
*checks* that instead of assuming it.  Each fanned-out member yields a
normal :class:`~repro.service.jobs.JobResult` with ``deduped=True`` and
zero solve time, so batch aggregation and the results JSONL treat
avoided solves and real solves uniformly.
"""

import time

from repro.core.clap import ClapConfig, ClapPipeline
from repro.fleet.cluster import STATUS_PENDING, STATUS_SOLVED
from repro.service.batch import aggregate_results, run_repro_job
from repro.service.jobs import (
    STATUS_FAILED,
    STATUS_REPRODUCED,
    JobResult,
    JobSpec,
)
from repro.service.pool import WorkerPool


class FleetDispatcher:
    """Drains a fleet's solve queue and fans solved schedules out."""

    def __init__(self, fleet, jobs=2, per_shard_limit=2, solver="smt",
                 timeout=120.0, max_attempts=3, backoff=0.25):
        self.fleet = fleet
        self.jobs = jobs
        self.per_shard_limit = max(1, per_shard_limit)
        self.solver = solver
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.queue = fleet.queue()
        self.registry = fleet.registry()

    # -- solving ---------------------------------------------------------

    def _spec_for(self, payload):
        cache_max = self.fleet.config.get("cache_max_bytes") or 0
        return JobSpec(
            corpus_root=self.fleet.shard_root(payload["shard"]),
            entry_id=payload["entry_id"],
            solver=self.solver,
            timeout=self.timeout,
            max_attempts=self.max_attempts,
            backoff=self.backoff,
            shard=payload["shard"],
            cluster=payload["cluster"],
            cache_root=self.fleet.shared_cache().root,
            cache_max_bytes=cache_max,
            want_schedule=True,
        )

    def drain_once(self, on_outcome=None):
        """Claim and solve one round of pending jobs; returns JobResults.

        A round claims at most ``jobs`` queue entries, never more than
        ``per_shard_limit`` from any one shard — jobs skipped by the cap
        keep their FIFO position for the next round.
        """
        self.queue.recover()
        per_shard = {}

        def accept(payload):
            shard = payload.get("shard", -1)
            if per_shard.get(shard, 0) >= self.per_shard_limit:
                return False
            per_shard[shard] = per_shard.get(shard, 0) + 1
            return True

        claimed = self.queue.claim(self.jobs, accept=accept)
        if not claimed:
            return []
        specs = [self._spec_for(job["payload"]) for job in claimed]
        pool = WorkerPool(run_repro_job, jobs=self.jobs)
        raw = pool.run(
            [spec.to_dict() for spec in specs], on_outcome=on_outcome
        )
        results = [JobResult.from_dict(outcome) for outcome in raw]
        for job, result in zip(claimed, results):
            signature = job["payload"]["cluster"]
            if result.ok and result.schedule:
                self.registry.mark_solved(
                    signature,
                    [tuple(uid) for uid in result.schedule],
                    result.context_switches,
                    solve={
                        "entry_id": result.entry_id,
                        "solver": result.solver,
                        "time_solve": result.time_solve,
                        "time_symbolic": result.time_symbolic,
                    },
                )
                self.queue.complete(
                    job["id"], {"status": result.status, "entry_id": result.entry_id}
                )
            else:
                self.registry.mark_failed(
                    signature, result.reason or result.status
                )
                self.queue.fail(job["id"], result.reason or result.status)
        return results

    # -- fan-out ---------------------------------------------------------

    def fanout(self, on_outcome=None):
        """Validate every solved cluster's unvalidated members by replay.

        For each member the representative's schedule is replayed against
        the member's own stored trace/program; success is recorded in the
        registry and reported as a ``deduped`` JobResult (solve time 0 —
        the solve was shared).  A member whose replay does *not* hit the
        same failure is reported ``failed`` and left unvalidated: that
        would mean the dedup invariant was violated, and it must be loud.
        """
        results = []
        for signature in self.registry.signatures():
            record = self.registry.get(signature)
            if record is None or record["status"] != STATUS_SOLVED:
                continue
            schedule = [tuple(uid) for uid in record["schedule"] or []]
            for member in record["members"]:
                if member.get("validated"):
                    continue
                result = self._fan_one(record, member, schedule)
                self.registry.mark_member_validated(
                    signature, member["entry_id"], result.ok
                )
                results.append(result)
                if on_outcome is not None:
                    on_outcome(len(results) - 1, result.to_dict())
        return results

    def _fan_one(self, record, member, schedule):
        signature = record["signature"]
        result = JobResult(
            entry_id=member["entry_id"],
            status=STATUS_FAILED,
            solver=self.solver,
            shard=member["shard"],
            cluster=signature,
            deduped=True,
            context_switches=record.get("context_switches", -1),
            schedule=[list(uid) for uid in schedule],
        )
        t0 = time.monotonic()
        try:
            entry = self.fleet.shard(member["shard"]).entry(member["entry_id"])
            result.program = entry.program_name()
            stored = entry.load_execution()
            pipeline = ClapPipeline(
                stored.program,
                ClapConfig(**entry.config_kwargs(solver=self.solver)),
            )
            outcome = pipeline.replay(schedule, stored.bug)
            if outcome.reproduced:
                result.status = STATUS_REPRODUCED
            else:
                result.reason = (
                    "fan-out replay did not reproduce the member's failure"
                )
        except Exception as exc:
            result.reason = "%s: %s" % (type(exc).__name__, exc)
        result.wall_time = round(time.monotonic() - t0, 6)
        return result

    # -- the whole drain -------------------------------------------------

    def drain(self, on_outcome=None, max_rounds=1000):
        """Solve until the queue is empty, then fan out; returns
        ``(results, aggregate)`` shaped like ``run_batch``'s output."""
        t0 = time.monotonic()
        results = []
        for _ in range(max_rounds):
            round_results = self.drain_once(on_outcome=on_outcome)
            if not round_results:
                if self.queue.counts()["pending"] == 0:
                    break
                continue
            results.extend(round_results)
        results.extend(self.fanout(on_outcome=on_outcome))
        aggregate = aggregate_results(results)
        aggregate["batch_wall_time"] = round(time.monotonic() - t0, 6)
        aggregate["clusters"] = self.registry.stats()
        aggregate["shared_cache"] = self.fleet.shared_cache().usage()
        return results, aggregate
