"""The reproduction fleet: CLAP as a service for a crash-reporting fleet.

The paper reproduces one failure on one machine.  A deployment sees the
same failure from thousands of machines — and because CLAP records only
thread-local control flow, most of those reports are *byte-identical*
per-thread path profiles: one constraint solve serves them all.  This
package is the scale-out layer that exploits that:

* :mod:`repro.fleet.shards` — :class:`ShardedCorpus`: trace storage
  partitioned into N ordinary corpora, every trace routed by its content
  hash, with per-shard manifests and rebalancing;
* :mod:`repro.fleet.cluster` — dedup/clustering by Ball-Larus whole-path
  profile equality, the :class:`ClusterRegistry` of representatives,
  members, solved schedules, and the similarity diagnostic;
* :mod:`repro.fleet.queue` — :class:`DurableJobQueue`: a crash-safe
  directory-backed FIFO of solve jobs (accepted work survives restarts);
* :mod:`repro.fleet.gateway` — :class:`IngestGateway`: the asyncio
  ingestion server (newline-JSON over TCP) with validation, dedup,
  backpressure and graceful drain;
* :mod:`repro.fleet.dispatch` — :class:`FleetDispatcher`: drains the
  queue through the batch worker pool against the fleet's shared
  analysis cache, then fans each solved schedule out to every cluster
  member with a replay check.
"""

from repro.fleet.cluster import (
    ClusterError,
    ClusterRegistry,
    cluster_material,
    cluster_signature,
    path_multiset,
    profile_digests,
    profile_similarity,
)
from repro.fleet.dispatch import FleetDispatcher
from repro.fleet.gateway import (
    GatewayError,
    IngestGateway,
    report_from_entry,
    report_from_recorded,
    request,
    validate_report,
)
from repro.fleet.queue import DurableJobQueue, QueueError
from repro.fleet.shards import FleetError, ShardedCorpus

__all__ = [
    "ClusterError",
    "ClusterRegistry",
    "cluster_material",
    "cluster_signature",
    "path_multiset",
    "profile_digests",
    "profile_similarity",
    "FleetDispatcher",
    "GatewayError",
    "IngestGateway",
    "report_from_entry",
    "report_from_recorded",
    "request",
    "validate_report",
    "DurableJobQueue",
    "QueueError",
    "FleetError",
    "ShardedCorpus",
]
