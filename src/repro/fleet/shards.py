"""The sharded trace corpus: fleet-scale storage routed by content hash.

A single flat corpus directory stops scaling long before "millions of
crash reports": every ``ls`` walks every entry, every add contends on one
directory, and there is no unit of placement to spread across disks or
machines.  The fleet layer partitions storage into **shards** — each a
perfectly ordinary :class:`~repro.store.corpus.Corpus` — and routes every
trace by its content hash (the same fingerprint
:class:`~repro.store.cache.AnalysisCache` keys analyses by), so equal
traces always land in the same shard and placement needs no coordination
or lookup table.

Layout::

    fleet-root/
      fleet.json                  # {"format": 1, "shards": N, config…}
      shards/
        shard-00/                 # a normal Corpus (corpus.json, entries/)
          shard.json              # per-shard manifest: entry → {fingerprint,
          …                       #   cluster, program} (rebuildable cache)
      clusters/                   # ClusterRegistry (fleet.cluster)
      queue/                      # DurableJobQueue (fleet.queue)
      cache/                      # SharedAnalysisCache — the shared tier

Every fleet entry's manifest carries a ``fleet`` section (shard index,
cluster signature, trace fingerprint), so the per-shard ``shard.json``
manifests are pure caches: :meth:`ShardedCorpus.sync_shard` rebuilds one
from its entries' manifests after a crash or manual surgery, and
:meth:`ShardedCorpus.rebalance` re-routes every entry after a shard-count
change (updating the cluster registry's shard references to match).
"""

import json
import os

from repro.core.clap import ClapConfig, ClapPipeline
from repro.fleet.cluster import (
    ClusterRegistry,
    cluster_material,
    cluster_signature,
    path_multiset,
)
from repro.fleet.queue import DurableJobQueue
from repro.minilang import compile_source
from repro.store.cache import AnalysisCache, SharedAnalysisCache
from repro.store.corpus import Corpus, CorpusError, _sha256
from repro.tracing.logfmt import encode_tokens

FLEET_FORMAT = 1
SHARD_MANIFEST_FORMAT = 1

# Default size budget for the shared analysis cache tier (64 MiB); the
# CLI and fleet.json config can override.
DEFAULT_CACHE_BUDGET = 64 * 1024 * 1024


class FleetError(Exception):
    """A structural problem with a fleet directory."""


class _ReportRecorder:
    """Duck-types a finalized PathRecorder for storage/fingerprinting."""

    def __init__(self, logs, instrumentation_ops=0):
        self.logs = logs
        self.instrumentation_ops = instrumentation_ops

    def log_size_bytes(self):
        return sum(len(encode_tokens(tokens)) for tokens in self.logs.values())


class _ReportResult:
    """Duck-types ExecutionResult from a crash report's stats dict."""

    def __init__(self, bug, stats):
        self.bug = bug
        self.thread_names = {
            i: name for i, name in enumerate(stats.get("thread_names", []))
        }
        self.saps_by_thread = {}
        self._stats = stats

    def total_instructions(self):
        return self._stats.get("n_instructions", 0)

    def total_branches(self):
        return self._stats.get("n_branches", 0)

    def total_saps(self):
        return self._stats.get("n_saps", 0)


class ShardedCorpus:
    """A fleet root: N hash-routed shards plus the shared fleet services."""

    def __init__(self, root, n_shards, config=None):
        self.root = root
        self.n_shards = n_shards
        self.config = dict(config or {})
        self.shards_dir = os.path.join(root, "shards")
        self._shards = {}

    # -- lifecycle -------------------------------------------------------

    @classmethod
    def create(cls, root, shards=4, cache_max_bytes=DEFAULT_CACHE_BUDGET):
        if shards < 1:
            raise FleetError("a fleet needs at least one shard")
        marker = os.path.join(root, "fleet.json")
        if os.path.exists(marker):
            raise FleetError("%s is already a fleet" % root)
        os.makedirs(os.path.join(root, "shards"), exist_ok=True)
        fleet = cls(root, shards, {"cache_max_bytes": cache_max_bytes})
        fleet._write_marker()
        for index in range(shards):
            fleet.shard(index)
        return fleet

    @classmethod
    def open(cls, root):
        marker = os.path.join(root, "fleet.json")
        if not os.path.isfile(marker):
            raise FleetError("%s is not a fleet (no fleet.json)" % root)
        with open(marker, "r", encoding="utf-8") as fh:
            info = json.load(fh)
        if info.get("format") != FLEET_FORMAT:
            raise FleetError(
                "%s: unsupported fleet format %r" % (root, info.get("format"))
            )
        config = {k: v for k, v in info.items() if k not in ("format", "shards")}
        return cls(root, int(info["shards"]), config)

    @classmethod
    def open_or_create(cls, root, shards=4,
                       cache_max_bytes=DEFAULT_CACHE_BUDGET):
        if os.path.isfile(os.path.join(root, "fleet.json")):
            return cls.open(root)
        return cls.create(root, shards=shards, cache_max_bytes=cache_max_bytes)

    def _write_marker(self):
        marker = os.path.join(self.root, "fleet.json")
        payload = dict(self.config, format=FLEET_FORMAT, shards=self.n_shards)
        tmp = "%s.tmp.%d" % (marker, os.getpid())
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, marker)

    # -- the shared fleet services --------------------------------------

    def registry(self):
        return ClusterRegistry(os.path.join(self.root, "clusters"))

    def queue(self):
        return DurableJobQueue(os.path.join(self.root, "queue"))

    def shared_cache(self):
        return SharedAnalysisCache(
            os.path.join(self.root, "cache"),
            max_bytes=self.config.get("cache_max_bytes"),
        )

    # -- shard plumbing --------------------------------------------------

    @staticmethod
    def shard_name(index):
        return "shard-%02d" % index

    def shard_root(self, index):
        return os.path.join(self.shards_dir, self.shard_name(index))

    def shard(self, index):
        """The :class:`Corpus` behind shard ``index`` (created lazily)."""
        if not 0 <= index < self.n_shards:
            raise FleetError(
                "shard %d out of range (fleet has %d)" % (index, self.n_shards)
            )
        if index not in self._shards:
            self._shards[index] = Corpus.open_or_create(self.shard_root(index))
            self._ensure_shard_manifest(index)
        return self._shards[index]

    def shard_of(self, fingerprint):
        """Route a trace content hash (hex) to its home shard."""
        return int(fingerprint[:16], 16) % self.n_shards

    # -- per-shard manifests ---------------------------------------------

    def _shard_manifest_path(self, index):
        return os.path.join(self.shard_root(index), "shard.json")

    def _ensure_shard_manifest(self, index):
        if not os.path.isfile(self._shard_manifest_path(index)):
            self._write_shard_manifest(
                index,
                {
                    "format": SHARD_MANIFEST_FORMAT,
                    "shard": index,
                    "entries": {},
                },
            )

    def shard_manifest(self, index):
        try:
            with open(
                self._shard_manifest_path(index), "r", encoding="utf-8"
            ) as fh:
                manifest = json.load(fh)
        except (OSError, ValueError):
            return self.sync_shard(index)
        if manifest.get("format") != SHARD_MANIFEST_FORMAT:
            return self.sync_shard(index)
        return manifest

    def _write_shard_manifest(self, index, manifest):
        path = self._shard_manifest_path(index)
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def sync_shard(self, index):
        """Rebuild shard ``index``'s manifest from its entries' manifests.

        The per-entry ``fleet`` manifest section is authoritative;
        ``shard.json`` is a cache of it.  Entries added to the shard
        behind the fleet's back (plain ``repro corpus add``) appear with
        a fingerprint computed from their stored trace.
        """
        corpus = self.shard(index)
        entries = {}
        for entry in corpus.entries():
            info = dict(entry.manifest.get("fleet") or {})
            if not info.get("fingerprint"):
                stored = entry.load_execution()
                info["fingerprint"] = AnalysisCache.trace_fingerprint(
                    stored.recorder
                )
            entries[entry.entry_id] = {
                "fingerprint": info["fingerprint"],
                "cluster": info.get("cluster", ""),
                "program": entry.program_name(),
            }
        manifest = {
            "format": SHARD_MANIFEST_FORMAT,
            "shard": index,
            "entries": entries,
        }
        self._write_shard_manifest(index, manifest)
        return manifest

    def _register_entry(self, index, entry_id, fingerprint, cluster, program):
        manifest = self.shard_manifest(index)
        manifest["entries"][entry_id] = {
            "fingerprint": fingerprint,
            "cluster": cluster,
            "program": program,
        }
        self._write_shard_manifest(index, manifest)

    # -- adding traces ---------------------------------------------------

    def _register_cluster(self, signature, material, counts, index, entry_id):
        """Create/extend the trace's cluster; enqueue a solve if novel.

        Returns ``(status, job_id)`` where status is ``"enqueued"`` for a
        new cluster (solve job durably queued) or ``"deduped"`` when an
        equivalent trace is already known.
        """
        registry = self.registry()
        member = {"shard": index, "entry_id": entry_id}
        if registry.get(signature) is not None:
            registry.add_member(signature, member)
            return "deduped", None
        registry.create(
            signature,
            material,
            member,
            path_counts=ClusterRegistry.encode_path_counts(counts),
        )
        job_id = self.queue().put(
            {
                "kind": "solve",
                "cluster": signature,
                "shard": index,
                "entry_id": entry_id,
            }
        )
        return "enqueued", job_id

    def _fleet_stamp(self, index, signature, fingerprint):
        return {
            "fleet": {
                "shard": index,
                "cluster": signature,
                "fingerprint": fingerprint,
            }
        }

    def add(self, source, name=None, config=None, flush_every=16):
        """Record one failure locally and store it routed by content hash.

        Records once (the seed search), routes the trace by fingerprint,
        then persists through :meth:`Corpus.add`'s streaming write +
        determinism check into the home shard.  Returns an outcome dict:
        shard, entry_id, cluster signature and dedup status.
        """
        if not isinstance(source, str):
            raise FleetError("fleet entries need MiniLang source text")
        program = compile_source(source, name=name)
        config = config or ClapConfig()
        recorded = ClapPipeline(program, config).record()
        fingerprint = AnalysisCache.trace_fingerprint(recorded.recorder)
        index = self.shard_of(fingerprint)
        material = cluster_material(
            _sha256(source),
            config.memory_model,
            recorded.bug,
            recorded.recorder.logs,
        )
        signature = cluster_signature(material)

        corpus = self.shard(index)
        base = "%s-s%d-%s" % (program.name, recorded.seed, _sha256(source)[:8])
        entry_id, suffix = base, 1
        while os.path.exists(os.path.join(corpus.entries_dir, entry_id)):
            suffix += 1
            entry_id = "%s-%d" % (base, suffix)
        entry = corpus.add(
            source,
            name=name,
            config=config,
            entry_id=entry_id,
            flush_every=flush_every,
            recorded=recorded,
            extra_manifest=self._fleet_stamp(index, signature, fingerprint),
        )
        self._register_entry(
            index, entry.entry_id, fingerprint, signature, program.name
        )
        status, job_id = self._register_cluster(
            signature, material, path_multiset(recorded.recorder.logs),
            index, entry.entry_id,
        )
        return {
            "shard": index,
            "entry_id": entry.entry_id,
            "cluster": signature,
            "fingerprint": fingerprint,
            "status": status,
            "job_id": job_id,
        }

    def add_report(self, source, name, config, logs, bug, stats=None,
                   seed=-1, via="gateway"):
        """Store an already-recorded crash report (the gateway's path).

        No re-execution happens — the report's logs are trusted as-is and
        written straight into the routed shard's container.  Returns the
        same outcome dict shape as :meth:`add`.
        """
        recorder = _ReportRecorder(
            logs, (stats or {}).get("instrumentation_ops", 0)
        )
        result = _ReportResult(bug, stats or {})
        fingerprint = AnalysisCache.trace_fingerprint(recorder)
        index = self.shard_of(fingerprint)
        material = cluster_material(
            _sha256(source), config.memory_model, bug, logs
        )
        signature = cluster_signature(material)
        entry = self.shard(index).add_recorded(
            source,
            recorder,
            result,
            name=name,
            config=config,
            tag="r" + signature[:8],
            seed=seed,
            provenance={"mode": via},
            extra_manifest=self._fleet_stamp(index, signature, fingerprint),
        )
        self._register_entry(
            index, entry.entry_id, fingerprint, signature,
            entry.program_name(),
        )
        status, job_id = self._register_cluster(
            signature, material, path_multiset(logs), index, entry.entry_id
        )
        return {
            "shard": index,
            "entry_id": entry.entry_id,
            "cluster": signature,
            "fingerprint": fingerprint,
            "status": status,
            "job_id": job_id,
        }

    # -- introspection ---------------------------------------------------

    def entries(self):
        """Every (shard_index, CorpusEntry) in the fleet, shard order."""
        out = []
        for index in range(self.n_shards):
            for entry in self.shard(index).entries():
                out.append((index, entry))
        return out

    def stats(self):
        """Per-shard and total counters for ``repro fleet stats``."""
        shards = []
        for index in range(self.n_shards):
            manifest = self.shard_manifest(index)
            rows = manifest["entries"]
            trace_bytes = 0
            for entry_id in rows:
                path = os.path.join(
                    self.shard_root(index), "entries", entry_id, "trace.clap"
                )
                try:
                    trace_bytes += os.path.getsize(path)
                except OSError:
                    pass
            shards.append(
                {
                    "shard": index,
                    "entries": len(rows),
                    "clusters": len(
                        {row["cluster"] for row in rows.values() if row["cluster"]}
                    ),
                    "programs": len({row["program"] for row in rows.values()}),
                    "trace_bytes": trace_bytes,
                }
            )
        return {
            "shards": shards,
            "entries": sum(s["entries"] for s in shards),
            "trace_bytes": sum(s["trace_bytes"] for s in shards),
            "clusters": self.registry().stats(),
            "queue": self.queue().counts(),
            "cache": self.shared_cache().usage(),
        }

    # -- rebalance -------------------------------------------------------

    def rebalance(self, shards=None):
        """Re-route every entry after a shard-count change (or repair).

        Each entry's home is recomputed from its stored trace fingerprint
        under the new shard count; misplaced entries move (one atomic
        directory rename each), shard manifests are rebuilt, and cluster
        registry records are updated to the new shard indices.  Returns
        ``{"shards": new_count, "moved": n, "entries": total}``.
        """
        new_count = self.n_shards if shards is None else int(shards)
        if new_count < 1:
            raise FleetError("a fleet needs at least one shard")

        # Collect every entry's fingerprint (authoritative: its manifest).
        placements = []  # (old_index, entry_id, fingerprint)
        for index in range(self.n_shards):
            manifest = self.sync_shard(index)
            for entry_id, row in manifest["entries"].items():
                placements.append((index, entry_id, row["fingerprint"]))

        self.n_shards = new_count
        self._shards = {}
        self._write_marker()
        for index in range(new_count):
            self.shard(index)

        moved = 0
        new_shard_of = {}
        for old_index, entry_id, fingerprint in placements:
            target = self.shard_of(fingerprint)
            new_shard_of[entry_id] = target
            if target == old_index:
                continue
            src = os.path.join(
                self.shard_root(old_index), "entries", entry_id
            )
            dst = os.path.join(self.shard_root(target), "entries", entry_id)
            if os.path.exists(dst):
                raise FleetError(
                    "rebalance collision: %s already exists in shard %d"
                    % (entry_id, target)
                )
            os.rename(src, dst)
            moved += 1
            # Re-stamp the entry's manifest with its new home.
            entry = self.shard(target).entry(entry_id)
            manifest = dict(entry.manifest)
            fleet_info = dict(manifest.get("fleet") or {})
            fleet_info["shard"] = target
            fleet_info.setdefault("fingerprint", fingerprint)
            manifest["fleet"] = fleet_info
            entry._write_manifest(manifest)

        # Drop manifests of shards that no longer exist, rebuild the rest.
        for index in range(new_count):
            self.sync_shard(index)
        old_dirs = sorted(os.listdir(self.shards_dir))
        for dirname in old_dirs:
            if not dirname.startswith("shard-"):
                continue
            if int(dirname.split("-", 1)[1]) >= new_count:
                leftover = os.path.join(
                    self.shards_dir, dirname, "entries"
                )
                if os.path.isdir(leftover) and os.listdir(leftover):
                    raise FleetError(
                        "rebalance bug: %s still holds entries" % dirname
                    )

        # The cluster registry references (shard, entry_id) pairs; point
        # them at the new homes.
        registry = self.registry()
        for signature in registry.signatures():
            record = registry.get(signature)
            if record is None:
                continue
            changed = False
            for ref in [record["representative"], *record["members"]]:
                target = new_shard_of.get(ref.get("entry_id"))
                if target is not None and ref.get("shard") != target:
                    ref["shard"] = target
                    changed = True
            if changed:
                registry._write(record)

        return {
            "shards": new_count,
            "moved": moved,
            "entries": len(placements),
        }
