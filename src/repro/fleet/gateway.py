"""The async ingestion gateway: crash reports in, solve jobs out.

Fleet machines do not ship whole corpora — they ship **crash reports**:
one JSON object carrying the program source, the record parameters, the
observed failure and the hex-encoded per-thread Ball-Larus token streams
(the ``.clap`` chunk payloads; everything CLAP's recorder knows).  The
gateway is a small asyncio TCP server speaking newline-delimited JSON
that accepts these reports and, for each one:

1. validates it (source hash, decodable token streams, failure present);
2. computes the trace's dedup-cluster signature
   (:mod:`repro.fleet.cluster`);
3. applies **backpressure**: a report that would enqueue a *new* solve
   while the durable queue is at its depth limit is rejected outright
   (the client retries later) — but a report joining an existing cluster
   is always accepted, because dedup adds no solve work;
4. stores the trace in its content-hash shard and registers the cluster
   membership (:meth:`repro.fleet.shards.ShardedCorpus.add_report`),
   answering ``enqueued`` (novel — a solve job is now durably queued) or
   ``deduped`` (an equivalent trace is already known; the solved
   schedule will be fanned out to this report too).

Ingestion work is blocking filesystem I/O, so the event loop hands it to
a worker thread (``run_in_executor``) and a lock serializes mutation of
the registry/manifests; the loop itself stays free to accept
connections.  Shutdown is **graceful**: the listener closes, in-flight
ingests finish (their reports are durably stored or rejected, never half
done), and — when the gateway owns a dispatcher — the solve queue is
drained before :meth:`IngestGateway.serve` returns.
"""

import asyncio
import json
import socket
import threading

from repro.core.clap import ClapConfig
from repro.fleet.cluster import cluster_material, cluster_signature, path_multiset
from repro.runtime.events import BugReport
from repro.store.corpus import _RECORD_PARAMS, _sha256
from repro.tracing.logfmt import TraceDecodeError, decode_tokens, encode_tokens

REPORT_FORMAT = 1

# Solve-queue depth at which novel reports start bouncing.
DEFAULT_MAX_QUEUE_DEPTH = 256


class GatewayError(Exception):
    """A malformed or unacceptable crash report."""


# -- report construction ---------------------------------------------------


def report_from_recorded(source, name, config, recorded):
    """Build the wire-format crash report for a local recording.

    ``recorded`` is a :class:`~repro.core.clap.RecordedExecution` (or
    anything with ``.recorder.logs``, ``.bug``, ``.seed``, ``.result``).
    """
    bug = recorded.bug
    if bug is None:
        raise GatewayError("refusing to report an execution with no failure")
    result = recorded.result
    return {
        "format": REPORT_FORMAT,
        "program": {
            "name": name or "program",
            "source": source,
            "sha256": _sha256(source),
        },
        "record": dict(
            {key: getattr(config, key) for key in _RECORD_PARAMS},
            seed=recorded.seed,
        ),
        "bug": {
            "kind": bug.kind,
            "message": bug.message,
            "thread": bug.thread,
            "line": bug.line,
        },
        "logs": {
            thread: encode_tokens(tokens).hex()
            for thread, tokens in recorded.recorder.logs.items()
        },
        "stats": {
            "thread_names": sorted(result.thread_names.values()),
            "n_instructions": result.total_instructions(),
            "n_branches": result.total_branches(),
            "n_saps": result.total_saps(),
            "instrumentation_ops": getattr(
                recorded.recorder, "instrumentation_ops", 0
            ),
        },
    }


def report_from_entry(entry):
    """Build a crash report from a stored corpus entry (for re-ingest)."""
    manifest = entry.manifest
    stored = entry.load_execution()
    record = {
        key: manifest["record"][key]
        for key in _RECORD_PARAMS
        if key in manifest["record"]
    }
    record["seed"] = manifest["record"].get("seed", -1)
    return {
        "format": REPORT_FORMAT,
        "program": dict(manifest["program"]),
        "record": record,
        "bug": dict(manifest["bug"]),
        "logs": {
            thread: encode_tokens(tokens).hex()
            for thread, tokens in stored.recorder.logs.items()
        },
        "stats": dict(manifest.get("stats", {})),
    }


def validate_report(report):
    """Check a wire report and decode it; raises :class:`GatewayError`.

    Returns ``(source, name, config, logs, bug, stats, seed)`` ready for
    :meth:`~repro.fleet.shards.ShardedCorpus.add_report`.
    """
    if not isinstance(report, dict):
        raise GatewayError("report must be a JSON object")
    if report.get("format") != REPORT_FORMAT:
        raise GatewayError(
            "unsupported report format %r" % report.get("format")
        )
    program = report.get("program")
    if not isinstance(program, dict) or not program.get("source"):
        raise GatewayError("report has no program source")
    source = program["source"]
    if not isinstance(source, str):
        raise GatewayError("program source must be text")
    claimed = program.get("sha256")
    if claimed and claimed != _sha256(source):
        raise GatewayError("program source does not match its claimed hash")
    bug_raw = report.get("bug")
    if not isinstance(bug_raw, dict) or not bug_raw.get("kind"):
        raise GatewayError("report has no failure — nothing to reproduce")
    bug = BugReport(
        kind=bug_raw.get("kind", "assertion"),
        message=bug_raw.get("message", ""),
        thread=bug_raw.get("thread", ""),
        line=int(bug_raw.get("line", 0)),
    )
    raw_logs = report.get("logs")
    if not isinstance(raw_logs, dict) or not raw_logs:
        raise GatewayError("report has no recorded token streams")
    logs = {}
    for thread, blob in raw_logs.items():
        try:
            logs[thread] = decode_tokens(bytes.fromhex(blob))
        except (ValueError, TraceDecodeError) as exc:
            raise GatewayError(
                "thread %r: undecodable token stream: %s" % (thread, exc)
            ) from exc
    record = report.get("record") or {}
    try:
        config = ClapConfig(
            **{key: record[key] for key in _RECORD_PARAMS if key in record}
        )
    except TypeError as exc:
        raise GatewayError("bad record parameters: %s" % exc) from exc
    name = program.get("name") or "program"
    stats = report.get("stats") or {}
    return source, name, config, logs, bug, stats, int(record.get("seed", -1))


# -- the gateway -----------------------------------------------------------


class IngestGateway:
    """Accepts crash reports into a fleet, with dedup and backpressure."""

    def __init__(self, fleet, max_queue_depth=DEFAULT_MAX_QUEUE_DEPTH,
                 dispatcher=None):
        self.fleet = fleet
        self.max_queue_depth = max_queue_depth
        # Optional FleetDispatcher; when present the 'drain' op and the
        # shutdown path solve the queued work before serve() returns.
        self.dispatcher = dispatcher
        self.address = None
        self._lock = threading.Lock()
        self.counters = {
            "ingested": 0,
            "enqueued": 0,
            "deduped": 0,
            "rejected": 0,
            "invalid": 0,
        }

    # -- the synchronous core (runs in an executor thread) ---------------

    def ingest(self, report):
        """Validate + store one report; returns the outcome dict.

        Thread-safe; this is the whole ingest path and can be called
        directly (the CLI's offline ``repro fleet ingest`` does).
        """
        with self._lock:
            return self._ingest_locked(report)

    def _ingest_locked(self, report):
        try:
            source, name, config, logs, bug, stats, seed = validate_report(
                report
            )
        except GatewayError as exc:
            self.counters["invalid"] += 1
            return {"status": "invalid", "reason": str(exc)}
        self.counters["ingested"] += 1
        program_sha = _sha256(source)
        material = cluster_material(
            program_sha, config.memory_model, bug, logs
        )
        signature = cluster_signature(material)
        registry = self.fleet.registry()
        novel = registry.get(signature) is None
        depth = self.fleet.queue().depth()
        if novel and depth >= self.max_queue_depth:
            # Backpressure: only *novel* reports add solve work, so only
            # they bounce; dedup joins are free and always accepted.
            self.counters["rejected"] += 1
            return {
                "status": "rejected",
                "reason": "solve queue full (depth %d >= %d)"
                % (depth, self.max_queue_depth),
                "cluster": signature,
                "queue_depth": depth,
            }
        outcome = self.fleet.add_report(
            source, name, config, logs, bug, stats=stats, seed=seed
        )
        self.counters[outcome["status"]] += 1
        outcome["queue_depth"] = self.fleet.queue().depth()
        if outcome["status"] == "enqueued":
            # Near-miss diagnostic: the closest same-program cluster by
            # path-profile similarity (never a merge — see fleet.cluster).
            nearest, similarity = registry.nearest(
                program_sha, path_multiset(logs), exclude=signature
            )
            if nearest is not None:
                outcome["similar_to"] = nearest
                outcome["similarity"] = round(similarity, 4)
        return outcome

    def stats(self):
        fleet_stats = self.fleet.stats()
        fleet_stats["gateway"] = dict(self.counters)
        return fleet_stats

    # -- the async server -------------------------------------------------

    async def _respond(self, request):
        op = request.get("op")
        loop = asyncio.get_running_loop()
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "ingest":
            outcome = await loop.run_in_executor(
                None, self.ingest, request.get("report")
            )
            return dict(outcome, ok=outcome.get("status") != "invalid")
        if op == "stats":
            stats = await loop.run_in_executor(None, self.stats)
            return {"ok": True, "stats": stats}
        if op == "drain":
            if self.dispatcher is None:
                return {"ok": False, "error": "gateway has no dispatcher"}
            results, aggregate = await loop.run_in_executor(
                None, self.dispatcher.drain
            )
            return {
                "ok": True,
                "results": [r.to_dict() for r in results],
                "aggregate": aggregate,
            }
        if op == "shutdown":
            self._stop.set()
            return {"ok": True, "op": "shutdown"}
        return {"ok": False, "error": "unknown op %r" % op}

    async def _handle(self, reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line.decode("utf-8"))
                except ValueError as exc:
                    response = {"ok": False, "error": "bad json: %s" % exc}
                else:
                    try:
                        response = await self._respond(request)
                    except Exception as exc:  # keep the server up
                        response = {
                            "ok": False,
                            "error": "%s: %s" % (type(exc).__name__, exc),
                        }
                writer.write(
                    (json.dumps(response, sort_keys=True) + "\n").encode(
                        "utf-8"
                    )
                )
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def serve(self, host="127.0.0.1", port=0, ready=None,
                    drain_on_shutdown=True):
        """Serve until a ``shutdown`` op arrives, then drain gracefully.

        ``ready`` (a ``threading.Event``) is set once the listener is
        bound and :attr:`address` holds the actual (host, port) — how a
        test or CLI driving the server from another thread learns the
        ephemeral port.  On shutdown the listener closes first (no new
        reports), in-flight ingests complete, and the dispatcher — if one
        was attached — drains the solve queue.  Returns the drain's
        ``(results, aggregate)`` or ``(None, None)``.
        """
        self._stop = asyncio.Event()
        server = await asyncio.start_server(self._handle, host, port)
        self.address = server.sockets[0].getsockname()[:2]
        if ready is not None:
            ready.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            self.address = None
        # The listener is closed; whatever the executor is still writing
        # finishes under the ingest lock before the drain below sees it.
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._lock.acquire)
        self._lock.release()
        if drain_on_shutdown and self.dispatcher is not None:
            return await loop.run_in_executor(None, self.dispatcher.drain)
        return None, None


def request(address, payload, timeout=60.0):
    """One synchronous round-trip to a running gateway (test/CLI client)."""
    host, port = address
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    return json.loads(b"".join(chunks).decode("utf-8"))
