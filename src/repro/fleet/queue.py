"""A durable, crash-safe job queue backed by a directory tree.

The ingestion gateway must never lose an accepted crash report: a report
whose solve is pending has to survive a gateway restart (or crash) and a
dispatcher worker dying mid-solve.  This queue gets that durability from
the filesystem alone:

* one JSON file per job, written tmp → fsync → atomic rename (the
  ``.clap`` container's discipline), so a job file is either absent or
  complete — never torn;
* job state *is* directory membership: ``pending/``, ``active/``,
  ``done/``, ``failed/``.  State transitions are single ``os.rename``
  calls (claim) or write-new-then-unlink pairs (complete/fail) ordered
  so a crash at any point leaves the job recoverable;
* :meth:`recover` (run on open) moves orphaned ``active/`` jobs back to
  ``pending/`` — a dispatcher that died mid-solve re-runs the job, it
  does not lose it.  A job present in both ``active/`` and a terminal
  directory (crash between write and unlink) resolves to the terminal
  state.

Jobs are FIFO by a monotonically increasing sequence number baked into
the filename, so ``sorted(listdir)`` is dispatch order.  One process
owns the queue at a time (the gateway); workers never touch it — the
dispatcher claims on their behalf.
"""

import json
import os

STATE_PENDING = "pending"
STATE_ACTIVE = "active"
STATE_DONE = "done"
STATE_FAILED = "failed"

_STATES = (STATE_PENDING, STATE_ACTIVE, STATE_DONE, STATE_FAILED)


class QueueError(Exception):
    """A structural problem with the queue directory."""


class DurableJobQueue:
    """Directory-backed FIFO of JSON job payloads."""

    def __init__(self, root):
        self.root = root
        for state in _STATES:
            os.makedirs(os.path.join(root, state), exist_ok=True)
        self._next_seq = 1 + max(
            (job["seq"] for job in self._iter_all()), default=-1
        )

    # -- plumbing --------------------------------------------------------

    def _dir(self, state):
        return os.path.join(self.root, state)

    def _job_path(self, state, job_id):
        return os.path.join(self._dir(state), job_id + ".json")

    def _write_job(self, state, record):
        path = self._job_path(state, record["id"])
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(record, fh, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def _read_job(self, state, job_id):
        try:
            with open(self._job_path(state, job_id), "r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            raise QueueError(
                "job %s in %s is unreadable: %s" % (job_id, state, exc)
            ) from exc

    def _job_ids(self, state):
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(self._dir(state))
            if name.endswith(".json") and ".tmp." not in name
        )

    def _iter_all(self):
        for state in _STATES:
            for job_id in self._job_ids(state):
                record = self._read_job(state, job_id)
                if record is not None:
                    yield record

    # -- producer side ---------------------------------------------------

    def put(self, payload):
        """Durably enqueue ``payload``; returns the job id."""
        seq = self._next_seq
        self._next_seq += 1
        job_id = "job-%010d" % seq
        self._write_job(
            STATE_PENDING, {"id": job_id, "seq": seq, "payload": payload}
        )
        return job_id

    # -- consumer side ---------------------------------------------------

    def claim(self, limit, accept=None):
        """Move up to ``limit`` pending jobs to ``active``; FIFO order.

        ``accept(payload) -> bool`` skips jobs the caller cannot run yet
        (the dispatcher's per-shard concurrency limit) without losing
        their queue position.  Returns the claimed job records.
        """
        claimed = []
        for job_id in self._job_ids(STATE_PENDING):
            if len(claimed) >= limit:
                break
            record = self._read_job(STATE_PENDING, job_id)
            if record is None:
                continue
            if accept is not None and not accept(record["payload"]):
                continue
            os.rename(
                self._job_path(STATE_PENDING, job_id),
                self._job_path(STATE_ACTIVE, job_id),
            )
            claimed.append(record)
        return claimed

    def _finish(self, job_id, state, extra):
        record = self._read_job(STATE_ACTIVE, job_id)
        if record is None:
            raise QueueError("job %s is not active" % job_id)
        record.update(extra)
        # Terminal copy first, then unlink: a crash in between leaves the
        # job in both places and recover() resolves to the terminal state.
        self._write_job(state, record)
        try:
            os.remove(self._job_path(STATE_ACTIVE, job_id))
        except OSError:
            pass
        return record

    def complete(self, job_id, result=None):
        """Mark an active job done, attaching its result."""
        return self._finish(job_id, STATE_DONE, {"result": result})

    def fail(self, job_id, reason=""):
        """Mark an active job failed, attaching the reason."""
        return self._finish(job_id, STATE_FAILED, {"reason": reason})

    def recover(self):
        """Requeue active jobs orphaned by a crash; returns their count.

        An active job that also exists in ``done``/``failed`` (the crash
        hit between the terminal write and the active unlink) is cleaned
        up, not requeued.
        """
        requeued = 0
        for job_id in self._job_ids(STATE_ACTIVE):
            active_path = self._job_path(STATE_ACTIVE, job_id)
            terminal = any(
                os.path.exists(self._job_path(state, job_id))
                for state in (STATE_DONE, STATE_FAILED)
            )
            if terminal:
                os.remove(active_path)
                continue
            os.rename(active_path, self._job_path(STATE_PENDING, job_id))
            requeued += 1
        return requeued

    # -- introspection ---------------------------------------------------

    def counts(self):
        return {state: len(self._job_ids(state)) for state in _STATES}

    def depth(self):
        """Outstanding work: pending + active (the backpressure gauge)."""
        counts = self.counts()
        return counts[STATE_PENDING] + counts[STATE_ACTIVE]

    def jobs(self, state):
        """All job records in ``state``, FIFO order."""
        records = []
        for job_id in self._job_ids(state):
            record = self._read_job(state, job_id)
            if record is not None:
                records.append(record)
        return records
