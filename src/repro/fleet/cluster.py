"""Trace dedup/clustering by Ball-Larus whole-path profiles.

A reproduction fleet sees the same failure many times: the paper's
recorder captures only thread-local control flow, so *every* runtime
interleaving that drives each thread down the same paths produces the
same log — crash reports from thousands of machines collapse onto a
small set of distinct per-thread whole-path profiles.  One constraint
solve serves all of them.

The **dedup invariant** this module enforces: two reports share a
cluster iff they have the same program (source hash), the same memory
model, the same failure site, and byte-identical per-thread whole-path
profiles.  Equal profiles mean equal decoded paths, equal symbolic
summaries and therefore an identical constraint system — so the
representative's solved schedule replays every member's failure, and
every member hits the representative's entry in the shared analysis
cache (the cluster signature refines the cache key).  Anything weaker
(e.g. merging on profile *similarity*) could put traces with different
path constraints in one cluster and hand a member a schedule that does
not reproduce its failure; similarity is therefore reported as a
diagnostic (:func:`profile_similarity`, the gateway's nearest-cluster
hint) but never used to merge.

:class:`ClusterRegistry` persists one JSON record per cluster —
representative, members, solve status, the solved schedule for fan-out —
written with the container's crash-safety discipline (tmp + fsync +
atomic rename).
"""

import hashlib
import json
import os

from repro.tracing.logfmt import encode_tokens

CLUSTER_FORMAT = 1

STATUS_PENDING = "pending"
STATUS_SOLVED = "solved"
STATUS_FAILED = "failed"


class ClusterError(Exception):
    """A structural problem with the cluster registry."""


# -- profiles and signatures ----------------------------------------------


def profile_digests(logs):
    """{thread: sha256 hex of the thread's whole-path profile bytes}.

    ``logs`` maps thread names to token lists (the
    :class:`~repro.tracing.recorder.PathRecorder` log shape).  The
    encoded token stream *is* the Ball-Larus whole-path profile, so its
    hash is a faithful profile fingerprint.
    """
    return {
        thread: hashlib.sha256(encode_tokens(tokens)).hexdigest()
        for thread, tokens in logs.items()
    }


def path_multiset(logs):
    """{(thread, path_id): count} over every ``path`` token.

    The bag-of-paths abstraction of a trace: what similarity is measured
    on.  Deliberately coarser than the whole-path profile — two traces
    can share a multiset yet differ in path order.
    """
    counts = {}
    for thread, tokens in logs.items():
        for token in tokens:
            if token[0] == "path":
                key = (thread, token[1])
                counts[key] = counts.get(key, 0) + 1
    return counts


def profile_similarity(logs_a, logs_b):
    """Weighted Jaccard similarity of two traces' path multisets.

    1.0 means identical bags of Ball-Larus path ids; 0.0 means disjoint.
    Diagnostic only — clustering requires exact whole-path equality.
    """
    return _multiset_jaccard(path_multiset(logs_a), path_multiset(logs_b))


def cluster_material(program_sha, memory_model, bug, logs):
    """The canonical key material a cluster signature hashes.

    ``bug`` is a :class:`~repro.runtime.events.BugReport` (or a dict with
    the same fields).  Everything that decides whether one solved
    schedule serves both reports is in here; nothing else is.
    """
    if not isinstance(bug, dict):
        bug = {
            "kind": bug.kind,
            "message": bug.message,
            "thread": bug.thread,
            "line": bug.line,
        }
    return {
        "program": program_sha,
        "memory_model": memory_model,
        "bug": {
            "kind": bug.get("kind", ""),
            "message": bug.get("message", ""),
            "thread": bug.get("thread", ""),
            "line": bug.get("line", 0),
        },
        "profiles": profile_digests(logs),
    }


def cluster_signature(material):
    """sha256 over the canonical JSON of :func:`cluster_material`."""
    canon = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


# -- the registry ----------------------------------------------------------


class ClusterRegistry:
    """One directory of cluster records: ``<root>/<sig[:2]>/<sig>.json``."""

    def __init__(self, root):
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, signature):
        return os.path.join(self.root, signature[:2], signature + ".json")

    def _write(self, record):
        path = self._path(record["signature"])
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def get(self, signature):
        """The cluster record for ``signature``, or None."""
        try:
            with open(self._path(signature), "r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            raise ClusterError(
                "cluster %s: unreadable record: %s" % (signature[:12], exc)
            ) from exc

    def signatures(self):
        found = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for filename in filenames:
                if filename.endswith(".json") and ".tmp." not in filename:
                    found.append(filename[: -len(".json")])
        return sorted(found)

    def create(self, signature, material, representative, path_counts=None):
        """Register a new cluster with its representative as first member.

        ``representative`` is ``{"shard": int, "entry_id": str}``;
        ``path_counts`` (the :func:`path_multiset` of the representative,
        serialized by :meth:`encode_path_counts`) feeds the
        nearest-cluster similarity diagnostic.
        """
        if self.get(signature) is not None:
            raise ClusterError("cluster %s already exists" % signature[:12])
        record = {
            "format": CLUSTER_FORMAT,
            "signature": signature,
            "material": material,
            "representative": dict(representative),
            "members": [dict(representative, validated=True)],
            "status": STATUS_PENDING,
            "schedule": None,
            "context_switches": -1,
            "solve": {},
            "path_counts": path_counts or {},
        }
        self._write(record)
        return record

    def add_member(self, signature, member):
        """Attach one more equivalent report; returns the record."""
        record = self.get(signature)
        if record is None:
            raise ClusterError("no cluster %s" % signature[:12])
        record["members"].append(dict(member, validated=False))
        self._write(record)
        return record

    def mark_solved(self, signature, schedule, context_switches, solve=None):
        record = self.get(signature)
        if record is None:
            raise ClusterError("no cluster %s" % signature[:12])
        record["status"] = STATUS_SOLVED
        record["schedule"] = [list(uid) for uid in schedule]
        record["context_switches"] = context_switches
        record["solve"] = dict(solve or {})
        self._write(record)
        return record

    def mark_failed(self, signature, reason):
        record = self.get(signature)
        if record is None:
            raise ClusterError("no cluster %s" % signature[:12])
        record["status"] = STATUS_FAILED
        record["solve"] = {"reason": reason}
        self._write(record)
        return record

    def mark_member_validated(self, signature, entry_id, ok):
        record = self.get(signature)
        if record is None:
            raise ClusterError("no cluster %s" % signature[:12])
        for member in record["members"]:
            if member["entry_id"] == entry_id:
                member["validated"] = bool(ok)
        self._write(record)
        return record

    # -- similarity diagnostics ----------------------------------------

    @staticmethod
    def encode_path_counts(counts):
        """JSON-able form of :func:`path_multiset` output."""
        by_thread = {}
        for (thread, path_id), count in sorted(counts.items()):
            by_thread.setdefault(thread, []).append([path_id, count])
        return by_thread

    @staticmethod
    def decode_path_counts(by_thread):
        counts = {}
        for thread, rows in by_thread.items():
            for path_id, count in rows:
                counts[(thread, path_id)] = count
        return counts

    def nearest(self, program_sha, counts, exclude=None):
        """(signature, similarity) of the most similar same-program
        cluster, or (None, 0.0) — the gateway's near-miss diagnostic."""
        best_sig, best_sim = None, 0.0
        for signature in self.signatures():
            if signature == exclude:
                continue
            record = self.get(signature)
            if record is None:
                continue
            if record["material"].get("program") != program_sha:
                continue
            theirs = self.decode_path_counts(record.get("path_counts", {}))
            sim = _multiset_jaccard(counts, theirs)
            if sim > best_sim:
                best_sig, best_sim = signature, sim
        return best_sig, best_sim

    def stats(self):
        """Aggregate dedup counters across every cluster record."""
        stats = {
            "clusters": 0,
            "members": 0,
            "solved": 0,
            "failed": 0,
            "pending": 0,
            "solves_avoided": 0,
            "members_validated": 0,
        }
        for signature in self.signatures():
            record = self.get(signature)
            if record is None:
                continue
            stats["clusters"] += 1
            members = record.get("members", [])
            stats["members"] += len(members)
            stats["solves_avoided"] += max(0, len(members) - 1)
            stats["members_validated"] += sum(
                1 for m in members if m.get("validated")
            )
            stats[record.get("status", STATUS_PENDING)] += 1
        return stats


def _multiset_jaccard(a, b):
    if not a and not b:
        return 1.0
    inter = sum(min(a[key], b[key]) for key in a.keys() & b.keys())
    union = sum(max(a.get(key, 0), b.get(key, 0)) for key in a.keys() | b.keys())
    return inter / union if union else 1.0
