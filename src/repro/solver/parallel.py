"""The generate-and-validate solver, sequential and parallel (Section 4.3).

The driver raises the preemption bound ``c`` from 0 upward.  At each bound
it runs the value-guided bounded DFS of
:class:`~repro.solver.schedule_gen.ScheduleGenerator`; every complete
schedule it emits already satisfies Fmo, Fso and Fpath by construction, so
"validation" reduces to the bug predicate plus (for defence in depth) a
full re-check with the independent
:class:`~repro.solver.validate.ScheduleValidator`.  The first bound that
yields correct schedules stops the search, which also realizes Section
4.2's *minimal context switches* loop ("start from zero, increment until a
solution is found").

Parallel mode partitions the ``c >= 1`` rounds by the CSP triple of the
*first* preemption — exactly the paper's one-process-per-CSP-set scheme —
and fans the partitions out over a process pool.
"""

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

from repro.runtime.errors import MiniRuntimeError
from repro.analysis.symbolic import sym_eval
from repro.solver.schedule_gen import ScheduleGenerator
from repro.solver.validate import ScheduleValidator


@dataclass
class GenerateValidateResult:
    ok: bool
    schedule: list = field(default_factory=list)
    context_switches: int = -1
    generated: int = 0
    good: int = 0
    rounds: int = 0  # the preemption bound at which schedules were found
    solve_time: float = 0.0
    # Time spent building the generator/validator structures (segment
    # maps, successor graphs).  Included in ``solve_time``: Table 2's
    # overhead accounting must charge formula construction to the solver.
    encode_time: float = 0.0
    good_schedules: list = field(default_factory=list)
    reason: str = ""

    def __bool__(self):
        return self.ok


def _bug_holds(system, schedule, generator):
    """Check the bug predicate of a complete generated schedule."""
    # Re-derive the read environment by a linear scan (cheap, and keeps the
    # generator free of bug-specific state).
    env = {}
    memory = dict(system.initial_values)
    for uid in schedule:
        sap = system.saps[uid]
        if sap.is_read:
            env[sap.value.name] = memory[sap.addr]
        elif sap.is_write:
            try:
                memory[sap.addr] = sym_eval(sap.value, env)
            except (KeyError, MiniRuntimeError):
                return False
    try:
        return all(sym_eval(expr, env) for expr in system.bug_exprs)
    except (KeyError, MiniRuntimeError):
        return False


def _search_round(
    generator,
    validator,
    c,
    order_seed,
    max_schedules,
    max_steps,
    max_good,
    first_preemption=None,
):
    """One bounded-DFS probe; returns (n_generated, good list, exhausted).

    ``generator``/``validator`` are built once by the caller and reused
    across every probe and bound round — their construction walks the
    whole SAP graph, which used to be repeated per probe."""
    system = generator.system
    generated = 0
    good = []
    stats = {}
    for schedule in generator.generate(
        max_preemptions=c,
        exact_preemptions=c > 0,
        first_preemption=first_preemption,
        max_schedules=max_schedules,
        max_steps=max_steps,
        order_seed=order_seed,
        stats=stats,
    ):
        generated += 1
        if not _bug_holds(system, schedule, generator):
            continue
        outcome = validator.validate(schedule)
        if outcome.ok:
            good.append((list(schedule), outcome.context_switches))
            if max_good is not None and len(good) >= max_good:
                break
    exhausted = not stats.get("capped", True)
    return generated, good, exhausted


# Process-pool worker globals: the system is shipped once per worker, and
# the generator/validator structures are built once per worker and reused
# by every probe that worker runs.
_WORKER_SYSTEM = None
_WORKER_GENERATOR = None
_WORKER_VALIDATOR = None


def _worker_init(system):
    global _WORKER_SYSTEM, _WORKER_GENERATOR, _WORKER_VALIDATOR
    _WORKER_SYSTEM = system
    _WORKER_GENERATOR = ScheduleGenerator(system)
    _WORKER_VALIDATOR = ScheduleValidator(system)


def _worker_task(c, order_seeds, max_schedules, max_steps, max_good):
    generated = 0
    good = []
    exhausted = False
    for seed in order_seeds:
        n, g, exhausted = _search_round(
            _WORKER_GENERATOR,
            _WORKER_VALIDATOR,
            c,
            seed,
            max_schedules,
            max_steps,
            max_good,
        )
        generated += n
        good.extend(g)
        if good or exhausted:
            break
    return generated, good, exhausted


def solve_generate_validate(
    system,
    max_cs=4,
    probes_per_round=48,
    max_schedules_per_probe=4_000,
    max_steps_per_probe=150_000,
    max_good=16,
    workers=0,
    max_seconds=None,
    # Backwards-compatible aliases used by ClapConfig.
    max_schedules_per_round=None,
    max_steps_per_round=None,
):
    """Search for bug-reproducing schedules with increasing preemption bound.

    Section 4.2's incrementing loop: rounds c = 0, 1, 2, ... each search
    for schedules with *exactly* c interleaved segments, so the first
    round that succeeds yields a minimal-switch witness.  Each round runs
    a deterministic bounded-DFS probe plus randomized re-orders of the
    same space (sequentially, or fanned over a process pool), and each
    round is **time-sliced**: rounds below the true minimum are usually
    un-exhaustible dead space, so they may not starve the round where the
    witnesses live.  A round whose deterministic probe exhausts the space
    outright is skipped immediately.

    Returns a :class:`GenerateValidateResult`; the returned schedule has
    the fewest context switches among the good ones found at the minimal
    bound.
    """
    if max_schedules_per_round is not None:
        max_schedules_per_probe = max(
            max_schedules_per_round // max(probes_per_round, 1), 500
        )
    if max_steps_per_round is not None:
        max_steps_per_probe = max(
            max_steps_per_round // max(probes_per_round, 1), 20_000
        )
    start = time.monotonic()
    # Formula construction — the SAP successor graph, segment maps and
    # validator state — happens once, is reused by every probe of every
    # round, and is charged to ``solve_time`` (``encode_time`` records it
    # separately for the Table-2 overhead split).
    generator = ScheduleGenerator(system)
    validator = ScheduleValidator(system)
    encode_time = time.monotonic() - start
    round_slice = None
    if max_seconds is not None:
        round_slice = max_seconds / (max_cs + 1)
    total_generated = 0
    seeds = [None] + list(range(1, probes_per_round))
    for c in range(max_cs + 1):
        elapsed = time.monotonic() - start
        if max_seconds is not None and elapsed > max_seconds:
            return GenerateValidateResult(
                False,
                generated=total_generated,
                rounds=c,
                solve_time=elapsed,
                encode_time=encode_time,
                reason="timeout",
            )
        round_start = time.monotonic()

        def round_expired():
            if max_seconds is not None and time.monotonic() - start > max_seconds:
                return True
            return (
                round_slice is not None
                and time.monotonic() - round_start > round_slice
            )

        if workers:
            generated, good = _run_parallel(
                system,
                c,
                seeds,
                max_schedules_per_probe,
                max_steps_per_probe,
                max_good,
                workers,
            )
        else:
            generated = 0
            good = []
            for seed in seeds:
                if round_expired():
                    break
                n, g, exhausted = _search_round(
                    generator,
                    validator,
                    c,
                    seed,
                    max_schedules_per_probe,
                    max_steps_per_probe,
                    max_good,
                )
                generated += n
                good.extend(g)
                if good:
                    break
                if exhausted:
                    # The deterministic walk covered the entire bounded
                    # space: randomized re-orders of an empty space are
                    # pointless; move to the next bound.
                    break
        total_generated += generated
        if good:
            good.sort(key=lambda pair: pair[1])
            schedule, switches = good[0]
            return GenerateValidateResult(
                True,
                schedule=schedule,
                context_switches=switches,
                generated=total_generated,
                good=len(good),
                rounds=c,
                solve_time=time.monotonic() - start,
                encode_time=encode_time,
                good_schedules=[s for s, _ in good],
            )
    return GenerateValidateResult(
        False,
        generated=total_generated,
        rounds=max_cs,
        solve_time=time.monotonic() - start,
        encode_time=encode_time,
        reason="no correct schedule within %d context switches" % max_cs,
    )


def _run_parallel(
    system, c, seeds, max_schedules, max_steps, max_good, workers
):
    # One probe seed per task; workers race and the first good result wins.
    generated = 0
    good = []
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_worker_init, initargs=(system,)
    ) as pool:
        futures = [
            pool.submit(_worker_task, c, [seed], max_schedules, max_steps, max_good)
            for seed in seeds
        ]
        for future in as_completed(futures):
            batch_generated, batch_good, exhausted = future.result()
            generated += batch_generated
            good.extend(batch_good)
            if good or exhausted:
                for f in futures:
                    f.cancel()
                break
    return generated, good
