"""The generate-and-validate solver, sequential and parallel (Section 4.3).

The driver raises the preemption bound ``c`` from 0 upward.  At each bound
it runs the value-guided bounded DFS of
:class:`~repro.solver.schedule_gen.ScheduleGenerator`; every complete
schedule it emits already satisfies Fmo, Fso and Fpath by construction, so
"validation" reduces to the bug predicate plus (for defence in depth) a
full re-check with the independent
:class:`~repro.solver.validate.ScheduleValidator`.  The first bound that
yields correct schedules stops the search, which also realizes Section
4.2's *minimal context switches* loop ("start from zero, increment until a
solution is found").

Parallel mode partitions the ``c >= 1`` rounds by the CSP triple of the
*first* preemption — exactly the paper's one-process-per-CSP-set scheme —
and fans the partitions out over a process pool.
"""

import time
from dataclasses import dataclass, field

from repro.runtime.errors import MiniRuntimeError
from repro.analysis.symbolic import sym_eval
from repro.solver.schedule_gen import ScheduleGenerator
from repro.solver.validate import ScheduleValidator


@dataclass
class GenerateValidateResult:
    ok: bool
    schedule: list = field(default_factory=list)
    context_switches: int = -1
    generated: int = 0
    good: int = 0
    rounds: int = 0  # the preemption bound at which schedules were found
    solve_time: float = 0.0
    # Time spent building the generator/validator structures (segment
    # maps, successor graphs).  Included in ``solve_time``: Table 2's
    # overhead accounting must charge formula construction to the solver.
    encode_time: float = 0.0
    good_schedules: list = field(default_factory=list)
    reason: str = ""
    # Parallel mode only: the service pool's bookkeeping for the run —
    # worker respawns (a probe process died and its probe was retried)
    # and cancellations (probes killed once a round had its answer).
    pool_counters: dict = field(default_factory=dict)

    def __bool__(self):
        return self.ok


def _bug_holds(system, schedule, generator):
    """Check the bug predicate of a complete generated schedule."""
    # Re-derive the read environment by a linear scan (cheap, and keeps the
    # generator free of bug-specific state).
    env = {}
    memory = dict(system.initial_values)
    for uid in schedule:
        sap = system.saps[uid]
        if sap.is_read:
            env[sap.value.name] = memory[sap.addr]
        elif sap.is_write:
            try:
                memory[sap.addr] = sym_eval(sap.value, env)
            except (KeyError, MiniRuntimeError):
                return False
    try:
        return all(sym_eval(expr, env) for expr in system.bug_exprs)
    except (KeyError, MiniRuntimeError):
        return False


def _search_round(
    generator,
    validator,
    c,
    order_seed,
    max_schedules,
    max_steps,
    max_good,
    first_preemption=None,
):
    """One bounded-DFS probe; returns (n_generated, good list, exhausted).

    ``generator``/``validator`` are built once by the caller and reused
    across every probe and bound round — their construction walks the
    whole SAP graph, which used to be repeated per probe."""
    system = generator.system
    generated = 0
    good = []
    stats = {}
    for schedule in generator.generate(
        max_preemptions=c,
        exact_preemptions=c > 0,
        first_preemption=first_preemption,
        max_schedules=max_schedules,
        max_steps=max_steps,
        order_seed=order_seed,
        stats=stats,
    ):
        generated += 1
        if not _bug_holds(system, schedule, generator):
            continue
        outcome = validator.validate(schedule)
        if outcome.ok:
            good.append((list(schedule), outcome.context_switches))
            if max_good is not None and len(good) >= max_good:
                break
    exhausted = not stats.get("capped", True)
    return generated, good, exhausted


class _GenvalProbeJob:
    """Picklable probe executor for the service WorkerPool.

    The system ships once per worker process; the generator/validator
    structures are built lazily in the worker and cached on the
    (process-local) instance, so every probe a worker runs reuses them.
    The pool calls this with ``(spec, attempt)``; fault hooks from
    ``service.faults`` fire first so tests can kill or stall a probe
    deterministically.
    """

    def __init__(self, system, max_schedules, max_steps, max_good):
        self.system = system
        self.max_schedules = max_schedules
        self.max_steps = max_steps
        self.max_good = max_good
        self._gen = None
        self._val = None

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_gen"] = None
        state["_val"] = None
        return state

    def __call__(self, spec, attempt):
        from repro.service.faults import maybe_kill_worker, maybe_slow_solve

        faults = spec.get("faults")
        maybe_kill_worker(faults, attempt)
        maybe_slow_solve(faults)
        if self._gen is None:
            self._gen = ScheduleGenerator(self.system)
            self._val = ScheduleValidator(self.system)
        generated, good, exhausted = _search_round(
            self._gen,
            self._val,
            spec["bound"],
            spec["seed"],
            self.max_schedules,
            self.max_steps,
            self.max_good,
        )
        return {
            "status": "done",
            "generated": generated,
            "good": [(list(s), cs) for s, cs in good],
            "exhausted": exhausted,
        }


def solve_generate_validate(
    system,
    max_cs=4,
    probes_per_round=48,
    max_schedules_per_probe=4_000,
    max_steps_per_probe=150_000,
    max_good=16,
    workers=0,
    max_seconds=None,
    faults=None,
    # Backwards-compatible aliases used by ClapConfig.
    max_schedules_per_round=None,
    max_steps_per_round=None,
):
    """Search for bug-reproducing schedules with increasing preemption bound.

    Section 4.2's incrementing loop: rounds c = 0, 1, 2, ... each search
    for schedules with *exactly* c interleaved segments, so the first
    round that succeeds yields a minimal-switch witness.  Each round runs
    a deterministic bounded-DFS probe plus randomized re-orders of the
    same space (sequentially, or fanned over a process pool), and each
    round is **time-sliced**: rounds below the true minimum are usually
    un-exhaustible dead space, so they may not starve the round where the
    witnesses live.  A round whose deterministic probe exhausts the space
    outright is skipped immediately.

    Returns a :class:`GenerateValidateResult`; the returned schedule has
    the fewest context switches among the good ones found at the minimal
    bound.
    """
    if max_schedules_per_round is not None:
        max_schedules_per_probe = max(
            max_schedules_per_round // max(probes_per_round, 1), 500
        )
    if max_steps_per_round is not None:
        max_steps_per_probe = max(
            max_steps_per_round // max(probes_per_round, 1), 20_000
        )
    start = time.monotonic()
    # Formula construction — the SAP successor graph, segment maps and
    # validator state — happens once, is reused by every probe of every
    # round, and is charged to ``solve_time`` (``encode_time`` records it
    # separately for the Table-2 overhead split).
    generator = ScheduleGenerator(system)
    validator = ScheduleValidator(system)
    encode_time = time.monotonic() - start
    round_slice = None
    if max_seconds is not None:
        round_slice = max_seconds / (max_cs + 1)
    total_generated = 0
    pool_counters = {}

    def fold_counters(counters):
        for key, value in counters.items():
            pool_counters[key] = pool_counters.get(key, 0) + value

    seeds = [None] + list(range(1, probes_per_round))
    for c in range(max_cs + 1):
        elapsed = time.monotonic() - start
        if max_seconds is not None and elapsed > max_seconds:
            return GenerateValidateResult(
                False,
                generated=total_generated,
                rounds=c,
                solve_time=elapsed,
                encode_time=encode_time,
                reason="timeout",
                pool_counters=pool_counters,
            )
        round_start = time.monotonic()

        def round_expired():
            if max_seconds is not None and time.monotonic() - start > max_seconds:
                return True
            return (
                round_slice is not None
                and time.monotonic() - round_start > round_slice
            )

        if workers:
            generated, good, counters = _run_parallel(
                system,
                c,
                seeds,
                max_schedules_per_probe,
                max_steps_per_probe,
                max_good,
                workers,
                faults=faults,
            )
            fold_counters(counters)
        else:
            generated = 0
            good = []
            for seed in seeds:
                if round_expired():
                    break
                n, g, exhausted = _search_round(
                    generator,
                    validator,
                    c,
                    seed,
                    max_schedules_per_probe,
                    max_steps_per_probe,
                    max_good,
                )
                generated += n
                good.extend(g)
                if good:
                    break
                if exhausted:
                    # The deterministic walk covered the entire bounded
                    # space: randomized re-orders of an empty space are
                    # pointless; move to the next bound.
                    break
        total_generated += generated
        if good:
            good.sort(key=lambda pair: pair[1])
            schedule, switches = good[0]
            return GenerateValidateResult(
                True,
                schedule=schedule,
                context_switches=switches,
                generated=total_generated,
                good=len(good),
                rounds=c,
                solve_time=time.monotonic() - start,
                encode_time=encode_time,
                good_schedules=[s for s, _ in good],
                pool_counters=pool_counters,
            )
    return GenerateValidateResult(
        False,
        generated=total_generated,
        rounds=max_cs,
        solve_time=time.monotonic() - start,
        encode_time=encode_time,
        reason="no correct schedule within %d context switches" % max_cs,
        pool_counters=pool_counters,
    )


def _run_parallel(
    system, c, seeds, max_schedules, max_steps, max_good, workers, faults=None
):
    """One probe seed per job over the service WorkerPool; the first good
    (or exhausting) probe cancels the rest of the round.

    Returns ``(generated, good, pool_counters)``.  The old
    ProcessPoolExecutor version hung the whole round when a worker died
    mid-probe (``future.result()`` raised BrokenProcessPool and poisoned
    the executor); the service pool detects the silent death, respawns
    the worker and retries the probe up to its ``max_attempts``, so an
    injected ``kill_worker`` fault now costs one retry, not the round.
    """
    from repro.service.pool import WorkerPool

    job = _GenvalProbeJob(system, max_schedules, max_steps, max_good)
    specs = []
    for seed in seeds:
        spec = {
            "entry_id": "probe-%s" % ("det" if seed is None else seed),
            "bound": c,
            "seed": seed,
            "timeout": 120.0,
            "max_attempts": 3,
            "backoff": 0.05,
        }
        if faults:
            spec["faults"] = faults
        specs.append(spec)
    pool = WorkerPool(job, jobs=workers)
    generated = [0]
    good = []

    def on_outcome(index, outcome):
        if outcome.get("status") != "done":
            return
        generated[0] += outcome["generated"]
        good.extend(
            (schedule, switches) for schedule, switches in outcome["good"]
        )
        if outcome["good"] or outcome["exhausted"]:
            pool.stop_remaining()

    pool.run(specs, on_outcome=on_outcome)
    return generated[0], good, dict(pool.counters)
