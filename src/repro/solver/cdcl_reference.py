"""The frozen seed CDCL solver, kept as a differential/perf baseline.

This is a verbatim copy of the pre-incremental boolean core (dict-based
state, linear-scan VSIDS decision loop, geometric restarts, no
assumptions).  It exists for two reasons only:

* the CNF fuzzer and the incremental-equivalence tests use it as an
  independent oracle against the rewritten ``repro.solver.cdcl``;
* ``benchmarks/test_solver_perf.py`` times it as the "old" column of
  ``BENCH_solver.json``.

Do not extend it — new solver work goes into ``repro.solver.cdcl``.
"""


SAT = "sat"
UNSAT = "unsat"


class CDCLSolver:
    def __init__(self):
        self.num_vars = 0
        self.clauses = []  # each clause: list of lits
        self.watches = {}  # lit -> list of clause indices watching it
        self.assign = {}  # var -> bool
        self.level = {}  # var -> decision level
        self.reason = {}  # var -> clause index (None for decisions)
        self.trail = []  # assigned lits in order
        self.trail_lim = []  # trail length at each decision level
        self.activity = {}
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.phase = {}  # saved phases
        self.propagate_head = 0
        self._false_clause = False  # an empty clause was added

    # ------------------------------------------------------------------ #

    def new_var(self):
        self.num_vars += 1
        var = self.num_vars
        self.activity[var] = 0.0
        self.phase[var] = False
        return var

    def ensure_var(self, var):
        while self.num_vars < var:
            self.new_var()

    def add_clause(self, lits):
        """Add a clause; may be called between solve() calls."""
        lits = list(dict.fromkeys(lits))  # dedupe, keep order
        for lit in lits:
            self.ensure_var(abs(lit))
        if any(-lit in lits for lit in lits):
            return  # tautology
        # Must add at level 0: backtrack all decisions first.
        self._backtrack(0)
        # Remove literals already false at level 0; satisfied -> skip.
        fixed = []
        for lit in lits:
            value = self._value(lit)
            if value is True:
                return
            if value is None:
                fixed.append(lit)
        lits = fixed
        if not lits:
            self._false_clause = True
            return
        if len(lits) == 1:
            if not self._enqueue(lits[0], None):
                self._false_clause = True
            return
        index = len(self.clauses)
        self.clauses.append(lits)
        self.watches.setdefault(lits[0], []).append(index)
        self.watches.setdefault(lits[1], []).append(index)

    # ------------------------------------------------------------------ #

    def _value(self, lit):
        value = self.assign.get(abs(lit))
        if value is None:
            return None
        return value if lit > 0 else not value

    def _enqueue(self, lit, reason_idx):
        value = self._value(lit)
        if value is False:
            return False
        if value is True:
            return True
        var = abs(lit)
        self.assign[var] = lit > 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason_idx
        self.trail.append(lit)
        return True

    def _propagate(self):
        """Unit propagation; returns a conflicting clause index or None."""
        while self.propagate_head < len(self.trail):
            lit = self.trail[self.propagate_head]
            self.propagate_head += 1
            false_lit = -lit
            watching = self.watches.get(false_lit)
            if not watching:
                continue
            keep = []
            i = 0
            while i < len(watching):
                ci = watching[i]
                i += 1
                clause = self.clauses[ci]
                # Ensure false_lit is at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    keep.append(ci)
                    continue
                # Find a new literal to watch.
                found = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches.setdefault(clause[1], []).append(ci)
                        found = True
                        break
                if found:
                    continue
                keep.append(ci)
                # Clause is unit or conflicting.
                if not self._enqueue(first, ci):
                    keep.extend(watching[i:])
                    self.watches[false_lit] = keep
                    return ci
            self.watches[false_lit] = keep
        return None

    # ------------------------------------------------------------------ #

    def _bump(self, var):
        self.activity[var] = self.activity.get(var, 0.0) + self.var_inc

    def _decay(self):
        self.var_inc /= self.var_decay
        if self.var_inc > 1e100:
            for var in self.activity:
                self.activity[var] *= 1e-100
            self.var_inc *= 1e-100

    def _analyze(self, conflict_idx):
        """First-UIP learning.  Returns (learned_clause, backjump_level)."""
        learned = []
        seen = set()
        counter = 0
        pivot = None  # the implied literal whose reason we resolve with
        clause = self.clauses[conflict_idx]
        index = len(self.trail) - 1
        current_level = len(self.trail_lim)
        while True:
            for lit in clause:
                if pivot is not None and lit == pivot:
                    continue  # skip the pivot's own occurrence in its reason
                var = abs(lit)
                if var in seen or self.level[var] == 0:
                    continue
                seen.add(var)
                self._bump(var)
                if self.level[var] == current_level:
                    counter += 1
                else:
                    learned.append(lit)
            # Find next current-level literal on the trail to resolve out.
            while abs(self.trail[index]) not in seen:
                index -= 1
            pivot = self.trail[index]
            var_p = abs(pivot)
            seen.discard(var_p)
            index -= 1
            counter -= 1
            if counter == 0:
                break
            clause = self.clauses[self.reason[var_p]]
        learned.insert(0, -pivot)
        if len(learned) == 1:
            return learned, 0
        levels = sorted((self.level[abs(l)] for l in learned[1:]), reverse=True)
        backjump = levels[0]
        # Put a literal of the backjump level at position 1 for watching.
        for k in range(1, len(learned)):
            if self.level[abs(learned[k])] == backjump:
                learned[1], learned[k] = learned[k], learned[1]
                break
        return learned, backjump

    def _backtrack(self, target_level):
        if len(self.trail_lim) <= target_level:
            return
        limit = self.trail_lim[target_level]
        for lit in self.trail[limit:]:
            var = abs(lit)
            self.phase[var] = self.assign[var]
            del self.assign[var]
            del self.level[var]
            del self.reason[var]
        del self.trail[limit:]
        del self.trail_lim[target_level:]
        self.propagate_head = min(self.propagate_head, len(self.trail))

    def _decide(self):
        best_var = None
        best_act = -1.0
        for var in range(1, self.num_vars + 1):
            if var not in self.assign and self.activity.get(var, 0.0) > best_act:
                best_var = var
                best_act = self.activity.get(var, 0.0)
        if best_var is None:
            return False
        self.trail_lim.append(len(self.trail))
        lit = best_var if self.phase.get(best_var, False) else -best_var
        self._enqueue(lit, None)
        return True

    # ------------------------------------------------------------------ #

    def solve(self, max_conflicts=None):
        """Run CDCL search.  Returns SAT or UNSAT (never gives up unless
        ``max_conflicts`` is hit, in which case it returns None)."""
        if self._false_clause:
            return UNSAT
        self._backtrack(0)
        conflicts = 0
        restart_limit = 100
        restart_count = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                conflicts += 1
                restart_count += 1
                if len(self.trail_lim) == 0:
                    return UNSAT
                learned, backjump = self._analyze(conflict)
                self._backtrack(backjump)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        return UNSAT
                else:
                    index = len(self.clauses)
                    self.clauses.append(learned)
                    self.watches.setdefault(learned[0], []).append(index)
                    self.watches.setdefault(learned[1], []).append(index)
                    self._enqueue(learned[0], index)
                self._decay()
                if max_conflicts is not None and conflicts >= max_conflicts:
                    return None
                if restart_count >= restart_limit:
                    restart_count = 0
                    restart_limit = int(restart_limit * 1.5)
                    self._backtrack(0)
            else:
                if not self._decide():
                    return SAT

    def model(self):
        """Assignment after SAT: {var: bool} (level-0 units included)."""
        return dict(self.assign)
