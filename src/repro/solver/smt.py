"""The monolithic CLAP solver: CDCL(T) over order and value theories.

This plays the role of STP in the paper's prototype ("the sequential
solver" of Table 1/Table 3).  Architecture:

Boolean skeleton (CDCL)
    Variables for reads-from choices, signal-wait mappings, and order
    atoms ``O_a < O_b``.  Because the schedule totally orders distinct
    SAPs, ``¬(O_a < O_b) ≡ O_b < O_a`` — one SAT variable serves both
    directions.

Order theory
    The fixed edges (Fmo + fixed Fso) form a DAG whose transitive closure
    is precomputed; order atoms implied either way become unit clauses up
    front.  After each SAT solution, the digraph of fixed edges plus
    assigned atoms is checked for cycles; a cycle yields a conflict clause
    over the atom literals on it.

Value theory (lazy)
    A full assignment fixes each read's source write, hence (recursively)
    every read's concrete value.  All path conditions and the bug
    predicate are evaluated; a failure yields a blocking clause over the
    reads-from choices actually consulted during evaluation.

The satisfying total order is extracted by a greedy topological sort that
prefers staying on the current thread — linearizations of one solution
differ only in switch count, so greediness directly reduces the reported
``#cs`` — and the result is re-checked by the independent
:class:`~repro.solver.validate.ScheduleValidator` before being returned.
"""

import time
from dataclasses import dataclass, field

from repro.runtime.errors import MiniRuntimeError
from repro.analysis.symbolic import sym_eval
from repro.constraints.model import INIT, OLt, RFChoice, SWChoice
from repro.solver.cdcl import CDCLSolver, SAT, UNSAT
from repro.solver.validate import ScheduleValidator


@dataclass
class SmtResult:
    ok: bool
    reason: str = ""
    schedule: list = field(default_factory=list)
    reads_from: dict = field(default_factory=dict)
    env: dict = field(default_factory=dict)
    context_switches: int = -1
    iterations: int = 0
    solve_time: float = 0.0

    def __bool__(self):
        return self.ok


class _Reachability:
    """Transitive closure of the fixed order edges, via bitsets."""

    def __init__(self, uids, edges):
        self.index = {uid: i for i, uid in enumerate(uids)}
        n = len(uids)
        succ = [[] for _ in range(n)]
        indeg = [0] * n
        for a, b in edges:
            ia, ib = self.index[a], self.index[b]
            succ[ia].append(ib)
            indeg[ib] += 1
        order = [i for i in range(n) if indeg[i] == 0]
        head = 0
        while head < len(order):
            node = order[head]
            head += 1
            for nxt in succ[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    order.append(nxt)
        if len(order) != n:
            raise ValueError("fixed order constraints are cyclic (unsat)")
        self.reach = [0] * n
        for node in reversed(order):
            mask = 0
            for nxt in succ[node]:
                mask |= self.reach[nxt] | (1 << nxt)
            self.reach[node] = mask

    def reaches(self, a, b):
        return bool(self.reach[self.index[a]] >> self.index[b] & 1)


class _CycleError(Exception):
    def __init__(self, lits):
        self.lits = lits


def _find_cycle(adjacency):
    """Iterative DFS cycle search.  ``adjacency``: node -> [(succ, lit)].
    Returns the list of atom literals on one cycle, or None."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in adjacency}
    for root in adjacency:
        if color[root] != WHITE:
            continue
        stack = [(root, iter(adjacency[root]))]
        path = [root]
        edge_lits = []
        color[root] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ, lit in it:
                if color.get(succ, BLACK) == GRAY:
                    # Found a cycle: path from succ..node plus this edge.
                    start = path.index(succ)
                    lits = edge_lits[start:] + [lit]
                    return [l for l in lits if l is not None]
                if color.get(succ, BLACK) == WHITE:
                    color[succ] = GRAY
                    stack.append((succ, iter(adjacency[succ])))
                    path.append(succ)
                    edge_lits.append(lit)
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                color[node] = BLACK
                path.pop()
                if edge_lits:
                    edge_lits.pop()
    return None


class ClapSmtSolver:
    """CDCL(T) solver for one :class:`ConstraintSystem`."""

    def __init__(self, system):
        self.system = system
        self.sat = CDCLSolver()
        self.validator = ScheduleValidator(system)
        self.atom_var = {}  # canonical atom -> sat var
        self.var_atom = {}  # sat var -> atom
        uids = list(system.saps)
        self.fixed_edges = [(e.a, e.b) for e in system.hard_edges]
        self.reach = _Reachability(uids, self.fixed_edges)
        self._sym_to_read = {}
        for summary in system.summaries.values():
            for name, sap in summary.reads.items():
                self._sym_to_read[name] = sap
        self._build()

    # -- encoding -----------------------------------------------------------

    def _order_lit(self, atom):
        """SAT literal for an OLt atom, using fixed-order implications.
        Returns +/-var, or True/False when the closure decides it."""
        a, b = atom.a, atom.b
        if a == b:
            return False
        if self.reach.reaches(a, b):
            return True
        if self.reach.reaches(b, a):
            return False
        lo, hi = (a, b) if a < b else (b, a)
        key = ("O", lo, hi)  # the variable means O_lo < O_hi
        var = self.atom_var.get(key)
        if var is None:
            var = self.sat.new_var()
            self.atom_var[key] = var
            self.var_atom[var] = OLt(lo, hi)
        return var if (a, b) == (lo, hi) else -var

    def _choice_lit(self, atom):
        key = atom
        var = self.atom_var.get(key)
        if var is None:
            var = self.sat.new_var()
            self.atom_var[key] = var
            self.var_atom[var] = atom
        return var

    def _lit(self, lit):
        atom = lit.atom
        if isinstance(atom, OLt):
            sat_lit = self._order_lit(atom)
        else:
            sat_lit = self._choice_lit(atom)
        if sat_lit is True or sat_lit is False:
            value = sat_lit if lit.positive else not sat_lit
            return value  # boolean constant
        return sat_lit if lit.positive else -sat_lit

    def _add_clause(self, lits):
        out = []
        for lit in lits:
            value = self._lit(lit)
            if value is True:
                return
            if value is False:
                continue
            out.append(value)
        self.sat.add_clause(out)

    def _build(self):
        system = self.system
        from repro.constraints.model import Lit

        for clause in system.clauses:
            self._add_clause(clause.lits)
        for group in system.exactly_one:
            self._add_clause(group.lits)
            lits = [self._lit(l) for l in group.lits]
            concrete = [l for l in lits if l is not True and l is not False]
            for i in range(len(concrete)):
                for j in range(i + 1, len(concrete)):
                    self.sat.add_clause([-concrete[i], -concrete[j]])
        for group in system.at_most_one:
            lits = [self._lit(l) for l in group.lits]
            concrete = [l for l in lits if l is not True and l is not False]
            for i in range(len(concrete)):
                for j in range(i + 1, len(concrete)):
                    self.sat.add_clause([-concrete[i], -concrete[j]])

    # -- theory checks ---------------------------------------------------------

    def _assigned_atoms(self, model):
        """Current OLt edges and choices from a SAT model."""
        edges = []
        rf = {}
        sw = []
        for var, value in model.items():
            atom = self.var_atom.get(var)
            if atom is None:
                continue
            if isinstance(atom, OLt):
                if value:
                    edges.append((atom.a, atom.b, var))
                else:
                    edges.append((atom.b, atom.a, -var))
            elif isinstance(atom, RFChoice):
                if value:
                    rf[atom.read] = atom.source
            elif isinstance(atom, SWChoice):
                if value:
                    sw.append(atom)
        return edges, rf, sw

    def _check_order(self, atom_edges):
        adjacency = {uid: [] for uid in self.system.saps}
        for a, b in self.fixed_edges:
            adjacency[a].append((b, None))
        for a, b, sat_lit in atom_edges:
            adjacency[a].append((b, sat_lit))
        cycle_lits = _find_cycle(adjacency)
        if cycle_lits is None:
            return adjacency, None
        return adjacency, [-l for l in cycle_lits]

    def _check_values(self, rf):
        """Evaluate Fpath ∧ Fbug under the reads-from map.

        Returns (env, blamed_read_uids, failure_reason).  On failure the
        blamed set is the *transitive* reads-from dependency cone of the
        one violated expression — a much tighter blocking clause than
        "everything consulted so far"."""
        system = self.system
        resolving = set()
        env = {}
        # read uid -> frozenset of read uids its value depends on (itself
        # plus the cone of the write expression it reads from).
        cone = {}
        touched = set()  # syms accessed by the expression being evaluated

        class LazyEnv(dict):
            def __missing__(env_self, sym_name):
                sap = self._sym_to_read[sym_name]
                touched.add(sap.uid)
                value = resolve(sap.uid)
                env_self[sym_name] = value
                return value

            def __getitem__(env_self, sym_name):
                if sym_name in env_self:
                    touched.add(self._sym_to_read[sym_name].uid)
                return dict.__getitem__(env_self, sym_name)

        lazy = LazyEnv()

        def resolve(read_uid):
            if read_uid in env:
                return env[read_uid]
            if read_uid in resolving:
                raise _CycleError([])
            resolving.add(read_uid)
            source = rf.get(read_uid)
            if source is None:
                raise KeyError(read_uid)
            deps = {read_uid}
            if source == INIT:
                value = system.initial_values[system.saps[read_uid].addr]
            else:
                write = system.saps[source]
                saved, touched_inner = touched.copy(), set()
                # Evaluate the write's expression with its own touch set so
                # the cone is per-read, then fold into the caller's.
                touched.clear()
                value = sym_eval(write.value, lazy)
                touched_inner = set(touched)
                touched.clear()
                touched.update(saved | touched_inner)
                for dep in touched_inner:
                    deps |= cone.get(dep, {dep})
            resolving.discard(read_uid)
            env[read_uid] = value
            cone[read_uid] = frozenset(deps)
            return value

        def blamed():
            out = set()
            for uid in touched:
                out |= cone.get(uid, {uid})
            return out

        try:
            for cond in system.conditions:
                touched.clear()
                if not sym_eval(cond.expr, lazy):
                    return lazy, blamed(), "path condition violated"
            for bug_expr in system.bug_exprs:
                touched.clear()
                if not sym_eval(bug_expr, lazy):
                    return lazy, blamed(), "bug predicate violated"
        except _CycleError:
            return lazy, set(env) | touched, "cyclic value dependency"
        except MiniRuntimeError as exc:
            return lazy, blamed(), str(exc)
        return lazy, set(), None

    def _block_choices(self, rf, consulted):
        lits = []
        for read_uid in consulted:
            source = rf.get(read_uid)
            if source is None:
                continue
            var = self.atom_var.get(RFChoice(read_uid, source))
            if var is not None:
                lits.append(-var)
        if not lits:
            return False
        self.sat.add_clause(lits)
        return True

    # -- schedule extraction -------------------------------------------------

    def _linearize(self, adjacency):
        """Greedy topological sort preferring the current thread."""
        indeg = {uid: 0 for uid in adjacency}
        succ = {uid: [] for uid in adjacency}
        for uid, out in adjacency.items():
            for nxt, _ in out:
                succ[uid].append(nxt)
                indeg[nxt] += 1
        ready = {uid for uid, d in indeg.items() if d == 0}
        schedule = []
        current_thread = None
        while ready:
            same = [uid for uid in ready if uid[0] == current_thread]
            if same:
                pick = min(same, key=lambda u: u[1])
            else:
                pick = min(ready, key=lambda u: (u[0], u[1]))
                current_thread = pick[0]
            ready.discard(pick)
            schedule.append(pick)
            for nxt in succ[pick]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.add(nxt)
        if len(schedule) != len(adjacency):
            raise RuntimeError("linearization failed on an acyclic graph?")
        return schedule

    # -- main loop ----------------------------------------------------------

    def solve(self, max_iterations=100000, max_seconds=None):
        start = time.monotonic()
        iterations = 0
        while True:
            iterations += 1
            if max_seconds is not None and time.monotonic() - start > max_seconds:
                return SmtResult(
                    False,
                    reason="timeout",
                    iterations=iterations,
                    solve_time=time.monotonic() - start,
                )
            if iterations > max_iterations:
                return SmtResult(
                    False,
                    reason="iteration limit",
                    iterations=iterations,
                    solve_time=time.monotonic() - start,
                )
            status = self.sat.solve()
            if status == UNSAT:
                return SmtResult(
                    False,
                    reason="unsatisfiable",
                    iterations=iterations,
                    solve_time=time.monotonic() - start,
                )
            model = self.sat.model()
            atom_edges, rf, _sw = self._assigned_atoms(model)
            adjacency, conflict = self._check_order(atom_edges)
            if conflict is not None:
                self.sat.add_clause(conflict)
                continue
            env, consulted, failure = self._check_values(rf)
            if failure is not None:
                if not self._block_choices(rf, consulted):
                    return SmtResult(
                        False,
                        reason="value conflict with no blockable choices: "
                        + failure,
                        iterations=iterations,
                        solve_time=time.monotonic() - start,
                    )
                continue
            schedule = self._linearize(adjacency)
            outcome = self.validator.validate(schedule)
            if not outcome.ok:
                # The operational wait/signal semantics rejected this
                # solution; block the current choice combination entirely.
                blocked = self._block_model(model)
                if not blocked:
                    return SmtResult(
                        False,
                        reason="validator rejected and nothing to block: "
                        + outcome.reason,
                        iterations=iterations,
                        solve_time=time.monotonic() - start,
                    )
                continue
            return SmtResult(
                True,
                schedule=schedule,
                reads_from=outcome.reads_from,
                env=outcome.env,
                context_switches=outcome.context_switches,
                iterations=iterations,
                solve_time=time.monotonic() - start,
            )

    def _block_model(self, model):
        lits = []
        for var, value in model.items():
            atom = self.var_atom.get(var)
            if isinstance(atom, (RFChoice, SWChoice)) and value:
                lits.append(-var)
        if not lits:
            return False
        self.sat.add_clause(lits)
        return True


def solve_constraints(system, max_iterations=100000, max_seconds=None):
    """Solve a ConstraintSystem; returns an :class:`SmtResult`."""
    try:
        solver = ClapSmtSolver(system)
    except ValueError as exc:
        return SmtResult(False, reason=str(exc))
    return solver.solve(max_iterations=max_iterations, max_seconds=max_seconds)
