"""The monolithic CLAP solver: CDCL(T) over order and value theories.

This plays the role of STP in the paper's prototype ("the sequential
solver" of Table 1/Table 3).  Architecture:

Boolean skeleton (CDCL)
    Variables for reads-from choices, signal-wait mappings, and order
    atoms ``O_a < O_b``.  Because the schedule totally orders distinct
    SAPs, ``¬(O_a < O_b) ≡ O_b < O_a`` — one SAT variable serves both
    directions.

Order theory
    The fixed edges (Fmo + fixed Fso) form a DAG whose transitive closure
    is precomputed; order atoms implied either way become unit clauses up
    front.  After each SAT solution, the digraph of fixed edges plus
    assigned atoms is checked for cycles; a cycle yields a conflict clause
    over the atom literals on it.

Value theory (lazy)
    A full assignment fixes each read's source write, hence (recursively)
    every read's concrete value.  All path conditions and the bug
    predicate are evaluated; a failure yields a blocking clause over the
    reads-from choices actually consulted during evaluation.

The satisfying total order is extracted by a greedy topological sort that
prefers staying on the current thread — linearizations of one solution
differ only in switch count, so greediness directly reduces the reported
``#cs`` — and the result is re-checked by the independent
:class:`~repro.solver.validate.ScheduleValidator` before being returned.

Incremental bound loop
    :func:`solve_constraints_bounded` realizes Section 4.2's
    minimal-context-switch loop on top of this solver.  One
    :class:`ClapSmtSolver` (hence one SAT instance, one variable
    numbering — see ``encoder.assign_atom_numbering``) serves every bound
    round ``c = 0, 1, 2, …``: each round gets a fresh *guard variable*
    ``g_c``, solutions that need more than ``c`` switches are blocked by
    guarded clauses ``¬g_c ∨ block`` active only while ``g_c`` is assumed,
    and moving to round ``c + 1`` simply drops the assumption — the
    blocks evaporate while every theory conflict clause and every clause
    the SAT core learned stays.  ``incremental=False`` rebuilds the
    encoder output into a fresh solver per round (the pre-incremental
    behavior), kept as the differential baseline and as the "old" column
    of ``BENCH_solver.json``.
"""

import time
from dataclasses import dataclass, field

from repro.runtime import events as ev
from repro.runtime.errors import MiniRuntimeError
from repro.analysis.symbolic import sym_eval
from repro.constraints.context_switch import count_context_switches
from repro.constraints.model import INIT, OLt, RFChoice, SWChoice
from repro.solver.cdcl import CDCLSolver, SAT, UNSAT
from repro.solver.validate import ScheduleValidator


@dataclass
class SmtResult:
    ok: bool
    reason: str = ""
    schedule: list = field(default_factory=list)
    reads_from: dict = field(default_factory=dict)
    env: dict = field(default_factory=dict)
    context_switches: int = -1
    iterations: int = 0
    solve_time: float = 0.0
    # Bound-loop extras (solve_constraints_bounded only): the round at
    # which the schedule was found, per-round counter/wall-time dicts,
    # and the SAT core's cumulative SolverPhaseStats as a dict.
    bound: int = -1
    round_stats: list = field(default_factory=list)
    sat_stats: dict = field(default_factory=dict)
    # Portfolio extras (solve_constraints_portfolio only): the
    # PortfolioStats counters as a dict — winner identity, cube counts,
    # clause-exchange traffic, cancellations.
    portfolio: dict = field(default_factory=dict)

    def __bool__(self):
        return self.ok


class _Reachability:
    """Transitive closure of the fixed order edges, via bitsets."""

    def __init__(self, uids, edges):
        self.index = {uid: i for i, uid in enumerate(uids)}
        n = len(uids)
        succ = [[] for _ in range(n)]
        indeg = [0] * n
        for a, b in edges:
            ia, ib = self.index[a], self.index[b]
            succ[ia].append(ib)
            indeg[ib] += 1
        order = [i for i in range(n) if indeg[i] == 0]
        head = 0
        while head < len(order):
            node = order[head]
            head += 1
            for nxt in succ[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    order.append(nxt)
        if len(order) != n:
            raise ValueError("fixed order constraints are cyclic (unsat)")
        self.reach = [0] * n
        for node in reversed(order):
            mask = 0
            for nxt in succ[node]:
                mask |= self.reach[nxt] | (1 << nxt)
            self.reach[node] = mask

    def reaches(self, a, b):
        return bool(self.reach[self.index[a]] >> self.index[b] & 1)


class _CycleError(Exception):
    def __init__(self, lits):
        self.lits = lits


def _find_cycle(adjacency):
    """Iterative DFS cycle search.  ``adjacency``: node -> [(succ, lit)].
    Returns the list of atom literals on one cycle, or None."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in adjacency}
    for root in adjacency:
        if color[root] != WHITE:
            continue
        stack = [(root, iter(adjacency[root]))]
        path = [root]
        edge_lits = []
        color[root] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ, lit in it:
                if color.get(succ, BLACK) == GRAY:
                    # Found a cycle: path from succ..node plus this edge.
                    start = path.index(succ)
                    lits = edge_lits[start:] + [lit]
                    return [l for l in lits if l is not None]
                if color.get(succ, BLACK) == WHITE:
                    color[succ] = GRAY
                    stack.append((succ, iter(adjacency[succ])))
                    path.append(succ)
                    edge_lits.append(lit)
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                color[node] = BLACK
                path.pop()
                if edge_lits:
                    edge_lits.pop()
    return None


class ClapSmtSolver:
    """CDCL(T) solver for one :class:`ConstraintSystem`."""

    def __init__(self, system, sat_factory=None):
        self.system = system
        self.sat = (sat_factory or CDCLSolver)()
        self.validator = ScheduleValidator(system)
        # Canonical atom key -> sat var.  When the encoder attached a
        # stable numbering, adopt it wholesale: every solver built from
        # this system — fresh-per-round or incremental — then uses
        # identical variable ids, which is what makes learned-clause and
        # assumption reuse across bound rounds sound and comparable.
        numbering = getattr(system, "atom_numbering", None)
        if numbering:
            self.atom_var = dict(numbering)
            self.sat.ensure_var(len(numbering))
        else:
            self.atom_var = {}
        self.var_atom = {}  # sat var -> atom (only vars actually used)
        uids = list(system.saps)
        self.fixed_edges = [(e.a, e.b) for e in system.hard_edges]
        # The encoder's happens-before closure already is the transitive
        # closure of the fixed edges; adopt it instead of rebuilding one.
        # A cyclic closure (inconsistent recording) or a system encoded
        # without one (hb=False) falls back to the bitset pass, which
        # raises ValueError on cycles — the unsat signal callers expect.
        closure = getattr(system, "hb_closure", None)
        if (
            closure is not None
            and not closure.cyclic
            and closure.n_nodes == len(uids)
        ):
            self.reach = closure
        else:
            self.reach = _Reachability(uids, self.fixed_edges)
        self._sym_to_read = {}
        for summary in system.summaries.values():
            for name, sap in summary.reads.items():
                self._sym_to_read[name] = sap
        self._build()

    # -- encoding -----------------------------------------------------------

    def _order_lit(self, atom):
        """SAT literal for an OLt atom, using fixed-order implications.
        Returns +/-var, or True/False when the closure decides it."""
        a, b = atom.a, atom.b
        if a == b:
            return False
        if self.reach.reaches(a, b):
            return True
        if self.reach.reaches(b, a):
            return False
        lo, hi = (a, b) if a < b else (b, a)
        key = ("O", lo, hi)  # the variable means O_lo < O_hi
        var = self.atom_var.get(key)
        if var is None:
            var = self.sat.new_var()
            self.atom_var[key] = var
        if var not in self.var_atom:
            # Registered lazily so pre-numbered atoms the closure decides
            # never enter var_atom: their (unconstrained) SAT values must
            # not leak edges into the order-theory check.
            self.var_atom[var] = OLt(lo, hi)
        return var if (a, b) == (lo, hi) else -var

    def _choice_lit(self, atom):
        key = atom
        var = self.atom_var.get(key)
        if var is None:
            var = self.sat.new_var()
            self.atom_var[key] = var
        if var not in self.var_atom:
            self.var_atom[var] = atom
        return var

    def _lit(self, lit):
        atom = lit.atom
        if isinstance(atom, OLt):
            sat_lit = self._order_lit(atom)
        else:
            sat_lit = self._choice_lit(atom)
        if sat_lit is True or sat_lit is False:
            value = sat_lit if lit.positive else not sat_lit
            return value  # boolean constant
        return sat_lit if lit.positive else -sat_lit

    def _add_clause(self, lits):
        out = []
        for lit in lits:
            value = self._lit(lit)
            if value is True:
                return
            if value is False:
                continue
            out.append(value)
        self.sat.add_clause(out)

    def _build(self):
        system = self.system
        from repro.constraints.model import Lit

        for clause in system.clauses:
            self._add_clause(clause.lits)
        for group in system.exactly_one:
            self._add_clause(group.lits)
            lits = [self._lit(l) for l in group.lits]
            concrete = [l for l in lits if l is not True and l is not False]
            for i in range(len(concrete)):
                for j in range(i + 1, len(concrete)):
                    self.sat.add_clause([-concrete[i], -concrete[j]])
        for group in system.at_most_one:
            lits = [self._lit(l) for l in group.lits]
            concrete = [l for l in lits if l is not True and l is not False]
            for i in range(len(concrete)):
                for j in range(i + 1, len(concrete)):
                    self.sat.add_clause([-concrete[i], -concrete[j]])

    # -- theory checks ---------------------------------------------------------

    def _assigned_atoms(self, model):
        """Current OLt edges and choices from a SAT model."""
        edges = []
        rf = {}
        sw = []
        for var, value in model.items():
            atom = self.var_atom.get(var)
            if atom is None:
                continue
            if isinstance(atom, OLt):
                if value:
                    edges.append((atom.a, atom.b, var))
                else:
                    edges.append((atom.b, atom.a, -var))
            elif isinstance(atom, RFChoice):
                if value:
                    rf[atom.read] = atom.source
            elif isinstance(atom, SWChoice):
                if value:
                    sw.append(atom)
        return edges, rf, sw

    def _check_order(self, atom_edges):
        adjacency = {uid: [] for uid in self.system.saps}
        for a, b in self.fixed_edges:
            adjacency[a].append((b, None))
        for a, b, sat_lit in atom_edges:
            adjacency[a].append((b, sat_lit))
        cycle_lits = _find_cycle(adjacency)
        if cycle_lits is None:
            return adjacency, None
        return adjacency, [-l for l in cycle_lits]

    def _check_values(self, rf):
        """Evaluate Fpath ∧ Fbug under the reads-from map.

        Returns (env, blamed_read_uids, failure_reason).  On failure the
        blamed set is the *transitive* reads-from dependency cone of the
        one violated expression — a much tighter blocking clause than
        "everything consulted so far"."""
        system = self.system
        resolving = set()
        env = {}
        # read uid -> frozenset of read uids its value depends on (itself
        # plus the cone of the write expression it reads from).
        cone = {}
        touched = set()  # syms accessed by the expression being evaluated

        class LazyEnv(dict):
            def __missing__(env_self, sym_name):
                sap = self._sym_to_read[sym_name]
                touched.add(sap.uid)
                value = resolve(sap.uid)
                env_self[sym_name] = value
                return value

            def __getitem__(env_self, sym_name):
                if sym_name in env_self:
                    touched.add(self._sym_to_read[sym_name].uid)
                return dict.__getitem__(env_self, sym_name)

        lazy = LazyEnv()

        def resolve(read_uid):
            if read_uid in env:
                return env[read_uid]
            if read_uid in resolving:
                raise _CycleError([])
            resolving.add(read_uid)
            source = rf.get(read_uid)
            if source is None:
                raise KeyError(read_uid)
            deps = {read_uid}
            if source == INIT:
                value = system.initial_values[system.saps[read_uid].addr]
            else:
                write = system.saps[source]
                saved, touched_inner = touched.copy(), set()
                # Evaluate the write's expression with its own touch set so
                # the cone is per-read, then fold into the caller's.
                touched.clear()
                value = sym_eval(write.value, lazy)
                touched_inner = set(touched)
                touched.clear()
                touched.update(saved | touched_inner)
                for dep in touched_inner:
                    deps |= cone.get(dep, {dep})
            resolving.discard(read_uid)
            env[read_uid] = value
            cone[read_uid] = frozenset(deps)
            return value

        def blamed():
            out = set()
            for uid in touched:
                out |= cone.get(uid, {uid})
            return out

        try:
            for cond in system.conditions:
                touched.clear()
                if not sym_eval(cond.expr, lazy):
                    return lazy, blamed(), "path condition violated"
            for bug_expr in system.bug_exprs:
                touched.clear()
                if not sym_eval(bug_expr, lazy):
                    return lazy, blamed(), "bug predicate violated"
        except _CycleError:
            return lazy, set(env) | touched, "cyclic value dependency"
        except MiniRuntimeError as exc:
            return lazy, blamed(), str(exc)
        return lazy, set(), None

    def _block_choices(self, rf, consulted):
        lits = []
        for read_uid in consulted:
            source = rf.get(read_uid)
            if source is None:
                continue
            var = self.atom_var.get(RFChoice(read_uid, source))
            if var is not None:
                lits.append(-var)
        if not lits:
            return False
        self.sat.add_clause(lits)
        return True

    # -- schedule extraction -------------------------------------------------

    def _linearize(self, adjacency, start_thread=None):
        """Greedy topological sort preferring the current thread."""
        indeg = {uid: 0 for uid in adjacency}
        succ = {uid: [] for uid in adjacency}
        for uid, out in adjacency.items():
            for nxt, _ in out:
                succ[uid].append(nxt)
                indeg[nxt] += 1
        ready = {uid for uid, d in indeg.items() if d == 0}
        schedule = []
        current_thread = start_thread
        while ready:
            same = [uid for uid in ready if uid[0] == current_thread]
            if same:
                pick = min(same, key=lambda u: u[1])
            else:
                pick = min(ready, key=lambda u: (u[0], u[1]))
                current_thread = pick[0]
            ready.discard(pick)
            schedule.append(pick)
            for nxt in succ[pick]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.add(nxt)
        if len(schedule) != len(adjacency):
            raise RuntimeError("linearization failed on an acyclic graph?")
        return schedule

    def _linearize_feasible(
        self, adjacency, rf, start_thread=None, wake_map=None, node_budget=1200
    ):
        """Topological sort that also honors the operational rules the
        combo's semantic edges alone cannot express: lock exclusion and
        condvar park/wake (two critical sections on one mutex have no
        fixed relative order, yet must not interleave), and the combo's
        reads-from map (the edge puts the source before the read, but
        nothing in the graph stops *another* write from landing in
        between and changing the value).

        Greedy thread-continuation with backtracking: taking a lock or
        ordering a write too early can wedge the walk, so dead ends undo
        and try the next thread.  ``wake_map`` maps a signal SAP uid to
        the wait SAP uid the combo pairs it with, steering each signal
        toward its intended waiter.  Deterministic; returns ``None`` when
        no completion is found within ``node_budget`` emitted-SAP
        attempts."""
        saps = self.system.saps
        indeg = {uid: 0 for uid in adjacency}
        succ = {uid: [] for uid in adjacency}
        for uid, out in adjacency.items():
            for nxt, _ in out:
                succ[uid].append(nxt)
                indeg[nxt] += 1
        ready = {uid for uid, d in indeg.items() if d == 0}
        locks = {}
        parked = {}
        signaled = set()
        schedule = []
        budget = [node_budget]
        emitted = set()
        last_writer = {}
        # addr -> set of pending read uids (window opens once the read's
        # source is emitted; until the read runs, no other write to the
        # addr may land).
        pending_reads = {}
        for read_uid in rf:
            sap = saps.get(read_uid)
            if sap is not None:
                pending_reads.setdefault(sap.addr, set()).add(read_uid)

        def runnable(uid):
            sap = saps[uid]
            if sap.kind == ev.LOCK:
                return locks.get(sap.addr) is None
            if sap.kind == ev.WAIT:
                return sap.thread in signaled
            if sap.kind == ev.READ and uid in rf:
                source = rf[uid]
                if source == INIT:
                    return last_writer.get(sap.addr) is None
                return last_writer.get(sap.addr) == source
            if sap.kind == ev.WRITE:
                for read_uid in pending_reads.get(sap.addr, ()):
                    source = rf[read_uid]
                    if source == INIT or (source != uid and source in emitted):
                        return False
            return True

        def emit(uid):
            sap = saps[uid]
            thread = sap.thread
            ready.discard(uid)
            schedule.append(uid)
            emitted.add(uid)
            newly = []
            for nxt in succ[uid]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.add(nxt)
                    newly.append(nxt)
            rec = [uid, newly, None, None, False, [], None]
            if sap.kind == ev.READ and uid in rf:
                pending_reads[sap.addr].discard(uid)
            elif sap.kind == ev.WRITE:
                rec[6] = (sap.addr, last_writer.get(sap.addr))
                last_writer[sap.addr] = uid
            if sap.kind == ev.LOCK:
                rec[2] = (sap.addr, locks.get(sap.addr))
                locks[sap.addr] = thread
            elif sap.kind == ev.UNLOCK:
                rec[2] = (sap.addr, locks.get(sap.addr))
                locks[sap.addr] = None
                nxt = saps.get((thread, sap.index + 1))
                if nxt is not None and nxt.kind == ev.WAIT:
                    rec[3] = (thread, parked.get(thread))
                    parked[thread] = nxt
            elif sap.kind == ev.WAIT:
                rec[4] = thread in signaled
                signaled.discard(thread)
            elif sap.kind in (ev.SIGNAL, ev.BROADCAST):
                waiters = [
                    w
                    for t, w in parked.items()
                    if w is not None and w.addr == sap.addr
                ]
                if sap.kind == ev.BROADCAST:
                    chosen = waiters
                else:
                    chosen = []
                    intended = (wake_map or {}).get(uid)
                    for w in waiters:
                        if w.uid == intended:
                            chosen = [w]
                            break
                    if not chosen and waiters:
                        chosen = [min(waiters, key=lambda w: w.uid)]
                for w in chosen:
                    rec[5].append((w.thread, w, w.thread in signaled))
                    parked[w.thread] = None
                    signaled.add(w.thread)
            return rec

        def undo(rec):
            uid, newly, lock_rec, park_rec, was_signaled, woken, write_rec = rec
            schedule.pop()
            emitted.discard(uid)
            for nxt in newly:
                ready.discard(nxt)
            for nxt in succ[uid]:
                indeg[nxt] += 1
            ready.add(uid)
            sap = saps[uid]
            if sap.kind == ev.READ and uid in rf:
                pending_reads[sap.addr].add(uid)
            if write_rec is not None:
                last_writer[write_rec[0]] = write_rec[1]
            if lock_rec is not None:
                locks[lock_rec[0]] = lock_rec[1]
            if park_rec is not None:
                parked[park_rec[0]] = park_rec[1]
            if sap.kind == ev.WAIT and was_signaled:
                signaled.add(sap.thread)
            for thread, waiter, already in woken:
                parked[thread] = waiter
                if not already:
                    signaled.discard(thread)

        def dfs(current_thread):
            if not ready:
                return len(schedule) == len(adjacency)
            eligible = sorted(
                (uid for uid in ready if runnable(uid)),
                key=lambda u: (u[0] != current_thread, u[0], u[1]),
            )
            if not eligible:
                return False
            for uid in eligible:
                if budget[0] <= 0:
                    return False
                budget[0] -= 1
                rec = emit(uid)
                if dfs(uid[0]):
                    return True
                undo(rec)
            return False

        if dfs(start_thread):
            return schedule
        return None

    # -- main loop ----------------------------------------------------------

    def _try_model(self, combo_cache=None, reject_guard=None):
        """One CEGAR refinement step after a SAT answer.

        Returns ``((schedule, outcome, model, certified), None)`` on a
        theory-valid solution, ``(None, None)`` when a conflict clause was
        added and the search should continue, and ``(None, reason)`` on a
        fatal dead end (nothing left to block).  ``certified`` is True
        when the schedule (hence its switch count) is the combo's
        *canonical* one — a pure function of the reads-from/signal-wait
        choices, independent of which SAT model proposed them — and False
        when it is the fallback derived from this model's order atoms.
        Validator rejections depend on the model-derived schedule, so in
        the bound loop the resulting block must not outlive the round —
        another model of the same choices may linearize to a schedule the
        validator accepts; ``reject_guard`` (the round's ladder literal)
        scopes the block to the round instead of asserting it permanently.

        ``combo_cache`` (bound loop only) memoizes theory-valid
        reads-from/signal-wait combinations: when a later round retracts
        a combo's switch-bound block and the SAT core re-proposes it, the
        linearization and validation are served from the cache instead of
        being recomputed — theory-level reuse to match the SAT core's
        learned-clause reuse.  A cached schedule stays valid no matter
        which model re-proposed the combo, so skipping the per-model
        order-cycle check on a hit is sound (combos, not models, are what
        the bound loop blocks)."""
        model = self.sat.model()
        atom_edges, rf, sw = self._assigned_atoms(model)
        combo_key = None
        if combo_cache is not None:
            combo_key = (
                frozenset(rf.items()),
                frozenset((atom.signal, atom.wait) for atom in sw),
            )
            hit = combo_cache.get(combo_key)
            if hit is not None and hit is not False:
                schedule, outcome = hit
                return (schedule, outcome, model, True), None
        adjacency, conflict = self._check_order(atom_edges)
        if conflict is not None:
            self.sat.add_clause(conflict)
            return None, None
        env, consulted, failure = self._check_values(rf)
        if failure is not None:
            if not self._block_choices(rf, consulted):
                return None, "value conflict with no blockable choices: " + failure
            return None, None
        if combo_cache is not None and hit is not False:
            # The bound loop scores a combo by its schedule's switch
            # count, so derive the schedule from the combo's own semantic
            # edges where possible: the result is a function of the combo
            # alone, not of whichever SAT model happened to propose it —
            # fresh-per-round and incremental runs then agree on every
            # combo's cost, and the relaxed order usually needs fewer
            # switches than the model's arbitrary total order.  Only
            # canonical solutions are cached as solutions; a canonical
            # *failure* is cached as ``False`` so re-proposals of the
            # same combo skip the (expensive) feasibility walk.
            canonical = self._canonical_combo_solution(rf, sw)
            if canonical is not None:
                schedule, outcome = canonical
                combo_cache[combo_key] = (schedule, outcome)
                return (schedule, outcome, model, True), None
            combo_cache[combo_key] = False
        schedule = self._linearize(adjacency)
        outcome = self.validator.validate(schedule)
        if not outcome.ok:
            # The operational wait/signal semantics rejected this
            # solution.  The rejection is evidence against *this model's
            # schedule*, not against the whole choice combination —
            # another order-atom assignment of the same choices may
            # linearize to a schedule the validator accepts.  In the
            # bound loop (guard given) block just the model, scoped to
            # the round; in single-shot mode keep the coarser permanent
            # combo block (one solution is all that search needs).
            if reject_guard is not None:
                lits = self._model_block_lits(model)
                if not lits:
                    return None, (
                        "validator rejected and nothing to block: "
                        + outcome.reason
                    )
                self.sat.add_clause([reject_guard] + lits)
                return None, None
            lits = self._choice_block_lits(model)
            if not lits:
                return None, (
                    "validator rejected and nothing to block: " + outcome.reason
                )
            self.sat.add_clause(lits)
            return None, None
        return (schedule, outcome, model, False), None

    def _canonical_combo_solution(self, rf, sw):
        """Linearize a validated combo from its semantic edges only
        (reads-from, signal/wait, plus the fixed Fmo/Fso order) and
        re-validate.  Returns ``(schedule, outcome)`` or ``None`` when no
        relaxed schedule checks out — the caller falls back to the
        model-derived schedule.

        The relaxed order is linearized once per starting thread and the
        candidates validated cheapest-first (fewest context switches), so
        the canonical switch count is the best the greedy scheduler can do
        for this combo — deterministic, and as tight as the heuristic
        allows.  The bound loop's per-combo retirement level (hence the
        reported minimal bound) is minimal *relative to this canonical
        scheduler*; the incremental and the fresh-per-round paths share
        it, which is what makes their bounds comparable."""
        edges = []
        for read, source in rf.items():
            if source != INIT:
                edges.append((source, read, None))
        for atom in sw:
            edges.append((atom.signal, atom.wait, None))
        adjacency, conflict = self._check_order(edges)
        if conflict is not None:
            return None
        wake_map = {atom.signal: atom.wait for atom in sw}
        candidates = {}
        for start in sorted({uid[0] for uid in self.system.saps}):
            schedule = self._linearize_feasible(
                adjacency, rf, start_thread=start, wake_map=wake_map
            )
            if schedule is None:
                continue
            key = tuple(schedule)
            if key not in candidates:
                candidates[key] = count_context_switches(
                    schedule, self.system.summaries
                )
        for key, _ in sorted(candidates.items(), key=lambda kv: (kv[1], kv[0])):
            outcome = self.validator.validate(list(key))
            if outcome.ok:
                return list(key), outcome
        return None

    def _sat_stats(self):
        stats = getattr(self.sat, "stats", None)
        return stats.as_dict() if stats is not None else {}

    def _fail(self, reason, iterations, start, **extra):
        return SmtResult(
            False,
            reason=reason,
            iterations=iterations,
            solve_time=time.monotonic() - start,
            sat_stats=self._sat_stats(),
            **extra,
        )

    def solve(self, max_iterations=100000, max_seconds=None, _start=None):
        start = time.monotonic() if _start is None else _start
        iterations = 0
        while True:
            iterations += 1
            if max_seconds is not None and time.monotonic() - start > max_seconds:
                return self._fail("timeout", iterations, start)
            if iterations > max_iterations:
                return self._fail("iteration limit", iterations, start)
            status = self.sat.solve()
            if status == UNSAT:
                return self._fail("unsatisfiable", iterations, start)
            solution, fatal = self._try_model()
            if fatal is not None:
                return self._fail(fatal, iterations, start)
            if solution is None:
                continue
            schedule, outcome, _model, _certified = solution
            return SmtResult(
                True,
                schedule=schedule,
                reads_from=outcome.reads_from,
                env=outcome.env,
                context_switches=outcome.context_switches,
                iterations=iterations,
                solve_time=time.monotonic() - start,
                sat_stats=self._sat_stats(),
            )

    # -- minimal-context-switch bound loop -----------------------------------

    def solve_bounded(
        self,
        max_cs,
        min_bound=0,
        max_iterations=100000,
        max_seconds=None,
        round_iterations=2000,
        assume_lits=(),
        tick=None,
        on_round=None,
        _start=None,
    ):
        """Section 4.2's incrementing loop over one solver instance.

        Rounds ``c = min_bound … max_cs`` each search for a theory-valid
        solution whose greedy linearization needs at most ``c`` context
        switches.  Solutions that need more are blocked by clauses guarded
        on the round's assumption variable, so the next round retracts
        them for free while keeping all learned clauses — the whole point
        of the incremental core.

        ``round_iterations`` caps each round's CEGAR iterations.  An
        infeasible low bound can only be refuted by blocking theory-valid
        combinations one at a time, which on real traces is an enormous
        space; like the generate-and-validate driver's time-sliced rounds,
        an un-exhausted round is abandoned after its budget and the search
        moves to the next bound.  The result is then minimal with respect
        to the budget (best-effort), not a proof that smaller bounds are
        impossible.  Pass ``None`` for exhaustive rounds.

        Portfolio hooks: ``assume_lits`` are extra assumption literals
        added to every round (a cube worker's prefix cube — constraints
        that scope the search *without* entering the clause database, so
        learned clauses stay globally valid); ``tick(self)`` fires once
        per CEGAR iteration (clause exchange); ``on_round(entry)`` fires
        as each round closes with that round's stats entry (exhaustion
        evidence for the portfolio's minimality protocol)."""
        start = time.monotonic() if _start is None else _start
        # A SAT core without an assumption interface (the frozen reference
        # solver) cannot retract blocks between rounds: only a single
        # round — the fresh-solver-per-round driver's use — is sound.
        stats = getattr(self.sat, "stats", None)
        use_guard = stats is not None
        if not use_guard and max_cs > min_bound:
            raise TypeError(
                "multi-round bound search needs an assumption-capable SAT core"
            )
        assume_lits = list(assume_lits)
        if assume_lits and not use_guard:
            raise TypeError(
                "cube assumptions need an assumption-capable SAT core"
            )
        for lit in assume_lits:
            self.sat.ensure_var(abs(lit))
        iterations = 0
        round_stats = []
        # Theory-level reuse across rounds: a combo's linearization and
        # validation are computed once and served from cache if the SAT
        # core ever re-proposes it.
        combo_cache = {}
        # Bound-ladder variables: ``ladder[j]`` reads "the current bound
        # is at least j".  Every round assumes the full ladder valuation
        # (true up to its own bound, false above), so a solution needing
        # k switches is retired with a single clause ``l_k ∨ ¬combo`` —
        # blocking it in every round below k at once.  No later round
        # wastes budget re-discovering it, and dropping the assumptions
        # retracts every block while the learned clauses stay.
        ladder = (
            {j: self.sat.new_var() for j in range(min_bound + 1, max_cs + 2)}
            if use_guard
            else {}
        )
        for c in range(min_bound, max_cs + 1):
            assumptions = (
                assume_lits
                + [
                    ladder[j] if j <= c else -ladder[j]
                    for j in range(min_bound + 1, max_cs + 2)
                ]
                if use_guard
                else []
            )
            round_start = time.monotonic()
            before = stats.snapshot() if use_guard else None
            round_iters = 0
            exhausted = False

            def close_round(found):
                entry = stats.delta(before) if use_guard else {}
                entry.update(
                    bound=c,
                    wall=time.monotonic() - round_start,
                    iterations=round_iters,
                    found=found,
                    exhausted=exhausted,
                )
                round_stats.append(entry)
                if on_round is not None:
                    on_round(entry)

            while True:
                if (
                    round_iterations is not None
                    and round_iters >= round_iterations
                ):
                    break  # budget spent; abandon this bound, try the next
                iterations += 1
                round_iters += 1
                if tick is not None:
                    tick(self)
                if (
                    max_seconds is not None
                    and time.monotonic() - start > max_seconds
                ):
                    close_round(False)
                    return self._fail(
                        "timeout", iterations, start, round_stats=round_stats
                    )
                if iterations > max_iterations:
                    close_round(False)
                    return self._fail(
                        "iteration limit",
                        iterations,
                        start,
                        round_stats=round_stats,
                    )
                if use_guard:
                    status = self.sat.solve(assumptions=assumptions)
                else:
                    status = self.sat.solve()
                if status == UNSAT:
                    if use_guard and self.sat._unsat:
                        close_round(False)
                        return self._fail(
                            "unsatisfiable",
                            iterations,
                            start,
                            round_stats=round_stats,
                        )
                    exhausted = True
                    break  # bound c exhausted; retry with a larger bound
                solution, fatal = self._try_model(
                    combo_cache=combo_cache,
                    reject_guard=ladder[c + 1] if use_guard else None,
                )
                if fatal is not None:
                    close_round(False)
                    return self._fail(
                        fatal, iterations, start, round_stats=round_stats
                    )
                if solution is None:
                    continue
                schedule, outcome, model, certified = solution
                if outcome.context_switches <= c:
                    close_round(True)
                    return SmtResult(
                        True,
                        schedule=schedule,
                        reads_from=outcome.reads_from,
                        env=outcome.env,
                        context_switches=outcome.context_switches,
                        iterations=iterations,
                        solve_time=time.monotonic() - start,
                        bound=c,
                        round_stats=round_stats,
                        sat_stats=self._sat_stats(),
                    )
                if certified:
                    # This combo canonically needs ``k`` switches:
                    # ``l_k ∨ ¬combo`` blocks it exactly while the
                    # assumed bound is below k.  Once c reaches k the
                    # ladder assumption satisfies the clause and the
                    # combo becomes available again.
                    lits = self._choice_block_lits(model)
                    k = min(outcome.context_switches, max_cs + 1)
                else:
                    # A model-derived switch count is an artifact of this
                    # model's order atoms, not a property of the choice
                    # combination — block just the model, for this round
                    # only, so other orderings of the same choices stay
                    # enumerable.
                    lits = self._model_block_lits(model)
                    k = c + 1
                if not lits:
                    # Nothing to block: this solution shape is the only
                    # one; later rounds will accept it once c reaches its
                    # switch count.
                    break
                if use_guard:
                    self.sat.add_clause([ladder[k]] + lits)
                else:
                    self.sat.add_clause(lits)
            close_round(False)
        return self._fail(
            "no schedule within %d context switches" % max_cs,
            iterations,
            start,
            round_stats=round_stats,
        )

    def _choice_block_lits(self, model):
        return [
            -var
            for var, value in model.items()
            if value and isinstance(self.var_atom.get(var), (RFChoice, SWChoice))
        ]

    def _model_block_lits(self, model):
        """Negation of the full atom assignment (choices *and* order
        atoms): blocks exactly this model, leaving every other ordering
        of the same choices enumerable."""
        return [
            -var if value else var
            for var, value in model.items()
            if var in self.var_atom
        ]


def solve_constraints(system, max_iterations=100000, max_seconds=None, sat_factory=None):
    """Solve a ConstraintSystem; returns an :class:`SmtResult`.

    ``solve_time`` covers formula construction (CNF build, transitive
    closure) as well as the search itself."""
    start = time.monotonic()
    try:
        solver = ClapSmtSolver(system, sat_factory=sat_factory)
    except ValueError as exc:
        return SmtResult(False, reason=str(exc), solve_time=time.monotonic() - start)
    return solver.solve(
        max_iterations=max_iterations, max_seconds=max_seconds, _start=start
    )


def solve_constraints_bounded(
    system,
    max_cs=4,
    incremental=True,
    sat_factory=None,
    max_iterations=100000,
    max_seconds=None,
    round_iterations=2000,
    assume_lits=(),
    tick=None,
    on_round=None,
):
    """Minimal-context-switch search with increasing bound rounds.

    ``incremental=True`` (the default) runs every round on one solver —
    stable variable numbering, learned clauses and VSIDS/phase state
    carried across rounds, per-round blocks retracted by dropping their
    guard assumption.  ``incremental=False`` re-encodes into a fresh
    solver for every round: the pre-incremental behavior, kept as the
    baseline the differential tests and ``BENCH_solver.json`` compare
    against.  Both paths apply the same per-round iteration budget
    (``round_iterations``, see :meth:`ClapSmtSolver.solve_bounded`) and
    must agree on the resulting switch count."""
    start = time.monotonic()
    if incremental:
        try:
            solver = ClapSmtSolver(system, sat_factory=sat_factory)
        except ValueError as exc:
            return SmtResult(
                False, reason=str(exc), solve_time=time.monotonic() - start
            )
        return solver.solve_bounded(
            max_cs,
            max_iterations=max_iterations,
            max_seconds=max_seconds,
            round_iterations=round_iterations,
            assume_lits=assume_lits,
            tick=tick,
            on_round=on_round,
            _start=start,
        )
    iterations = 0
    round_stats = []
    sat_stats = {}
    for c in range(max_cs + 1):
        try:
            solver = ClapSmtSolver(system, sat_factory=sat_factory)
        except ValueError as exc:
            return SmtResult(
                False, reason=str(exc), solve_time=time.monotonic() - start
            )
        remaining = None
        if max_seconds is not None:
            remaining = max_seconds - (time.monotonic() - start)
            if remaining <= 0:
                return SmtResult(
                    False,
                    reason="timeout",
                    iterations=iterations,
                    solve_time=time.monotonic() - start,
                    round_stats=round_stats,
                    sat_stats=sat_stats,
                )
        result = solver.solve_bounded(
            c,
            min_bound=c,
            max_iterations=max_iterations - iterations,
            max_seconds=remaining,
            round_iterations=round_iterations,
        )
        iterations += result.iterations
        round_stats.extend(result.round_stats)
        sat_stats = result.sat_stats
        if result.ok or result.reason in (
            "unsatisfiable",
            "timeout",
            "iteration limit",
        ) or result.reason.startswith(("value conflict", "validator rejected")):
            result.iterations = iterations
            result.round_stats = round_stats
            result.solve_time = time.monotonic() - start
            if result.ok:
                result.bound = c
            return result
    return SmtResult(
        False,
        reason="no schedule within %d context switches" % max_cs,
        iterations=iterations,
        solve_time=time.monotonic() - start,
        round_stats=round_stats,
        sat_stats=sat_stats,
    )
