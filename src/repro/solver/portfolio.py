"""Cube-and-conquer portfolio driver over the incremental CLAP solver.

The sequential bound loop (:func:`repro.solver.smt.solve_constraints_bounded`)
spends almost all of its time *refuting* low context-switch bounds: each
round below the true minimum can only be closed by blocking theory-valid
reads-from combinations one at a time, and on the big Table-1 traces the
per-round iteration budget runs out long before the space does — the
reported bound is then best-effort, not minimal.  This module races
several strategies for the same answer over the service
:class:`~repro.service.pool.WorkerPool` and keeps whichever evidence
arrives first:

``seq``
    A pristine replica of the sequential incremental solver.  It exports
    learned clauses but **never imports any**, so its round-by-round
    evidence (found / exhausted / budget-out) is exactly what the
    sequential path would have produced.  This is the anchor that makes
    the portfolio's verdict never *worse* than sequential.

``genval``
    One capped generate-and-validate probe per ladder rung ``c``
    (Section 4.3's search, exact preemption count).  The bounded DFS is
    exhaustive at low bounds where the SMT loop can only budget-out:
    when a probe exhausts rung ``c`` without a find, that is a *proof*
    that no schedule with ``c`` preemptions exists, and when it finds a
    validated schedule it often does so orders of magnitude faster than
    CEGAR refutation (the `aget` trace: seconds instead of half a
    minute, with a smaller — proven minimal — bound).

``cube``
    Disjoint prefix cubes over the largest reads-from exactly-one group,
    using the stable variable numbering from
    ``encoder.assign_atom_numbering``.  A cube enters the solver as
    **assumptions only**, never as clauses — learned clauses are derived
    by resolution from the clause database alone (assumption literals
    are never resolved out; they appear negated *inside* a learned
    clause), so everything a cube worker learns is valid for the whole
    formula and safe to share.  Clauses mentioning a worker's own cube
    variables are filtered out before export ("cube-guard-free"): inside
    the cube they are subsumed by the assumption, outside it they are
    rarely useful, so they are pure traffic.

``div``
    Diversified full-space workers (VSIDS decay / restart sequence /
    seeded phase saving).  They import everyone's short clauses and
    export their own.

Minimality protocol: every find is validated (the winner's context
switch count comes from the shared :class:`ScheduleValidator`, the same
metric every path uses).  A rung ``c`` is *resolved* when the portfolio
holds evidence the sequential loop would also have accepted to move past
``c``: an exhaustion proof (genval probe, a full-space SMT worker's
UNSAT round, or *every* cube exhausting the round), or the pristine
``seq`` replica closing round ``c`` without a find (identical budget
evidence to sequential).  The driver adopts the best find once every
rung below it is resolved, then cancels the remaining workers through
:meth:`WorkerPool.stop_remaining` — losers die within one poll interval.
With ``workers <= 1`` the driver calls the sequential loop directly and
is bit-for-bit identical to ``--solver smt-inc``.
"""

import functools
import time

from repro.constraints.model import RFChoice
from repro.constraints.stats import PortfolioStats, merge_sat_stats
from repro.solver.cdcl import CDCLSolver
from repro.solver.parallel import _search_round
from repro.solver.smt import ClapSmtSolver, SmtResult, solve_constraints_bounded

# Capped per-rung generate-and-validate probe budgets.  Small enough to
# lose quickly when the bounded space is huge, large enough to exhaust
# the low rungs of every Table-1 trace within a few seconds.
GENVAL_MAX_SCHEDULES = 2000
GENVAL_MAX_STEPS = 40000
GENVAL_MAX_GOOD = 4

# Diversified full-space SAT configurations (the ``div`` tasks).
DIV_VARIANTS = {
    1: {"var_decay": 0.85, "restart_base": 64, "phase_seed": 101},
    2: {"var_decay": 0.99, "restart_base": 256, "phase_seed": 202},
}

# Clause-exchange policy: short clauses only, every EXCHANGE_EVERY CEGAR
# iterations.
SHARE_MAX_LEN = 8
EXCHANGE_EVERY = 8

# Cube and diversified workers run with a fraction of the sequential
# round budget: they are opportunistic scouts and clause factories, and
# on a machine with fewer cores than tasks they must not starve the
# ``seq`` anchor whose evidence the verdict usually waits on.
SIDE_BUDGET_DIVISOR = 8


def derive_cubes(system, max_cubes=4):
    """Disjoint, exhaustive assumption cubes from the largest reads-from
    exactly-one group.

    Each cube asserts one candidate source of the chosen read (the
    group's pairwise at-most-one clauses make single-literal cubes
    disjoint; the exactly-one clause makes them exhaustive).  When the
    group is wider than ``max_cubes``, the tail collapses into one
    "rest" cube asserting that none of the head candidates fired.
    Returns a list of assumption-literal lists (possibly empty when the
    system has no usable group).
    """
    numbering = getattr(system, "atom_numbering", None) or {}
    best = None
    for group in system.exactly_one:
        vars_ = []
        usable = True
        for lit in group.lits:
            atom = lit.atom
            if not isinstance(atom, RFChoice) or not lit.positive:
                usable = False
                break
            var = numbering.get(atom)
            if var is None:
                usable = False
                break
            vars_.append(var)
        if usable and len(vars_) >= 2:
            if best is None or len(vars_) > len(best):
                best = vars_
    if not best:
        return []
    if len(best) <= max_cubes:
        return [[v] for v in best]
    head = best[: max_cubes - 1]
    cubes = [[v] for v in head]
    cubes.append([-v for v in head])
    return cubes


def _plan_tasks(system, max_cs, max_cubes=4):
    """The portfolio's task list, in dispatch priority order.

    ``seq`` first (the long pole starts immediately), then the cheap
    genval rung probes in ascending bound order, then cubes, then the
    diversified full-space workers.
    """
    tasks = [{"id": "seq", "kind": "seq"}]
    for c in range(max_cs + 1):
        tasks.append({"id": "genval-%d" % c, "kind": "genval", "rung": c})
    for i, cube in enumerate(derive_cubes(system, max_cubes=max_cubes)):
        tasks.append({"id": "cube-%d" % i, "kind": "cube", "lits": cube})
    for variant in sorted(DIV_VARIANTS):
        tasks.append({"id": "div-%d" % variant, "kind": "div", "variant": variant})
    return tasks


def _filter_faults(faults, task_id):
    """Faults that apply to ``task_id``.

    A fault spec may carry a ``"tasks"`` list restricting which portfolio
    tasks it fires in (e.g. slow down only ``cube-0``); without it the
    fault applies everywhere.
    """
    if not faults:
        return None
    out = {}
    for name, spec in faults.items():
        targets = spec.get("tasks") if isinstance(spec, dict) else None
        if targets is None or task_id in targets:
            out[name] = spec
    return out or None


class _PortfolioJob:
    """Picklable per-worker executor for every portfolio task kind.

    Carries the (read-only) constraint system; per-process heavyweight
    structures (the genval generator/validator) are built lazily after
    the worker process exists and cached on the instance, which is
    process-local from that point on.
    """

    def __init__(
        self,
        system,
        max_cs,
        max_iterations,
        max_seconds,
        round_iterations,
        genval_schedules=GENVAL_MAX_SCHEDULES,
        genval_steps=GENVAL_MAX_STEPS,
        genval_good=GENVAL_MAX_GOOD,
    ):
        self.system = system
        self.max_cs = max_cs
        self.max_iterations = max_iterations
        self.max_seconds = max_seconds
        self.round_iterations = round_iterations
        self.genval_schedules = genval_schedules
        self.genval_steps = genval_steps
        self.genval_good = genval_good
        self._gen = None
        self._val = None

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_gen"] = None
        state["_val"] = None
        return state

    def __call__(self, spec, attempt, channel):
        from repro.service.faults import maybe_kill_worker

        task = spec["task"]
        faults = spec.get("faults")
        maybe_kill_worker(faults, attempt)
        if task["kind"] == "genval":
            return self._run_genval(task, faults)
        return self._run_smt(task, channel, faults)

    # -- generate-and-validate rung probe --------------------------------

    def _run_genval(self, task, faults):
        from repro.service.faults import maybe_slow_solve

        maybe_slow_solve(faults)
        if self._gen is None:
            from repro.solver.schedule_gen import ScheduleGenerator
            from repro.solver.validate import ScheduleValidator

            self._gen = ScheduleGenerator(self.system)
            self._val = ScheduleValidator(self.system)
        start = time.monotonic()
        generated, good, exhausted = _search_round(
            self._gen,
            self._val,
            task["rung"],
            None,
            self.genval_schedules,
            self.genval_steps,
            self.genval_good,
        )
        return {
            "status": "done",
            "kind": "genval",
            "task": task["id"],
            "rung": task["rung"],
            "generated": generated,
            "good": [(list(s), cs) for s, cs in good],
            "exhausted": exhausted,
            "wall": time.monotonic() - start,
        }

    # -- SMT-family tasks (seq / div / cube) ------------------------------

    def _run_smt(self, task, channel, faults):
        from repro.service.faults import maybe_slow_solve

        kind = task["kind"]
        if kind == "div":
            sat_factory = functools.partial(
                CDCLSolver, **DIV_VARIANTS[task["variant"]]
            )
        else:
            sat_factory = None
        solver = ClapSmtSolver(self.system, sat_factory=sat_factory)
        n_atoms = len(getattr(self.system, "atom_numbering", None) or {})
        cube_lits = list(task.get("lits", ()))
        cube_vars = [abs(lit) for lit in cube_lits]
        # The pristine sequential replica must produce exactly the
        # sequential path's evidence, so it never imports; everyone else
        # both imports and exports.
        importing = kind != "seq"
        round_iterations = self.round_iterations
        if kind != "seq" and round_iterations is not None:
            round_iterations = max(64, round_iterations // SIDE_BUDGET_DIVISOR)
        state = {"cursor": 0, "seen": set(), "exported": 0, "imported": 0,
                 "ticks": 0}

        def tick(s):
            state["ticks"] += 1
            if channel is None or state["ticks"] % EXCHANGE_EVERY != 1:
                return
            clauses, state["cursor"] = s.sat.export_learned(
                state["cursor"],
                max_len=SHARE_MAX_LEN,
                max_var=n_atoms,
                exclude_vars=cube_vars,
            )
            fresh = [c for c in clauses if c not in state["seen"]]
            if fresh:
                state["seen"].update(fresh)
                state["exported"] += len(fresh)
                channel.publish({"task": task["id"], "clauses": fresh})
            if importing:
                for payload in channel.poll():
                    for clause in payload.get("clauses", ()):
                        key = tuple(clause)
                        if key in state["seen"]:
                            continue
                        state["seen"].add(key)
                        s.sat.add_clause(list(key))
                        state["imported"] += 1

        def on_round(entry):
            if channel is not None:
                channel.send(
                    {
                        "event": "round",
                        "task": task["id"],
                        "kind": kind,
                        "bound": entry["bound"],
                        "found": entry["found"],
                        "exhausted": entry["exhausted"],
                    }
                )

        maybe_slow_solve(faults)
        start = time.monotonic()
        result = solver.solve_bounded(
            self.max_cs,
            max_iterations=self.max_iterations,
            max_seconds=self.max_seconds,
            round_iterations=round_iterations,
            assume_lits=cube_lits,
            tick=tick,
            on_round=on_round,
        )
        return {
            "status": "done",
            "kind": kind,
            "task": task["id"],
            "ok": result.ok,
            "reason": result.reason,
            "schedule": [tuple(uid) for uid in result.schedule],
            "reads_from": dict(result.reads_from),
            "env": dict(result.env),
            "context_switches": result.context_switches,
            "iterations": result.iterations,
            "bound": result.bound,
            "round_stats": list(result.round_stats),
            "sat_stats": dict(result.sat_stats),
            "exported": state["exported"],
            "imported": state["imported"],
            "wall": time.monotonic() - start,
        }


def solve_constraints_portfolio(
    system,
    max_cs=4,
    workers=3,
    max_iterations=100000,
    max_seconds=None,
    round_iterations=2000,
    max_cubes=4,
    faults=None,
    poll_interval=0.05,
):
    """Race the portfolio; returns an :class:`SmtResult` whose
    ``portfolio`` dict carries the :class:`PortfolioStats` counters.

    ``workers <= 1`` degenerates to the sequential incremental loop —
    same process, same solver, bit-identical result — which is the
    determinism anchor the differential tests pin.
    """
    start = time.monotonic()
    if workers <= 1:
        result = solve_constraints_bounded(
            system,
            max_cs=max_cs,
            incremental=True,
            max_iterations=max_iterations,
            max_seconds=max_seconds,
            round_iterations=round_iterations,
        )
        result.portfolio = PortfolioStats(
            workers=1, tasks=1, winner="seq", winner_kind="seq"
        ).as_dict()
        return result

    from repro.service.pool import WorkerPool

    tasks = _plan_tasks(system, max_cs, max_cubes=max_cubes)
    n_cubes = sum(1 for t in tasks if t["kind"] == "cube")
    job = _PortfolioJob(
        system,
        max_cs=max_cs,
        max_iterations=max_iterations,
        max_seconds=max_seconds,
        round_iterations=round_iterations,
    )
    task_timeout = (max_seconds or 600.0) + 30.0
    specs = []
    for task in tasks:
        spec = {
            "entry_id": task["id"],
            "task": task,
            "timeout": task_timeout,
            "max_attempts": 2,
            "backoff": 0.05,
        }
        task_faults = _filter_faults(faults, task["id"])
        if task_faults:
            spec["faults"] = task_faults
        specs.append(spec)

    pool = WorkerPool(
        job, jobs=workers, poll_interval=poll_interval, channel=True
    )

    # Verdict state.  ``resolved`` holds rungs settled without an
    # acceptable find; ``proven`` the subset settled by exhaustion proof
    # rather than the sequential replica's budget evidence.
    best = {}
    resolved = set()
    proven = set()
    cube_exhausted = {}  # bound -> set of cube task ids

    def note_no_find(bound, by_proof):
        resolved.add(bound)
        if by_proof:
            proven.add(bound)

    def note_find(cs, task_id, kind, schedule, reads_from, env):
        if not best or cs < best["cs"]:
            best.update(
                cs=cs,
                task=task_id,
                kind=kind,
                schedule=[tuple(uid) for uid in schedule],
                reads_from=dict(reads_from),
                env=dict(env),
            )

    def maybe_finish():
        if best and all(c in resolved for c in range(best["cs"])):
            pool.stop_remaining()

    def on_message(payload):
        if payload.get("event") != "round":
            return
        kind = payload["kind"]
        bound = payload["bound"]
        if payload["found"]:
            return  # the schedule arrives with the worker's outcome
        if kind == "seq":
            note_no_find(bound, by_proof=payload["exhausted"])
        elif kind == "div" and payload["exhausted"]:
            note_no_find(bound, by_proof=True)
        elif kind == "cube" and payload["exhausted"]:
            done = cube_exhausted.setdefault(bound, set())
            done.add(payload["task"])
            if len(done) == n_cubes:
                note_no_find(bound, by_proof=True)
        maybe_finish()

    results = {}

    def on_outcome(index, outcome):
        task = tasks[index]
        results[task["id"]] = outcome
        if outcome.get("status") != "done":
            return
        kind = outcome["kind"]
        if kind == "genval":
            for schedule, cs in outcome["good"]:
                note_find(cs, task["id"], kind, schedule, {}, {})
            if not outcome["good"] and outcome["exhausted"]:
                note_no_find(outcome["rung"], by_proof=True)
        else:
            if outcome["ok"]:
                note_find(
                    outcome["context_switches"],
                    task["id"],
                    kind,
                    outcome["schedule"],
                    outcome["reads_from"],
                    outcome["env"],
                )
            else:
                # Re-derive rung evidence from the final round stats in
                # case a round event was lost with a dying worker.
                for entry in outcome["round_stats"]:
                    on_message(
                        {
                            "event": "round",
                            "task": task["id"],
                            "kind": kind,
                            "bound": entry["bound"],
                            "found": entry["found"],
                            "exhausted": entry["exhausted"],
                        }
                    )
        maybe_finish()

    pool.run(specs, on_outcome=on_outcome, on_message=on_message)

    wall = time.monotonic() - start
    smt_payloads = [
        r
        for r in results.values()
        if r.get("status") == "done" and r.get("kind") != "genval"
    ]
    iterations = sum(p.get("iterations", 0) for p in smt_payloads)
    sat_stats = merge_sat_stats([p.get("sat_stats") for p in smt_payloads])

    stats = PortfolioStats(
        workers=min(workers, len(specs)),
        tasks=len(tasks),
        cubes=n_cubes,
        cubes_solved=sum(
            1
            for t in tasks
            if t["kind"] == "cube"
            and results.get(t["id"], {}).get("status") == "done"
        ),
        clauses_exported=sum(p.get("exported", 0) for p in smt_payloads),
        clauses_imported=sum(p.get("imported", 0) for p in smt_payloads),
        rungs_resolved=len(resolved),
        cancelled=pool.counters["cancelled"],
        respawns=pool.counters["respawns"],
        winner=best.get("task", ""),
        winner_kind=best.get("kind", ""),
    )

    if best:
        seq_payload = results.get("seq", {})
        if best["task"] == "seq" and seq_payload.get("status") == "done":
            round_stats = list(seq_payload["round_stats"])
        else:
            # Synthesize the ladder the verdict actually rests on: every
            # rung below the winner closed without a find (``exhausted``
            # records whether that closure was a proof), the winner's
            # rung closed with the find.
            round_stats = [
                {
                    "bound": c,
                    "wall": 0.0,
                    "iterations": 0,
                    "found": False,
                    "exhausted": c in proven,
                    "synthesized": True,
                }
                for c in range(best["cs"])
            ]
            round_stats.append(
                {
                    "bound": best["cs"],
                    "wall": wall,
                    "iterations": iterations,
                    "found": True,
                    "exhausted": False,
                    "synthesized": True,
                }
            )
        result = SmtResult(
            True,
            schedule=[tuple(uid) for uid in best["schedule"]],
            reads_from=best["reads_from"],
            env=best["env"],
            context_switches=best["cs"],
            iterations=iterations,
            solve_time=wall,
            bound=best["cs"],
            round_stats=round_stats,
            sat_stats=sat_stats,
        )
        result.portfolio = stats.as_dict()
        return result

    seq_payload = results.get("seq", {})
    if seq_payload.get("status") == "done":
        result = SmtResult(
            False,
            reason=seq_payload["reason"],
            iterations=iterations,
            solve_time=wall,
            round_stats=list(seq_payload["round_stats"]),
            sat_stats=sat_stats,
        )
    else:
        result = SmtResult(
            False,
            reason="portfolio found no schedule within %d context switches"
            % max_cs,
            iterations=iterations,
            solve_time=wall,
            sat_stats=sat_stats,
        )
    result.portfolio = stats.as_dict()
    return result
