"""Constraint solvers for CLAP.

Two engines, matching the paper's Section 4:

* :mod:`repro.solver.smt` — a monolithic CDCL(T) solver (the stand-in for
  STP): a CDCL SAT core over reads-from/signal-wait choices and order
  atoms, an order theory (cycle detection over strict precedence atoms),
  and a lazy value theory that evaluates ``Fpath ∧ Fbug`` once reads-from
  choices pin every read's value.
* :mod:`repro.solver.parallel` — the generate-and-validate algorithm of
  Section 4.3: preemption-bounded schedule generation (stacks for SC,
  SAP-trees for TSO/PSO) with per-candidate linear validation, run either
  sequentially or on a worker pool.
"""

from repro.solver.cdcl import CDCLSolver, SAT, UNSAT
from repro.solver.smt import SmtResult, solve_constraints
from repro.solver.validate import ScheduleValidator, validate_schedule
from repro.solver.parallel import (
    GenerateValidateResult,
    solve_generate_validate,
)

__all__ = [
    "CDCLSolver",
    "SAT",
    "UNSAT",
    "SmtResult",
    "solve_constraints",
    "ScheduleValidator",
    "validate_schedule",
    "GenerateValidateResult",
    "solve_generate_validate",
]
