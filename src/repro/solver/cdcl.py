"""An incremental CDCL SAT solver (conflict-driven clause learning).

This is the boolean core of the CLAP solver stack — the role STP's SAT
engine plays in the paper's prototype.  Standard modern architecture,
tuned for the offline phase's re-solve-per-preemption-bound loop:

* two-watched-literal unit propagation over flat per-literal watch lists,
* first-UIP conflict analysis with non-chronological backjumping,
* VSIDS activity with exponential decay and an indexed binary max-heap
  (decisions are O(log n), not a linear scan over all variables),
* Luby-sequence restarts,
* phase saving,
* an assumption interface — ``solve(assumptions=[...])`` searches under
  temporary unit hypotheses without committing them, which is what lets
  the bound loop retract "needs more than c switches" blocking clauses
  when it moves from bound ``c`` to ``c + 1`` while keeping every learned
  clause,
* per-phase counters (:class:`~repro.constraints.stats.SolverPhaseStats`):
  propagations, conflicts, decisions, restarts, learned clauses, and
  *reuse hits* — propagations whose reason clause was learned in an
  earlier ``solve()`` call, the direct measure of incremental reuse.

Variables are positive integers; a literal is ``+v`` or ``-v``.  Clauses
may be added between ``solve()`` calls; learned clauses are kept.  An
UNSAT answer under assumptions does *not* poison the solver — only a
conflict derived at decision level 0 is permanent.

Internally a literal ``l`` indexes flat lists at ``(var << 1) | (l < 0)``
so the hot loops touch Python lists, not dicts keyed by signed ints.
"""

from repro.constraints.stats import SolverPhaseStats

SAT = "sat"
UNSAT = "unsat"

_RESTART_BASE = 100  # conflicts for the first Luby restart interval


def luby(i):
    """The ``i``-th term (1-based) of the Luby restart sequence
    1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …"""
    k = 1
    while (1 << (k + 1)) - 1 <= i:
        k += 1
    while (1 << k) - 1 != i:
        i -= (1 << k) - 1
        k = 1
        while (1 << (k + 1)) - 1 <= i:
            k += 1
    return 1 << (k - 1)


class _VarHeap:
    """Indexed binary max-heap over variable activities.

    ``pos[var]`` is the variable's slot in ``heap`` (-1 when absent), so
    activity bumps can sift a resident variable up in O(log n).  Assigned
    variables may linger in the heap; the decision loop pops until it
    finds an unassigned one (MiniSat's lazy scheme).
    """

    __slots__ = ("heap", "pos", "activity")

    def __init__(self, activity):
        self.heap = []
        self.pos = [-1]  # var 0 unused
        self.activity = activity  # shared list, indexed by var

    def register(self, var):
        self.pos.append(-1)
        self.insert(var)

    def __bool__(self):
        return bool(self.heap)

    def insert(self, var):
        if self.pos[var] >= 0:
            return
        self.heap.append(var)
        self.pos[var] = len(self.heap) - 1
        self._sift_up(len(self.heap) - 1)

    def pop(self):
        heap, pos = self.heap, self.pos
        top = heap[0]
        pos[top] = -1
        last = heap.pop()
        if heap:
            heap[0] = last
            pos[last] = 0
            self._sift_down(0)
        return top

    def bumped(self, var):
        """Restore heap order after ``activity[var]`` increased."""
        if self.pos[var] >= 0:
            self._sift_up(self.pos[var])

    def _sift_up(self, i):
        heap, pos, act = self.heap, self.pos, self.activity
        var = heap[i]
        key = act[var]
        while i > 0:
            parent = (i - 1) >> 1
            pvar = heap[parent]
            if act[pvar] >= key:
                break
            heap[i] = pvar
            pos[pvar] = i
            i = parent
        heap[i] = var
        pos[var] = i

    def _sift_down(self, i):
        heap, pos, act = self.heap, self.pos, self.activity
        n = len(heap)
        var = heap[i]
        key = act[var]
        while True:
            child = 2 * i + 1
            if child >= n:
                break
            right = child + 1
            if right < n and act[heap[right]] > act[heap[child]]:
                child = right
            cvar = heap[child]
            if act[cvar] <= key:
                break
            heap[i] = cvar
            pos[cvar] = i
            i = child
        heap[i] = var
        pos[var] = i


class CDCLSolver:
    """The solver.  The diversification knobs (``var_decay``,
    ``restart_base``, ``phase_seed``) exist for portfolio workers: a
    seeded phase RNG flips initial saved phases, a different decay skews
    VSIDS, a different restart base shifts the Luby schedule.  All three
    default to the historical values, so a bare ``CDCLSolver()`` is
    bit-identical to earlier revisions.
    """

    def __init__(self, var_decay=0.95, restart_base=_RESTART_BASE,
                 phase_seed=None):
        self.num_vars = 0
        self.clauses = []  # each clause: list of lits
        self.clause_birth = []  # solve() call that created the clause
        self.clause_learned = []  # True for learned clauses
        self.watches = [[], []]  # (var << 1) | (lit < 0) -> clause indices
        self.assign = [None]  # var -> True/False/None (index 0 unused)
        self.level = [0]  # var -> decision level
        self.reason = [None]  # var -> clause index (None for decisions)
        self.trail = []  # assigned lits in order
        self.trail_lim = []  # trail length at each decision level
        self.activity = [0.0]
        self.var_inc = 1.0
        self.var_decay = var_decay
        self.restart_base = restart_base
        if phase_seed is None:
            self._phase_rng = None
        else:
            import random

            self._phase_rng = random.Random(phase_seed)
        self.phase = [False]  # saved phases
        self.order = _VarHeap(self.activity)
        self.propagate_head = 0
        self._unsat = False  # a level-0 contradiction was derived
        self.stats = SolverPhaseStats()

    # ------------------------------------------------------------------ #

    def new_var(self):
        self.num_vars += 1
        var = self.num_vars
        self.assign.append(None)
        self.level.append(0)
        self.reason.append(None)
        self.activity.append(0.0)
        if self._phase_rng is None:
            self.phase.append(False)
        else:
            self.phase.append(self._phase_rng.random() < 0.5)
        self.watches.append([])
        self.watches.append([])
        self.order.register(var)
        return var

    def ensure_var(self, var):
        while self.num_vars < var:
            self.new_var()

    def add_clause(self, lits):
        """Add a clause; may be called between solve() calls."""
        lits = list(dict.fromkeys(lits))  # dedupe, keep order
        for lit in lits:
            self.ensure_var(abs(lit))
        if any(-lit in lits for lit in lits):
            return  # tautology
        # Must add at level 0: backtrack all decisions first.
        self._backtrack(0)
        # Remove literals already false at level 0; satisfied -> skip.
        fixed = []
        for lit in lits:
            value = self._value(lit)
            if value is True:
                return
            if value is None:
                fixed.append(lit)
        lits = fixed
        if not lits:
            self._unsat = True
            return
        if len(lits) == 1:
            if not self._enqueue(lits[0], None):
                self._unsat = True
            return
        self._attach(lits, learned=False)

    def _attach(self, lits, learned):
        index = len(self.clauses)
        self.clauses.append(lits)
        self.clause_birth.append(self.stats.solve_calls)
        self.clause_learned.append(learned)
        self.watches[(abs(lits[0]) << 1) | (lits[0] < 0)].append(index)
        self.watches[(abs(lits[1]) << 1) | (lits[1] < 0)].append(index)
        return index

    # ------------------------------------------------------------------ #

    def _value(self, lit):
        value = self.assign[abs(lit)]
        if value is None:
            return None
        return value if lit > 0 else not value

    def _enqueue(self, lit, reason_idx):
        var = abs(lit)
        value = self.assign[var]
        if value is not None:
            return value is (lit > 0)
        self.assign[var] = lit > 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason_idx
        self.trail.append(lit)
        return True

    def _propagate(self):
        """Unit propagation; returns a conflicting clause index or None."""
        assign = self.assign
        clauses = self.clauses
        watches = self.watches
        trail = self.trail
        stats = self.stats
        solve_call = stats.solve_calls
        clause_birth = self.clause_birth
        clause_learned = self.clause_learned
        while self.propagate_head < len(trail):
            lit = trail[self.propagate_head]
            self.propagate_head += 1
            stats.propagations += 1
            false_lit = -lit
            widx = (abs(false_lit) << 1) | (false_lit < 0)
            watching = watches[widx]
            if not watching:
                continue
            keep = []
            i = 0
            n_watching = len(watching)
            while i < n_watching:
                ci = watching[i]
                i += 1
                clause = clauses[ci]
                # Ensure false_lit is at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                value = assign[abs(first)]
                if value is not None and value is (first > 0):
                    keep.append(ci)
                    continue
                # Find a new literal to watch.
                found = False
                for k in range(2, len(clause)):
                    other = clause[k]
                    value = assign[abs(other)]
                    if value is None or value is (other > 0):
                        clause[1], clause[k] = other, clause[1]
                        watches[(abs(other) << 1) | (other < 0)].append(ci)
                        found = True
                        break
                if found:
                    continue
                keep.append(ci)
                # Clause is unit or conflicting.
                if not self._enqueue(first, ci):
                    keep.extend(watching[i:])
                    watches[widx] = keep
                    return ci
                if clause_learned[ci] and clause_birth[ci] != solve_call:
                    stats.reuse_hits += 1
            watches[widx] = keep
        return None

    # ------------------------------------------------------------------ #

    def _bump(self, var):
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            activity = self.activity
            for v in range(1, self.num_vars + 1):
                activity[v] *= 1e-100
            self.var_inc *= 1e-100
        self.order.bumped(var)

    def _decay(self):
        self.var_inc /= self.var_decay

    def _analyze(self, conflict_idx):
        """First-UIP learning.  Returns (learned_clause, backjump_level)."""
        learned = []
        seen = set()
        counter = 0
        pivot = None  # the implied literal whose reason we resolve with
        clause = self.clauses[conflict_idx]
        index = len(self.trail) - 1
        current_level = len(self.trail_lim)
        level = self.level
        while True:
            for lit in clause:
                if pivot is not None and lit == pivot:
                    continue  # skip the pivot's own occurrence in its reason
                var = abs(lit)
                if var in seen or level[var] == 0:
                    continue
                seen.add(var)
                self._bump(var)
                if level[var] == current_level:
                    counter += 1
                else:
                    learned.append(lit)
            # Find next current-level literal on the trail to resolve out.
            while abs(self.trail[index]) not in seen:
                index -= 1
            pivot = self.trail[index]
            var_p = abs(pivot)
            seen.discard(var_p)
            index -= 1
            counter -= 1
            if counter == 0:
                break
            clause = self.clauses[self.reason[var_p]]
        learned.insert(0, -pivot)
        if len(learned) == 1:
            return learned, 0
        backjump = max(level[abs(l)] for l in learned[1:])
        # Put a literal of the backjump level at position 1 for watching.
        for k in range(1, len(learned)):
            if level[abs(learned[k])] == backjump:
                learned[1], learned[k] = learned[k], learned[1]
                break
        return learned, backjump

    def _backtrack(self, target_level):
        if len(self.trail_lim) <= target_level:
            return
        limit = self.trail_lim[target_level]
        assign = self.assign
        phase = self.phase
        reason = self.reason
        order = self.order
        for lit in self.trail[limit:]:
            var = abs(lit)
            phase[var] = assign[var]
            assign[var] = None
            reason[var] = None
            order.insert(var)
        del self.trail[limit:]
        del self.trail_lim[target_level:]
        if self.propagate_head > len(self.trail):
            self.propagate_head = len(self.trail)

    def _decide(self):
        assign = self.assign
        order = self.order
        while order:
            var = order.pop()
            if assign[var] is None:
                self.stats.decisions += 1
                self.trail_lim.append(len(self.trail))
                self._enqueue(var if self.phase[var] else -var, None)
                return True
        return False

    # ------------------------------------------------------------------ #

    def solve(self, assumptions=(), max_conflicts=None):
        """Run CDCL search under the given assumption literals.

        Returns SAT, UNSAT, or None when ``max_conflicts`` is hit.  UNSAT
        with assumptions means "unsatisfiable *under these assumptions*";
        the solver stays usable and keeps everything it learned.  Only a
        level-0 contradiction (UNSAT with no assumptions involved) is
        permanent.
        """
        if self._unsat:
            return UNSAT
        self.stats.solve_calls += 1
        self._backtrack(0)
        assumptions = list(assumptions)
        for lit in assumptions:
            self.ensure_var(abs(lit))
        n_assumptions = len(assumptions)
        conflicts = 0
        restart_count = 0
        restart_number = 1
        restart_limit = self.restart_base * luby(restart_number)
        while True:
            conflict = self._propagate()
            if conflict is not None:
                conflicts += 1
                restart_count += 1
                self.stats.conflicts += 1
                if not self.trail_lim:
                    self._unsat = True
                    return UNSAT
                learned, backjump = self._analyze(conflict)
                self._backtrack(backjump)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        self._unsat = True
                        return UNSAT
                else:
                    index = self._attach(learned, learned=True)
                    self._enqueue(learned[0], index)
                self.stats.learned += 1
                self.stats.learned_literals += len(learned)
                self._decay()
                if max_conflicts is not None and conflicts >= max_conflicts:
                    self._backtrack(0)
                    return None
                if restart_count >= restart_limit:
                    restart_count = 0
                    restart_number += 1
                    restart_limit = self.restart_base * luby(restart_number)
                    self.stats.restarts += 1
                    self._backtrack(0)
            else:
                # Re-establish assumption levels 1..n, then decide.
                lvl = len(self.trail_lim)
                pending = None
                failed = False
                while lvl < n_assumptions:
                    lit = assumptions[lvl]
                    value = self._value(lit)
                    if value is True:
                        # Already implied: give it its own (empty) level so
                        # level bookkeeping matches MiniSat's scheme.
                        self.trail_lim.append(len(self.trail))
                        lvl += 1
                    elif value is False:
                        failed = True
                        break
                    else:
                        pending = lit
                        break
                if failed:
                    # The assumption is falsified by the clauses plus the
                    # earlier assumptions: UNSAT under assumptions only.
                    self._backtrack(0)
                    return UNSAT
                if pending is not None:
                    self.trail_lim.append(len(self.trail))
                    self._enqueue(pending, None)
                    continue
                if not self._decide():
                    return SAT

    def export_learned(self, cursor=0, max_len=8, max_var=None,
                       exclude_vars=()):
        """Learned clauses attached since ``cursor``, for sharing.

        Returns ``(clauses, new_cursor)``.  Learned clauses are derived
        by resolution over database clauses only — assumption literals
        are never resolved out, they appear negated *inside* the learned
        clause — so every exported clause is valid for the whole
        formula, not just under this solver's assumptions.  The filters
        are usefulness measures: ``max_len`` keeps traffic short,
        ``max_var`` drops clauses touching solver-local variables (bound
        ladder guards, block guards) that other workers number
        differently, and ``exclude_vars`` drops clauses mentioning this
        worker's own cube variables, which are tautological noise inside
        the cube and rarely help outside it.
        """
        exported = []
        exclude = set(exclude_vars)
        for idx in range(cursor, len(self.clauses)):
            if not self.clause_learned[idx]:
                continue
            lits = self.clauses[idx]
            if len(lits) > max_len:
                continue
            if max_var is not None and any(abs(l) > max_var for l in lits):
                continue
            if exclude and any(abs(l) in exclude for l in lits):
                continue
            exported.append(tuple(lits))
        return exported, len(self.clauses)

    def model(self):
        """Assignment after SAT: {var: bool} (level-0 units included)."""
        assign = self.assign
        return {
            var: assign[var]
            for var in range(1, self.num_vars + 1)
            if assign[var] is not None
        }
