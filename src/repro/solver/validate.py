"""Concrete schedule validation.

A candidate schedule (a total order of all SAP uids) is checked by one
linear scan that *simulates* it — this is the cheap per-candidate check of
the paper's generate-and-validate algorithm (Section 4.3), and also the
final sanity gate of the CDCL(T) solver:

* reads return the most recent write's concrete value (Frw semantics by
  construction);
* writes evaluate their symbolic value expression with the read values so
  far (a KeyError means the schedule ran a write before the reads its
  value needs — invalid);
* every path condition must hold as soon as its thread passes the
  condition's position (Fpath), and the bug predicate must hold at the end
  (Fbug);
* lock/unlock, fork/start, exit/join and wait/signal feasibility mirror
  the deterministic replayer exactly (Fso) — in particular a signal wakes
  the *parked* waiter whose wait SAP comes earliest in the remaining
  schedule, which is precisely the replayer's wake policy.
"""

from dataclasses import dataclass, field

from repro.runtime import events as ev
from repro.runtime.errors import MiniRuntimeError
from repro.analysis.symbolic import sym_eval
from repro.constraints.context_switch import count_context_switches


@dataclass
class ValidationResult:
    ok: bool
    reason: str = ""
    env: dict = field(default_factory=dict)  # sym name -> concrete value
    reads_from: dict = field(default_factory=dict)  # read uid -> write uid/INIT
    context_switches: int = -1

    def __bool__(self):
        return self.ok


class ScheduleValidator:
    """Validates candidate schedules against one ConstraintSystem."""

    def __init__(self, system):
        self.system = system
        # thread -> {after_index: [PathCondition]}
        self.cond_index = {}
        for cond in system.conditions:
            self.cond_index.setdefault(cond.thread, {}).setdefault(
                cond.after_index, []
            ).append(cond)
        # fork SAP uid per child thread, exit SAP uid per thread.
        self.fork_of = {}
        self.exit_of = {}
        for summary in system.summaries.values():
            for sap in summary.saps:
                if sap.kind == ev.FORK:
                    self.fork_of[sap.addr] = sap.uid
                elif sap.kind == ev.EXIT:
                    self.exit_of[sap.thread] = sap.uid

    def validate(self, schedule, check_complete=True):
        system = self.system
        if check_complete:
            if len(schedule) != len(system.saps) or set(schedule) != set(
                system.saps
            ):
                return ValidationResult(False, "schedule does not cover all SAPs")
        position = {uid: i for i, uid in enumerate(schedule)}
        memory = dict(system.initial_values)
        env = {}
        reads_from = {}
        last_writer = {}
        locks = {}  # mutex -> thread or None
        done = set()  # processed uids
        parked = {}  # thread -> True once its wait-release ran, until woken
        signaled = set()  # threads woken by a signal, pending their wait SAP

        for i, uid in enumerate(schedule):
            sap = system.saps.get(uid)
            if sap is None:
                return ValidationResult(False, "unknown SAP %r" % (uid,))
            thread = sap.thread
            kind = sap.kind
            if kind == ev.READ:
                value = memory.get(sap.addr)
                if value is None:
                    return ValidationResult(False, "read of unknown addr %r" % (sap.addr,))
                env[sap.value.name] = value
                reads_from[uid] = last_writer.get(sap.addr, "<init>")
            elif kind == ev.WRITE:
                try:
                    value = sym_eval(sap.value, env)
                except KeyError:
                    return ValidationResult(
                        False, "write %r runs before its dependent reads" % (uid,)
                    )
                except MiniRuntimeError as exc:
                    return ValidationResult(False, "write %r: %s" % (uid, exc))
                memory[sap.addr] = value
                last_writer[sap.addr] = uid
            elif kind == ev.LOCK:
                if locks.get(sap.addr) is not None:
                    return ValidationResult(
                        False, "lock %r taken while held" % (sap.addr,)
                    )
                locks[sap.addr] = thread
            elif kind == ev.UNLOCK:
                if locks.get(sap.addr) != thread:
                    return ValidationResult(
                        False, "unlock %r by non-owner" % (sap.addr,)
                    )
                locks[sap.addr] = None
                # If this unlock is a wait-release (next same-thread SAP is
                # the wait), the thread parks on the condvar now.
                nxt = system.saps.get((thread, sap.index + 1))
                if nxt is not None and nxt.kind == ev.WAIT:
                    parked[thread] = nxt
            elif kind == ev.WAIT:
                if thread not in signaled:
                    return ValidationResult(
                        False, "wait %r runs without a wake-up signal" % (uid,)
                    )
                signaled.discard(thread)
            elif kind in (ev.SIGNAL, ev.BROADCAST):
                waiters = [
                    w
                    for t, w in parked.items()
                    if w is not None and w.addr == sap.addr
                ]
                if kind == ev.BROADCAST:
                    chosen = waiters
                else:
                    # Replayer policy: wake the parked waiter whose wait SAP
                    # comes earliest in the remaining schedule.
                    waiters.sort(key=lambda w: position.get(w.uid, len(schedule)))
                    chosen = waiters[:1]
                for w in chosen:
                    parked[w.thread] = None
                    signaled.add(w.thread)
            elif kind == ev.START:
                fork = self.fork_of.get(thread)
                if fork is not None and fork not in done:
                    return ValidationResult(
                        False, "thread %s starts before its fork" % thread
                    )
            elif kind == ev.JOIN:
                exit_uid = self.exit_of.get(sap.addr)
                if exit_uid is None:
                    if sap.addr not in system.preexited:
                        return ValidationResult(
                            False, "join of %s with no exit" % sap.addr
                        )
                elif exit_uid not in done:
                    return ValidationResult(
                        False, "join of %s before its exit" % sap.addr
                    )
            # FORK and EXIT need no feasibility check of their own.
            done.add(uid)
            # Path conditions positioned after this SAP.
            for cond in self.cond_index.get(thread, {}).get(sap.index, ()):
                try:
                    value = sym_eval(cond.expr, env)
                except KeyError:
                    return ValidationResult(
                        False,
                        "condition after %r references unassigned reads" % (uid,),
                    )
                except MiniRuntimeError as exc:
                    return ValidationResult(False, "condition: %s" % exc)
                if not value:
                    return ValidationResult(
                        False, "path condition after %r violated" % (uid,)
                    )

        for bug_expr in self.system.bug_exprs:
            try:
                value = sym_eval(bug_expr, env)
            except (KeyError, MiniRuntimeError) as exc:
                return ValidationResult(False, "bug predicate: %s" % exc)
            if not value:
                return ValidationResult(False, "bug predicate not satisfied")

        switches = count_context_switches(schedule, self.system.summaries)
        return ValidationResult(
            True, env=env, reads_from=reads_from, context_switches=switches
        )


def validate_schedule(system, schedule, check_complete=True):
    """One-shot helper around :class:`ScheduleValidator`."""
    return ScheduleValidator(system).validate(schedule, check_complete)
