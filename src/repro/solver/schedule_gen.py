"""Preemption-bounded schedule generation (paper Section 4.3).

The search enumerates schedules whose number of *interleaved segments* —
the paper's Section 4.2 measure of preemptive context switches — is at
most ``c``:

* each thread's SAPs form a partial order: the program-order *stack* for
  SC, the *SAP-tree* (the per-thread Fmo DAG: read chains, write chains,
  fences, same-address adjacency) for TSO/PSO; only minimal elements may
  be popped, so every generated schedule satisfies Fmo by construction;
* each thread's SAP list is split into *segments* at must-interleave
  operations (wait, join, yield, fork, start, exit); a segment becomes
  *interleaved* the moment another thread pops a SAP while the segment is
  open (some but not all of its SAPs popped).  Interleaving a segment
  consumes one unit of the budget; branches that would exceed it are
  pruned — so the generator's bound equals by construction the
  ``count_context_switches`` number the validator reports;
* under TSO/PSO a thread may have several minimal SAPs (a buffered store
  can drain now or later); each choice forks a branch at no cost — these
  are reorderings, not context switches.

Two engineering refinements over the paper's description (documented in
DESIGN.md):

* **structural pruning** — lock/fork/join/wait enabledness is tracked
  while popping, so structurally infeasible schedules are never emitted;
* **value-guided pruning** — read values and path conditions are evaluated
  *during* generation (the paper validates complete candidates only);
  a branch dies at the first violated branch condition instead of
  generating an exponential family of doomed completions.  The final bug
  predicate is still checked on complete schedules, so the generated /
  good split of Table 3 remains meaningful: "generated" counts complete
  path-consistent schedules, "good" the ones that also manifest the bug.

The CSP triple (t1, k, t2) — "t1's open segment is first interleaved by
``t2`` popping its k-th SAP" — is the *parallel partitioning key*: giving
each worker a distinct first-interleaving triple partitions the bounded
search space like the paper's per-CSP-set processes.
"""

import random
from dataclasses import dataclass

from repro.runtime import events as ev
from repro.runtime.errors import MiniRuntimeError
from repro.analysis.symbolic import sym_eval
from repro.constraints.context_switch import thread_segments


@dataclass
class _GenState:
    ready: dict  # thread -> set of that thread's ready uids
    indeg: dict  # uid -> remaining in-degree (within its thread)
    popped_count: dict  # thread -> number of SAPs popped
    locks: dict  # mutex -> owning thread or None
    parked: dict  # thread -> parked wait sap or None
    signaled: set  # threads woken, pending their wait SAP
    done: set  # popped uids
    schedule: list
    current: str
    # Segment bookkeeping.
    seg_counts: dict  # (thread, seg_id) -> SAPs popped from that segment
    open_segment: dict  # thread -> open segment id or None
    marked: dict  # thread -> set of segment ids already charged
    interleaved: int
    first_mark: tuple | None  # (t1, k, t2) of the first charging event
    memory: dict  # addr -> concrete value (value-guided mode)
    env: dict  # sym name -> concrete value

    def clone(self):
        return _GenState(
            ready={t: set(s) for t, s in self.ready.items()},
            indeg=dict(self.indeg),
            popped_count=dict(self.popped_count),
            locks=dict(self.locks),
            parked=dict(self.parked),
            signaled=set(self.signaled),
            done=set(self.done),
            schedule=list(self.schedule),
            current=self.current,
            seg_counts=dict(self.seg_counts),
            open_segment=dict(self.open_segment),
            marked={t: set(m) for t, m in self.marked.items()},
            interleaved=self.interleaved,
            first_mark=self.first_mark,
            memory=dict(self.memory),
            env=dict(self.env),
        )


class ScheduleGenerator:
    def __init__(self, system, value_guided=True):
        self.system = system
        self.value_guided = value_guided
        self.threads = sorted(system.summaries)
        self.sap_count = len(system.saps)
        self.succ = {uid: [] for uid in system.saps}
        base_indeg = {uid: 0 for uid in system.saps}
        for thread, edges in system.thread_order.items():
            for a, b in edges:
                self.succ[a].append(b)
                base_indeg[b] += 1
        self.base_indeg = base_indeg
        self.fork_of = {}
        self.exit_of = {}
        for summary in system.summaries.values():
            for sap in summary.saps:
                if sap.kind == ev.FORK:
                    self.fork_of[sap.addr] = sap.uid
                elif sap.kind == ev.EXIT:
                    self.exit_of[sap.thread] = sap.uid
        # Segment map: uid -> segment id; (thread, seg id) -> length.
        self.segment_of = {}
        self.segment_len = {}
        for thread, summary in system.summaries.items():
            for seg_id, seg in enumerate(thread_segments(summary.saps)):
                self.segment_len[(thread, seg_id)] = len(seg)
                for uid in seg:
                    self.segment_of[uid] = seg_id
        # thread -> {sap index: [PathCondition]} for value-guided pruning.
        self.cond_index = {}
        for cond in system.conditions:
            self.cond_index.setdefault(cond.thread, {}).setdefault(
                cond.after_index, []
            ).append(cond)

    # ------------------------------------------------------------------ #

    def initial_state(self):
        ready = {t: set() for t in self.threads}
        for uid, deg in self.base_indeg.items():
            if deg == 0:
                ready[uid[0]].add(uid)
        return _GenState(
            ready=ready,
            indeg=dict(self.base_indeg),
            popped_count={t: 0 for t in self.threads},
            locks={},
            parked={t: None for t in self.threads},
            signaled=set(),
            done=set(),
            schedule=[],
            current="1",
            seg_counts={},
            open_segment={t: None for t in self.threads},
            marked={t: set() for t in self.threads},
            interleaved=0,
            first_mark=None,
            memory=dict(self.system.initial_values),
            env={},
        )

    def _enabled(self, state, uid):
        sap = self.system.saps[uid]
        kind = sap.kind
        if kind == ev.LOCK:
            return state.locks.get(sap.addr) is None
        if kind == ev.WAIT:
            return sap.thread in state.signaled
        if kind == ev.START:
            # No fork in the system means main or a checkpoint-resumed
            # thread: its (re)start is unconstrained.
            fork = self.fork_of.get(sap.thread)
            return fork is None or fork in state.done
        if kind == ev.JOIN:
            exit_uid = self.exit_of.get(sap.addr)
            if exit_uid is None:
                return sap.addr in self.system.preexited
            return exit_uid in state.done
        return True

    def _enabled_saps(self, state, thread):
        return sorted(uid for uid in state.ready[thread] if self._enabled(state, uid))

    def _charge(self, state, thread, budget):
        """Charge other threads' open segments for a pop by ``thread``.
        Returns False when the interleaving budget would be exceeded."""
        for other in self.threads:
            if other == thread:
                continue
            seg_id = state.open_segment.get(other)
            if seg_id is None or seg_id in state.marked[other]:
                continue
            state.marked[other].add(seg_id)
            state.interleaved += 1
            if state.first_mark is None:
                state.first_mark = (other, state.popped_count[thread] + 1, thread)
            if state.interleaved > budget:
                return False
        return True

    def _pop(self, state, uid, budget, wake=None):
        """Charge, then apply one SAP.  Returns False when the budget or
        value-guided pruning kills the branch."""
        sap = self.system.saps[uid]
        thread = sap.thread
        if not self._charge(state, thread, budget):
            return False
        state.current = thread
        state.ready[thread].discard(uid)
        state.done.add(uid)
        state.schedule.append(uid)
        state.popped_count[thread] += 1
        for nxt in self.succ[uid]:
            state.indeg[nxt] -= 1
            if state.indeg[nxt] == 0:
                state.ready[nxt[0]].add(nxt)
        seg_id = self.segment_of[uid]
        key = (thread, seg_id)
        n = state.seg_counts.get(key, 0) + 1
        state.seg_counts[key] = n
        state.open_segment[thread] = None if n >= self.segment_len[key] else seg_id
        kind = sap.kind
        if kind == ev.READ:
            if self.value_guided:
                state.env[sap.value.name] = state.memory[sap.addr]
        elif kind == ev.WRITE:
            if self.value_guided:
                try:
                    state.memory[sap.addr] = sym_eval(sap.value, state.env)
                except (KeyError, MiniRuntimeError):
                    return False
        elif kind == ev.LOCK:
            state.locks[sap.addr] = thread
        elif kind == ev.UNLOCK:
            state.locks[sap.addr] = None
            nxt = self.system.saps.get((thread, sap.index + 1))
            if nxt is not None and nxt.kind == ev.WAIT:
                state.parked[thread] = nxt
        elif kind == ev.WAIT:
            state.signaled.discard(thread)
        elif kind == ev.BROADCAST:
            for t, w in list(state.parked.items()):
                if w is not None and w.addr == sap.addr:
                    state.parked[t] = None
                    state.signaled.add(t)
        elif kind == ev.SIGNAL:
            if wake is not None:
                state.parked[wake] = None
                state.signaled.add(wake)
        if self.value_guided:
            for cond in self.cond_index.get(thread, {}).get(sap.index, ()):
                try:
                    if not sym_eval(cond.expr, state.env):
                        return False
                except (KeyError, MiniRuntimeError):
                    return False
        return True

    def _signal_wake_choices(self, state, sap):
        """Parked waiters a plain signal could wake (None = signal lost)."""
        waiters = sorted(
            t
            for t, w in state.parked.items()
            if w is not None and w.addr == sap.addr
        )
        return waiters if waiters else [None]

    # ------------------------------------------------------------------ #

    def generate(
        self,
        max_preemptions=0,
        exact_preemptions=False,
        first_preemption=None,
        max_schedules=None,
        max_steps=None,
        order_seed=None,
        stats=None,
    ):
        """Yield complete schedules with at most ``max_preemptions``
        interleaved segments (exactly that many if ``exact_preemptions``).

        ``first_preemption`` — an optional triple (t1, k, t2) pinning the
        first segment-interleaving event (t2's k-th pop charges t1's open
        segment); used to partition the bounded search across parallel
        workers.  ``max_steps`` bounds total pops across all branches.
        ``order_seed`` randomizes the exploration order at every node:
        distinct seeds give independent probes of the bounded space, which
        is how the parallel driver samples large traces.
        ``stats`` (a dict, optional) receives ``steps`` and ``capped`` —
        whether the walk ended because a budget was hit; an uncapped walk
        with no yields means the bounded space is exhausted, so further
        probes of the same bound are pointless.
        """
        rng = random.Random(order_seed) if order_seed is not None else None
        if stats is not None:
            stats["steps"] = 0
            stats["capped"] = False
        produced = 0
        steps = 0
        # Distinct branches can converge on the same SAP sequence — e.g. a
        # lost-signal wake choice whose woken thread never runs again, or
        # exact-bound branches that charge the same segments in a
        # different order.  Suppress re-yields: downstream bug checks and
        # validation are pure functions of the sequence.
        seen = set()
        def finish(capped):
            if stats is not None:
                stats["steps"] = steps
                stats["capped"] = capped

        stack = [self.initial_state()]
        while stack:
            if max_schedules is not None and produced >= max_schedules:
                finish(True)
                return
            if max_steps is not None and steps >= max_steps:
                finish(True)
                return
            state = stack.pop()
            alive = True
            while alive:
                steps += 1
                if max_steps is not None and steps >= max_steps:
                    finish(True)
                    return
                if len(state.schedule) == self.sap_count:
                    if (
                        not exact_preemptions
                        or state.interleaved == max_preemptions
                    ) and (
                        first_preemption is None
                        or state.first_mark == first_preemption
                    ):
                        key = tuple(state.schedule)
                        if key not in seen:
                            seen.add(key)
                            produced += 1
                            yield state.schedule
                    break
                candidates = []
                cur = state.current
                for uid, wake in self._pop_choices(
                    state, self._enabled_saps(state, cur)
                ):
                    candidates.append((uid, wake))
                for thread in self.threads:
                    if thread == cur:
                        continue
                    for uid, wake in self._pop_choices(
                        state, self._enabled_saps(state, thread)
                    ):
                        candidates.append((uid, wake))
                if not candidates:
                    break  # structural dead end
                if rng is not None and len(candidates) > 1:
                    rng.shuffle(candidates)
                # LIFO order: branches are pushed in reverse so the current
                # thread's first choice is continued inline — staying put
                # avoids spending the interleaving budget on noise.
                for uid, wake in reversed(candidates[1:]):
                    branch = state.clone()
                    if self._pop(branch, uid, max_preemptions, wake=wake):
                        stack.append(branch)
                uid, wake = candidates[0]
                alive = self._pop(state, uid, max_preemptions, wake=wake)
        finish(False)

    def _pop_choices(self, state, enabled):
        """Expand signal wake-choices into the pop alternatives."""
        choices = []
        for uid in enabled:
            sap = self.system.saps[uid]
            if sap.kind == ev.SIGNAL:
                for wake in self._signal_wake_choices(state, sap):
                    choices.append((uid, wake))
            else:
                choices.append((uid, None))
        return choices


def csp_universe(system):
    """All (t1, k, t2) first-interleaving keys (the CSP universe)."""
    threads = sorted(system.summaries)
    universe = []
    for t1 in threads:
        for t2 in threads:
            if t2 == t1:
                continue
            n = len(system.summaries[t2].saps)
            for k in range(1, n + 1):
                universe.append((t1, k, t2))
    return universe
