"""Crash recovery for truncated trace containers.

A recorder that dies mid-run never executes :meth:`PathRecorder.finalize`,
so the chunks on disk hold token streams whose live frames were never
closed by ``partial`` tokens — the decoder rightly rejects them.  This
module reconstructs the paper's "threads may crash mid-record" story from
the durable prefix: each thread's stream is trimmed to its last *provable*
event and the missing ``partial`` tokens are synthesized.

Soundness rule: a synthesized stop position may only claim execution the
surviving tokens prove happened.

* A ``path`` token emitted at a back edge ``u -> v`` proves the thread
  entered ``v``: the frame closes at ``(v, ip=0)`` with its Ball-Larus
  counter reset to the pseudo-entry value of ``v``.
* A callee's ``enter`` token proves the parent executed the matching
  ``CALL`` instruction: if the first ``k`` recorded callees since the
  frame's last back edge line up with the first ``k`` ``CALL``
  instructions of the stop block, the frame closes just after the
  ``k``-th call.
* Everything else — callees that cannot be placed inside the stop block,
  ambiguous back edges, checkpoint-resume streams — is trimmed away
  rather than guessed at.

After closure the whole multi-thread trace is validated by decoding it
and symbolically re-executing it; threads that no longer have a spawn
record (their parent's fork fell in the truncated tail) are dropped.  The
result is always decodable; whether the trimmed trace still *reproduces*
the failure depends on how much of the tail was lost, and the batch
service reports that outcome honestly.
"""

from dataclasses import dataclass, field

from repro.analysis.escape import shared_variables
from repro.analysis.symexec import SymExecError, execute_recorded_paths
from repro.minilang import bytecode as bc
from repro.tracing.ball_larus import ProgramPaths
from repro.tracing.decoder import LogDecodeError, decode_thread_tokens


class RecoveryError(Exception):
    """A token stream cannot be recovered (not merely trimmed)."""


@dataclass
class RecoveryReport:
    """What recovery did to each thread, plus the validation verdict."""

    trimmed_tokens: dict = field(default_factory=dict)  # thread -> count
    synthesized_partials: dict = field(default_factory=dict)  # thread -> count
    dropped_threads: list = field(default_factory=list)
    validated: bool = False
    notes: list = field(default_factory=list)

    def summary(self):
        return (
            "trimmed %d tokens across %d threads, synthesized %d partials, "
            "dropped %s, validated=%s"
            % (
                sum(self.trimmed_tokens.values()),
                len(self.trimmed_tokens),
                sum(self.synthesized_partials.values()),
                self.dropped_threads or "none",
                self.validated,
            )
        )


class _Trim(Exception):
    """Internal: the stream must be cut at ``index`` and closure retried."""

    def __init__(self, index):
        self.index = index


class _OpenFrame:
    __slots__ = ("func", "enter_idx", "resumed", "last_path_idx",
                 "last_path_pid", "callees")

    def __init__(self, func, enter_idx, resumed=False):
        self.func = func
        self.enter_idx = enter_idx
        self.resumed = resumed
        self.last_path_idx = None
        self.last_path_pid = None
        # (enter token index, callee func) recorded since the last path
        # token of *this* frame — the calls the synthesized stop position
        # must account for.
        self.callees = []


def _simulate(tokens, func_names):
    """Replay ``tokens`` against a frame stack; returns the open frames.

    The input is a prefix of a valid stream, so structural violations
    (path/exit outside a frame, a second root) are real corruption and
    raise :class:`RecoveryError`.
    """
    stack = []
    rooted = False
    for idx, token in enumerate(tokens):
        kind = token[0]
        if kind in ("enter", "resume"):
            func = func_names[token[1]]
            if stack:
                stack[-1].callees.append((idx, func))
            elif rooted:
                raise RecoveryError("second root activation at token %d" % idx)
            rooted = True
            stack.append(_OpenFrame(func, idx, resumed=(kind == "resume")))
        elif kind == "path":
            if not stack:
                raise RecoveryError("path token outside frame at %d" % idx)
            frame = stack[-1]
            frame.last_path_idx = idx
            frame.last_path_pid = token[1]
            frame.callees = []
        elif kind in ("exit", "partial"):
            if not stack:
                raise RecoveryError("%s token outside frame at %d" % (kind, idx))
            stack.pop()
        else:
            raise RecoveryError("unknown token %r at %d" % (token, idx))
    return stack


def _close_frame(frame, program, paths):
    """Compute the synthesized ``partial`` token for one open frame.

    Raises :class:`_Trim` when the frame's trailing events cannot be
    soundly placed at a stop position.
    """
    bl = paths[frame.func]
    func = program.function(frame.func)
    if frame.resumed and frame.last_path_idx is None:
        # A resumed activation with no progress since the checkpoint: we
        # cannot synthesize a mid-path stop for it; cut the resume chain.
        raise _Trim(frame.enter_idx)
    if frame.last_path_idx is not None:
        blocks, ended_by_back_edge = bl.decode(frame.last_path_pid)
        if not ended_by_back_edge:
            # A non-back-edge path token inside an open frame means the
            # exit token fell in the lost tail; the frame's position after
            # it is unknowable, so close before the token instead.
            raise _Trim(frame.last_path_idx)
        src = blocks[-1]
        targets = [v for (u, v) in bl.back_edges if u == src]
        if len(targets) != 1:
            raise _Trim(frame.last_path_idx)
        stop_block = targets[0]
        counter = bl.backedge_reset[(src, stop_block)][1]
    else:
        stop_block = 0
        counter = 0

    k = len(frame.callees)
    if k == 0:
        stop_ip = 0
    else:
        instrs = func.blocks[stop_block].instrs
        call_ips = [
            (ip, instr.arg)
            for ip, instr in enumerate(instrs)
            if instr.op == bc.CALL
        ]
        if len(call_ips) < k:
            # The (len(call_ips)+1)-th recorded call happened in a later
            # block of an unrecorded segment; drop it and everything after.
            raise _Trim(frame.callees[len(call_ips)][0])
        for j in range(k):
            if call_ips[j][1] != frame.callees[j][1]:
                raise _Trim(frame.callees[j][0])
        last_call_ip = call_ips[k - 1][0]
        # The innermost frame provably *returned* from its k-th call (the
        # callee subtree is closed), so it stops after the CALL; an outer
        # frame is still inside it, and symbolic execution must reach and
        # execute the CALL to descend — same stop position does both.
        stop_ip = last_call_ip + 1
    return ("partial", counter, stop_block, stop_ip, 0)


def _close_thread(tokens, program, paths, func_names):
    """Trim + close one thread's stream; returns (tokens, trimmed, synth)."""
    tokens = list(tokens)
    original_len = len(tokens)
    while True:
        open_frames = _simulate(tokens, func_names)
        if not tokens:
            return [], original_len, 0
        if not open_frames:
            return tokens, original_len - len(tokens), 0
        try:
            partials = [
                _close_frame(frame, program, paths) for frame in open_frames
            ]
        except _Trim as cut:
            tokens = tokens[: cut.index]
            continue
        # The decoder closes the innermost open frame first.
        return (
            tokens + list(reversed(partials)),
            original_len - len(tokens),
            len(partials),
        )


def recover_tokens(logs, program, paths=None, bug=None, shared=None):
    """Recover {thread: tokens} from a truncated container's chunk prefix.

    Returns ``(recovered_logs, RecoveryReport)``.  Threads whose streams
    are empty or unrecoverable, or whose spawn record fell in a trimmed
    parent tail, are dropped (never the failing thread: losing it is
    reported as a failed validation instead, since without its trace the
    failure cannot be reproduced at all).
    """
    if paths is None:
        paths = ProgramPaths.build(program)
    func_ids = {name: i for i, name in enumerate(sorted(program.functions))}
    func_names = {i: name for name, i in func_ids.items()}
    report = RecoveryReport()
    recovered = {}
    for thread in sorted(logs):
        try:
            closed, trimmed, synth = _close_thread(
                logs[thread], program, paths, func_names
            )
        except RecoveryError as exc:
            report.dropped_threads.append(thread)
            report.notes.append("thread %s: %s" % (thread, exc))
            continue
        if not closed:
            report.dropped_threads.append(thread)
            report.notes.append("thread %s: no recoverable tokens" % thread)
            continue
        if trimmed:
            report.trimmed_tokens[thread] = trimmed
        if synth:
            report.synthesized_partials[thread] = synth
        recovered[thread] = closed

    bug_thread = bug.thread if bug is not None else None
    if shared is None:
        shared = shared_variables(program)
    if bug_thread is not None and bug_thread not in recovered:
        report.notes.append(
            "failing thread %s did not survive recovery" % bug_thread
        )
        return recovered, report
    # Validate: decode + symbolically execute the recovered trace, pruning
    # threads the surviving prefix can no longer account for.
    for _ in range(len(recovered) + 2):
        try:
            decoded = {
                t: decode_thread_tokens(t, toks, paths, func_names)
                for t, toks in recovered.items()
            }
            summaries = execute_recorded_paths(
                program, decoded, shared, bug=bug
            )
        except (LogDecodeError, SymExecError) as exc:
            offender = getattr(exc, "thread", None)
            if (
                offender is not None
                and offender in recovered
                and offender != bug_thread
            ):
                del recovered[offender]
                report.dropped_threads.append(offender)
                report.notes.append("thread %s: %s" % (offender, exc))
                continue
            report.notes.append("validation failed: %s" % exc)
            return recovered, report
        # A join whose child's exit fell in the lost tail makes the trace
        # un-encodable; recovery cannot invent the child's missing suffix.
        joined = {
            sap.addr
            for summary in summaries.values()
            for sap in summary.saps
            if sap.kind == "join"
        }
        exited = {
            t
            for t, summary in summaries.items()
            if any(sap.kind == "exit" for sap in summary.saps)
        }
        missing = sorted(joined - exited)
        if missing:
            report.notes.append(
                "joined threads %s lost their exit in the truncated tail"
                % ", ".join(missing)
            )
            return recovered, report
        report.validated = True
        return recovered, report
    report.notes.append("validation did not converge")
    return recovered, report
