"""The trace corpus: a directory of durable recorded failures.

Layout::

    corpus/
      corpus.json                 # {"format": 1} corpus marker
      entries/
        <entry-id>/
          manifest.json           # program source+hash, record params,
                                  # bug report, record-overhead stats
          trace.clap              # the .clap trace container

An entry is *self-contained*: its manifest carries the MiniLang source
and every scheduler parameter of the recorded run, so the batch service
can recompile the program and reproduce the failure from disk alone —
long after the recording process (and machine) is gone.

``Corpus.add`` records twice on purpose: a first in-memory record finds
the failing seed, then the same seed is re-run with a
:class:`~repro.tracing.recorder.StreamingTraceSink` feeding a
:class:`~repro.store.container.ClapWriter`, so the bytes on disk come
from a genuine chunk-by-chunk streaming write (the crash-durability
path), not a post-hoc dump.  The two runs' logs are compared token for
token; any divergence means the scheduler is not deterministic and the
entry is refused rather than silently stored wrong.
"""

import hashlib
import json
import os
import time

from repro.analysis.escape import shared_variables
from repro.core.clap import ClapConfig, ClapPipeline
from repro.minilang import compile_source
from repro.runtime.events import BugReport
from repro.store.container import (
    CHUNK_RECOVERED,
    CHUNK_RING,
    ClapReader,
    ClapWriter,
    compact_container,
)
from repro.store.recover import recover_tokens
from repro.tracing.ball_larus import ProgramPaths
from repro.tracing.logfmt import decode_tokens, encode_tokens
from repro.tracing.recorder import StreamingTraceSink

CORPUS_FORMAT = 1
MANIFEST_FORMAT = 1

# ClapConfig fields a manifest persists; everything else (solver choice,
# time budgets) is a *reproduction-time* decision, not a property of the
# recorded execution.
_RECORD_PARAMS = (
    "memory_model",
    "stickiness",
    "flush_prob",
    "max_steps",
    "max_cs",
    "pin_observed_reads",
    "ring_bytes",
    "ring_segment_bytes",
)


class CorpusError(Exception):
    """A structural problem with a corpus directory or entry."""


def _sha256(text):
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class StoredTrace:
    """Duck-types a finalized PathRecorder for :func:`decode_log`."""

    def __init__(self, logs, paths, func_names):
        self.logs = logs
        self.paths = paths
        self.func_names = func_names

    def log_size_bytes(self):
        return sum(
            len(encode_tokens(tokens)) for tokens in self.logs.values()
        )


class _StoredResult:
    """Duck-types ExecutionResult from manifest stats.

    ``saps_by_thread`` is empty: runtime SAP values are not persisted
    (CLAP never records them), so observed-read pinning degrades to a
    no-op for stored executions — exactly the paper's constraint that
    only control flow survives the crash.
    """

    def __init__(self, bug, stats):
        self.bug = bug
        self.thread_names = {
            i: name for i, name in enumerate(stats.get("thread_names", []))
        }
        self.saps_by_thread = {}
        self._stats = stats

    def total_instructions(self):
        return self._stats.get("n_instructions", 0)

    def total_branches(self):
        return self._stats.get("n_branches", 0)

    def total_saps(self):
        return self._stats.get("n_saps", 0)


class StoredExecution:
    """A recorded execution reloaded from a corpus entry.

    Shaped like :class:`repro.core.clap.RecordedExecution`, so it feeds
    straight into :meth:`ClapPipeline.reproduce_offline`.
    """

    def __init__(self, entry_id, program, seed, bug, logs, paths, stats,
                 recovery=None, memory_model=None, ring=None):
        self.entry_id = entry_id
        self.program = program
        self.seed = seed
        # Model the entry was recorded/validated under (None for legacy
        # manifests); reproduce_offline refuses a mismatched pipeline.
        self.memory_model = memory_model
        self.shared = shared_variables(program)
        func_ids = {
            name: i for i, name in enumerate(sorted(program.functions))
        }
        func_names = {i: name for name, i in func_ids.items()}
        self.recorder = StoredTrace(logs, paths, func_names)
        self.result = _StoredResult(bug, stats)
        # RecoveryReport when the container needed crash recovery.
        self.recovery = recovery
        # Flight-recorder metadata from the manifest (anchors as JSON
        # dicts — ClapPipeline._decode_ring revives them); None for
        # classic complete recordings.
        self.ring = ring
        self.ring_sink = None

    @property
    def bug(self):
        return self.result.bug

    @property
    def lossy(self):
        if not self.ring:
            return False
        return any(
            t.get("evicted_tokens", 0) > 0
            for t in self.ring.get("threads", {}).values()
        )

    def log_size_bytes(self):
        return self.recorder.log_size_bytes()


class CorpusEntry:
    """One recorded failure: ``manifest.json`` + ``trace.clap``."""

    def __init__(self, path):
        self.path = path
        self.entry_id = os.path.basename(os.path.normpath(path))
        self.manifest_path = os.path.join(path, "manifest.json")
        self.trace_path = os.path.join(path, "trace.clap")
        self._manifest = None

    @property
    def manifest(self):
        if self._manifest is None:
            try:
                with open(self.manifest_path, "r", encoding="utf-8") as fh:
                    self._manifest = json.load(fh)
            except (OSError, ValueError) as exc:
                raise CorpusError(
                    "entry %s: unreadable manifest: %s" % (self.entry_id, exc)
                ) from exc
        return self._manifest

    def _write_manifest(self, manifest):
        tmp = self.manifest_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self.manifest_path)
        self._manifest = manifest

    # -- introspection ---------------------------------------------------

    def program_name(self):
        return self.manifest["program"]["name"]

    def bug(self):
        raw = self.manifest.get("bug")
        if raw is None:
            return None
        return BugReport(
            kind=raw.get("kind", "assertion"),
            message=raw.get("message", ""),
            thread=raw.get("thread", ""),
            line=raw.get("line", 0),
        )

    def compile_program(self):
        prog = self.manifest["program"]
        if _sha256(prog["source"]) != prog["sha256"]:
            raise CorpusError(
                "entry %s: program source does not match its recorded hash"
                % self.entry_id
            )
        return compile_source(prog["source"], name=prog["name"])

    def config_kwargs(self, **overrides):
        """ClapConfig kwargs reproducing this entry's recorded setup."""
        kwargs = {
            key: self.manifest["record"][key]
            for key in _RECORD_PARAMS
            if key in self.manifest["record"]
        }
        kwargs.update(overrides)
        return kwargs

    # -- operations ------------------------------------------------------

    def verify(self):
        """Check the container end to end; returns (ok, problems)."""
        problems = []
        try:
            manifest = self.manifest
        except CorpusError as exc:
            return False, [str(exc)]
        if not os.path.exists(self.trace_path):
            return False, ["trace.clap missing"]
        prog = manifest.get("program", {})
        if _sha256(prog.get("source", "")) != prog.get("sha256"):
            problems.append("program source hash mismatch")
        reader = ClapReader.open(self.trace_path)
        problems.extend(reader.problems)
        return not problems, problems

    def load_execution(self, allow_recover=True):
        """Reload the recorded execution; recovers truncated traces.

        A container with a valid footer loads directly; a truncated one
        (crashed recorder) goes through :func:`recover_tokens` when
        ``allow_recover`` is set.  Returns a :class:`StoredExecution`.
        """
        program = self.compile_program()
        paths = ProgramPaths.build(program)
        reader = ClapReader.open(self.trace_path)
        bug = self.bug()
        ring = self.manifest.get("ring")
        if ring is None and any(c.flags & CHUNK_RING for c in reader.chunks):
            raise CorpusError(
                "entry %s: container holds flight-recorder (ring) chunks "
                "but the manifest has no ring metadata; refusing to treat "
                "a suffix log as a complete trace" % self.entry_id
            )
        recovery = None
        if reader.complete or self.manifest.get("recovered"):
            logs = reader.thread_tokens()
        elif allow_recover:
            logs, recovery = recover_tokens(
                reader.thread_tokens(), program, paths=paths, bug=bug
            )
            if not logs:
                raise CorpusError(
                    "entry %s: no thread survived recovery (%s)"
                    % (self.entry_id, recovery.summary())
                )
        else:
            raise CorpusError(
                "entry %s: damaged container: %s"
                % (self.entry_id, "; ".join(reader.problems))
            )
        return StoredExecution(
            entry_id=self.entry_id,
            program=program,
            seed=self.manifest["record"]["seed"],
            bug=bug,
            logs=logs,
            paths=paths,
            stats=self.manifest.get("stats", {}),
            recovery=recovery,
            memory_model=self.manifest["record"].get("memory_model"),
            ring=ring,
        )

    def recover(self):
        """Rewrite a truncated container as a complete, recovered one.

        Returns the :class:`~repro.store.recover.RecoveryReport`.  The
        rewritten chunks carry ``CHUNK_RECOVERED`` and the manifest gains
        ``recovered: true`` so later loads skip re-recovery.
        """
        reader = ClapReader.open(self.trace_path)
        if reader.complete:
            raise CorpusError(
                "entry %s: container is complete; nothing to recover"
                % self.entry_id
            )
        program = self.compile_program()
        paths = ProgramPaths.build(program)
        logs, report = recover_tokens(
            reader.thread_tokens(), program, paths=paths, bug=self.bug()
        )
        if not logs:
            raise CorpusError(
                "entry %s: no thread survived recovery (%s)"
                % (self.entry_id, report.summary())
            )
        tmp = self.trace_path + ".tmp"
        writer = ClapWriter(tmp)
        for thread in sorted(logs):
            writer.write_chunk(
                thread, logs[thread], final=True, flags=CHUNK_RECOVERED
            )
        meta = dict(reader.meta)
        meta.pop("format", None)
        meta["recovered"] = report.summary()
        writer.close(meta=meta)
        os.replace(tmp, self.trace_path)
        manifest = dict(self.manifest)
        manifest["recovered"] = True
        manifest["recovery"] = {
            "trimmed_tokens": report.trimmed_tokens,
            "synthesized_partials": report.synthesized_partials,
            "dropped_threads": report.dropped_threads,
            "validated": report.validated,
            "notes": report.notes,
        }
        self._write_manifest(manifest)
        return report

    def compact(self):
        """Merge streaming chunks; returns (old_size, new_size)."""
        tmp = self.trace_path + ".tmp"
        old, new = compact_container(self.trace_path, tmp)
        os.replace(tmp, self.trace_path)
        return old, new


class Corpus:
    """A directory of corpus entries."""

    def __init__(self, root):
        self.root = root
        self.entries_dir = os.path.join(root, "entries")

    @classmethod
    def create(cls, root):
        os.makedirs(os.path.join(root, "entries"), exist_ok=True)
        marker = os.path.join(root, "corpus.json")
        if not os.path.exists(marker):
            with open(marker, "w", encoding="utf-8") as fh:
                json.dump({"format": CORPUS_FORMAT}, fh)
                fh.write("\n")
        return cls(root)

    @classmethod
    def open(cls, root):
        marker = os.path.join(root, "corpus.json")
        if not os.path.isfile(marker):
            raise CorpusError("%s is not a corpus (no corpus.json)" % root)
        with open(marker, "r", encoding="utf-8") as fh:
            info = json.load(fh)
        if info.get("format") != CORPUS_FORMAT:
            raise CorpusError(
                "%s: unsupported corpus format %r" % (root, info.get("format"))
            )
        return cls(root)

    @classmethod
    def open_or_create(cls, root):
        if os.path.isfile(os.path.join(root, "corpus.json")):
            return cls.open(root)
        return cls.create(root)

    def entry_ids(self):
        if not os.path.isdir(self.entries_dir):
            return []
        return sorted(
            name
            for name in os.listdir(self.entries_dir)
            if os.path.isfile(
                os.path.join(self.entries_dir, name, "manifest.json")
            )
        )

    def entries(self):
        return [self.entry(entry_id) for entry_id in self.entry_ids()]

    def entry(self, entry_id):
        path = os.path.join(self.entries_dir, entry_id)
        if not os.path.isfile(os.path.join(path, "manifest.json")):
            raise CorpusError("no corpus entry %s" % entry_id)
        return CorpusEntry(path)

    # -- adding ----------------------------------------------------------

    def add(self, source, name=None, config=None, entry_id=None,
            flush_every=16, recorded=None, extra_manifest=None):
        """Record one failure of ``source`` and persist it as an entry.

        ``config`` is a :class:`~repro.core.clap.ClapConfig` (or None for
        defaults); ``flush_every`` is the streaming sink's chunk
        granularity in tokens.  ``recorded`` (a
        :class:`~repro.core.clap.RecordedExecution` of the same program
        and config) skips the internal seed search — the sharded fleet
        records once to learn the trace's content hash, routes it, and
        then stores through here without repeating the search; the
        streaming re-run and its determinism check still happen.
        ``extra_manifest`` is a JSON-able dict merged into the manifest
        (the fleet stamps ``{"fleet": {shard, cluster}}``).  Returns the
        new :class:`CorpusEntry`.
        """
        if not isinstance(source, str):
            raise CorpusError(
                "corpus entries need the program source text to be "
                "self-contained; pass MiniLang source, not a compiled program"
            )
        program = compile_source(source, name=name)
        config = config or ClapConfig()
        pipeline = ClapPipeline(program, config)
        t0 = time.monotonic()
        if recorded is None:
            recorded = pipeline.record()
        elif recorded.bug is None:
            raise CorpusError(
                "refusing to store a recording with no observed failure"
            )
        time_record = time.monotonic() - t0

        sha = _sha256(source)
        if entry_id is None:
            entry_id = "%s-s%d-%s" % (program.name, recorded.seed, sha[:8])
        entry_path = os.path.join(self.entries_dir, entry_id)
        if os.path.exists(entry_path):
            raise CorpusError("corpus entry %s already exists" % entry_id)
        os.makedirs(entry_path)
        entry = CorpusEntry(entry_path)

        # Genuine streaming write: re-run the failing seed with the
        # recorder flushing chunk by chunk into the container, then check
        # the durable bytes describe the very same execution.  Ring
        # configs re-run through the bounded flight recorder instead and
        # persist one CHUNK_RING chunk per surviving segment — the
        # container then holds exactly the suffix a post-mortem reader
        # would have found, and the manifest carries the decode anchors.
        ring_mode = getattr(config, "ring_bytes", None) is not None
        writer = ClapWriter(entry.trace_path)
        meta = {
            "entry": entry_id,
            "program": program.name,
            "seed": recorded.seed,
        }
        if ring_mode:
            streamed = pipeline.record_once(recorded.seed)
            ring_sink = streamed.ring_sink
            for thread in sorted(
                set(ring_sink.threads()) | set(streamed.recorder.logs)
            ):
                segments = (
                    list(ring_sink.iter_segments(thread))
                    if thread in ring_sink.threads()
                    else []
                )
                if not segments:
                    writer.write_chunk(
                        thread, [], final=True, flags=CHUNK_RING
                    )
                    continue
                for i, seg in enumerate(segments):
                    writer.write_chunk(
                        thread,
                        decode_tokens(seg.body),
                        final=(i == len(segments) - 1),
                        flags=CHUNK_RING,
                    )
            meta["ring"] = True
        else:
            sink = StreamingTraceSink(writer, flush_every=flush_every)
            streamed = pipeline.record_once(recorded.seed, sink=sink)
        writer.close(meta=meta)
        same_bug = recorded.bug is not None and recorded.bug.same_failure(
            streamed.bug
        )
        if not same_bug or streamed.recorder.logs != recorded.recorder.logs:
            raise CorpusError(
                "seed %d replayed differently while streaming to disk; "
                "refusing to store a non-deterministic recording"
                % recorded.seed
            )

        result = recorded.result
        manifest = {
            "format": MANIFEST_FORMAT,
            "entry_id": entry_id,
            "program": {
                "name": program.name,
                "source": source,
                "sha256": sha,
            },
            "record": dict(
                {key: getattr(config, key) for key in _RECORD_PARAMS},
                seed=recorded.seed,
            ),
            "bug": {
                "kind": recorded.bug.kind,
                "message": recorded.bug.message,
                "thread": recorded.bug.thread,
                "line": recorded.bug.line,
            },
            "stats": {
                "thread_names": sorted(result.thread_names.values()),
                "n_instructions": result.total_instructions(),
                "n_branches": result.total_branches(),
                "n_saps": result.total_saps(),
                "log_bytes": recorded.log_size_bytes(),
                "instrumentation_ops": recorded.recorder.instrumentation_ops,
                "time_record": time_record,
            },
            "recovered": False,
        }
        if ring_mode:
            ring_info = streamed.ring or {}
            manifest["ring"] = {
                "ring_bytes": ring_info.get("ring_bytes"),
                "segment_bytes": ring_info.get("segment_bytes"),
                "lossy": streamed.lossy,
                "threads": {
                    t: dict(info, anchor=info["anchor"].to_json())
                    for t, info in ring_info.get("threads", {}).items()
                },
            }
        if extra_manifest:
            manifest.update(extra_manifest)
        entry._write_manifest(manifest)
        return entry

    def add_recorded(self, source, recorder, result, name=None, config=None,
                     entry_id=None, tag=None, seed=-1, provenance=None,
                     time_record=0.0, extra_manifest=None):
        """Persist an already-recorded failing execution as an entry.

        This is how ``repro explore`` stores its replay-validated
        witnesses: the witness replay runs with a fresh
        :class:`~repro.tracing.recorder.PathRecorder` attached, and the
        resulting (finalized) logs plus the observed failure become a
        normal self-contained entry — ``seed`` is -1 because no scheduler
        seed produced the run, and ``provenance`` (a JSON-able dict, e.g.
        the SR3xx finding that drove the search) is kept in the manifest.
        Returns the new :class:`CorpusEntry`.
        """
        if not isinstance(source, str):
            raise CorpusError(
                "corpus entries need the program source text to be "
                "self-contained; pass MiniLang source, not a compiled program"
            )
        program = compile_source(source, name=name)
        config = config or ClapConfig()
        bug = result.bug
        if bug is None:
            raise CorpusError(
                "refusing to store a recording with no observed failure"
            )
        sha = _sha256(source)
        if entry_id is None:
            # The program name may be a file path; an entry id must be a
            # single directory component under entries/.
            base_name = os.path.basename(program.name) or "program"
            base = "%s-%s-%s" % (base_name, tag or "witness", sha[:8])
            entry_id = base
            suffix = 1
            while os.path.exists(os.path.join(self.entries_dir, entry_id)):
                suffix += 1
                entry_id = "%s-%d" % (base, suffix)
        entry_path = os.path.join(self.entries_dir, entry_id)
        if os.path.exists(entry_path):
            raise CorpusError("corpus entry %s already exists" % entry_id)
        os.makedirs(entry_path)
        entry = CorpusEntry(entry_path)

        writer = ClapWriter(entry.trace_path)
        for thread in sorted(recorder.logs):
            writer.write_chunk(thread, recorder.logs[thread], final=True)
        writer.close(
            meta={"entry": entry_id, "program": program.name, "seed": seed}
        )

        manifest = {
            "format": MANIFEST_FORMAT,
            "entry_id": entry_id,
            "program": {
                "name": program.name,
                "source": source,
                "sha256": sha,
            },
            "record": dict(
                {key: getattr(config, key) for key in _RECORD_PARAMS},
                seed=seed,
            ),
            "bug": {
                "kind": bug.kind,
                "message": bug.message,
                "thread": bug.thread,
                "line": bug.line,
            },
            "stats": {
                "thread_names": sorted(result.thread_names.values()),
                "n_instructions": result.total_instructions(),
                "n_branches": result.total_branches(),
                "n_saps": result.total_saps(),
                "log_bytes": recorder.log_size_bytes(),
                "instrumentation_ops": getattr(
                    recorder, "instrumentation_ops", 0
                ),
                "time_record": time_record,
            },
            "recovered": False,
        }
        if provenance:
            manifest["provenance"] = provenance
        if extra_manifest:
            manifest.update(extra_manifest)
        entry._write_manifest(manifest)
        return entry
