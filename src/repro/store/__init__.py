"""Durable trace storage: the ``.clap`` container and the corpus layout.

CLAP's value proposition is an always-on recorder whose output survives
the failure it records.  This package makes that durable:

* :mod:`repro.store.container` — the on-disk ``.clap`` trace container:
  per-thread :mod:`repro.tracing.logfmt` token streams wrapped in
  zlib-compressed, CRC32-checked chunks with a varint-indexed footer.
  The streaming writer flushes chunk by chunk, so a recorder that dies
  mid-run leaves a recoverable prefix instead of nothing.
* :mod:`repro.store.recover` — turns that prefix back into a decodable
  trace: trims each thread's token stream to its last consistent event
  and synthesizes the ``partial`` tokens a crashed recorder never wrote.
* :mod:`repro.store.corpus` — the corpus directory layout: one entry per
  recorded failure (``trace.clap`` + ``manifest.json`` with program
  source/hash, seed, schedule parameters, bug report and record-overhead
  stats) plus add / load / verify / compact / recover operations.
* :mod:`repro.store.cache` — the content-addressed analysis cache that
  lets ``repro batch`` re-runs skip symbolic execution and constraint
  encoding for (program, trace, memory model, prune config) keys already
  analyzed — plus its fleet-wide shared tier
  (:class:`~repro.store.cache.SharedAnalysisCache`: one directory serving
  every shard, with a size budget, LRU eviction and eviction counters).
"""

from repro.store.cache import (
    ANALYSIS_SCHEMA_VERSION,
    AnalysisCache,
    SharedAnalysisCache,
)
from repro.store.container import (
    ChunkInfo,
    ClapReader,
    ClapWriter,
    ContainerError,
    flip_byte,
)
from repro.store.corpus import (
    Corpus,
    CorpusEntry,
    CorpusError,
    StoredExecution,
)
from repro.store.recover import RecoveryError, RecoveryReport, recover_tokens

__all__ = [
    "ANALYSIS_SCHEMA_VERSION",
    "AnalysisCache",
    "SharedAnalysisCache",
    "ChunkInfo",
    "ClapReader",
    "ClapWriter",
    "ContainerError",
    "flip_byte",
    "Corpus",
    "CorpusEntry",
    "CorpusError",
    "StoredExecution",
    "RecoveryError",
    "RecoveryReport",
    "recover_tokens",
]
